// Deterministic fault schedules: WHAT goes wrong, WHEN, reproducibly.
//
// A FaultSchedule is a list of fault events positioned on the stream of
// *completed* collective exchanges a backend executes — "kill rank 2 once 7
// exchanges have completed", "time out the exchange after #3, twice".  It is
// plain data: the FaultInjectingBackend (fault/injecting_backend.hpp) fires
// the events; this header only describes and (de)serializes them.
//
// Two constructors, both replayable:
//   * parse("kill@7:rank=2;drop@3:times=2") — the explicit spec grammar,
//     round-tripped by str(), surfaced on the CLI as --fault-spec;
//   * random(seed, ranks, horizon) — a seeded chaos generator (SplitMix64,
//     no global RNG state), surfaced as --fault-seed.  The same seed always
//     yields the same schedule, so every chaos run — and every recovery path
//     and lrb_fault_* counter value downstream of it — is reproducible from
//     a single integer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lrb::fault {

/// What kind of fault an event injects.
enum class FaultKind : std::uint8_t {
  kKillRank,  ///< fail-stop: the rank dies, every exchange fails until recovery
  kDropMessage,  ///< a message is lost; the exchange times out, retry succeeds
  kDelayExchange,  ///< the exchange exceeds its deadline; retry succeeds
};

/// The spec keyword of a kind ("kill", "drop", "delay").
[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kDropMessage;
  /// Fires on the first exchange attempted after `at` collective exchanges
  /// have COMPLETED on the injecting backend.  Counting completions (not
  /// attempts) keeps positions stable under retries: "at=3" means the same
  /// exchange whether or not an earlier event forced re-attempts.
  std::uint64_t at = 0;
  /// kKillRank: the rank that dies.  Interpreted modulo the topology's rank
  /// count at fire time, so one spec is valid at every P a sweep tests.
  std::size_t rank = 0;
  /// kDrop/kDelay: consecutive attempts that fail before one succeeds.
  std::uint32_t times = 1;
  /// kDrop/kDelay: communication rounds the doomed attempt completes (and
  /// charges) before failing — wasted partial traffic the ledger's retried
  /// axes and the lrb_fault_retried_* counters must account for.
  std::uint32_t rounds_wasted = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// An immutable, ordered list of fault events.
class FaultSchedule {
 public:
  /// The empty schedule: a FaultInjectingBackend carrying it is transparent.
  FaultSchedule() = default;

  explicit FaultSchedule(std::vector<FaultEvent> events);

  /// Parses the spec grammar:
  ///
  ///   spec   := event (';' event)*          (empty spec = empty schedule)
  ///   event  := kind '@' at (':' kv (',' kv)*)?
  ///   kind   := 'kill' | 'drop' | 'delay'
  ///   kv     := 'rank=' N | 'times=' N | 'rounds=' N
  ///
  /// e.g. "kill@7:rank=2", "drop@3:times=2,rounds=1;delay@9".  `kill`
  /// requires rank=; drop/delay default to times=1, rounds=0.  Throws
  /// FaultSpecError (an InvalidArgumentError) on malformed input — unknown
  /// verb, missing '@'/@position, non-numeric field — naming the offending
  /// token (FaultSpecError::token()).
  [[nodiscard]] static FaultSchedule parse(std::string_view spec);

  /// A seeded chaos schedule for a run of about `horizon` exchanges on
  /// `ranks` ranks: 1–3 transient faults (drop/delay, 1–2 failed attempts
  /// each) and — when ranks > 1 — possibly one rank kill, all at positions
  /// in [0, horizon).  Pure function of its arguments via SplitMix64.
  ///
  /// Survivable by construction under the default RetryPolicy: the
  /// cumulative failed attempts of transients sharing one exchange position
  /// are capped at max_attempts - 1, so retries always absorb them (kills
  /// are recoverable via resharding, not retry).  Chaos sweeps may therefore
  /// demand exit 0 from every seed.
  [[nodiscard]] static FaultSchedule random(std::uint64_t seed,
                                            std::size_t ranks,
                                            std::uint64_t horizon);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Canonical spec string; parse(str()) reproduces the schedule exactly.
  [[nodiscard]] std::string str() const;

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;

 private:
  std::vector<FaultEvent> events_;  // sorted by `at`, stable on ties
};

}  // namespace lrb::fault
