// The recovery driver: deterministic draws that survive rank failures.
//
// This is where the determinism contract becomes an operational feature.
// PR 3's deterministic distributed selection keys every bid by (seed,
// draw id, GLOBAL index), so winners are invariant under the rank count and
// the shard partition — and DeterministicDistributedBidder's whole state is
// two integers.  A rank failure therefore costs nothing but the failed
// collective itself: reshard the fitness onto the P-1 survivors (O(moved)
// cells, ledger-charged), keep the cursor exactly where it was — the failed
// batch never advanced it — and draw again.  The continued sequence is
// bit-identical to a run that never saw the fault, which
// tools/mpi_parity's rank-failure drill and the chaos CI job both enforce.
//
// Fault taxonomy at this layer:
//   * CommTimeoutError — never reaches the driver: the collective layer
//     (dist/collectives.cpp) retries transient faults under the backend's
//     RetryPolicy.  An exhausted retry budget escalates out of the driver
//     unchanged — by then the fault is indistinguishable from a partition.
//   * RankFailedError — caught here; reshard to P-1 and resume.  With P=1
//     there is no survivor to reshard onto, so it propagates.
//   * PROCESS death (SIGKILL, OOM, power) — survived via lrb::persist: the
//     checkpoint functions below capture the whole selection state (shards
//     + two-integer cursor) in one crash-safe lrb-snap/v1 file, and a
//     restarted process resumes the stream bit-identically — the same
//     contract, extended past the life of the process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/selection.hpp"
#include "dist/sharding.hpp"
#include "dist/topology.hpp"

namespace lrb::fault {

/// One survived rank failure.
struct RecoveryEvent {
  std::uint64_t draw_id = 0;       ///< the draw the failure interrupted
  std::size_t failed_rank = 0;     ///< who died (topology numbering at failure)
  std::size_t ranks_before = 0;
  std::size_t ranks_after = 0;
  dist::CommLedger reshard_comm;   ///< data-motion bill of the reshard
  /// Wall time from catching the failure to publishing the first
  /// post-recovery winner (also recorded in the lrb_fault_recovery_ns
  /// histogram) — the "recovery-to-first-draw" latency bench_json tracks.
  std::uint64_t recovery_to_first_draw_ns = 0;
};

/// What a recovering draw stream produced.
struct RecoveryRun {
  std::vector<std::size_t> indices;  ///< all `draws` winners, in draw order
  /// Selection traffic (including retried axes) plus every reshard's data
  /// motion.
  dist::CommLedger comm;
  std::vector<RecoveryEvent> recoveries;  ///< empty on a clean run
};

/// Runs `draws` deterministic draws from `cursor` over `shards`, in batches
/// of `batch`, surviving any number of rank failures down to one rank.  On
/// RankFailedError: reshards `shards` onto ranks-1 uniform blocks (keeping
/// its backend), acknowledges the recovery if that backend is a
/// FaultInjectingBackend, and resumes from the cursor — which the failed
/// batch never advanced, so no draw is skipped or repeated.  The returned
/// winner sequence is bit-identical to an unfaulted run at any rank count.
///
/// Instrumented: lrb_fault_recoveries_total, lrb_fault_recovery_ns and a
/// "fault_recovery" trace span per event, on top of the reshard's own
/// lrb_fault_reshard_* metrics.
[[nodiscard]] RecoveryRun select_with_recovery(
    dist::ShardedFitness& shards, dist::DeterministicDistributedBidder& cursor,
    std::size_t draws, std::size_t batch = 1);

/// Durably checkpoints a distributed selection stream: `shards` (values,
/// boundaries, cached sums verbatim) and `cursor` (two integers) into one
/// lrb-snap/v1 file at `path`, committed atomically — a crash mid-write
/// leaves any previous checkpoint intact (persist/io.hpp).
void save_selection_checkpoint(const std::string& path,
                               const dist::ShardedFitness& shards,
                               const dist::DeterministicDistributedBidder& cursor);

/// A restored selection stream: continuing select()/select_batch() from
/// here is bit-identical to the stream the checkpoint interrupted, at any
/// rank count (bids are keyed by GLOBAL index).
struct RestoredSelection {
  dist::ShardedFitness shards;
  dist::DeterministicDistributedBidder cursor;
};

/// Restores a checkpoint written by save_selection_checkpoint.  `backend`
/// rebinds the collectives (null = the simulated machine): backends are
/// process wiring, not state, so the restarted process injects its own.
/// Throws CorruptSnapshotError if the file fails verification.
[[nodiscard]] RestoredSelection restore_selection_checkpoint(
    const std::string& path,
    std::shared_ptr<const dist::CommBackend> backend = nullptr);

}  // namespace lrb::fault
