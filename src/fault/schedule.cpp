#include "fault/schedule.hpp"

#include <algorithm>
#include <charconv>

#include "common/error.hpp"
#include "dist/backend.hpp"
#include "rng/splitmix64.hpp"

namespace lrb::fault {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kKillRank: return "kill";
    case FaultKind::kDropMessage: return "drop";
    case FaultKind::kDelayExchange: return "delay";
  }
  return "?";
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

namespace {

/// Every parse failure funnels here: a typed FaultSpecError whose what()
/// quotes the whole spec AND whose token() isolates exactly the substring
/// that failed — so a chaos-sweep log names the fix, not just the crime.
[[noreturn]] void bad_spec(std::string_view spec, std::string_view token,
                           const std::string& why) {
  throw FaultSpecError(std::string(token),
                       "fault spec \"" + std::string(spec) + "\": " + why +
                           " (offending token \"" + std::string(token) +
                           "\")");
}

std::uint64_t parse_u64(std::string_view spec, std::string_view text,
                        std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad_spec(spec, text,
             "expected a number for " + std::string(what) + ", got \"" +
                 std::string(text) + "\"");
  }
  return value;
}

FaultEvent parse_event(std::string_view spec, std::string_view text) {
  const std::size_t amp = text.find('@');
  if (amp == std::string_view::npos) {
    bad_spec(spec, text, "event \"" + std::string(text) + "\" is missing '@'");
  }
  const std::string_view kind_text = text.substr(0, amp);
  FaultEvent event;
  if (kind_text == "kill") {
    event.kind = FaultKind::kKillRank;
  } else if (kind_text == "drop") {
    event.kind = FaultKind::kDropMessage;
  } else if (kind_text == "delay") {
    event.kind = FaultKind::kDelayExchange;
  } else {
    bad_spec(spec, kind_text,
             "unknown fault kind \"" + std::string(kind_text) +
                 "\" (want kill|drop|delay)");
  }

  std::string_view rest = text.substr(amp + 1);
  const std::size_t colon = rest.find(':');
  const std::string_view at_text = rest.substr(0, colon);
  if (at_text.empty()) {
    // "kill@:rank=1" / "drop@" — without this check the number parser
    // would report an empty token, which names nothing useful.
    bad_spec(spec, text,
             "event \"" + std::string(text) + "\" is missing its @position");
  }
  event.at = parse_u64(spec, at_text, "@position");

  bool have_rank = false;
  if (colon != std::string_view::npos) {
    std::string_view args = rest.substr(colon + 1);
    while (!args.empty()) {
      const std::size_t comma = args.find(',');
      const std::string_view kv = args.substr(0, comma);
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        bad_spec(spec, kv,
                 "argument \"" + std::string(kv) + "\" is missing '='");
      }
      const std::string_view key = kv.substr(0, eq);
      const std::string_view value = kv.substr(eq + 1);
      if (key == "rank") {
        event.rank = static_cast<std::size_t>(parse_u64(spec, value, "rank"));
        have_rank = true;
      } else if (key == "times") {
        event.times = static_cast<std::uint32_t>(
            parse_u64(spec, value, "times"));
      } else if (key == "rounds") {
        event.rounds_wasted = static_cast<std::uint32_t>(
            parse_u64(spec, value, "rounds"));
      } else {
        bad_spec(spec, key,
                 "unknown argument \"" + std::string(key) +
                     "\" (want rank|times|rounds)");
      }
      args = comma == std::string_view::npos ? std::string_view{}
                                             : args.substr(comma + 1);
    }
  }
  if (event.kind == FaultKind::kKillRank && !have_rank) {
    bad_spec(spec, text, "kill events require rank=");
  }
  if (event.kind != FaultKind::kKillRank && event.times == 0) {
    bad_spec(spec, text, "times= must be at least 1");
  }
  return event;
}

}  // namespace

FaultSchedule FaultSchedule::parse(std::string_view spec) {
  std::vector<FaultEvent> events;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view event_text = rest.substr(0, semi);
    if (!event_text.empty()) events.push_back(parse_event(spec, event_text));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
  }
  return FaultSchedule(std::move(events));
}

FaultSchedule FaultSchedule::random(std::uint64_t seed, std::size_t ranks,
                                    std::uint64_t horizon) {
  if (horizon == 0) horizon = 1;
  rng::SplitMix64 gen(seed);
  std::vector<FaultEvent> events;
  // Transients sharing an exchange position stack their failed attempts, so
  // cap the cumulative times per position below the default retry budget
  // (max_attempts - 1 absorbable failures) — a random schedule must always
  // be survivable (the header's exit-0 contract for chaos sweeps).
  const std::uint32_t budget = dist::RetryPolicy{}.max_attempts - 1;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> attempts_at;
  const std::size_t transients = 1 + gen() % 3;  // 1..3
  for (std::size_t i = 0; i < transients; ++i) {
    FaultEvent event;
    event.kind = gen() % 2 == 0 ? FaultKind::kDropMessage
                                : FaultKind::kDelayExchange;
    event.at = gen() % horizon;
    event.times = 1 + static_cast<std::uint32_t>(gen() % 2);  // 1..2
    event.rounds_wasted = static_cast<std::uint32_t>(gen() % 2);  // 0..1
    auto slot = std::find_if(attempts_at.begin(), attempts_at.end(),
                             [&](const auto& e) { return e.first == event.at; });
    if (slot == attempts_at.end()) {
      slot = attempts_at.insert(attempts_at.end(), {event.at, 0u});
    }
    if (slot->second >= budget) continue;  // position saturated: drop event
    event.times = std::min(event.times, budget - slot->second);
    slot->second += event.times;
    events.push_back(event);
  }
  if (ranks > 1 && gen() % 2 == 0) {
    FaultEvent kill;
    kill.kind = FaultKind::kKillRank;
    kill.at = gen() % horizon;
    kill.rank = gen() % ranks;
    events.push_back(kill);
  }
  return FaultSchedule(std::move(events));
}

std::string FaultSchedule::str() const {
  std::string out;
  for (const FaultEvent& event : events_) {
    if (!out.empty()) out += ';';
    out += to_string(event.kind);
    out += '@';
    out += std::to_string(event.at);
    if (event.kind == FaultKind::kKillRank) {
      out += ":rank=" + std::to_string(event.rank);
    } else {
      out += ":times=" + std::to_string(event.times);
      if (event.rounds_wasted > 0) {
        out += ",rounds=" + std::to_string(event.rounds_wasted);
      }
    }
  }
  return out;
}

}  // namespace lrb::fault
