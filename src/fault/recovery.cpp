#include "fault/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "fault/injecting_backend.hpp"
#include "obs/obs.hpp"
#include "persist/snapshot.hpp"

namespace lrb::fault {

RecoveryRun select_with_recovery(dist::ShardedFitness& shards,
                                 dist::DeterministicDistributedBidder& cursor,
                                 std::size_t draws, std::size_t batch) {
  LRB_REQUIRE(batch >= 1, InvalidArgumentError,
              "select_with_recovery: batch must be at least 1");
  RecoveryRun run;
  run.indices.reserve(draws);
  const std::uint64_t end = cursor.next_draw_id() + draws;
  // Index (not pointer — recoveries may reallocate) of the event still
  // waiting for its first post-recovery draw to stamp the latency.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::size_t pending = kNone;
  std::chrono::steady_clock::time_point caught_at{};

  while (cursor.next_draw_id() < end) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch, end - cursor.next_draw_id()));
    try {
      dist::BatchDrawResult result = cursor.select_batch(shards, want);
      run.comm += result.comm;
      run.indices.insert(run.indices.end(), result.indices.begin(),
                         result.indices.end());
      if (pending != kNone) {
        const auto elapsed = std::chrono::steady_clock::now() - caught_at;
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count());
        run.recoveries[pending].recovery_to_first_draw_ns = ns;
        LRB_OBS_HISTOGRAM_RECORD("lrb_fault_recovery_ns", ns);
        pending = kNone;
      }
    } catch (const RankFailedError& failure) {
      // Unsurvivable: a 1-rank world has no one to reshard onto.
      if (shards.ranks() <= 1) throw;
      caught_at = std::chrono::steady_clock::now();
      LRB_TRACE_SPAN("fault_recovery");
      RecoveryEvent event;
      event.draw_id = cursor.next_draw_id();  // unchanged: the batch failed
      event.failed_rank = failure.rank();     // before any winner published
      event.ranks_before = shards.ranks();
      event.ranks_after = shards.ranks() - 1;
      event.reshard_comm = shards.reshard(event.ranks_after);
      run.comm += event.reshard_comm;
      if (const auto* injector = dynamic_cast<const FaultInjectingBackend*>(
              &shards.topology().backend())) {
        injector->mark_recovered();
      }
      LRB_OBS_COUNTER_ADD("lrb_fault_recoveries_total", 1);
      run.recoveries.push_back(event);
      pending = run.recoveries.size() - 1;
    }
  }
  return run;
}

void save_selection_checkpoint(
    const std::string& path, const dist::ShardedFitness& shards,
    const dist::DeterministicDistributedBidder& cursor) {
  persist::Snapshot snap;
  snap.put_sharded_fitness(shards);
  snap.put_dist_cursor(cursor);
  snap.write(path);
}

RestoredSelection restore_selection_checkpoint(
    const std::string& path, std::shared_ptr<const dist::CommBackend> backend) {
  const persist::Snapshot snap = persist::Snapshot::read(path);
  return RestoredSelection{snap.sharded_fitness(std::move(backend)),
                           snap.dist_cursor()};
}

}  // namespace lrb::fault
