#include "fault/injecting_backend.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace lrb::fault {

FaultInjectingBackend::FaultInjectingBackend(
    std::shared_ptr<const dist::CommBackend> inner, FaultSchedule schedule,
    dist::RetryPolicy policy)
    : inner_(inner ? std::move(inner) : dist::make_simulated_backend()),
      schedule_(std::move(schedule)),
      policy_(policy),
      name_("fault+" + std::string(inner_->name())),
      remaining_(schedule_.size(), 0) {
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const FaultEvent& event = schedule_.events()[i];
    remaining_[i] = event.kind == FaultKind::kKillRank ? 1 : event.times;
  }
}

std::string_view FaultInjectingBackend::name() const noexcept { return name_; }

bool FaultInjectingBackend::owns_rank(std::size_t rank) const noexcept {
  return inner_->owns_rank(rank);
}

dist::RetryPolicy FaultInjectingBackend::retry_policy() const noexcept {
  return policy_;
}

std::uint64_t FaultInjectingBackend::exchanges_completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::optional<std::size_t> FaultInjectingBackend::dead_rank() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dead_rank_;
}

void FaultInjectingBackend::mark_recovered() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  dead_rank_.reset();
}

void FaultInjectingBackend::before_exchange(
    const dist::Topology& topo, dist::CommLedger& ledger,
    std::uint64_t words_per_message) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // An unacknowledged dead rank fails everything: retries keep detecting the
  // same failure until recovery reshards and calls mark_recovered().
  if (dead_rank_.has_value()) {
    throw RankFailedError(*dead_rank_,
                          "rank " + std::to_string(*dead_rank_) +
                              " is down (unrecovered)");
  }
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const FaultEvent& event = schedule_.events()[i];
    if (event.at != completed_ || remaining_[i] == 0) continue;
    remaining_[i] -= 1;
    LRB_OBS_COUNTER_ADD("lrb_fault_injected_total", 1);
    if (event.kind == FaultKind::kKillRank) {
      LRB_OBS_COUNTER_ADD("lrb_fault_injected_kills_total", 1);
      dead_rank_ = event.rank % topo.ranks();
      throw RankFailedError(*dead_rank_,
                            "injected fail-stop of rank " +
                                std::to_string(*dead_rank_) + " at exchange " +
                                std::to_string(completed_));
    }
    // Transient: the doomed attempt may complete (and charge) a few rounds
    // before the loss surfaces — wasted traffic the retry loop will demote
    // to the ledger's retried axes.
    for (std::uint32_t r = 0; r < event.rounds_wasted; ++r) {
      ledger.charge_round(topo.ranks(), words_per_message);
    }
    if (event.kind == FaultKind::kDropMessage) {
      LRB_OBS_COUNTER_ADD("lrb_fault_injected_drops_total", 1);
      throw CommTimeoutError("injected message drop at exchange " +
                             std::to_string(completed_));
    }
    LRB_OBS_COUNTER_ADD("lrb_fault_injected_delays_total", 1);
    throw CommTimeoutError("injected delay past deadline at exchange " +
                           std::to_string(completed_));
  }
}

void FaultInjectingBackend::note_completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  completed_ += 1;
}

std::vector<double> FaultInjectingBackend::allreduce_max(
    const dist::Topology& topo, std::span<const double> local,
    dist::CommLedger& ledger) const {
  before_exchange(topo, ledger, 1);
  auto out = inner_->allreduce_max(topo, local, ledger);
  note_completed();
  return out;
}

std::vector<dist::ArgMax> FaultInjectingBackend::allreduce_argmax(
    const dist::Topology& topo, std::span<const dist::ArgMax> local,
    dist::CommLedger& ledger) const {
  before_exchange(topo, ledger, 2);
  auto out = inner_->allreduce_argmax(topo, local, ledger);
  note_completed();
  return out;
}

std::vector<std::vector<dist::ArgMax>>
FaultInjectingBackend::allreduce_argmax_batch(
    const dist::Topology& topo,
    std::span<const std::vector<dist::ArgMax>> local,
    dist::CommLedger& ledger) const {
  const std::size_t batch = local.empty() ? 1 : local.front().size();
  before_exchange(topo, ledger, 2 * batch);
  auto out = inner_->allreduce_argmax_batch(topo, local, ledger);
  note_completed();
  return out;
}

std::vector<double> FaultInjectingBackend::allreduce_sum(
    const dist::Topology& topo, std::span<const double> local,
    dist::CommLedger& ledger) const {
  before_exchange(topo, ledger, 1);
  auto out = inner_->allreduce_sum(topo, local, ledger);
  note_completed();
  return out;
}

std::vector<double> FaultInjectingBackend::exclusive_scan_sum(
    const dist::Topology& topo, std::span<const double> local,
    dist::CommLedger& ledger) const {
  before_exchange(topo, ledger, 1);
  auto out = inner_->exclusive_scan_sum(topo, local, ledger);
  note_completed();
  return out;
}

double FaultInjectingBackend::reduce_sum(const dist::Topology& topo,
                                         std::span<const double> local,
                                         std::size_t root,
                                         dist::CommLedger& ledger) const {
  before_exchange(topo, ledger, 1);
  const double out = inner_->reduce_sum(topo, local, root, ledger);
  note_completed();
  return out;
}

std::vector<double> FaultInjectingBackend::broadcast(
    const dist::Topology& topo, double value, std::size_t root,
    dist::CommLedger& ledger) const {
  before_exchange(topo, ledger, 1);
  auto out = inner_->broadcast(topo, value, root, ledger);
  note_completed();
  return out;
}

std::shared_ptr<const FaultInjectingBackend> make_fault_injecting_backend(
    FaultSchedule schedule, dist::RetryPolicy policy) {
  return std::make_shared<const FaultInjectingBackend>(
      nullptr, std::move(schedule), policy);
}

}  // namespace lrb::fault
