// FaultInjectingBackend: deterministic chaos between the collectives and any
// real backend.
//
// Wraps a CommBackend and applies a FaultSchedule to the stream of collective
// exchanges flowing through it: a scheduled kill marks the rank dead and
// fails every exchange with RankFailedError until mark_recovered(); a
// scheduled drop/delay fails the exchange with CommTimeoutError for the
// event's `times` attempts (optionally charging partial wasted rounds first),
// then lets it through.  Faults fire BEFORE any inner dataflow executes, so
// under a real multi-process backend every process throws symmetrically at
// the same exchange — no stray messages, no deadlock.
//
// Determinism: events are positioned on the count of COMPLETED exchanges,
// which advances identically on every run of the same workload, so the same
// schedule (same --fault-seed / --fault-spec) always produces the same
// failures, the same recovery path, and the same lrb_fault_* counter values —
// the repeat-run equality the fault tests pin.
//
// This is the one deliberately stateful backend (exchange counter, pending
// event bookkeeping, dead rank) — the state is mutable behind the const
// interface and mutex-guarded, mirroring how a real NIC's fault state is
// invisible to the code issuing sends.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "dist/backend.hpp"
#include "fault/schedule.hpp"

namespace lrb::fault {

class FaultInjectingBackend final : public dist::CommBackend {
 public:
  /// Wraps `inner` (null = a fresh simulated backend) under `schedule`.
  /// `policy` is what the collective retry loop will consult — the default
  /// keeps retries enabled with zero backoff sleep so tests replay fast and
  /// identically.
  explicit FaultInjectingBackend(
      std::shared_ptr<const dist::CommBackend> inner,
      FaultSchedule schedule, dist::RetryPolicy policy = {});

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] bool owns_rank(std::size_t rank) const noexcept override;
  [[nodiscard]] dist::RetryPolicy retry_policy() const noexcept override;

  [[nodiscard]] std::vector<double> allreduce_max(
      const dist::Topology& topo, std::span<const double> local,
      dist::CommLedger& ledger) const override;
  [[nodiscard]] std::vector<dist::ArgMax> allreduce_argmax(
      const dist::Topology& topo, std::span<const dist::ArgMax> local,
      dist::CommLedger& ledger) const override;
  [[nodiscard]] std::vector<std::vector<dist::ArgMax>> allreduce_argmax_batch(
      const dist::Topology& topo,
      std::span<const std::vector<dist::ArgMax>> local,
      dist::CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> allreduce_sum(
      const dist::Topology& topo, std::span<const double> local,
      dist::CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> exclusive_scan_sum(
      const dist::Topology& topo, std::span<const double> local,
      dist::CommLedger& ledger) const override;
  [[nodiscard]] double reduce_sum(const dist::Topology& topo,
                                  std::span<const double> local,
                                  std::size_t root,
                                  dist::CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> broadcast(
      const dist::Topology& topo, double value, std::size_t root,
      dist::CommLedger& ledger) const override;

  /// The schedule this injector replays.
  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }

  /// Completed (successful) exchanges so far — the clock fault events are
  /// positioned on.
  [[nodiscard]] std::uint64_t exchanges_completed() const;

  /// The currently-dead rank, if a kill has fired and recovery has not yet
  /// acknowledged it.  While set, every exchange throws RankFailedError.
  [[nodiscard]] std::optional<std::size_t> dead_rank() const;

  /// Recovery acknowledgement: the survivors have formed a new world (the
  /// ShardedFitness was resharded without the dead rank), so exchanges flow
  /// again.  Called by fault/recovery.hpp's driver; const because recovery
  /// only ever sees the backend through the Topology's const handle.
  void mark_recovered() const;

 private:
  /// Fires any due fault for the exchange about to run (throws), or returns
  /// to let the inner collective execute.  `words_per_message` sizes the
  /// wasted partial rounds a doomed attempt charges before failing.
  void before_exchange(const dist::Topology& topo, dist::CommLedger& ledger,
                       std::uint64_t words_per_message) const;

  /// Advances the completed-exchange clock after a successful inner call.
  void note_completed() const;

  std::shared_ptr<const dist::CommBackend> inner_;
  FaultSchedule schedule_;
  dist::RetryPolicy policy_;
  std::string name_;

  mutable std::mutex mutex_;
  mutable std::uint64_t completed_ = 0;
  mutable std::optional<std::size_t> dead_rank_;
  /// events()[i] still fails `remaining_[i]` more attempts (kills: 1 until
  /// fired, then 0 forever — a dead rank stays dead after recovery).
  mutable std::vector<std::uint32_t> remaining_;
};

/// Convenience: wrap the process-wide simulated machine under `schedule`.
[[nodiscard]] std::shared_ptr<const FaultInjectingBackend>
make_fault_injecting_backend(FaultSchedule schedule,
                             dist::RetryPolicy policy = {});

}  // namespace lrb::fault
