// WheelJournal: a durable WheelSet session — one snapshot plus one
// write-ahead draw log, kept consistent so SIGKILL at ANY instant loses
// nothing that was acknowledged.
//
// Consistency scheme:
//
//   * create() truncates the log, then commits a snapshot recording
//     "0 log records applied".  Creation is a destructive begin (it
//     replaces whatever journal the directory held).
//   * Every update and draw applies to the in-memory arena, then appends
//     its record (winners included) to the log; the flush policy decides
//     when the record is durable.
//   * checkpoint() fsyncs the log, then atomically commits a fresh
//     snapshot recording "R records applied" — the log is never rewritten,
//     so there is no window where snapshot and log disagree: a crash
//     before the rename resumes from the old snapshot (re-applying the
//     tail), after it from the new one (skipping the covered prefix).
//   * resume() truncates any torn tail off the log, restores the newest
//     snapshot, re-applies the uncovered records — updates by replaying
//     them, draws by SEEKING the wheel cursor past them (the winners are
//     already known from the log; determinism makes redraws equal anyway)
//     — and returns every logged winner so a service can re-announce its
//     committed stream.
//
// The continued stream after resume() is bit-identical to one that was
// never interrupted — the CI crash job SIGKILLs `lrb record` at random
// offsets, resumes, and byte-diffs the winner stream to enforce exactly
// that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/wheel_set.hpp"
#include "persist/draw_log.hpp"
#include "persist/snapshot.hpp"

namespace lrb::persist {

struct ResumedWheelJournal;  // defined below (holds a WheelJournal by value)

class WheelJournal {
 public:
  /// Conventional file names inside a journal directory.
  [[nodiscard]] static std::string snapshot_path(const std::string& dir) {
    return dir + "/state.snap";
  }
  [[nodiscard]] static std::string log_path(const std::string& dir) {
    return dir + "/draws.log";
  }

  /// Starts a fresh journal over `ws` in `dir` (which must exist),
  /// replacing any previous journal there.
  [[nodiscard]] static WheelJournal create(const std::string& dir,
                                           core::WheelSet ws,
                                           DrawLogConfig config = {});

  /// Restores the journal in `dir` after a crash or clean shutdown.
  [[nodiscard]] static ResumedWheelJournal resume(const std::string& dir,
                                                  DrawLogConfig config = {});

  [[nodiscard]] core::WheelSet& wheels() noexcept { return ws_; }
  [[nodiscard]] const core::WheelSet& wheels() const noexcept { return ws_; }

  /// Applies the update and logs it.
  void update(std::size_t wheel, std::size_t item, double value);

  /// Draws `draws` winners from `wheel` and logs them (one record).
  [[nodiscard]] std::vector<std::uint64_t> draw(std::size_t wheel,
                                                std::size_t draws);

  /// Forces the log durable now, regardless of flush policy.
  void sync();

  /// Commits a fresh snapshot covering every record logged so far (plus a
  /// checkpoint marker in the log) — bounds future resume work without
  /// ever rewriting the log.
  void checkpoint();

  /// Records logged so far (applied + since).
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  WheelJournal(std::string dir, core::WheelSet ws, DrawLogConfig config,
               std::uint64_t records);

  void commit_snapshot();

  std::string dir_;
  core::WheelSet ws_;
  DrawLogWriter log_;
  std::uint64_t records_ = 0;  ///< total records in the log
};

/// What WheelJournal::resume() recovered, beyond the journal itself.
struct ResumedWheelJournal {
  WheelJournal journal;
  /// Every winner in the log, in draw order — the committed stream.
  std::vector<std::uint64_t> winners;
  bool torn_tail = false;           ///< a torn final frame was dropped
  std::uint64_t dropped_bytes = 0;  ///< size of that frame
};

}  // namespace lrb::persist
