// lrb-snap/v1: the versioned binary snapshot format.
//
// Layout (all integers little-endian, doubles as IEEE-754 bit patterns —
// see persist/wire.hpp):
//
//   [0..7]   magic "LRBSNAP1"
//   u32      format version (1)
//   u32      section count
//   per section:
//     u32    section id (SectionId)
//     u64    payload length
//     bytes  payload
//     u32    CRC32C of the payload
//
// One snapshot holds any subset of the sections, so a WheelSet service and
// a distributed selection service share the same container.  Restore is
// BIT-IDENTICAL to the live object at save time: values, per-wheel seeds
// and cursors, BOTH words of every Kahan accumulator, cached shard sums
// verbatim (they are delta-maintained, so recomputing them could differ in
// the low bits), and the deferred-repack dirty flags — continuing the draw
// stream from a restored object produces byte-identical winners on every
// SIMD dispatch target (tests/persist/, the CI crash job, and bench_json's
// restore_bit_exact_everywhere invariant all enforce this).
//
// Verification before construction: magic, version, per-section CRC, and
// semantic cross-checks (monotone offsets, recounted positives, finite
// non-negative values).  Any failure throws CorruptSnapshotError; restore
// never hands back an object built from unverified bytes.
//
// Durability: write() commits via the atomic-rename idiom (persist/io.hpp),
// so an existing snapshot file is replaced all-or-nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/wheel_set.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"

namespace lrb::persist {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// What a section holds.  Ids are part of the on-disk format: never reuse
/// or renumber, only append.
enum class SectionId : std::uint32_t {
  kWheelSet = 1,
  kShardedFitness = 2,
  kDistCursor = 3,
  kJournalHeader = 4,  ///< persist/journal.hpp bookkeeping
};

/// An in-memory snapshot: a set of typed sections that can be encoded to /
/// decoded from the lrb-snap/v1 container.
class Snapshot {
 public:
  Snapshot() = default;

  /// Parses and verifies an encoded snapshot.  Throws CorruptSnapshotError
  /// on any framing defect (bad magic, version, truncation, CRC mismatch,
  /// duplicate section).
  [[nodiscard]] static Snapshot decode(std::span<const std::uint8_t> bytes);

  /// read_file + decode.  Instrumented as one restore-side latency
  /// (lrb_persist_restore_ns covers decode + object reconstruction).
  [[nodiscard]] static Snapshot read(const std::string& path);

  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// encode + atomic_write_file: after return the snapshot is durable under
  /// `path`; a crash mid-write leaves any previous snapshot intact.
  /// Instrumented: lrb_persist_snapshots_total, lrb_persist_snapshot_bytes_total,
  /// lrb_persist_snapshot_ns.
  void write(const std::string& path) const;

  [[nodiscard]] bool has(SectionId id) const noexcept;

  // --- typed sections -----------------------------------------------------

  /// Captures the full WheelSet state: arena values, offsets, per-wheel
  /// seeds / cursors / Kahan carries / positive counts / dirty flags.
  void put_wheel_set(const core::WheelSet& ws);

  /// Reconstructs the WheelSet.  The packed active sets are rebuilt from
  /// the restored values (they are a pure function of them; in-place
  /// patches and rebuilds provably agree), so the restored arena draws
  /// bit-identically to the saved one, deferred repacks included.
  [[nodiscard]] core::WheelSet wheel_set() const;

  /// Captures values, the boundary vector, the cached shard sums VERBATIM
  /// (delta-maintained — recomputation could differ in the last ulp), and
  /// positive counts.
  void put_sharded_fitness(const dist::ShardedFitness& shards);

  /// Reconstructs the sharded vector on `backend` (null = the simulated
  /// machine).  The backend handle is runtime wiring, not state, so it is
  /// re-injected at restore — the restored object is bit-identical in every
  /// value the selection paths read.
  [[nodiscard]] dist::ShardedFitness sharded_fitness(
      std::shared_ptr<const dist::CommBackend> backend = nullptr) const;

  /// The two-integer deterministic distributed cursor.
  void put_dist_cursor(const dist::DeterministicDistributedBidder& cursor);
  [[nodiscard]] dist::DeterministicDistributedBidder dist_cursor() const;

  /// Journal bookkeeping (persist/journal.hpp): how many leading draw-log
  /// records this snapshot already reflects — resume applies only the rest.
  void put_journal_header(std::uint64_t applied_records);
  [[nodiscard]] std::uint64_t journal_header() const;

 private:
  struct Section {
    SectionId id;
    std::vector<std::uint8_t> payload;
  };

  void put_section(SectionId id, std::vector<std::uint8_t> payload);
  [[nodiscard]] std::span<const std::uint8_t> section(SectionId id) const;

  std::vector<Section> sections_;
};

}  // namespace lrb::persist
