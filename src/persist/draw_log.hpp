// DrawLog: the crash-safe append-only write-ahead log of a selection
// service — every update, draw batch (with its winners), reshard, and
// snapshot checkpoint, as length-prefixed CRC-framed records.
//
// Frame layout (integers little-endian, see persist/wire.hpp):
//
//   u32  payload length        (bounded by kMaxRecordBytes)
//   u32  CRC32C of the payload
//   u8   record kind           -+
//   ...  kind-specific body     +-- the payload the CRC covers
//
// Writer durability: the file is opened O_APPEND and every record is
// write(2)n immediately; FlushPolicy picks when fsync runs — kEveryRecord
// (each record durable before append returns), kBatch (every
// `batch_records` appends, amortizing the fsync), kNone (the OS decides;
// sync()/close still flush).  bench_json's `persist` section prices the
// three policies.
//
// Reader crash tolerance — the load-bearing guarantee: a process killed
// mid-write leaves a torn final frame (short header, short payload, or a
// CRC that does not match).  read_draw_log() parses frames strictly in
// order and STOPS at the first invalid one, reporting the valid prefix
// and the torn byte count; recover_truncate() then chops the file back to
// the last valid frame.  No input — truncation at any byte, a flipped bit
// anywhere — can make the reader crash, allocate unboundedly (lengths are
// double-checked against both the cap and the bytes actually present), or
// silently return records past the damage; a CRC-clean frame whose payload
// is semantically malformed throws CorruptLogError.  The corruption-fuzz
// suite (tests/persist/draw_log_fuzz_test.cpp) drives every truncation
// point and bit flip under ASan/UBSan.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "persist/io.hpp"

namespace lrb::persist {

/// When the writer calls fsync(2).
enum class FlushPolicy : std::uint8_t {
  kEveryRecord,  ///< durable before append() returns (safest, slowest)
  kBatch,        ///< every DrawLogConfig::batch_records appends
  kNone,         ///< never inside append(); sync()/close() still flush
};

struct DrawLogConfig {
  FlushPolicy policy = FlushPolicy::kEveryRecord;
  std::size_t batch_records = 64;
};

/// Hard cap on one record's payload: a bit-flipped length field must never
/// drive allocation (the reader also cross-checks against the bytes left).
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 24;

// --- record types ----------------------------------------------------------
// Kinds are part of the on-disk format: never reuse or renumber.

/// WheelSet point update (core::WheelSet::update arguments).
struct WheelUpdateRecord {
  std::uint64_t wheel = 0;
  std::uint64_t item = 0;
  double value = 0.0;
};

/// One WheelSet draw request and its winners (LOCAL item indices).  The
/// wheel's cursor advanced by winners.size(); replay re-executes the draws
/// and diffs, recovery seeks past them.
struct WheelDrawRecord {
  std::uint64_t wheel = 0;
  std::vector<std::uint64_t> winners;
};

/// ShardedFitness point update.
struct DistUpdateRecord {
  std::uint64_t index = 0;
  double value = 0.0;
};

/// One deterministic distributed batch: draw ids first_draw_id .. +B-1.
struct DistDrawRecord {
  std::uint64_t first_draw_id = 0;
  std::vector<std::uint64_t> winners;
};

/// Elastic repartition onto `new_ranks` uniform blocks.
struct ReshardRecord {
  std::uint64_t new_ranks = 0;
};

/// A snapshot covering every preceding record was durably committed;
/// `sequence` is writer-assigned (e.g. the record count at commit time).
/// Recovery may skip everything before the last checkpoint.
struct CheckpointRecord {
  std::uint64_t sequence = 0;
};

using Record = std::variant<WheelUpdateRecord, WheelDrawRecord,
                            DistUpdateRecord, DistDrawRecord, ReshardRecord,
                            CheckpointRecord>;

/// Appends CRC-framed records to an O_APPEND log file.
class DrawLogWriter {
 public:
  /// Opens (creating if absent) `path` for appending.
  DrawLogWriter(const std::string& path, DrawLogConfig config = {});

  DrawLogWriter(DrawLogWriter&&) noexcept = default;
  DrawLogWriter& operator=(DrawLogWriter&&) noexcept = default;

  /// Destructor best-effort-flushes (kBatch/kNone leftovers); call sync()
  /// for a checked flush.
  ~DrawLogWriter();

  /// Encodes, frames, writes, and (per policy) fsyncs one record.
  /// Instrumented: lrb_persist_log_records_total, lrb_persist_log_bytes_total,
  /// lrb_persist_append_ns.
  void append(const Record& record);

  /// fsync(2) now, regardless of policy.
  void sync();

  [[nodiscard]] const std::string& path() const noexcept {
    return file_.path();
  }

 private:
  File file_;
  DrawLogConfig config_;
  std::size_t unsynced_records_ = 0;
};

/// What reading a (possibly torn) log produced.
struct DrawLogReadResult {
  std::vector<Record> records;     ///< every record of the valid prefix
  std::uint64_t valid_bytes = 0;   ///< length of that prefix on disk
  std::uint64_t total_bytes = 0;   ///< file size as read
  bool torn_tail = false;          ///< bytes past the last valid frame exist

  [[nodiscard]] std::uint64_t dropped_bytes() const noexcept {
    return total_bytes - valid_bytes;
  }
};

/// Reads every valid frame of `path`, stopping cleanly at the first torn or
/// corrupt one (see the header comment for the exact guarantee).  A missing
/// file reads as an empty log — a writer SIGKILLed between snapshot commit
/// and first append leaves exactly that state.  Throws CorruptLogError only
/// for a CRC-clean but semantically malformed payload; PersistIoError for
/// I/O failures other than absence.
[[nodiscard]] DrawLogReadResult read_draw_log(const std::string& path);

/// Decodes one CRC-verified payload (exposed for tests and the replayer).
[[nodiscard]] Record decode_record(std::span<const std::uint8_t> payload);

/// Encodes one record's payload (kind byte + body, unframed).
[[nodiscard]] std::vector<std::uint8_t> encode_record(const Record& record);

/// Truncates `path` to its valid prefix.  Returns the bytes dropped (0 when
/// the log was clean).  Instrumented: lrb_persist_torn_tail_recoveries_total,
/// lrb_persist_dropped_bytes_total.
std::uint64_t recover_truncate(const std::string& path);

}  // namespace lrb::persist
