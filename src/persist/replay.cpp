#include "persist/replay.hpp"

#include <algorithm>
#include <utility>
#include <variant>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace lrb::persist {

namespace {

constexpr std::size_t kMaxReportedMismatches = 16;

void diff_winners(ReplayReport& report,
                  const std::vector<std::uint64_t>& logged,
                  const std::vector<std::size_t>& replayed) {
  LRB_ASSERT(logged.size() == replayed.size(),
             "replay must re-execute exactly the logged draw count");
  for (std::size_t i = 0; i < logged.size(); ++i) {
    const auto got = static_cast<std::uint64_t>(replayed[i]);
    if (logged[i] != got) {
      if (report.mismatches < kMaxReportedMismatches) {
        report.first_mismatches.push_back(
            ReplayMismatch{report.draws + i, logged[i], got});
      }
      ++report.mismatches;
    }
  }
  report.draws += logged.size();
}

[[noreturn]] void wrong_family(const char* have, const char* record) {
  throw CorruptLogError(std::string("replay: snapshot holds ") + have +
                        " state but the log contains a " + record +
                        " record — these files are not a pair");
}

ReplayReport replay_wheel(const Snapshot& snap, const DrawLogReadResult& log,
                          std::size_t skip) {
  ReplayReport report;
  core::WheelSet ws = snap.wheel_set();
  for (std::size_t i = skip; i < log.records.size(); ++i) {
    const Record& record = log.records[i];
    ++report.records;
    if (const auto* up = std::get_if<WheelUpdateRecord>(&record)) {
      ws.update(up->wheel, up->item, up->value);
      ++report.updates;
    } else if (const auto* draw = std::get_if<WheelDrawRecord>(&record)) {
      const core::WheelSet::DrawRequest req{draw->wheel, draw->winners.size()};
      diff_winners(report, draw->winners, ws.draw_batch({&req, 1}));
    } else if (std::holds_alternative<CheckpointRecord>(record)) {
      ++report.checkpoints;
    } else {
      wrong_family("WheelSet", "distributed");
    }
  }
  return report;
}

ReplayReport replay_dist(const Snapshot& snap, const DrawLogReadResult& log,
                         std::size_t skip) {
  ReplayReport report;
  dist::ShardedFitness shards = snap.sharded_fitness();
  dist::DeterministicDistributedBidder cursor = snap.dist_cursor();
  for (std::size_t i = skip; i < log.records.size(); ++i) {
    const Record& record = log.records[i];
    ++report.records;
    if (const auto* up = std::get_if<DistUpdateRecord>(&record)) {
      shards.update(up->index, up->value);
      ++report.updates;
    } else if (const auto* draw = std::get_if<DistDrawRecord>(&record)) {
      cursor.seek(draw->first_draw_id);
      const dist::BatchDrawResult batch =
          cursor.select_batch(shards, draw->winners.size());
      diff_winners(report, draw->winners, batch.indices);
    } else if (const auto* rs = std::get_if<ReshardRecord>(&record)) {
      (void)shards.reshard(rs->new_ranks);
      ++report.reshards;
    } else if (std::holds_alternative<CheckpointRecord>(record)) {
      ++report.checkpoints;
    } else {
      wrong_family("distributed", "WheelSet");
    }
  }
  return report;
}

}  // namespace

ReplayReport replay(const std::string& snapshot_path,
                    const std::string& log_path) {
  LRB_TRACE_SPAN("persist_replay");
  const Snapshot snap = Snapshot::read(snapshot_path);
  const DrawLogReadResult log = read_draw_log(log_path);
  // A journal-managed snapshot already reflects its first `skip` records
  // (a mid-stream checkpoint); replay resumes after them.
  std::size_t skip = 0;
  if (snap.has(SectionId::kJournalHeader)) {
    skip = std::min<std::size_t>(snap.journal_header(), log.records.size());
  }
  ReplayReport report;
  if (snap.has(SectionId::kWheelSet)) {
    report = replay_wheel(snap, log, skip);
  } else if (snap.has(SectionId::kShardedFitness) &&
             snap.has(SectionId::kDistCursor)) {
    report = replay_dist(snap, log, skip);
  } else {
    throw CorruptSnapshotError(
        "replay: snapshot holds neither a WheelSet section nor a "
        "ShardedFitness + cursor pair");
  }
  report.torn_tail = log.torn_tail;
  report.dropped_bytes = log.dropped_bytes();
  LRB_OBS_COUNTER_ADD("lrb_persist_replays_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_persist_replay_mismatches_total", report.mismatches);
  return report;
}

}  // namespace lrb::persist
