#include "persist/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace lrb::persist {

namespace {

[[noreturn]] void io_fail(const std::string& op, const std::string& path) {
  // Capture errno before any allocation can clobber it.
  const int err = errno;
  throw PersistIoError(op + " \"" + path + "\": " + std::strerror(err));
}

/// The directory component of `path` ("." when there is none) — what must
/// be fsynced after a rename to make the new name durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

File::~File() { close(); }

File File::open_read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) io_fail("open", path);
  return File(fd, path);
}

File File::create_truncate(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_fail("create", path);
  return File(fd, path);
}

File File::open_append(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) io_fail("open for append", path);
  return File(fd, path);
}

void File::write_all(std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("write", path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void File::sync() {
  LRB_OBS_SCOPED_NS("lrb_persist_fsync_ns");
  if (::fsync(fd_) != 0) io_fail("fsync", path_);
  LRB_OBS_COUNTER_ADD("lrb_persist_fsyncs_total", 1);
}

void File::truncate(std::uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    io_fail("ftruncate", path_);
  }
}

std::uint64_t File::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) io_fail("fstat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void File::close() {
  if (fd_ >= 0) {
    // Close errors are unreportable from a destructor; writers that need
    // durability have already fsynced.
    ::close(fd_);
    fd_ = -1;
  }
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) io_fail("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    io_fail("fstat", path);
  }
  std::vector<std::uint8_t> out(static_cast<std::size_t>(st.st_size));
  std::size_t pos = 0;
  while (pos < out.size()) {
    const ssize_t n = ::read(fd, out.data() + pos, out.size() - pos);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_fail("read", path);
    }
    // EOF before the fstat size: a concurrent truncate shrank the file;
    // return what was actually read.
    if (n == 0) break;
    pos += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out.resize(pos);
  return out;
}

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  {
    File f = File::create_truncate(tmp);
    f.write_all(data);
    f.sync();
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) io_fail("rename", tmp);
  // Make the rename itself durable: fsync the containing directory.
  const std::string dir = parent_dir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) io_fail("open directory", dir);
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) io_fail("fsync directory", dir);
  LRB_OBS_COUNTER_ADD("lrb_persist_fsyncs_total", 2);
}

}  // namespace lrb::persist
