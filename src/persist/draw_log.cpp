#include "persist/draw_log.hpp"

#include <cerrno>
#include <type_traits>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "persist/crc32c.hpp"
#include "persist/wire.hpp"

namespace lrb::persist {

namespace {

// On-disk record kind bytes (never renumber).
enum : std::uint8_t {
  kKindWheelUpdate = 1,
  kKindWheelDraw = 2,
  kKindDistUpdate = 3,
  kKindDistDraw = 4,
  kKindReshard = 5,
  kKindCheckpoint = 6,
};

void encode_winners(ByteWriter& w, const std::vector<std::uint64_t>& winners) {
  w.u64(winners.size());
  for (std::uint64_t x : winners) w.u64(x);
}

std::vector<std::uint64_t> decode_winners(ByteReader& r) {
  const std::uint64_t count = r.u64("winner count");
  // Cap-by-evidence: each winner is 8 bytes, so a count beyond the bytes
  // present is corrupt no matter what it claims — reject before sizing.
  if (count > r.remaining() / 8) r.fail("winner count exceeds the payload");
  std::vector<std::uint64_t> winners(count);
  for (std::uint64_t i = 0; i < count; ++i) winners[i] = r.u64("winner");
  return winners;
}

}  // namespace

std::vector<std::uint8_t> encode_record(const Record& record) {
  ByteWriter w;
  std::visit(
      [&w](const auto& rec) {
        using T = std::decay_t<decltype(rec)>;
        if constexpr (std::is_same_v<T, WheelUpdateRecord>) {
          w.u8(kKindWheelUpdate);
          w.u64(rec.wheel);
          w.u64(rec.item);
          w.f64(rec.value);
        } else if constexpr (std::is_same_v<T, WheelDrawRecord>) {
          w.u8(kKindWheelDraw);
          w.u64(rec.wheel);
          encode_winners(w, rec.winners);
        } else if constexpr (std::is_same_v<T, DistUpdateRecord>) {
          w.u8(kKindDistUpdate);
          w.u64(rec.index);
          w.f64(rec.value);
        } else if constexpr (std::is_same_v<T, DistDrawRecord>) {
          w.u8(kKindDistDraw);
          w.u64(rec.first_draw_id);
          encode_winners(w, rec.winners);
        } else if constexpr (std::is_same_v<T, ReshardRecord>) {
          w.u8(kKindReshard);
          w.u64(rec.new_ranks);
        } else {
          static_assert(std::is_same_v<T, CheckpointRecord>);
          w.u8(kKindCheckpoint);
          w.u64(rec.sequence);
        }
      },
      record);
  return w.take();
}

Record decode_record(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, WireDomain::kLog, "draw-log record");
  const std::uint8_t kind = r.u8("record kind");
  Record out;
  switch (kind) {
    case kKindWheelUpdate: {
      WheelUpdateRecord rec;
      rec.wheel = r.u64("wheel");
      rec.item = r.u64("item");
      rec.value = r.f64("value");
      out = rec;
      break;
    }
    case kKindWheelDraw: {
      WheelDrawRecord rec;
      rec.wheel = r.u64("wheel");
      rec.winners = decode_winners(r);
      out = std::move(rec);
      break;
    }
    case kKindDistUpdate: {
      DistUpdateRecord rec;
      rec.index = r.u64("index");
      rec.value = r.f64("value");
      out = rec;
      break;
    }
    case kKindDistDraw: {
      DistDrawRecord rec;
      rec.first_draw_id = r.u64("first draw id");
      rec.winners = decode_winners(r);
      out = std::move(rec);
      break;
    }
    case kKindReshard: {
      ReshardRecord rec;
      rec.new_ranks = r.u64("new rank count");
      out = rec;
      break;
    }
    case kKindCheckpoint: {
      CheckpointRecord rec;
      rec.sequence = r.u64("checkpoint sequence");
      out = rec;
      break;
    }
    default:
      r.fail("unknown record kind " + std::to_string(kind));
  }
  if (!r.exhausted()) r.fail("trailing bytes after the record body");
  return out;
}

DrawLogWriter::DrawLogWriter(const std::string& path, DrawLogConfig config)
    : file_(File::open_append(path)), config_(config) {}

DrawLogWriter::~DrawLogWriter() {
  // Best-effort flush of kBatch/kNone leftovers; errors are unreportable
  // here, and callers needing the durability receipt call sync() instead.
  if (file_.is_open() && unsynced_records_ > 0) {
    try {
      file_.sync();
    } catch (const PersistError&) {  // NOLINT(bugprone-empty-catch)
    }
  }
}

void DrawLogWriter::append(const Record& record) {
  LRB_OBS_SCOPED_NS("lrb_persist_append_ns");
  const std::vector<std::uint8_t> payload = encode_record(record);
  LRB_ASSERT(payload.size() <= kMaxRecordBytes,
             "draw-log record exceeds kMaxRecordBytes");
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32c(payload.data(), payload.size()));
  frame.bytes(payload);
  // ONE write(2) per record: O_APPEND makes the frame land contiguously at
  // the end of file, so a crash can tear at most the final frame.
  file_.write_all(frame.data());
  LRB_OBS_COUNTER_ADD("lrb_persist_log_records_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_persist_log_bytes_total", frame.size());
  ++unsynced_records_;
  switch (config_.policy) {
    case FlushPolicy::kEveryRecord:
      sync();
      break;
    case FlushPolicy::kBatch:
      if (unsynced_records_ >= config_.batch_records) sync();
      break;
    case FlushPolicy::kNone:
      break;
  }
}

void DrawLogWriter::sync() {
  file_.sync();
  unsynced_records_ = 0;
}

DrawLogReadResult read_draw_log(const std::string& path) {
  DrawLogReadResult result;
  if (!file_exists(path)) return result;  // pre-first-append crash state
  const std::vector<std::uint8_t> bytes = read_file(path);
  result.total_bytes = bytes.size();
  std::size_t pos = 0;
  while (true) {
    const std::size_t left = bytes.size() - pos;
    if (left < 8) break;  // torn or absent header
    const std::span<const std::uint8_t> head(bytes.data() + pos, 8);
    const std::uint32_t len = std::uint32_t{head[0]} |
                              std::uint32_t{head[1]} << 8 |
                              std::uint32_t{head[2]} << 16 |
                              std::uint32_t{head[3]} << 24;
    const std::uint32_t want_crc = std::uint32_t{head[4]} |
                                   std::uint32_t{head[5]} << 8 |
                                   std::uint32_t{head[6]} << 16 |
                                   std::uint32_t{head[7]} << 24;
    // Both bounds matter: the cap defuses a bit-flipped length field (no
    // giant allocation), the bytes-left check classifies a short payload
    // as a torn tail rather than reading past the buffer.
    if (len > kMaxRecordBytes || len > left - 8) break;
    const std::span<const std::uint8_t> payload(bytes.data() + pos + 8, len);
    if (crc32c(payload.data(), payload.size()) != want_crc) break;
    // CRC-clean payloads that fail semantic decoding throw CorruptLogError
    // out of here — that is damage framing cannot explain (or a version
    // skew), not a torn tail, and truncating it away would silently drop
    // acknowledged records.
    result.records.push_back(decode_record(payload));
    pos += 8 + len;
    result.valid_bytes = pos;
  }
  result.torn_tail = result.valid_bytes < result.total_bytes;
  return result;
}

std::uint64_t recover_truncate(const std::string& path) {
  const DrawLogReadResult r = read_draw_log(path);
  if (!r.torn_tail) return 0;
  File f = File::open_append(path);
  f.truncate(r.valid_bytes);
  f.sync();
  LRB_OBS_COUNTER_ADD("lrb_persist_torn_tail_recoveries_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_persist_dropped_bytes_total", r.dropped_bytes());
  return r.dropped_bytes();
}

}  // namespace lrb::persist
