// lrb-snap/v1 container framing plus the per-type (de)serializers.  The
// Access structs at the top are the named friends of WheelSet and
// ShardedFitness: all field-level knowledge lives here, behind the same
// verification the header promises — nothing constructs an object from
// bytes that failed a check.
#include "persist/snapshot.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/obs.hpp"
#include "persist/crc32c.hpp"
#include "persist/io.hpp"
#include "persist/wire.hpp"

namespace lrb::persist {

namespace {

constexpr char kMagic[8] = {'L', 'R', 'B', 'S', 'N', 'A', 'P', '1'};

/// Shared corruption check for restored fitness values: the live objects
/// only ever hold finite, non-negative values (admission validates), so
/// anything else in a CRC-clean snapshot is an encoder bug or silent
/// corruption — surfaced as CorruptSnapshotError, never rebuilt into an
/// object.
void check_restored_value(const ByteReader& r, double f, std::uint64_t index) {
  if (!(std::isfinite(f) && f >= 0.0)) {
    r.fail("restored fitness must be finite and non-negative (index " +
           std::to_string(index) + ", value " + lrb::detail::fitness_value_str(f) +
           ")");
  }
}

}  // namespace

/// Field-level WheelSet serializer (the friend wheel_set.hpp declares).
struct WheelSetAccess {
  static std::vector<std::uint8_t> encode(const core::WheelSet& ws) {
    ByteWriter w;
    const std::size_t wheels = ws.wheels();
    const std::size_t total = ws.total_items();
    w.u64(ws.set_seed_);
    w.u64(wheels);
    w.u64(total);
    for (std::size_t k = 0; k <= wheels; ++k) w.u64(ws.offsets_[k]);
    for (double f : ws.values_) w.f64(f);
    for (std::uint64_t s : ws.seeds_) w.u64(s);
    for (std::uint64_t c : ws.cursors_) w.u64(c);
    for (const KahanSum& s : ws.sums_) {
      w.f64(s.sum_part());
      w.f64(s.compensation_part());
    }
    for (std::size_t p : ws.positive_count_) w.u64(p);
    for (std::uint8_t d : ws.dirty_) w.u8(d);
    w.u64(ws.total_active_);
    return w.take();
  }

  static core::WheelSet decode(ByteReader& r) {
    const std::uint64_t set_seed = r.u64("set_seed");
    const std::uint64_t wheels = r.u64("wheel count");
    const std::uint64_t total = r.u64("total items");
    // The remaining payload is at least 8 bytes per offset alone; a
    // bit-flipped count cannot make us allocate unboundedly past the
    // buffer because every element read below is bounds-checked, but
    // reserve-by-claim would — so sanity-cap the counts against the bytes
    // actually present before sizing any vector.
    if (wheels > r.remaining() / 8 || total > r.remaining() / 8) {
      r.fail("wheel/item counts exceed the snapshot payload");
    }
    core::WheelSet ws(set_seed);
    ws.offsets_.resize(wheels + 1);
    for (std::uint64_t k = 0; k <= wheels; ++k) {
      ws.offsets_[k] = r.u64("offset");
    }
    if (ws.offsets_[0] != 0 || ws.offsets_[wheels] != total) {
      r.fail("offsets must start at 0 and end at the total item count");
    }
    for (std::uint64_t k = 0; k < wheels; ++k) {
      if (ws.offsets_[k] > ws.offsets_[k + 1]) {
        r.fail("offsets must be non-decreasing (wheel " + std::to_string(k) +
               ")");
      }
    }
    ws.values_.resize(total);
    for (std::uint64_t i = 0; i < total; ++i) {
      ws.values_[i] = r.f64("value");
      check_restored_value(r, ws.values_[i], i);
    }
    ws.seeds_.resize(wheels);
    for (std::uint64_t k = 0; k < wheels; ++k) ws.seeds_[k] = r.u64("seed");
    ws.cursors_.resize(wheels);
    for (std::uint64_t k = 0; k < wheels; ++k) {
      ws.cursors_[k] = r.u64("cursor");
    }
    ws.sums_.resize(wheels);
    for (std::uint64_t k = 0; k < wheels; ++k) {
      const double sum = r.f64("kahan sum");
      const double comp = r.f64("kahan compensation");
      ws.sums_[k] = KahanSum::from_parts(sum, comp);
    }
    ws.positive_count_.resize(wheels);
    std::size_t total_active = 0;
    for (std::uint64_t k = 0; k < wheels; ++k) {
      ws.positive_count_[k] = r.u64("positive count");
      total_active += ws.positive_count_[k];
    }
    ws.dirty_.resize(wheels);
    for (std::uint64_t k = 0; k < wheels; ++k) {
      const std::uint8_t d = r.u8("dirty flag");
      if (d > 1) r.fail("dirty flag must be 0 or 1");
      ws.dirty_[k] = d;
    }
    if (r.u64("total active") != total_active) {
      r.fail("total active count does not match the per-wheel counts");
    }

    // Cross-checks before touching rebuild_active (whose internal
    // assertion would abort, not throw, on a bad count): the positive
    // counts and sum invariants must match what the values imply.
    for (std::uint64_t k = 0; k < wheels; ++k) {
      std::size_t recount = 0;
      for (std::size_t i = ws.offsets_[k]; i < ws.offsets_[k + 1]; ++i) {
        recount += (ws.values_[i] > 0.0);
      }
      if (recount != ws.positive_count_[k]) {
        r.fail("positive count does not match the values (wheel " +
               std::to_string(k) + ")");
      }
      const bool sum_positive = ws.sums_[k].value() > 0.0;
      if (sum_positive != (recount > 0)) {
        r.fail("cached sum sign does not match the positive count (wheel " +
               std::to_string(k) + ")");
      }
    }

    // The packed active sets are a pure function of values_ — rebuild them
    // eagerly so clean wheels (which will NOT repack before their next
    // membership flip) serve draws from valid arrays, then put back the
    // saved dirty flags so a deferred repack pending at save time is still
    // pending (rebuild_active is idempotent; the extra repack at the next
    // draw reproduces the exact arrays either way).
    ws.active_streams_.resize(total);
    ws.active_f_.resize(total);
    ws.active_inv_f_.resize(total);
    ws.pos_in_active_.resize(total);
    std::vector<std::uint8_t> saved_dirty = ws.dirty_;
    for (std::uint64_t k = 0; k < wheels; ++k) ws.rebuild_active(k);
    ws.dirty_ = std::move(saved_dirty);
    ws.total_active_ = total_active;
    LRB_OBS_GAUGE_ADD("lrb_wheelset_wheels", wheels);
    LRB_OBS_GAUGE_ADD("lrb_wheelset_items", total);
    LRB_OBS_GAUGE_ADD("lrb_wheelset_active_items", total_active);
    return ws;
  }
};

/// Field-level ShardedFitness serializer (the friend sharding.hpp declares).
struct ShardedFitnessAccess {
  static std::vector<std::uint8_t> encode(const dist::ShardedFitness& sf) {
    ByteWriter w;
    const std::size_t ranks = sf.ranks();
    w.u64(ranks);
    w.u64(sf.values_.size());
    for (double f : sf.values_) w.f64(f);
    for (std::size_t b : sf.begins_) w.u64(b);
    // Cached sums VERBATIM: delta-maintained, so a Kahan recompute at the
    // same boundaries can differ in the last ulp — and the restored object
    // must be bit-identical to the live one, residue included.
    for (double s : sf.shard_sums_) w.f64(s);
    for (std::size_t p : sf.positive_counts_) w.u64(p);
    return w.take();
  }

  static dist::ShardedFitness decode(
      ByteReader& r, std::shared_ptr<const dist::CommBackend> backend) {
    const std::uint64_t ranks = r.u64("rank count");
    const std::uint64_t n = r.u64("vector length");
    if (ranks == 0) r.fail("rank count must be at least 1");
    if (ranks > r.remaining() / 8 || n > r.remaining() / 8) {
      r.fail("rank/vector counts exceed the snapshot payload");
    }
    dist::ShardedFitness sf;
    sf.topology_ = dist::Topology(ranks, std::move(backend));
    sf.values_.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      sf.values_[i] = r.f64("value");
      check_restored_value(r, sf.values_[i], i);
    }
    sf.begins_.resize(ranks + 1);
    for (std::uint64_t b = 0; b <= ranks; ++b) {
      sf.begins_[b] = r.u64("shard boundary");
    }
    if (sf.begins_[0] != 0 || sf.begins_[ranks] != n) {
      r.fail("shard boundaries must start at 0 and end at the vector length");
    }
    for (std::uint64_t b = 0; b < ranks; ++b) {
      if (sf.begins_[b] > sf.begins_[b + 1]) {
        r.fail("shard boundaries must be non-decreasing (rank " +
               std::to_string(b) + ")");
      }
    }
    sf.shard_sums_.resize(ranks);
    for (std::uint64_t b = 0; b < ranks; ++b) {
      sf.shard_sums_[b] = r.f64("shard sum");
    }
    sf.positive_counts_.resize(ranks);
    for (std::uint64_t b = 0; b < ranks; ++b) {
      sf.positive_counts_[b] = r.u64("positive count");
      std::size_t recount = 0;
      for (std::size_t i = sf.begins_[b]; i < sf.begins_[b + 1]; ++i) {
        recount += (sf.values_[i] > 0.0);
      }
      if (recount != sf.positive_counts_[b]) {
        r.fail("positive count does not match the values (rank " +
               std::to_string(b) + ")");
      }
      // The sharding invariant: sum > 0 iff a positive entry exists, and
      // an emptied shard caches exactly 0.0 (no residue).
      const double s = sf.shard_sums_[b];
      if (!std::isfinite(s) || (recount == 0 ? s != 0.0 : !(s > 0.0))) {
        r.fail("cached shard sum violates the sign invariant (rank " +
               std::to_string(b) + ", value " + lrb::detail::fitness_value_str(s) +
               ")");
      }
    }
    return sf;
  }
};

void Snapshot::put_section(SectionId id, std::vector<std::uint8_t> payload) {
  for (Section& s : sections_) {
    if (s.id == id) {
      s.payload = std::move(payload);
      return;
    }
  }
  sections_.push_back(Section{id, std::move(payload)});
}

std::span<const std::uint8_t> Snapshot::section(SectionId id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return s.payload;
  }
  throw CorruptSnapshotError(
      "lrb-snap/v1 snapshot: required section " +
      std::to_string(static_cast<std::uint32_t>(id)) + " is absent");
}

bool Snapshot::has(SectionId id) const noexcept {
  for (const Section& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

std::vector<std::uint8_t> Snapshot::encode() const {
  ByteWriter w;
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof kMagic));
  w.u32(kSnapshotVersion);
  w.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    w.u32(static_cast<std::uint32_t>(s.id));
    w.u64(s.payload.size());
    w.bytes(s.payload);
    w.u32(crc32c(s.payload.data(), s.payload.size()));
  }
  return w.take();
}

Snapshot Snapshot::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes, WireDomain::kSnapshot, "lrb-snap/v1 snapshot");
  const auto magic = r.bytes(sizeof kMagic, "magic");
  if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0) {
    r.fail("bad magic (not an lrb-snap file)");
  }
  const std::uint32_t version = r.u32("format version");
  if (version != kSnapshotVersion) {
    r.fail("unsupported format version " + std::to_string(version) +
           " (this build reads version " + std::to_string(kSnapshotVersion) +
           ")");
  }
  const std::uint32_t count = r.u32("section count");
  Snapshot snap;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t id = r.u32("section id");
    const std::uint64_t len = r.u64("section length");
    if (len > r.remaining()) {
      r.fail("section length " + std::to_string(len) +
             " exceeds the remaining bytes");
    }
    const auto payload = r.bytes(static_cast<std::size_t>(len), "section payload");
    const std::uint32_t want = r.u32("section CRC");
    const std::uint32_t got = crc32c(payload.data(), payload.size());
    if (want != got) {
      r.fail("section " + std::to_string(id) + " CRC mismatch");
    }
    const auto sid = static_cast<SectionId>(id);
    if (snap.has(sid)) {
      r.fail("duplicate section id " + std::to_string(id));
    }
    snap.sections_.push_back(
        Section{sid, std::vector<std::uint8_t>(payload.begin(), payload.end())});
  }
  if (!r.exhausted()) r.fail("trailing bytes after the last section");
  return snap;
}

Snapshot Snapshot::read(const std::string& path) {
  LRB_OBS_SCOPED_NS("lrb_persist_restore_ns");
  Snapshot snap = decode(read_file(path));
  LRB_OBS_COUNTER_ADD("lrb_persist_restores_total", 1);
  return snap;
}

void Snapshot::write(const std::string& path) const {
  LRB_TRACE_SPAN("persist_snapshot");
  LRB_OBS_SCOPED_NS("lrb_persist_snapshot_ns");
  const std::vector<std::uint8_t> bytes = encode();
  atomic_write_file(path, bytes);
  LRB_OBS_COUNTER_ADD("lrb_persist_snapshots_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_persist_snapshot_bytes_total", bytes.size());
}

void Snapshot::put_wheel_set(const core::WheelSet& ws) {
  put_section(SectionId::kWheelSet, WheelSetAccess::encode(ws));
}

core::WheelSet Snapshot::wheel_set() const {
  LRB_OBS_SCOPED_NS("lrb_persist_restore_ns");
  ByteReader r(section(SectionId::kWheelSet), WireDomain::kSnapshot,
               "lrb-snap/v1 WheelSet section");
  core::WheelSet ws = WheelSetAccess::decode(r);
  if (!r.exhausted()) r.fail("trailing bytes after the WheelSet state");
  return ws;
}

void Snapshot::put_sharded_fitness(const dist::ShardedFitness& shards) {
  put_section(SectionId::kShardedFitness, ShardedFitnessAccess::encode(shards));
}

dist::ShardedFitness Snapshot::sharded_fitness(
    std::shared_ptr<const dist::CommBackend> backend) const {
  LRB_OBS_SCOPED_NS("lrb_persist_restore_ns");
  ByteReader r(section(SectionId::kShardedFitness), WireDomain::kSnapshot,
               "lrb-snap/v1 ShardedFitness section");
  dist::ShardedFitness sf = ShardedFitnessAccess::decode(r, std::move(backend));
  if (!r.exhausted()) r.fail("trailing bytes after the ShardedFitness state");
  return sf;
}

void Snapshot::put_dist_cursor(
    const dist::DeterministicDistributedBidder& cursor) {
  ByteWriter w;
  w.u64(cursor.seed());
  w.u64(cursor.next_draw_id());
  put_section(SectionId::kDistCursor, w.take());
}

void Snapshot::put_journal_header(std::uint64_t applied_records) {
  ByteWriter w;
  w.u64(applied_records);
  put_section(SectionId::kJournalHeader, w.take());
}

std::uint64_t Snapshot::journal_header() const {
  ByteReader r(section(SectionId::kJournalHeader), WireDomain::kSnapshot,
               "lrb-snap/v1 journal header");
  const std::uint64_t applied = r.u64("applied record count");
  if (!r.exhausted()) r.fail("trailing bytes after the journal header");
  return applied;
}

dist::DeterministicDistributedBidder Snapshot::dist_cursor() const {
  ByteReader r(section(SectionId::kDistCursor), WireDomain::kSnapshot,
               "lrb-snap/v1 cursor section");
  const std::uint64_t seed = r.u64("cursor seed");
  const std::uint64_t draw = r.u64("cursor draw id");
  if (!r.exhausted()) r.fail("trailing bytes after the cursor state");
  dist::DeterministicDistributedBidder cursor(seed);
  cursor.seek(draw);
  return cursor;
}

}  // namespace lrb::persist
