// POSIX file plumbing for lrb::persist: RAII descriptors, fsync with
// latency accounting, and the atomic-commit idiom snapshots rely on.
//
// Crash-safety contract of atomic_write_file():
//
//   write(path.tmp) -> fsync(path.tmp) -> rename(tmp, path) -> fsync(dir)
//
// rename(2) is atomic on POSIX filesystems, so at every instant `path`
// either does not exist, holds the complete previous snapshot, or holds
// the complete new one — a reader can never observe a half-written file.
// The directory fsync makes the rename itself durable (without it a crash
// can resurrect the old name).  The CI crash job SIGKILLs writers at
// randomized offsets to hold this to account.
//
// Everything throws PersistIoError (with errno text) on failure; nothing
// here interprets the bytes — framing and verification live in
// snapshot.hpp / draw_log.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lrb::persist {

/// A movable RAII file descriptor.
class File {
 public:
  File() = default;
  File(File&& other) noexcept : fd_(other.fd_), path_(std::move(other.path_)) {
    other.fd_ = -1;
  }
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  /// Opens for reading; throws PersistIoError if the file cannot be opened.
  [[nodiscard]] static File open_read(const std::string& path);

  /// Creates (or truncates) for writing.
  [[nodiscard]] static File create_truncate(const std::string& path);

  /// Opens (creating if absent) in append mode — every write lands at the
  /// current end of file, the mode the DrawLog writer requires.
  [[nodiscard]] static File open_append(const std::string& path);

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Writes all of `data` (looping over short writes).
  void write_all(std::span<const std::uint8_t> data);

  /// fsync(2) — blocks until the kernel reports the data durable.  Counted
  /// and latency-tracked (lrb_persist_fsyncs_total / lrb_persist_fsync_ns).
  void sync();

  /// Truncates the file to `size` bytes (torn-tail recovery).
  void truncate(std::uint64_t size);

  [[nodiscard]] std::uint64_t size() const;

  void close();

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// True when `path` exists (any file type).
[[nodiscard]] bool file_exists(const std::string& path);

/// Reads a whole file into memory.  Throws PersistIoError when the file is
/// missing or unreadable.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

/// The atomic-commit idiom: writes `data` to `path + ".tmp"`, fsyncs it,
/// renames over `path`, and fsyncs the parent directory.  After return the
/// bytes are durable under the final name; a crash at any earlier instant
/// leaves the previous contents of `path` (or its absence) intact.
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> data);

}  // namespace lrb::persist
