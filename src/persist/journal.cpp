#include "persist/journal.hpp"

#include <utility>
#include <variant>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace lrb::persist {

WheelJournal::WheelJournal(std::string dir, core::WheelSet ws,
                           DrawLogConfig config, std::uint64_t records)
    : dir_(std::move(dir)),
      ws_(std::move(ws)),
      log_(log_path(dir_), config),
      records_(records) {}

WheelJournal WheelJournal::create(const std::string& dir, core::WheelSet ws,
                                  DrawLogConfig config) {
  // Truncate the log BEFORE committing the snapshot: a crash between the
  // two leaves an empty log and the previous snapshot — a stale but
  // consistent journal, never a fresh snapshot over stale records.
  {
    File f = File::create_truncate(log_path(dir));
    f.sync();
  }
  WheelJournal j(dir, std::move(ws), config, 0);
  j.commit_snapshot();
  return j;
}

ResumedWheelJournal WheelJournal::resume(const std::string& dir,
                                         DrawLogConfig config) {
  const std::uint64_t dropped = recover_truncate(log_path(dir));
  const Snapshot snap = Snapshot::read(snapshot_path(dir));
  core::WheelSet ws = snap.wheel_set();
  const std::uint64_t applied =
      snap.has(SectionId::kJournalHeader) ? snap.journal_header() : 0;

  const DrawLogReadResult log = read_draw_log(log_path(dir));
  if (applied > log.records.size()) {
    throw CorruptSnapshotError(
        "journal resume: snapshot claims " + std::to_string(applied) +
        " applied records but the log holds only " +
        std::to_string(log.records.size()));
  }

  std::vector<std::uint64_t> winners;
  for (std::size_t i = 0; i < log.records.size(); ++i) {
    const Record& record = log.records[i];
    const bool apply = i >= applied;
    if (const auto* up = std::get_if<WheelUpdateRecord>(&record)) {
      if (apply) ws.update(up->wheel, up->item, up->value);
    } else if (const auto* draw = std::get_if<WheelDrawRecord>(&record)) {
      if (apply) {
        // The winners are already committed in the log; only the cursor
        // state needs to catch up — seek past the logged draws (replaying
        // them would produce the identical winners, by determinism, at
        // O(k) per draw instead of O(1)).
        ws.seek(draw->wheel,
                ws.cursor(draw->wheel) + draw->winners.size());
      }
      winners.insert(winners.end(), draw->winners.begin(),
                     draw->winners.end());
    } else if (std::holds_alternative<CheckpointRecord>(record)) {
      // Marker only.
    } else {
      throw CorruptLogError(
          "journal resume: the log contains a distributed record but the "
          "journal holds WheelSet state — these files are not a pair");
    }
  }

  ResumedWheelJournal out{
      WheelJournal(dir, std::move(ws), config, log.records.size()),
      std::move(winners), dropped > 0, dropped};
  return out;
}

void WheelJournal::update(std::size_t wheel, std::size_t item, double value) {
  ws_.update(wheel, item, value);
  log_.append(WheelUpdateRecord{wheel, item, value});
  ++records_;
}

std::vector<std::uint64_t> WheelJournal::draw(std::size_t wheel,
                                              std::size_t draws) {
  const core::WheelSet::DrawRequest req{wheel, draws};
  const std::vector<std::size_t> got = ws_.draw_batch({&req, 1});
  WheelDrawRecord record;
  record.wheel = wheel;
  record.winners.assign(got.begin(), got.end());
  log_.append(record);
  ++records_;
  return std::move(record.winners);
}

void WheelJournal::sync() { log_.sync(); }

void WheelJournal::checkpoint() {
  // Order matters: every record the snapshot will claim as applied must be
  // durable before the snapshot commits (else a crash could leave a
  // snapshot referencing records the log never got).
  log_.append(CheckpointRecord{records_});
  ++records_;
  log_.sync();
  commit_snapshot();
}

void WheelJournal::commit_snapshot() {
  Snapshot snap;
  snap.put_wheel_set(ws_);
  snap.put_journal_header(records_);
  snap.write(snapshot_path(dir_));
}

}  // namespace lrb::persist
