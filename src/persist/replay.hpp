// The replay engine: re-execute a snapshot + draw log and diff every
// logged winner against the re-derived one — any production incident
// becomes an offline bit-exact repro.
//
// Because every draw in this library is a pure function of (seed, draw id,
// fitness) — counter-based Philox bids, no hidden RNG state — replay needs
// no recorded entropy: restore the snapshot, re-apply each update/reshard,
// RE-RUN each draw record, and the winners must match the log byte for
// byte, on any machine, any SIMD dispatch target, and any rank count.  The
// CI replay-determinism leg runs the same recorded incident under
// LRB_SIMD=scalar and LRB_SIMD=avx2 and requires both to diff clean.
//
// A mismatch therefore isolates real trouble: either the log/snapshot pair
// was corrupted in a way CRC cannot see (wrong file pairing), or the
// machine computed something different from the recording machine —
// exactly the needle an incident audit is looking for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "persist/draw_log.hpp"
#include "persist/snapshot.hpp"

namespace lrb::persist {

/// One winner disagreement between the log and the re-execution.
struct ReplayMismatch {
  std::uint64_t draw_ordinal = 0;  ///< position in the replayed draw stream
  std::uint64_t logged = 0;
  std::uint64_t replayed = 0;
};

struct ReplayReport {
  std::uint64_t records = 0;
  std::uint64_t draws = 0;
  std::uint64_t updates = 0;
  std::uint64_t reshards = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t mismatches = 0;
  /// The first disagreements, capped (a systematically wrong stream would
  /// otherwise balloon the report).
  std::vector<ReplayMismatch> first_mismatches;
  bool torn_tail = false;          ///< the log ended in a torn frame
  std::uint64_t dropped_bytes = 0; ///< bytes past the last valid frame

  [[nodiscard]] bool clean() const noexcept { return mismatches == 0; }
};

/// Restores `snapshot_path`, re-executes every valid record of `log_path`
/// against it (tolerating a torn tail, which is reported, not fatal), and
/// returns the diff.  The snapshot's sections pick the mode: a kWheelSet
/// section replays WheelSet records, a kShardedFitness + kDistCursor pair
/// replays distributed records; a log record of the wrong family throws
/// CorruptLogError (the files are not a pair).
/// Instrumented: lrb_persist_replays_total, lrb_persist_replay_mismatches_total.
[[nodiscard]] ReplayReport replay(const std::string& snapshot_path,
                                  const std::string& log_path);

}  // namespace lrb::persist
