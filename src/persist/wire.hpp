// The byte-level wire format shared by snapshots and draw logs: explicit
// little-endian integers, doubles as IEEE-754 bit patterns, every read
// bounds-checked.
//
// Two rules make the persist layer safe to point at arbitrary bytes:
//
//   * Nothing is ever memcpy'd into a struct — every field is assembled
//     byte by byte, so layout, padding, and endianness are pinned by this
//     file, not by the compiler, and no read is ever misaligned (the
//     ASan/UBSan corruption-fuzz tests exercise every truncation offset).
//   * A ByteReader knows which domain it is deserializing for (snapshot or
//     draw log) and throws that domain's typed corruption error on any
//     overrun — a short buffer can surface only as CorruptSnapshotError /
//     CorruptLogError, never as UB.
//
// Doubles round-trip through std::bit_cast to uint64: bit-exact for every
// value including -0.0, subnormals, and NaN payloads — value-level
// serialization would quietly canonicalize exactly the Kahan compensation
// words the restore contract needs verbatim.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace lrb::persist {

/// Appends fixed-width fields to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Which typed corruption error a ByteReader overrun surfaces as.
enum class WireDomain { kSnapshot, kLog };

/// Bounds-checked sequential reads over a borrowed byte span.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> data, WireDomain domain,
             std::string context)
      : data_(data), domain_(domain), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t u8(const char* field) {
    need(1, field);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint32_t u32(const char* field) {
    need(4, field);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64(const char* field) {
    need(8, field);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] double f64(const char* field) {
    return std::bit_cast<double>(u64(field));
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t len,
                                                    const char* field) {
    need(len, field);
    const auto out = data_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// True when every byte has been consumed — decoders call this to reject
  /// payloads with trailing garbage.
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

  /// Throws this reader's domain error — decoders use it for semantic
  /// failures (bad magic, impossible counts) so every corruption path
  /// funnels through one typed surface.
  [[noreturn]] void fail(const std::string& why) const {
    const std::string what =
        context_ + ": " + why + " (offset " + std::to_string(pos_) + " of " +
        std::to_string(data_.size()) + " bytes)";
    if (domain_ == WireDomain::kSnapshot) throw CorruptSnapshotError(what);
    throw CorruptLogError(what);
  }

 private:
  void need(std::size_t n, const char* field) const {
    if (remaining() < n) [[unlikely]] {
      fail(std::string("truncated while reading ") + field);
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  WireDomain domain_;
  std::string context_;
};

}  // namespace lrb::persist
