// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum framing every
// byte lrb::persist puts on disk.
//
// Why CRC32C and not a hash: the threat model is torn writes and bitrot,
// not adversaries.  CRC32C detects all single-bit errors, all burst errors
// up to 32 bits, and any other corruption with probability 1 - 2^-32 per
// frame — exactly the guarantee leveldb/rocksdb ship their WALs with — and
// the slice-by-8 table implementation below needs no hardware support and
// no dependencies, which this repo cannot add.
//
// The tables are built once at namespace-scope initialization (~8 KiB);
// crc32c() itself is allocation-free and safe to call from any thread.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace lrb::persist {

namespace detail {

inline constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;  // reflected

struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Crc32cTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32cPoly : 0u);
      }
      t[0][i] = crc;
    }
    // Slice-by-8 extension tables: t[k][b] continues a CRC whose next k
    // bytes are zero after byte b — lets the hot loop fold 8 bytes per
    // iteration with table lookups only.
    for (std::uint32_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

inline constexpr Crc32cTables kCrc32cTables{};

}  // namespace detail

/// CRC32C of `len` bytes, with the conventional pre/post inversion (the
/// CRC of the empty string is 0).
[[nodiscard]] inline std::uint32_t crc32c(const void* data,
                                          std::size_t len) noexcept {
  const auto& t = detail::kCrc32cTables.t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~std::uint32_t{0};
  while (len >= 8) {
    // Byte-wise loads keep this alignment-agnostic (and UBSan-clean).
    const std::uint32_t lo = crc ^ (std::uint32_t{p[0]} |
                                    std::uint32_t{p[1]} << 8 |
                                    std::uint32_t{p[2]} << 16 |
                                    std::uint32_t{p[3]} << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace lrb::persist
