#include "aco/vertex_coloring.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/baselines.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/seed.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::aco {

std::vector<int> greedy_color_in_order(const Graph& graph,
                                       const std::vector<std::size_t>& order) {
  const std::size_t n = graph.num_vertices();
  LRB_REQUIRE(order.size() == n, InvalidArgumentError,
              "greedy_color_in_order: order must cover every vertex");
  std::vector<int> colors(n, -1);
  std::vector<char> used;  // scratch: colors used by neighbors
  for (std::size_t v : order) {
    LRB_REQUIRE(v < n && colors[v] == -1, InvalidArgumentError,
                "greedy_color_in_order: order is not a permutation");
    used.assign(graph.degree(v) + 1, 0);
    for (std::size_t u : graph.neighbors(v)) {
      const int c = colors[u];
      if (c >= 0 && static_cast<std::size_t>(c) < used.size()) used[c] = 1;
    }
    int c = 0;
    while (used[c]) ++c;  // always terminates: used has degree+1 slots
    colors[v] = c;
  }
  return colors;
}

namespace {

template <typename G>
std::size_t pick(SelectionRule rule, std::span<const double> fitness, G& gen) {
  switch (rule) {
    case SelectionRule::kBidding:
      return lrb::core::select_bidding(fitness, gen);
    case SelectionRule::kCdf:
      return lrb::core::select_linear_cdf(fitness, gen);
    case SelectionRule::kIndependent:
      return lrb::core::select_independent(fitness, gen);
    case SelectionRule::kGreedy: {
      std::size_t best = 0;
      double best_f = -1.0;
      for (std::size_t i = 0; i < fitness.size(); ++i) {
        if (fitness[i] > best_f) {
          best_f = fitness[i];
          best = i;
        }
      }
      return best;
    }
  }
  throw InvalidArgumentError("pick: unknown rule");
}

}  // namespace

ColoringResult color_graph(const Graph& graph, const ColoringParams& params,
                           std::uint64_t seed) {
  const std::size_t n = graph.num_vertices();
  rng::SeedSequence seeds(seed);

  ColoringResult result;
  result.num_colors = static_cast<int>(n) + 1;  // sentinel: any coloring beats it
  result.history.reserve(params.iterations);

  std::vector<double> fitness(n);
  std::vector<int> saturation(n);
  std::vector<std::vector<char>> neighbor_colors(n);

  for (std::size_t iter = 0; iter < params.iterations; ++iter) {
    const rng::SeedSequence iter_seeds = seeds.subsequence(iter);
    for (std::size_t ant = 0; ant < params.num_ants; ++ant) {
      rng::Xoshiro256StarStar gen(iter_seeds.child(ant));

      // Build an order by roulette over saturation/degree fitness.
      std::vector<std::size_t> order;
      order.reserve(n);
      std::vector<int> colors(n, -1);
      std::fill(saturation.begin(), saturation.end(), 0);
      for (std::size_t v = 0; v < n; ++v) {
        neighbor_colors[v].assign(graph.degree(v) + 2, 0);
      }

      for (std::size_t step = 0; step < n; ++step) {
        double total = 0.0;
        for (std::size_t v = 0; v < n; ++v) {
          if (colors[v] >= 0) {
            fitness[v] = 0.0;  // already colored: out of the race
            continue;
          }
          const double sat = static_cast<double>(saturation[v]) + 1.0;
          fitness[v] =
              std::pow(sat, params.saturation_bias) +
              params.degree_weight * static_cast<double>(graph.degree(v)) /
                  static_cast<double>(n);
          total += fitness[v];
        }
        std::size_t v;
        if (total <= 0.0) {
          // All remaining fitness underflowed (cannot happen with the +1
          // saturation floor, but stay defensive): first uncolored vertex.
          v = 0;
          while (colors[v] >= 0) ++v;
        } else {
          v = pick(params.rule, fitness, gen);
          ++result.selections;
        }
        LRB_ASSERT(colors[v] == -1, "selection must pick an uncolored vertex");

        // Greedy-assign the smallest feasible color.
        auto& used = neighbor_colors[v];
        int c = 0;
        while (static_cast<std::size_t>(c) < used.size() && used[c]) ++c;
        colors[v] = c;
        order.push_back(v);

        // Update neighbor saturation.
        for (std::size_t u : graph.neighbors(v)) {
          if (colors[u] >= 0) continue;
          auto& uc = neighbor_colors[u];
          if (static_cast<std::size_t>(c) < uc.size() && !uc[c]) {
            uc[c] = 1;
            ++saturation[u];
          }
        }
      }

      LRB_ASSERT(graph.is_proper_coloring(colors),
                 "constructed coloring must be proper");
      const int num_colors =
          1 + *std::max_element(colors.begin(), colors.end());
      if (num_colors < result.num_colors) {
        result.num_colors = num_colors;
        result.colors = colors;
      }
    }
    result.history.push_back(result.num_colors);
  }
  return result;
}

}  // namespace lrb::aco
