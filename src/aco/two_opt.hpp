// 2-opt local search for TSP tours.
//
// The GPU-ACO systems the paper cites pair ant construction with local
// search; lrb ships the standard first-improvement 2-opt so the ACO
// examples/benches can report locally-optimized tour quality.
#pragma once

#include <cstdint>
#include <vector>

#include "aco/tsp.hpp"

namespace lrb::aco {

struct TwoOptResult {
  std::vector<std::size_t> tour;
  double length = 0.0;
  std::uint64_t improvements = 0;  ///< accepted exchanges
  std::uint64_t passes = 0;        ///< full sweeps until local optimum
};

/// Improves `tour` to 2-opt local optimality (first-improvement sweeps).
/// `max_passes` bounds the work; 0 means run to convergence.
[[nodiscard]] TwoOptResult two_opt(const TspInstance& instance,
                                   std::vector<std::size_t> tour,
                                   std::uint64_t max_passes = 0);

/// Single 2-opt pass (exposed for tests): returns the number of accepted
/// exchanges.
std::uint64_t two_opt_pass(const TspInstance& instance,
                           std::vector<std::size_t>& tour);

}  // namespace lrb::aco
