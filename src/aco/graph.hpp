// Undirected graphs for the vertex-coloring application (paper ref [4]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lrb::aco {

class Graph {
 public:
  explicit Graph(std::size_t num_vertices);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds an undirected edge (a != b); duplicate edges are ignored.
  void add_edge(std::size_t a, std::size_t b);

  [[nodiscard]] bool has_edge(std::size_t a, std::size_t b) const;
  [[nodiscard]] std::span<const std::size_t> neighbors(std::size_t v) const;
  [[nodiscard]] std::size_t degree(std::size_t v) const;
  [[nodiscard]] std::size_t max_degree() const;

  /// True iff `colors` (size n, values >= 0) assigns different colors to
  /// every edge's endpoints.
  [[nodiscard]] bool is_proper_coloring(std::span<const int> colors) const;

 private:
  std::vector<std::vector<std::size_t>> adj_;
  std::size_t num_edges_ = 0;
};

/// Erdos–Renyi G(n, p).
[[nodiscard]] Graph random_gnp(std::size_t n, double p, std::uint64_t seed);

/// Complete graph K_n (chromatic number n).
[[nodiscard]] Graph complete_graph(std::size_t n);

/// Cycle C_n (chromatic number 2 for even n, 3 for odd n >= 3).
[[nodiscard]] Graph cycle_graph(std::size_t n);

/// k-partite "crown"-ish graph with known chromatic number k: n vertices in
/// k groups, edges between every pair in different groups.
[[nodiscard]] Graph complete_multipartite(std::size_t groups,
                                          std::size_t group_size);

}  // namespace lrb::aco
