#include "aco/two_opt.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lrb::aco {

std::uint64_t two_opt_pass(const TspInstance& instance,
                           std::vector<std::size_t>& tour) {
  const std::size_t n = tour.size();
  std::uint64_t accepted = 0;
  // Consider reversing tour[i..j]; the closed-tour delta only involves the
  // four edge endpoints.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (i == 0 && j == n - 1) continue;  // full reversal: same tour
      const std::size_t a = tour[(i + n - 1) % n];
      const std::size_t b = tour[i];
      const std::size_t c = tour[j];
      const std::size_t d = tour[(j + 1) % n];
      const double removed = instance.distance(a, b) + instance.distance(c, d);
      const double added = instance.distance(a, c) + instance.distance(b, d);
      if (added < removed - 1e-12) {
        std::reverse(tour.begin() + static_cast<std::ptrdiff_t>(i),
                     tour.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        ++accepted;
      }
    }
  }
  return accepted;
}

TwoOptResult two_opt(const TspInstance& instance, std::vector<std::size_t> tour,
                     std::uint64_t max_passes) {
  // Validates the permutation up front (throws on malformed tours).
  (void)instance.tour_length(tour);
  TwoOptResult result;
  while (true) {
    const std::uint64_t accepted = two_opt_pass(instance, tour);
    ++result.passes;
    result.improvements += accepted;
    if (accepted == 0) break;
    if (max_passes != 0 && result.passes >= max_passes) break;
  }
  result.length = instance.tour_length(tour);
  result.tour = std::move(tour);
  return result;
}

}  // namespace lrb::aco
