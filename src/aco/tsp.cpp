#include "aco/tsp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::aco {

TspInstance::TspInstance(std::vector<Point> cities)
    : cities_(std::move(cities)) {
  LRB_REQUIRE(cities_.size() >= 2, InvalidArgumentError,
              "TspInstance needs at least two cities");
  const std::size_t n = cities_.size();
  dist_.resize(n * n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double dx = cities_[a].x - cities_[b].x;
      const double dy = cities_[a].y - cities_[b].y;
      const double d = std::sqrt(dx * dx + dy * dy);
      dist_[a * n + b] = d;
      dist_[b * n + a] = d;
    }
  }
}

double TspInstance::tour_length(std::span<const std::size_t> tour) const {
  const std::size_t n = cities_.size();
  LRB_REQUIRE(tour.size() == n, InvalidArgumentError,
              "tour_length: tour must visit every city exactly once");
  std::vector<bool> seen(n, false);
  for (std::size_t c : tour) {
    LRB_REQUIRE(c < n, InvalidArgumentError, "tour_length: city out of range");
    LRB_REQUIRE(!seen[c], InvalidArgumentError, "tour_length: repeated city");
    seen[c] = true;
  }
  double len = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    len += distance(tour[i], tour[(i + 1) % n]);
  }
  return len;
}

std::vector<std::size_t> TspInstance::nearest_neighbor_tour(
    std::size_t start) const {
  const std::size_t n = cities_.size();
  LRB_REQUIRE(start < n, InvalidArgumentError,
              "nearest_neighbor_tour: start out of range");
  std::vector<std::size_t> tour;
  tour.reserve(n);
  std::vector<bool> visited(n, false);
  std::size_t current = start;
  tour.push_back(current);
  visited[current] = true;
  for (std::size_t step = 1; step < n; ++step) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t next = n;
    for (std::size_t c = 0; c < n; ++c) {
      if (!visited[c] && distance(current, c) < best) {
        best = distance(current, c);
        next = c;
      }
    }
    tour.push_back(next);
    visited[next] = true;
    current = next;
  }
  return tour;
}

TspInstance random_euclidean_instance(std::size_t n, std::uint64_t seed,
                                      double box) {
  LRB_REQUIRE(n >= 2, InvalidArgumentError,
              "random_euclidean_instance: n >= 2 required");
  LRB_REQUIRE(box > 0.0, InvalidArgumentError,
              "random_euclidean_instance: box must be positive");
  rng::Xoshiro256StarStar gen(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p.x = rng::u01_closed_open(gen) * box;
    p.y = rng::u01_closed_open(gen) * box;
  }
  return TspInstance(std::move(pts));
}

TspInstance circle_instance(std::size_t n, double radius) {
  LRB_REQUIRE(n >= 3, InvalidArgumentError, "circle_instance: n >= 3 required");
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    pts[i] = {radius * std::cos(theta), radius * std::sin(theta)};
  }
  return TspInstance(std::move(pts));
}

double circle_optimal_length(std::size_t n, double radius) {
  constexpr double kPi = 3.1415926535897932384626433832795;
  return 2.0 * static_cast<double>(n) * radius *
         std::sin(kPi / static_cast<double>(n));
}

TspInstance grid_instance(std::size_t width, std::size_t height, double spacing) {
  LRB_REQUIRE(width * height >= 2, InvalidArgumentError,
              "grid_instance: need at least two points");
  std::vector<Point> pts;
  pts.reserve(width * height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      pts.push_back({static_cast<double>(x) * spacing,
                     static_cast<double>(y) * spacing});
    }
  }
  return TspInstance(std::move(pts));
}

}  // namespace lrb::aco
