#include "aco/ant_system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/baselines.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/seed.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::aco {

std::string_view to_string(SelectionRule rule) noexcept {
  switch (rule) {
    case SelectionRule::kBidding: return "bidding";
    case SelectionRule::kCdf: return "cdf";
    case SelectionRule::kIndependent: return "independent";
    case SelectionRule::kGreedy: return "greedy";
  }
  return "unknown";
}

SelectionRule parse_selection_rule(std::string_view name) {
  if (name == "bidding") return SelectionRule::kBidding;
  if (name == "cdf" || name == "prefix_sum" || name == "roulette")
    return SelectionRule::kCdf;
  if (name == "independent") return SelectionRule::kIndependent;
  if (name == "greedy") return SelectionRule::kGreedy;
  throw InvalidArgumentError("unknown selection rule '" + std::string(name) +
                             "' (expected bidding|cdf|independent|greedy)");
}

AntSystem::AntSystem(const TspInstance& instance, AntSystemParams params)
    : instance_(instance), params_(params) {
  LRB_REQUIRE(params_.num_ants > 0, InvalidArgumentError,
              "AntSystem: num_ants must be positive");
  LRB_REQUIRE(params_.rho > 0.0 && params_.rho <= 1.0, InvalidArgumentError,
              "AntSystem: rho must be in (0, 1]");
  LRB_REQUIRE(params_.alpha >= 0.0 && params_.beta >= 0.0, InvalidArgumentError,
              "AntSystem: alpha and beta must be non-negative");
  const std::size_t n = instance_.size();

  // Pheromone initialized from the nearest-neighbour tour scale, the
  // standard AS/MMAS recipe: tau_0 = num_ants / L_nn.
  const double l_nn = instance_.tour_length(instance_.nearest_neighbor_tour(0));
  const double tau0 = static_cast<double>(params_.num_ants) / l_nn;
  pheromone_.assign(n * n, tau0);

  heuristic_.assign(n * n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      // Guard zero distances (coincident cities): clamp to a small epsilon.
      const double d = std::max(instance_.distance(a, b), 1e-9);
      heuristic_[a * n + b] = std::pow(1.0 / d, params_.beta);
    }
  }
}

namespace {

/// One construction-step selection over the desirability row.  `fitness`
/// has zeros at visited cities; returns the chosen city.
template <typename G>
std::size_t select_next_city(SelectionRule rule,
                             std::span<const double> fitness, G& gen) {
  switch (rule) {
    case SelectionRule::kBidding:
      return core::select_bidding(fitness, gen);
    case SelectionRule::kCdf:
      return core::select_linear_cdf(fitness, gen);
    case SelectionRule::kIndependent:
      return core::select_independent(fitness, gen);
    case SelectionRule::kGreedy: {
      std::size_t best = 0;
      double best_f = -1.0;
      for (std::size_t i = 0; i < fitness.size(); ++i) {
        if (fitness[i] > best_f) {
          best_f = fitness[i];
          best = i;
        }
      }
      return best;
    }
  }
  throw InvalidArgumentError("select_next_city: unknown rule");
}

}  // namespace

std::vector<std::size_t> AntSystem::construct_tour(std::size_t start,
                                                   std::uint64_t seed) {
  const std::size_t n = instance_.size();
  LRB_REQUIRE(start < n, InvalidArgumentError,
              "construct_tour: start out of range");
  rng::Xoshiro256StarStar gen(seed);

  std::vector<std::size_t> tour;
  tour.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<double> fitness(n, 0.0);

  std::size_t current = start;
  tour.push_back(current);
  visited[current] = true;

  for (std::size_t step = 1; step < n; ++step) {
    // Desirability of every unvisited city; visited cities keep fitness 0 —
    // this is precisely the "many zero fitness values" regime the paper
    // highlights for O(log k) bidding.
    double total = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (visited[c]) {
        fitness[c] = 0.0;
        continue;
      }
      const double tau = pheromone_[current * n + c];
      const double f =
          (params_.alpha == 1.0 ? tau : std::pow(tau, params_.alpha)) *
          heuristic_[current * n + c];
      fitness[c] = f;
      total += f;
    }
    std::size_t next;
    if (total <= 0.0) {
      // Pheromone underflow corner: fall back to the nearest unvisited city.
      next = n;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < n; ++c) {
        if (!visited[c] && instance_.distance(current, c) < best) {
          best = instance_.distance(current, c);
          next = c;
        }
      }
    } else {
      next = select_next_city(params_.rule, fitness, gen);
    }
    LRB_ASSERT(next < n && !visited[next], "selection must pick an unvisited city");
    tour.push_back(next);
    visited[next] = true;
    current = next;
  }
  return tour;
}

void AntSystem::evaporate() {
  for (double& tau : pheromone_) tau *= (1.0 - params_.rho);
}

void AntSystem::deposit(std::span<const std::size_t> tour, double amount) {
  const std::size_t n = instance_.size();
  for (std::size_t i = 0; i < tour.size(); ++i) {
    const std::size_t a = tour[i];
    const std::size_t b = tour[(i + 1) % tour.size()];
    pheromone_[a * n + b] += amount;
    pheromone_[b * n + a] += amount;
  }
}

void AntSystem::clamp_pheromone(double tau_min, double tau_max) {
  for (double& tau : pheromone_) tau = std::clamp(tau, tau_min, tau_max);
}

AntSystemResult AntSystem::run(std::uint64_t seed) {
  const std::size_t n = instance_.size();
  rng::SeedSequence seeds(seed);

  AntSystemResult result;
  result.best_length = std::numeric_limits<double>::infinity();
  result.history.reserve(params_.iterations);

  for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
    const rng::SeedSequence iter_seeds = seeds.subsequence(iter);
    std::vector<std::size_t> iter_best_tour;
    double iter_best = std::numeric_limits<double>::infinity();

    std::vector<std::vector<std::size_t>> tours;
    tours.reserve(params_.num_ants);
    for (std::size_t ant = 0; ant < params_.num_ants; ++ant) {
      const std::size_t start = ant % n;
      auto tour = construct_tour(start, iter_seeds.child(ant));
      result.selections += n - 1;
      const double len = instance_.tour_length(tour);
      if (len < iter_best) {
        iter_best = len;
        iter_best_tour = tour;
      }
      tours.push_back(std::move(tour));
    }

    evaporate();
    if (params_.variant == AcoVariant::kAntSystem) {
      for (const auto& tour : tours) {
        deposit(tour, params_.q / instance_.tour_length(tour));
      }
    } else {
      // MMAS: only the iteration best deposits; clamp to [tau_min, tau_max].
      deposit(iter_best_tour, 1.0 / iter_best);
      const double tau_max = 1.0 / (params_.rho * iter_best);
      const double tau_min = tau_max / params_.mmas_ratio;
      clamp_pheromone(tau_min, tau_max);
    }

    if (iter_best < result.best_length) {
      result.best_length = iter_best;
      result.best_tour = iter_best_tour;
    }
    result.history.push_back(iter_best);
  }
  return result;
}

}  // namespace lrb::aco
