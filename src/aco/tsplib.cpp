#include "aco/tsplib.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace lrb::aco {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return s;
}

/// Splits "KEY : value" / "KEY: value" headers; returns false for
/// section markers like NODE_COORD_SECTION.
bool split_header(const std::string& line, std::string& key,
                  std::string& value) {
  const auto colon = line.find(':');
  if (colon == std::string::npos) return false;
  key = upper(trim(line.substr(0, colon)));
  value = trim(line.substr(colon + 1));
  return true;
}

}  // namespace

TspInstance read_tsplib(std::istream& in) {
  std::size_t dimension = 0;
  bool euc2d = false;
  std::string line;
  // Header.
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty()) continue;
    const std::string u = upper(t);
    if (u == "NODE_COORD_SECTION") break;
    if (u == "EOF") {
      throw InvalidArgumentError("read_tsplib: EOF before NODE_COORD_SECTION");
    }
    std::string key, value;
    if (!split_header(t, key, value)) {
      throw InvalidArgumentError("read_tsplib: unrecognized line '" + t + "'");
    }
    if (key == "DIMENSION") {
      dimension = static_cast<std::size_t>(std::stoull(value));
    } else if (key == "EDGE_WEIGHT_TYPE") {
      if (upper(value) != "EUC_2D") {
        throw InvalidArgumentError(
            "read_tsplib: unsupported EDGE_WEIGHT_TYPE '" + value +
            "' (only EUC_2D)");
      }
      euc2d = true;
    } else if (key == "TYPE") {
      if (upper(value) != "TSP") {
        throw InvalidArgumentError("read_tsplib: unsupported TYPE '" + value +
                                   "' (only TSP)");
      }
    } else if (key == "NAME" || key == "COMMENT") {
      // informational
    } else {
      throw InvalidArgumentError("read_tsplib: unsupported header '" + key + "'");
    }
  }
  LRB_REQUIRE(dimension >= 2, InvalidArgumentError,
              "read_tsplib: DIMENSION missing or < 2");
  LRB_REQUIRE(euc2d, InvalidArgumentError,
              "read_tsplib: EDGE_WEIGHT_TYPE: EUC_2D required");

  std::vector<Point> pts(dimension);
  std::vector<bool> seen(dimension, false);
  for (std::size_t i = 0; i < dimension; ++i) {
    if (!std::getline(in, line)) {
      throw InvalidArgumentError("read_tsplib: truncated NODE_COORD_SECTION");
    }
    std::istringstream row(trim(line));
    std::size_t id = 0;
    double x = 0, y = 0;
    if (!(row >> id >> x >> y)) {
      throw InvalidArgumentError("read_tsplib: malformed coord line '" + line +
                                 "'");
    }
    LRB_REQUIRE(id >= 1 && id <= dimension, InvalidArgumentError,
                "read_tsplib: node id out of range");
    LRB_REQUIRE(!seen[id - 1], InvalidArgumentError,
                "read_tsplib: duplicate node id");
    seen[id - 1] = true;
    pts[id - 1] = Point{x, y};
  }
  return TspInstance(std::move(pts));
}

TspInstance read_tsplib_file(const std::string& path) {
  std::ifstream in(path);
  LRB_REQUIRE(in.good(), InvalidArgumentError,
              "read_tsplib_file: cannot open '" + path + "'");
  return read_tsplib(in);
}

void write_tsplib(std::ostream& out, const TspInstance& instance,
                  const std::string& name, const std::string& comment) {
  out << "NAME : " << name << '\n';
  out << "COMMENT : " << comment << '\n';
  out << "TYPE : TSP\n";
  out << "DIMENSION : " << instance.size() << '\n';
  out << "EDGE_WEIGHT_TYPE : EUC_2D\n";
  out << "NODE_COORD_SECTION\n";
  out.precision(12);
  for (std::size_t i = 0; i < instance.size(); ++i) {
    out << (i + 1) << ' ' << instance.cities()[i].x << ' '
        << instance.cities()[i].y << '\n';
  }
  out << "EOF\n";
}

void write_tsplib_file(const std::string& path, const TspInstance& instance,
                       const std::string& name, const std::string& comment) {
  std::ofstream out(path);
  LRB_REQUIRE(out.good(), InvalidArgumentError,
              "write_tsplib_file: cannot open '" + path + "'");
  write_tsplib(out, instance, name, comment);
}

}  // namespace lrb::aco
