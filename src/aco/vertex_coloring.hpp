// Roulette-driven vertex coloring (paper ref [4]: ACO for vertex coloring).
//
// Each "ant" builds a vertex ordering by repeated roulette selection with
// dynamic fitness (saturation-degree based; colored vertices drop to fitness
// zero — the shrinking-k regime again) and greedy-colors along it.  The best
// coloring over ants x iterations is kept.  Like tour construction, the
// quality of the result depends on the selection rule being *exactly*
// fitness-proportionate; the biased independent roulette over-focuses on
// high-saturation vertices and measurably hurts color counts on structured
// graphs (bench/bench_vertex_coloring).
#pragma once

#include <cstdint>
#include <vector>

#include "aco/ant_system.hpp"  // SelectionRule
#include "aco/graph.hpp"

namespace lrb::aco {

struct ColoringParams {
  std::size_t num_ants = 16;
  std::size_t iterations = 20;
  SelectionRule rule = SelectionRule::kBidding;
  /// Fitness of an uncolored vertex = (saturation + 1)^bias + degree_weight
  /// * degree / n.
  double saturation_bias = 2.0;
  double degree_weight = 1.0;
};

struct ColoringResult {
  std::vector<int> colors;      ///< per-vertex color, 0-based
  int num_colors = 0;           ///< colors used by the best coloring
  std::vector<int> history;     ///< best color count after each iteration
  std::uint64_t selections = 0; ///< total roulette selections performed
};

/// Runs the heuristic; deterministic in `seed`.  The returned coloring is
/// always proper (asserted internally).
[[nodiscard]] ColoringResult color_graph(const Graph& graph,
                                         const ColoringParams& params,
                                         std::uint64_t seed);

/// Single greedy pass in the given vertex order (exposed for tests).
[[nodiscard]] std::vector<int> greedy_color_in_order(
    const Graph& graph, const std::vector<std::size_t>& order);

}  // namespace lrb::aco
