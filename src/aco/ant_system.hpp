// Ant System / MAX-MIN Ant System for the TSP with a pluggable roulette rule.
//
// This is the end-to-end demonstration of the paper's point: tour
// construction repeatedly performs roulette wheel selection over the
// desirabilities of *unvisited* cities (visited ones have fitness zero).
// Swapping the selection rule between the exact algorithms (bidding,
// prefix-sum/CDF) and the biased independent roulette changes the search
// distribution and, measurably, solution quality (bench/bench_aco_tsp).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "aco/tsp.hpp"

namespace lrb::aco {

/// Which roulette rule ants use during tour construction.
enum class SelectionRule {
  kBidding,      ///< logarithmic random bidding (exact; paper)
  kCdf,          ///< inverse CDF over the candidate row (exact; classic)
  kIndependent,  ///< independent roulette (biased; Cecilia et al.)
  kGreedy,       ///< argmax desirability (no randomness; degenerate control)
};

[[nodiscard]] std::string_view to_string(SelectionRule rule) noexcept;
[[nodiscard]] SelectionRule parse_selection_rule(std::string_view name);

/// ACO variant.
enum class AcoVariant {
  kAntSystem,  ///< all ants deposit, classic Dorigo AS
  kMaxMin,     ///< only iteration-best deposits; pheromone clamped (MMAS)
};

struct AntSystemParams {
  std::size_t num_ants = 32;
  std::size_t iterations = 100;
  double alpha = 1.0;  ///< pheromone exponent
  double beta = 3.0;   ///< heuristic (1/distance) exponent
  double rho = 0.5;    ///< evaporation rate in (0,1]
  double q = 100.0;    ///< deposit scale (AS)
  AcoVariant variant = AcoVariant::kAntSystem;
  SelectionRule rule = SelectionRule::kBidding;
  /// MMAS pheromone bounds are derived each iteration from the best length;
  /// this is the tau_max/tau_min ratio denominator (Stuetzle's 2n default
  /// approximated by a constant).
  double mmas_ratio = 50.0;
};

struct AntSystemResult {
  std::vector<std::size_t> best_tour;
  double best_length = 0.0;
  /// Iteration-best length per iteration (convergence curve for the bench).
  std::vector<double> history;
  /// Total roulette selections performed (workload size for throughput).
  std::uint64_t selections = 0;
};

class AntSystem {
 public:
  AntSystem(const TspInstance& instance, AntSystemParams params);

  /// Runs the configured number of iterations; deterministic in `seed`.
  [[nodiscard]] AntSystemResult run(std::uint64_t seed);

  /// Exposed for tests: one ant's tour construction from `start` with the
  /// current pheromone state.
  [[nodiscard]] std::vector<std::size_t> construct_tour(std::size_t start,
                                                        std::uint64_t seed);

  [[nodiscard]] const std::vector<double>& pheromone() const noexcept {
    return pheromone_;
  }

 private:
  void evaporate();
  void deposit(std::span<const std::size_t> tour, double amount);
  void clamp_pheromone(double tau_min, double tau_max);

  const TspInstance& instance_;
  AntSystemParams params_;
  std::vector<double> pheromone_;   // n*n, symmetric
  std::vector<double> heuristic_;   // (1/d)^beta, precomputed
};

}  // namespace lrb::aco
