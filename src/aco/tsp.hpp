// Synthetic Euclidean TSP instances.
//
// The paper motivates parallel roulette selection with ant-colony TSP
// solvers: during tour construction, visited cities get fitness zero, so
// the number of positive-fitness candidates k shrinks from n-1 to 1 — the
// regime where the O(log k) bidding race shines.  These instances are the
// substitution for the (unnamed) benchmark instances of the GPU-ACO papers
// the paper cites: random uniform points, plus a circle family with known
// optimal tours for solver sanity checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lrb::aco {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

class TspInstance {
 public:
  /// Builds the instance and its dense distance matrix (O(n^2) memory).
  explicit TspInstance(std::vector<Point> cities);

  [[nodiscard]] std::size_t size() const noexcept { return cities_.size(); }
  [[nodiscard]] const std::vector<Point>& cities() const noexcept {
    return cities_;
  }

  /// Euclidean distance between cities a and b (precomputed).
  [[nodiscard]] double distance(std::size_t a, std::size_t b) const {
    return dist_[a * cities_.size() + b];
  }

  /// Length of a closed tour visiting `tour` in order and returning to
  /// tour[0].  Throws InvalidArgumentError unless `tour` is a permutation
  /// of 0..n-1.
  [[nodiscard]] double tour_length(std::span<const std::size_t> tour) const;

  /// Nearest-neighbour heuristic tour from `start`; the classic ACO
  /// pheromone-scale initializer.
  [[nodiscard]] std::vector<std::size_t> nearest_neighbor_tour(
      std::size_t start = 0) const;

 private:
  std::vector<Point> cities_;
  std::vector<double> dist_;
};

/// n uniform points in [0, box) x [0, box).
[[nodiscard]] TspInstance random_euclidean_instance(std::size_t n,
                                                    std::uint64_t seed,
                                                    double box = 100.0);

/// n points on a circle of radius r: the optimal tour is the circle order
/// with known length 2 n r sin(pi/n).  Used as a solver acceptance test.
[[nodiscard]] TspInstance circle_instance(std::size_t n, double radius = 100.0);

/// Optimal tour length of circle_instance(n, radius).
[[nodiscard]] double circle_optimal_length(std::size_t n, double radius = 100.0);

/// w x h unit grid (n = w*h); optimal length is n for even grids
/// (boustrophedon tour).
[[nodiscard]] TspInstance grid_instance(std::size_t width, std::size_t height,
                                        double spacing = 1.0);

}  // namespace lrb::aco
