#include "aco/graph.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::aco {

Graph::Graph(std::size_t num_vertices) : adj_(num_vertices) {
  LRB_REQUIRE(num_vertices > 0, InvalidArgumentError,
              "Graph needs at least one vertex");
}

void Graph::add_edge(std::size_t a, std::size_t b) {
  LRB_REQUIRE(a < adj_.size() && b < adj_.size(), InvalidArgumentError,
              "Graph::add_edge: vertex out of range");
  LRB_REQUIRE(a != b, InvalidArgumentError, "Graph::add_edge: self-loop");
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++num_edges_;
}

bool Graph::has_edge(std::size_t a, std::size_t b) const {
  LRB_REQUIRE(a < adj_.size() && b < adj_.size(), InvalidArgumentError,
              "Graph::has_edge: vertex out of range");
  const auto& na = adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  const std::size_t other = adj_[a].size() <= adj_[b].size() ? b : a;
  return std::find(na.begin(), na.end(), other) != na.end();
}

std::span<const std::size_t> Graph::neighbors(std::size_t v) const {
  LRB_REQUIRE(v < adj_.size(), InvalidArgumentError,
              "Graph::neighbors: vertex out of range");
  return adj_[v];
}

std::size_t Graph::degree(std::size_t v) const { return neighbors(v).size(); }

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& nbrs : adj_) d = std::max(d, nbrs.size());
  return d;
}

bool Graph::is_proper_coloring(std::span<const int> colors) const {
  if (colors.size() != adj_.size()) return false;
  for (std::size_t v = 0; v < adj_.size(); ++v) {
    if (colors[v] < 0) return false;
    for (std::size_t u : adj_[v]) {
      if (colors[u] == colors[v]) return false;
    }
  }
  return true;
}

Graph random_gnp(std::size_t n, double p, std::uint64_t seed) {
  LRB_REQUIRE(p >= 0.0 && p <= 1.0, InvalidArgumentError,
              "random_gnp: p must be in [0,1]");
  Graph g(n);
  rng::Xoshiro256StarStar gen(seed);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (rng::u01_closed_open(gen) < p) g.add_edge(a, b);
    }
  }
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph cycle_graph(std::size_t n) {
  LRB_REQUIRE(n >= 3, InvalidArgumentError, "cycle_graph: n >= 3 required");
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph complete_multipartite(std::size_t groups, std::size_t group_size) {
  LRB_REQUIRE(groups >= 2 && group_size >= 1, InvalidArgumentError,
              "complete_multipartite: need >= 2 groups of >= 1 vertex");
  const std::size_t n = groups * group_size;
  Graph g(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (a / group_size != b / group_size) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace lrb::aco
