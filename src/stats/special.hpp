// Special functions needed by the hypothesis tests: regularized incomplete
// gamma (chi-square tail), error function complement wrapper, and the
// Kolmogorov distribution tail.  Implemented from Numerical-Recipes-style
// series/continued fractions — no external dependencies.
#pragma once

namespace lrb::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a),
/// a > 0, x >= 0.  Accuracy ~1e-12 over the tested domain.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: Pr[X >= x].  This is the p-value of a chi-square statistic.
[[nodiscard]] double chi_square_sf(double x, double dof);

/// Quantile (inverse CDF) of the standard normal, Acklam's algorithm
/// (|relative error| < 1.2e-9).  Used for confidence intervals.
[[nodiscard]] double normal_quantile(double p);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

/// Kolmogorov distribution tail Q_KS(x) = 2 * sum_{j>=1} (-1)^{j-1}
/// exp(-2 j^2 x^2); p-value of a one-sample KS statistic.
[[nodiscard]] double kolmogorov_sf(double x);

}  // namespace lrb::stats
