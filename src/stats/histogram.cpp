#include "stats/histogram.hpp"

namespace lrb::stats {

void SelectionHistogram::merge(const SelectionHistogram& other) {
  LRB_REQUIRE(other.size() == size(), lrb::InvalidArgumentError,
              "SelectionHistogram::merge: arity mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double SelectionHistogram::frequency(std::size_t index) const {
  LRB_REQUIRE(index < counts_.size(), lrb::InvalidArgumentError,
              "SelectionHistogram::frequency: index out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[index]) / static_cast<double>(total_);
}

std::vector<double> SelectionHistogram::frequencies() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

}  // namespace lrb::stats
