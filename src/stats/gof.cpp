#include "stats/gof.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "stats/special.hpp"

namespace lrb::stats {

ChiSquareResult chi_square_gof(std::span<const std::uint64_t> observed,
                               std::span<const double> expected,
                               double min_expected) {
  LRB_REQUIRE(observed.size() == expected.size(), lrb::InvalidArgumentError,
              "chi_square_gof: arity mismatch");
  LRB_REQUIRE(!observed.empty(), lrb::InvalidArgumentError,
              "chi_square_gof: empty input");

  std::uint64_t total = 0;
  for (std::uint64_t c : observed) total += c;
  LRB_REQUIRE(total > 0, lrb::InvalidArgumentError,
              "chi_square_gof: no observations");

  const double n = static_cast<double>(total);

  ChiSquareResult result;
  lrb::KahanSum stat;
  double pooled_expected = 0.0;
  std::uint64_t pooled_observed = 0;

  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double p = expected[i];
    LRB_REQUIRE(p >= 0.0 && std::isfinite(p), lrb::InvalidArgumentError,
                "chi_square_gof: expected probabilities must be finite and >= 0");
    if (p == 0.0) {
      // A zero-probability cell with observations is an unconditional
      // rejection: the model says this outcome is impossible.
      if (observed[i] != 0) {
        result.statistic = std::numeric_limits<double>::infinity();
        result.p_value = 0.0;
        result.cells_used = observed.size();
        return result;
      }
      ++result.cells_dropped;
      continue;
    }
    const double e = p * n;
    if (e < min_expected) {
      pooled_expected += e;
      pooled_observed += observed[i];
      continue;
    }
    const double d = static_cast<double>(observed[i]) - e;
    stat.add(d * d / e);
    ++result.cells_used;
  }
  // Include the pooled remainder when it is valid on its own, or when
  // dropping it would leave a degenerate (single-cell) test.
  if (pooled_expected >= min_expected ||
      (pooled_expected > 0.0 && result.cells_used < 2)) {
    const double d = static_cast<double>(pooled_observed) - pooled_expected;
    stat.add(d * d / pooled_expected);
    ++result.cells_used;
  } else if (pooled_expected > 0.0) {
    // The pooled remainder is too sparse for the chi-square approximation;
    // drop it (its mass is negligible by construction).
    ++result.cells_dropped;
  }

  LRB_REQUIRE(result.cells_used >= 2, lrb::InvalidArgumentError,
              "chi_square_gof: fewer than two usable cells");

  result.statistic = stat.value();
  result.dof = static_cast<double>(result.cells_used - 1);
  result.p_value = chi_square_sf(result.statistic, result.dof);
  return result;
}

ChiSquareResult chi_square_gof(const SelectionHistogram& hist,
                               std::span<const double> expected,
                               double min_expected) {
  return chi_square_gof(hist.counts(), expected, min_expected);
}

double total_variation(std::span<const double> p, std::span<const double> q) {
  LRB_REQUIRE(p.size() == q.size(), lrb::InvalidArgumentError,
              "total_variation: arity mismatch");
  lrb::KahanSum s;
  for (std::size_t i = 0; i < p.size(); ++i) s.add(std::abs(p[i] - q[i]));
  return 0.5 * s.value();
}

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  LRB_REQUIRE(p.size() == q.size(), lrb::InvalidArgumentError,
              "kl_divergence: arity mismatch");
  lrb::KahanSum s;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    LRB_REQUIRE(q[i] > 0.0, lrb::InvalidArgumentError,
                "kl_divergence: q must be positive wherever p is");
    s.add(p[i] * std::log(p[i] / q[i]));
  }
  return s.value();
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double confidence) {
  LRB_REQUIRE(trials > 0, lrb::InvalidArgumentError,
              "wilson_interval: trials must be positive");
  LRB_REQUIRE(successes <= trials, lrb::InvalidArgumentError,
              "wilson_interval: successes must not exceed trials");
  LRB_REQUIRE(confidence > 0.0 && confidence < 1.0, lrb::InvalidArgumentError,
              "wilson_interval: confidence must be in (0,1)");
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  Interval out;
  out.low = std::max(0.0, center - half);
  out.high = std::min(1.0, center + half);
  return out;
}

KsResult ks_uniform01(std::vector<double> samples) {
  LRB_REQUIRE(!samples.empty(), lrb::InvalidArgumentError,
              "ks_uniform01: empty sample");
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double cdf = std::min(1.0, std::max(0.0, samples[i]));
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(cdf - lo), std::abs(hi - cdf)});
  }
  KsResult out;
  out.statistic = d;
  const double sqrt_n = std::sqrt(n);
  // Asymptotic p-value with the small-sample correction of Stephens.
  out.p_value = kolmogorov_sf((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return out;
}

}  // namespace lrb::stats
