// Online (single-pass) moment accumulation — Welford's algorithm.
// Used by the round-count experiments (mean/variance/max of race rounds)
// and by throughput reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace lrb::stats {

class OnlineMoments {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Adds `n` copies of `x` in O(1) — a merge with the degenerate
  /// accumulator {count=n, mean=x, m2=0}.  Used by the obs histogram
  /// exporters to fold log2 buckets into moments without replaying samples.
  void add_repeated(double x, std::uint64_t n) noexcept {
    if (n == 0) return;
    OnlineMoments batch;
    batch.count_ = n;
    batch.mean_ = x;
    batch.min_ = x;
    batch.max_ = x;
    merge(batch);
  }

  /// Merges another accumulator (Chan's parallel formula).
  void merge(const OnlineMoments& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n_a = static_cast<double>(count_);
    const double n_b = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n_a + n_b;
    mean_ += delta * n_b / n;
    m2_ += other.m2_ + delta * delta * n_a * n_b / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return count_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
  }

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace lrb::stats
