// Goodness-of-fit machinery: chi-square test against expected selection
// probabilities, distribution distances, and binomial confidence intervals.
//
// These are the acceptance criteria of the reproduction: "the logarithmic
// bidding matches F_i" is checked as a chi-square p-value, not an eyeballed
// table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/histogram.hpp"

namespace lrb::stats {

/// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;      ///< sum (obs - exp)^2 / exp over kept cells
  double dof = 0.0;            ///< kept cells - 1
  double p_value = 1.0;        ///< Pr[X >= statistic]
  std::size_t cells_used = 0;  ///< cells with expected count above threshold
  std::size_t cells_dropped = 0;

  /// True when the empirical data is consistent with the model at level
  /// `alpha` (i.e. we fail to reject).
  [[nodiscard]] bool consistent_with_model(double alpha = 1e-3) const {
    return p_value >= alpha;
  }
};

/// Chi-square GOF of observed counts against probabilities `expected`
/// (must sum to ~1; zero-probability cells must have zero observations, and
/// are excluded from the statistic).  Cells with expected count below
/// `min_expected` are pooled into a single remainder cell, the standard
/// validity fix for sparse cells.
[[nodiscard]] ChiSquareResult chi_square_gof(std::span<const std::uint64_t> observed,
                                             std::span<const double> expected,
                                             double min_expected = 5.0);

/// Convenience overload on SelectionHistogram.
[[nodiscard]] ChiSquareResult chi_square_gof(const SelectionHistogram& hist,
                                             std::span<const double> expected,
                                             double min_expected = 5.0);

/// Total variation distance 0.5 * sum |p_i - q_i| between an empirical
/// distribution and a model.
[[nodiscard]] double total_variation(std::span<const double> p,
                                     std::span<const double> q);

/// KL divergence sum p_i log(p_i / q_i); requires q_i > 0 wherever p_i > 0
/// (throws InvalidArgumentError otherwise).  Natural log.
[[nodiscard]] double kl_divergence(std::span<const double> p,
                                   std::span<const double> q);

/// Wilson score interval for a binomial proportion at confidence
/// `confidence` (e.g. 0.999).  Returns {low, high}.
struct Interval {
  double low = 0.0;
  double high = 1.0;
  [[nodiscard]] bool contains(double x) const { return low <= x && x <= high; }
};

[[nodiscard]] Interval wilson_interval(std::uint64_t successes,
                                       std::uint64_t trials,
                                       double confidence = 0.999);

/// One-sample Kolmogorov–Smirnov test of `samples` against the uniform(0,1)
/// CDF.  `samples` is sorted in place by the caller or internally (copy).
struct KsResult {
  double statistic = 0.0;
  double p_value = 1.0;
};

[[nodiscard]] KsResult ks_uniform01(std::vector<double> samples);

}  // namespace lrb::stats
