// Selection-count histogram: the accumulator every probability experiment
// (Tables I & II, all property tests) writes into.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace lrb::stats {

/// Counts selections of indices in [0, n).
class SelectionHistogram {
 public:
  explicit SelectionHistogram(std::size_t n) : counts_(n, 0) {}

  void record(std::size_t index) {
    LRB_REQUIRE(index < counts_.size(), lrb::InvalidArgumentError,
                "SelectionHistogram::record: index out of range");
    ++counts_[index];
    ++total_;
  }

  /// Merges another histogram of the same arity (parallel accumulation).
  void merge(const SelectionHistogram& other);

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(std::size_t index) const {
    LRB_REQUIRE(index < counts_.size(), lrb::InvalidArgumentError,
                "SelectionHistogram::count: index out of range");
    return counts_[index];
  }
  [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept {
    return counts_;
  }

  /// Empirical frequency of `index` (0 if no draws recorded).
  [[nodiscard]] double frequency(std::size_t index) const;

  /// All empirical frequencies.
  [[nodiscard]] std::vector<double> frequencies() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace lrb::stats
