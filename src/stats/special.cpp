#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace lrb::stats {

namespace {

// Series expansion of P(a,x); converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Lentz continued fraction for Q(a,x); converges fast for x >= a + 1.
double gamma_q_cf(double a, double x) {
  const double gln = std::lgamma(a);
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  LRB_REQUIRE(a > 0.0, InvalidArgumentError, "gamma_p requires a > 0");
  LRB_REQUIRE(x >= 0.0, InvalidArgumentError, "gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  LRB_REQUIRE(a > 0.0, InvalidArgumentError, "gamma_q requires a > 0");
  LRB_REQUIRE(x >= 0.0, InvalidArgumentError, "gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi_square_sf(double x, double dof) {
  LRB_REQUIRE(dof > 0.0, InvalidArgumentError,
              "chi_square_sf requires dof > 0");
  if (x <= 0.0) return 1.0;
  return gamma_q(dof / 2.0, x / 2.0);
}

double normal_quantile(double p) {
  LRB_REQUIRE(p > 0.0 && p < 1.0, InvalidArgumentError,
              "normal_quantile requires 0 < p < 1");
  // Acklam's rational approximations on three regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One step of Halley refinement against the accurate CDF.
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(kTwoPi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double kolmogorov_sf(double x) {
  if (x <= 0.0) return 1.0;
  if (x >= 5.0) return 0.0;  // below double precision
  double sum = 0.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * x * x);
    sum += (j % 2 == 1) ? term : -term;
    if (term < 1e-18) break;
  }
  return std::min(1.0, std::max(0.0, 2.0 * sum));
}

}  // namespace lrb::stats
