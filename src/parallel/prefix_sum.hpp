// Inclusive prefix sums, serial and parallel.
//
// The prefix-sum-based roulette selection (the paper's EREW baseline) needs
// p_i = f_0 + ... + f_i.  The parallel version is the classic two-pass
// scheme: lane-local sums, exclusive scan over lane totals, then lane-local
// inclusive scans with the lane offset — O(n/p + p) work per lane and
// deterministic for a fixed lane count.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "parallel/thread_pool.hpp"

namespace lrb::parallel {

/// Serial inclusive scan: out[i] = xs[0] + ... + xs[i].  In-place allowed
/// (out may alias xs).
inline void inclusive_scan_serial(std::span<const double> xs,
                                  std::span<double> out) {
  LRB_REQUIRE(xs.size() == out.size(), lrb::InvalidArgumentError,
              "inclusive_scan: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    out[i] = acc;
  }
}

/// Parallel two-pass inclusive scan.  Falls back to serial for small inputs.
/// out may alias xs.
inline void inclusive_scan(ThreadPool& pool, std::span<const double> xs,
                           std::span<double> out) {
  LRB_REQUIRE(xs.size() == out.size(), lrb::InvalidArgumentError,
              "inclusive_scan: size mismatch");
  const std::size_t n = xs.size();
  if (n < 4096 || pool.lanes() == 1) {
    inclusive_scan_serial(xs, out);
    return;
  }
  std::vector<double> lane_total(pool.lanes(), 0.0);
  // Pass 1: per-lane totals.
  pool.parallel_for(n, [&](Range r, std::size_t lane) {
    double acc = 0.0;
    for (std::size_t i = r.begin; i < r.end; ++i) acc += xs[i];
    lane_total[lane] = acc;
  });
  // Exclusive scan over lane totals (p lanes; serial is fine).
  std::vector<double> lane_offset(pool.lanes(), 0.0);
  double acc = 0.0;
  for (std::size_t lane = 0; lane < pool.lanes(); ++lane) {
    lane_offset[lane] = acc;
    acc += lane_total[lane];
  }
  // Pass 2: local inclusive scans with offsets.
  pool.parallel_for(n, [&](Range r, std::size_t lane) {
    double local = lane_offset[lane];
    for (std::size_t i = r.begin; i < r.end; ++i) {
      local += xs[i];
      out[i] = local;
    }
  });
}

}  // namespace lrb::parallel
