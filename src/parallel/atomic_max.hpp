// Lock-free maximum over doubles — the shared-memory analog of the paper's
// CRCW write race.
//
// The paper's Section III algorithm has every processor repeatedly write its
// bid r_i to one shared cell s while s < r_i; arbitration keeps one write per
// round.  On real hardware the equivalent is a compare-exchange loop that
// only installs improving values.  AtomicMaxCell packages that loop, plus the
// "value and index win together" variant needed to report *which* processor
// held the maximum, and counts CAS attempts so benches can compare against
// the PRAM round model (ablation A4 / experiment E5).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

namespace lrb::parallel {

/// A packed (bid, index) pair that preserves bid ordering when compared as
/// an integer.  Doubles' IEEE-754 ordering matches their bit pattern for
/// non-negative values; bids are in (-inf, 0], so we flip the encoding:
/// for negative d, the two's-complement trick maps order-reversed bits to
/// order-preserving integers.
struct BidIndex {
  double bid = -std::numeric_limits<double>::infinity();
  std::uint32_t index = 0;
};

namespace detail {

/// Monotone (order-preserving) mapping from double to uint64.
[[nodiscard]] inline std::uint64_t order_preserving_bits(double d) noexcept {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof d);
  __builtin_memcpy(&bits, &d, sizeof d);
  // For negatives (sign bit set), flip all bits; for positives, flip sign bit.
  return (bits & 0x8000000000000000ULL) ? ~bits : (bits | 0x8000000000000000ULL);
}

[[nodiscard]] inline double double_from_order_bits(std::uint64_t bits) noexcept {
  const std::uint64_t raw =
      (bits & 0x8000000000000000ULL) ? (bits & 0x7fffffffffffffffULL)
                                     : ~bits;
  double d;
  __builtin_memcpy(&d, &raw, sizeof d);
  return d;
}

}  // namespace detail

/// Atomic max over plain doubles.  update() returns the number of CAS
/// attempts made (0 when the current value already dominated), which the
/// race benches aggregate as "write traffic".
class AtomicMaxCell {
 public:
  explicit AtomicMaxCell(
      double initial = -std::numeric_limits<double>::infinity()) noexcept
      : bits_(detail::order_preserving_bits(initial)) {}

  /// Raises the cell to at least `value`.  Lock-free; wait-free in the
  /// absence of contention.  Returns the number of CAS attempts.
  std::uint32_t update(double value) noexcept {
    const std::uint64_t want = detail::order_preserving_bits(value);
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    std::uint32_t attempts = 0;
    while (cur < want) {
      ++attempts;
      if (bits_.compare_exchange_weak(cur, want, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    return attempts;
  }

  [[nodiscard]] double load() const noexcept {
    return detail::double_from_order_bits(bits_.load(std::memory_order_acquire));
  }

  void store(double value) noexcept {
    bits_.store(detail::order_preserving_bits(value), std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> bits_;
};

/// Atomic max over (bid, index) pairs with the library's deterministic
/// tie-break: among equal bids the smallest index wins.
///
/// Encoding: 64-bit order bits of the bid are truncated to the top 32 bits?
/// No — we need the full bid ordering, so this cell uses a 128-bit atomic
/// when available and otherwise falls back to a two-word seqlock-free retry
/// scheme built from a single 64-bit atomic holding the order bits and an
/// index published via a second atomic validated by re-reading the first.
/// To stay simple, portable and provably correct, we instead pack
/// (bid order bits, ~index) into unsigned __int128 and rely on GCC/Clang
/// 128-bit compare-exchange (lock-free with cmpxchg16b on x86-64).
class AtomicArgMaxCell {
 public:
  AtomicArgMaxCell() noexcept : packed_(pack(BidIndex{})) {}

  explicit AtomicArgMaxCell(BidIndex initial) noexcept
      : packed_(pack(initial)) {}

  /// Outcome of one update() call.
  struct UpdateResult {
    std::uint32_t attempts = 0;  ///< CAS attempts (0: cell already dominated)
    bool installed = false;      ///< true iff this call's value ended up in the cell
  };

  /// Raises the cell to at least (value, index) under lexicographic order
  /// (higher bid wins; equal bid -> smaller index wins).
  UpdateResult update(double bid, std::uint32_t index) noexcept {
    const unsigned __int128 want = pack(BidIndex{bid, index});
    unsigned __int128 cur = packed_.load(std::memory_order_relaxed);
    UpdateResult result;
    while (cur < want) {
      ++result.attempts;
      if (packed_.compare_exchange_weak(cur, want, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        result.installed = true;
        break;
      }
    }
    return result;
  }

  [[nodiscard]] BidIndex load() const noexcept {
    return unpack(packed_.load(std::memory_order_acquire));
  }

 private:
  // Layout: [bid order bits : 64][~index : 32][zero : 32].  Larger packed
  // value == (strictly larger bid) or (equal bid and smaller index).
  static unsigned __int128 pack(BidIndex v) noexcept {
    const std::uint64_t hi = detail::order_preserving_bits(v.bid);
    const std::uint64_t lo = static_cast<std::uint64_t>(~v.index) << 32;
    return (static_cast<unsigned __int128>(hi) << 64) | lo;
  }

  static BidIndex unpack(unsigned __int128 p) noexcept {
    BidIndex v;
    v.bid = detail::double_from_order_bits(static_cast<std::uint64_t>(p >> 64));
    v.index = ~static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
    return v;
  }

  std::atomic<unsigned __int128> packed_;
};

}  // namespace lrb::parallel
