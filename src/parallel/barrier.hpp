// Barriers for SPMD regions.
//
// The paper's race algorithm has an explicit barrier_synchronization() step
// between "write until stable" and "publish the winner".  std::barrier is
// the obvious tool, but the race loop also needs a *reusable spin* barrier
// with phase counting so the bench can attribute time to rounds; SpinBarrier
// provides that with a sense-reversing counter.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lrb::parallel {

/// Sense-reversing spin barrier.  All `parties` threads must call arrive_and_wait
/// for any of them to proceed.  Reusable across an unbounded number of phases.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const std::uint64_t my_phase = phase_.load(std::memory_order_acquire);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver resets and releases the phase.
      remaining_.store(parties_, std::memory_order_relaxed);
      phase_.store(my_phase + 1, std::memory_order_release);
      phase_.notify_all();
    } else {
      std::uint64_t seen = phase_.load(std::memory_order_acquire);
      while (seen == my_phase) {
        // Bounded spin, then futex-style wait (std::atomic::wait).
        for (int spin = 0; spin < 256 && seen == my_phase; ++spin) {
          seen = phase_.load(std::memory_order_acquire);
        }
        if (seen == my_phase) {
          phase_.wait(my_phase, std::memory_order_acquire);
          seen = phase_.load(std::memory_order_acquire);
        }
      }
    }
  }

  /// Number of completed phases (monotone).  Used by round-counting benches.
  [[nodiscard]] std::uint64_t phase() const noexcept {
    return phase_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<std::uint64_t> phase_{0};
};

}  // namespace lrb::parallel
