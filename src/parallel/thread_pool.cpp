#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace lrb::parallel {

std::size_t hardware_lanes() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(std::size_t lanes)
    : lanes_(lanes == 0 ? hardware_lanes() : lanes) {
  // Caller is lane 0; spawn lanes_-1 workers.
  threads_.reserve(lanes_ - 1);
  for (std::size_t lane = 1; lane < lanes_; ++lane) {
    threads_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::size_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(lane, lanes_);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run_spmd(
    const std::function<void(std::size_t lane, std::size_t lanes)>& fn) {
  // The pool runs one SPMD job at a time, so "queue depth" is the number of
  // lanes the in-flight job occupies: the gauge reads 0 when idle, lanes_
  // while a job runs (nested/concurrent run_spmd callers stack additively).
  LRB_TRACE_SPAN_ARG("pool_job", lanes_);
  LRB_OBS_SCOPED_NS("lrb_pool_job_ns");
  LRB_OBS_COUNTER_ADD("lrb_pool_jobs_total", 1);
  LRB_OBS_GAUGE_ADD("lrb_pool_active_lanes", lanes_);
  struct LanesGaugeReset {
    std::size_t lanes;
    ~LanesGaugeReset() { LRB_OBS_GAUGE_SUB("lrb_pool_active_lanes", lanes); }
  } gauge_reset{lanes_};
  if (lanes_ == 1) {
    fn(0, 1);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    remaining_ = lanes_ - 1;
    ++epoch_;
  }
  cv_start_.notify_all();
  fn(0, lanes_);  // caller participates as lane 0
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(Range, std::size_t lane)>& fn) {
  if (n == 0) return;
  if (lanes_ == 1 || n == 1) {
    fn(Range{0, n}, 0);
    return;
  }
  run_spmd([&](std::size_t lane, std::size_t lanes) {
    const Range r = partition_range(n, lanes, lane);
    if (!r.empty()) fn(r, lane);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(hardware_lanes());
  return pool;
}

}  // namespace lrb::parallel
