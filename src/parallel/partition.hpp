// Deterministic range partitioning for SPMD-style loops.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace lrb::parallel {

/// A half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] constexpr std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] constexpr bool empty() const noexcept { return begin >= end; }
  friend constexpr bool operator==(const Range&, const Range&) = default;
};

/// Splits [0,n) into `parts` contiguous ranges whose sizes differ by at most
/// one (the first n % parts ranges get the extra element).  Deterministic:
/// the same (n, parts) always yields the same split, which the reproducible
/// parallel selection paths rely on.
[[nodiscard]] constexpr Range partition_range(std::size_t n, std::size_t parts,
                                              std::size_t part) noexcept {
  if (parts == 0) return Range{0, n};
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t begin = part * base + (part < extra ? part : extra);
  const std::size_t size = base + (part < extra ? 1 : 0);
  return Range{begin, begin + size};
}

/// Number of chunks of at most `grain` covering [0,n).
[[nodiscard]] constexpr std::size_t chunk_count(std::size_t n,
                                                std::size_t grain) noexcept {
  if (grain == 0) return n == 0 ? 0 : 1;
  return (n + grain - 1) / grain;
}

}  // namespace lrb::parallel
