// A small persistent thread pool with two entry points:
//
//   * parallel_for(n, fn)      — data-parallel loops (fn sees [begin,end) + lane)
//   * run_spmd(fn)             — SPMD region: every worker runs fn(lane, lanes)
//                                 simultaneously; used by the CRCW-style
//                                 max-race where workers synchronize through
//                                 atomics and barriers like PRAM processors.
//
// Workers are lazily started and reused across calls.  The pool always
// counts the calling thread as lane 0, so a pool of size 1 degenerates to
// serial execution with zero thread overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/partition.hpp"

namespace lrb::parallel {

class ThreadPool {
 public:
  /// `lanes` = total number of workers including the caller.  0 means
  /// hardware_concurrency().
  explicit ThreadPool(std::size_t lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  /// Runs fn(lane, lanes) on every lane (caller participates as lane 0) and
  /// blocks until all lanes finish.  fn must be safe to call concurrently.
  void run_spmd(const std::function<void(std::size_t lane, std::size_t lanes)>& fn);

  /// Statically-partitioned parallel loop: each lane receives one contiguous
  /// range of [0,n) via fn(range, lane).
  void parallel_for(std::size_t n,
                    const std::function<void(Range, std::size_t lane)>& fn);

  /// Process-wide pool sized to hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t lane);

  std::size_t lanes_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t epoch_ = 0;         // increments per job; wakes workers
  std::size_t remaining_ = 0;     // workers still running the current job
  bool stop_ = false;
};

/// Hardware concurrency with a sane floor of 1.
[[nodiscard]] std::size_t hardware_lanes() noexcept;

}  // namespace lrb::parallel
