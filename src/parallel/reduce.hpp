// Parallel reductions over spans: sum and argmax, with deterministic results.
//
// Determinism matters more here than peak throughput: the tree-reduction
// baseline must return bit-identical sums regardless of lane count so that
// probability tables reproduce exactly.  Sums therefore reduce per-lane
// partials in lane order with compensated accumulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "parallel/thread_pool.hpp"

namespace lrb::parallel {

/// Compensated parallel sum.  Deterministic for a fixed lane count; within
/// 1 ulp-of-Kahan of the serial compensated sum for any lane count.
[[nodiscard]] inline double parallel_sum(ThreadPool& pool,
                                         std::span<const double> xs) {
  if (xs.size() < 4096 || pool.lanes() == 1) return lrb::accurate_sum(xs);
  std::vector<double> partial(pool.lanes(), 0.0);
  pool.parallel_for(xs.size(), [&](Range r, std::size_t lane) {
    partial[lane] = lrb::accurate_sum(xs.subspan(r.begin, r.size()));
  });
  return lrb::accurate_sum(partial);
}

/// Result of an argmax reduction.
struct ArgMax {
  std::size_t index = 0;
  double value = -std::numeric_limits<double>::infinity();
};

/// Serial argmax with the library-wide tie-break (smallest index wins ties).
/// Skips nothing; -inf entries simply never win unless all entries are -inf,
/// in which case index 0 is returned.
[[nodiscard]] inline ArgMax argmax_serial(std::span<const double> xs) noexcept {
  ArgMax best;
  best.index = 0;
  best.value = xs.empty() ? -std::numeric_limits<double>::infinity() : xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > best.value) {
      best.value = xs[i];
      best.index = i;
    }
  }
  return best;
}

/// Parallel tree argmax (EREW-style reduction).  Deterministic for any lane
/// count: lane-local argmaxes use the same tie-break, and the cross-lane
/// combine prefers the smaller index on equal values.
[[nodiscard]] inline ArgMax parallel_argmax(ThreadPool& pool,
                                            std::span<const double> xs) {
  if (xs.empty()) return ArgMax{};
  if (xs.size() < 4096 || pool.lanes() == 1) return argmax_serial(xs);
  std::vector<ArgMax> partial(pool.lanes());
  pool.parallel_for(xs.size(), [&](Range r, std::size_t lane) {
    ArgMax local = argmax_serial(xs.subspan(r.begin, r.size()));
    local.index += r.begin;
    partial[lane] = local;
  });
  ArgMax best = partial[0];
  for (std::size_t lane = 1; lane < partial.size(); ++lane) {
    const ArgMax& cand = partial[lane];
    // Lanes cover ascending index ranges, so on ties keep the current (lower
    // index) winner.
    if (cand.value > best.value) best = cand;
  }
  return best;
}

}  // namespace lrb::parallel
