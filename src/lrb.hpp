// Umbrella header: the full public API of the lrb library.
//
// lrb reproduces Nakano's "Logarithmic Random Bidding for the Parallel
// Roulette Wheel Selection with Precise Probabilities" (IPPS 2024) as a
// production library: the bidding selector, every classical baseline, a
// PRAM simulator for model-level validation, parallel runtime, statistics,
// and ACO applications.
//
// Quick start (see examples/quickstart.cpp):
//
//   std::vector<double> fitness = {0, 1, 2, 3};
//   lrb::rng::Xoshiro256StarStar gen(42);
//   std::size_t i = lrb::core::select_bidding(fitness, gen);
//   // Pr[i == j] == fitness[j] / 6 exactly; index 0 is never selected.
#pragma once

#include "aco/ant_system.hpp"
#include "aco/graph.hpp"
#include "aco/tsp.hpp"
#include "aco/tsplib.hpp"
#include "aco/two_opt.hpp"
#include "aco/vertex_coloring.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/active_set.hpp"
#include "core/alias_table.hpp"
#include "core/baselines.hpp"
#include "core/batch.hpp"
#include "core/cdf_selector.hpp"
#include "core/deterministic.hpp"
#include "core/draw_many.hpp"
#include "core/fenwick_selector.hpp"
#include "core/fitness.hpp"
#include "core/logarithmic_bidding.hpp"
#include "core/openmp.hpp"
#include "core/selector_registry.hpp"
#include "core/streaming.hpp"
#include "core/wheel_set.hpp"
#include "core/without_replacement.hpp"
#include "dist/collectives.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"
#include "dist/topology.hpp"
#include "fault/injecting_backend.hpp"
#include "fault/recovery.hpp"
#include "fault/schedule.hpp"
// obs/obs.hpp is always safe (macros compile to nothing under LRB_OBS=OFF);
// the concrete obs API only exists when the flight recorder is compiled in.
#include "obs/obs.hpp"
#if defined(LRB_OBS_ENABLED)
#include "obs/export.hpp"
#endif
#include "parallel/atomic_max.hpp"
#include "parallel/barrier.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/reduce.hpp"
#include "parallel/thread_pool.hpp"
#include "persist/crc32c.hpp"
#include "persist/draw_log.hpp"
#include "persist/io.hpp"
#include "persist/journal.hpp"
#include "persist/replay.hpp"
#include "persist/snapshot.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "rng/engines.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"
#include "stats/online.hpp"
#include "stats/special.hpp"
