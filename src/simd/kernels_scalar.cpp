// The portable scalar target — the reference every vector target must match
// bit for bit, and the tail path they delegate to.  Compiled with the base
// ISA flags only; routes through the same rng/philox.hpp and
// rng/uniform.hpp inlines the rest of the library uses, so "scalar dispatch"
// and "the pre-SIMD code" are the same arithmetic by construction.
#include "simd/kernels.hpp"

#include <limits>

#include "rng/philox.hpp"
#include "rng/uniform.hpp"

namespace lrb::simd::detail {

void philox_words_counter_range_scalar(std::uint64_t seed, std::uint64_t stream,
                                       std::uint64_t counter0,
                                       std::uint64_t* out,
                                       std::size_t nblocks) {
  for (std::size_t i = 0; i < nblocks; ++i) {
    const rng::PhiloxBlock block =
        rng::philox_block_at(seed, counter0 + i, stream);
    out[2 * i] = block.u64_lo();
    out[2 * i + 1] = block.u64_hi();
  }
}

void philox_bits_streams_scalar(std::uint64_t seed, std::uint64_t counter,
                                const std::uint64_t* streams,
                                std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rng::philox_u64_at(seed, counter, streams[i]);
  }
}

void philox_bits_keyed_scalar(const std::uint64_t* seeds,
                              const std::uint64_t* counters,
                              const std::uint64_t* streams, std::uint64_t* out,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rng::philox_u64_at(seeds[i], counters[i], streams[i]);
  }
}

void fill_u01_from_bits_scalar(const std::uint64_t* bits, double* out,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rng::u01_open_closed_from_bits(bits[i]);
  }
}

double bound_pass_scalar(const double* u, const double* inv_f, double* ub,
                         std::size_t n) {
  double block_max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    // Sub then mul, exactly as draw_many's original bound pass; no FMA
    // contraction is possible here (no multiply feeding an add), so every
    // target computes the identical double.
    const double b = (u[i] - 1.0) * inv_f[i];
    ub[i] = b;
    if (b > block_max) block_max = b;
  }
  return block_max;
}

namespace {
constexpr Ops kScalarOps = {
    "scalar",
    Target::kScalar,
    &philox_words_counter_range_scalar,
    &philox_bits_streams_scalar,
    &philox_bits_keyed_scalar,
    &fill_u01_from_bits_scalar,
    &bound_pass_scalar,
};
}  // namespace

const Ops* scalar_ops() noexcept { return &kScalarOps; }

}  // namespace lrb::simd::detail
