// Runtime-dispatched SIMD kernels for the bid hot paths.
//
// The selection hot loops are embarrassingly data-parallel — Philox4x32-10
// blocks over consecutive counters or per-item streams (pure integer ops),
// the bits -> (0,1] conversion, and the (u - 1) * (1/f) bound pass of the
// record-breaking filter — yet which vector ISA the host offers is only
// known at runtime.  This module compiles each kernel three times (portable
// scalar, AVX2, AVX-512; the vector translation units carry their own
// -m flags and are guarded by cpuid before selection) and publishes ONE
// table of function pointers, chosen once per process:
//
//   * by cpuid, best-first (avx512 > avx2 > scalar), or
//   * by the LRB_SIMD environment variable ("scalar" | "avx2" | "avx512" |
//     "auto"), which pins the table for A/B benchmarking and the CI
//     dispatch matrix — an unavailable request warns and falls back to auto.
//
// The contract every target must honor (enforced by tests/simd): kernels are
// BIT-IDENTICAL to the scalar reference.  The Philox kernels are integer-only
// so equality holds by construction; the two floating-point kernels use only
// exactly-rounded IEEE ops in the same per-element order (sub, mul, max —
// never a fused multiply-add), so lane width cannot change a single bit of
// output.  Consumers (core/draw_many.hpp, core/deterministic.hpp,
// rng/uniform.hpp) therefore produce the same indices and consume the same
// engine state on every dispatch target.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lrb::simd {

/// Dispatch targets, worst to best.  kScalar is always available.
enum class Target : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// One resolved kernel table.  All pointers are non-null in a published
/// table; n == 0 is legal for every kernel (no reads, no writes).
struct Ops {
  const char* name;  ///< "scalar" | "avx2" | "avx512"
  Target target;

  /// Philox4x32-10 over consecutive counters, fixed stream — the word
  /// sequence of rng::PhiloxRng: for block b in [counter0, counter0 +
  /// nblocks), out[2i] = u64_lo and out[2i + 1] = u64_hi of
  /// philox_block_at(seed, counter0 + i, stream).  Counters take the same
  /// mod-2^64 wrap the engine's increment does.
  void (*philox_words_counter_range)(std::uint64_t seed, std::uint64_t stream,
                                     std::uint64_t counter0, std::uint64_t* out,
                                     std::size_t nblocks);

  /// Philox4x32-10 at a fixed counter over per-item streams — the
  /// deterministic bid stream: out[i] = philox_u64_at(seed, counter,
  /// streams[i]) (the low word, exactly what rng::deterministic_bits yields).
  void (*philox_bits_streams)(std::uint64_t seed, std::uint64_t counter,
                              const std::uint64_t* streams, std::uint64_t* out,
                              std::size_t n);

  /// Philox4x32-10 with per-element keys — the multi-tenant tile fill:
  /// out[i] = philox_u64_at(seeds[i], counters[i], streams[i]).  Where
  /// philox_bits_streams broadcasts one (seed, counter) per call, this
  /// variant carries all three key words per lane, so a WheelSet tile that
  /// concatenates many small wheels' bid chunks fills in ONE call at full
  /// lane occupancy instead of one under-filled call per wheel.
  void (*philox_bits_keyed)(const std::uint64_t* seeds,
                            const std::uint64_t* counters,
                            const std::uint64_t* streams, std::uint64_t* out,
                            std::size_t n);

  /// Bulk bits -> (0,1]: out[i] = rng::u01_open_closed_from_bits(bits[i]).
  /// Exact and branch-free on every target: ((bits >> 11) + 1) <= 2^53 is
  /// exactly representable, and the 2^-53 scale is a power of two.
  void (*fill_u01_from_bits)(const std::uint64_t* bits, double* out,
                             std::size_t n);

  /// The record-breaking filter's bound pass: ub[i] = (u[i] - 1.0) *
  /// inv_f[i], returning max(ub[0..n)) (-inf for n == 0).  Plain sub then
  /// mul — both exactly rounded, never contracted to an FMA — so the stored
  /// bounds and the maximum are bit-identical to the scalar loop; max is
  /// exact and order-independent for the never-NaN inputs the kernels feed
  /// it (u in (0,1], inv_f finite positive — see core/bid_filter.hpp).
  double (*bound_pass)(const double* u, const double* inv_f, double* ub,
                       std::size_t n);
};

/// The active table.  First call resolves it (cpuid + LRB_SIMD override) and
/// the result is cached for the life of the process; thread-safe.
[[nodiscard]] const Ops& ops() noexcept;

/// The table for a specific target, or nullptr when that target was not
/// compiled in or the running CPU lacks it.  ops_for(kScalar) never fails.
[[nodiscard]] const Ops* ops_for(Target target) noexcept;

/// Target / name of the active table (resolving it if needed).
[[nodiscard]] Target active_target() noexcept;
[[nodiscard]] const char* target_name() noexcept;

/// Re-points the active table at `target` for the rest of the process (or
/// until the next call).  Returns false — leaving the active table untouched
/// — when the target is unavailable.  This is the A/B hook tools/bench_json
/// uses to time scalar vs the best native target in one run; production
/// code selects via LRB_SIMD instead.  Not synchronized against concurrent
/// kernel launches: call from a quiescent point.
bool force_target(Target target) noexcept;

/// True when the running CPU can execute `target` (independent of whether
/// the kernels for it were compiled in).
[[nodiscard]] bool cpu_supports(Target target) noexcept;

}  // namespace lrb::simd
