// Segmented bound pass: one full-width SIMD sweep over a tile of ragged
// wheel segments.
//
// The WheelSet draw engine (core/wheel_set.hpp) concatenates many small
// wheels' bid streams into one dense tile so the vector kernels see full
// blocks even when every wheel is 8 items wide.  The tile-wide stages are
// elementwise (bits -> (0,1], then the (u - 1) * (1/f) bound), so running
// them across segment boundaries is bit-identical to calling the kernels
// once per segment — a wheel straddling a lane, a tile boundary, or both
// cannot change a single output bit.  The per-segment maxima computed here
// generalize the fixed-size block skip of DrawManyKernel /
// DeterministicDrawKernel to ragged boundaries: a segment whose maximum
// bound fails the caller's gate provably loses and its logs are skipped
// wholesale (core/bid_filter.hpp owns the proof).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "simd/dispatch.hpp"

namespace lrb::simd {

/// One ragged slice of a tile: `len` consecutive elements starting at tile
/// position `begin`.  A segment never spans tiles; a wheel larger than the
/// remaining tile capacity is split into several segments by the caller.
struct Segment {
  std::size_t begin = 0;
  std::size_t len = 0;
};

/// Runs the bits -> (0,1] conversion and the bound pass over the WHOLE tile
/// [0, n) in two dispatched calls — full lane occupancy regardless of how
/// small the individual segments are — then reduces ub over each segment:
/// seg_max[s] = max(ub[segs[s].begin .. + len)), -inf for an empty segment.
/// Every stage is elementwise and max is exact/order-independent for the
/// never-NaN inputs the bid pipeline feeds it, so u, ub, and seg_max are
/// bit-identical to per-segment kernel invocations on every dispatch target.
///
/// seg_max == nullptr skips the reduction pass.  A consumer that gates
/// elementwise anyway (bid_filter::RecordScan's per-element `ub > gate`
/// check) gets nothing from segment-level maxima on fresh races — for the
/// dominant one-segment-per-draw shape the reduction would re-read every
/// bound it just wrote — so the hot caller opts out and keeps the filter's
/// work-skipping at the element level, where it is exactly as strong.
inline void segmented_bound_pass(const Ops& ops, const std::uint64_t* bits,
                                 const double* inv_f, double* u, double* ub,
                                 std::size_t n, const Segment* segs,
                                 std::size_t nsegs, double* seg_max) {
  ops.fill_u01_from_bits(bits, u, n);
  (void)ops.bound_pass(u, inv_f, ub, n);
  if (seg_max == nullptr) return;
  for (std::size_t s = 0; s < nsegs; ++s) {
    double m = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < segs[s].len; ++j) {
      const double b = ub[segs[s].begin + j];
      if (b > m) m = b;
    }
    seg_max[s] = m;
  }
}

}  // namespace lrb::simd
