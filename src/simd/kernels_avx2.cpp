// The AVX2 target: 8 Philox4x32-10 blocks per iteration in 32-bit SoA form,
// 4-wide bits -> (0,1] conversion and bound pass.  This translation unit is
// compiled with -mavx2 (see src/CMakeLists.txt) and selected only after
// cpuid confirms the host executes AVX2; when the compiler cannot target
// AVX2 at all, the whole file collapses to a nullptr table.
//
// Bit-equality with the scalar target is structural, not hoped-for:
//   * the Philox kernels are pure 32-bit integer arithmetic — the vector
//     mulhilo/xor/add lanes compute exactly the scalar recurrence;
//   * the u64 -> double conversion uses the classic two-halves trick whose
//     adds are exact for values <= 2^53 (ours are), matching the scalar
//     static_cast; the 2^-53 scale is a power of two (always exact);
//   * the bound pass is sub-then-mul-then-max, each exactly rounded and
//     order-independent, with no FMA contraction.
// Loop tails delegate to the exported scalar kernels rather than touching
// inline library code, so no AVX2-compiled COMDAT can leak into portable TUs.
#include "simd/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <limits>

#include "rng/philox.hpp"

namespace lrb::simd::detail {
namespace {

// 8-lane widening 32x32 multiply: hi/lo of a[i] * m for all eight 32-bit
// lanes (m is the Philox multiplier broadcast into every even dword, which
// is where _mm256_mul_epu32 reads it).
inline void mul_hilo_8x32(__m256i a, __m256i m, __m256i& hi, __m256i& lo) {
  const __m256i even = _mm256_mul_epu32(a, m);
  const __m256i odd = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), m);
  lo = _mm256_blend_epi32(even, _mm256_slli_epi64(odd, 32), 0xAA);
  hi = _mm256_blend_epi32(_mm256_srli_epi64(even, 32), odd, 0xAA);
}

// Ten Philox rounds over 8 blocks held as lanes c0..c3 (SoA).  Mirrors
// rng::detail::philox_round exactly: new block = {p1.hi ^ c1 ^ k0, p1.lo,
// p0.hi ^ c3 ^ k1, p0.lo} with p0 = mulhilo(M0, c0), p1 = mulhilo(M1, c2).
inline void philox10_8x_vkey(__m256i& c0, __m256i& c1, __m256i& c2,
                             __m256i& c3, __m256i k0, __m256i k1) {
  const __m256i m0 = _mm256_set1_epi64x(rng::detail::kPhiloxM0);
  const __m256i m1 = _mm256_set1_epi64x(rng::detail::kPhiloxM1);
  const __m256i w0 = _mm256_set1_epi32(static_cast<int>(rng::detail::kPhiloxW0));
  const __m256i w1 = _mm256_set1_epi32(static_cast<int>(rng::detail::kPhiloxW1));
  for (int round = 0; round < 10; ++round) {
    __m256i p0hi, p0lo, p1hi, p1lo;
    mul_hilo_8x32(c0, m0, p0hi, p0lo);
    mul_hilo_8x32(c2, m1, p1hi, p1lo);
    const __m256i n0 = _mm256_xor_si256(_mm256_xor_si256(p1hi, c1), k0);
    const __m256i n2 = _mm256_xor_si256(_mm256_xor_si256(p0hi, c3), k1);
    c0 = n0;
    c1 = p1lo;
    c2 = n2;
    c3 = p0lo;
    k0 = _mm256_add_epi32(k0, w0);
    k1 = _mm256_add_epi32(k1, w1);
  }
}

// Broadcast-key wrapper — the fixed-seed kernels' original entry point.
inline void philox10_8x(__m256i& c0, __m256i& c1, __m256i& c2, __m256i& c3,
                        std::uint32_t key0, std::uint32_t key1) {
  philox10_8x_vkey(c0, c1, c2, c3, _mm256_set1_epi32(static_cast<int>(key0)),
                   _mm256_set1_epi32(static_cast<int>(key1)));
}

// Splits eight consecutive u64s (two 4-wide loads) into SoA low/high dwords.
inline void split_u64_8(const std::uint64_t* p, __m256i& lo32, __m256i& hi32) {
  const __m256i didx = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  const __m256i a = _mm256_permutevar8x32_epi32(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), didx);
  const __m256i b = _mm256_permutevar8x32_epi32(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4)), didx);
  lo32 = _mm256_permute2x128_si256(a, b, 0x20);
  hi32 = _mm256_permute2x128_si256(a, b, 0x31);
}

// Packs SoA dword lanes (lo32[i], hi32[i]) back into eight u64s
// lo32[i] | hi32[i] << 32, in block order, as two 4-wide vectors.
inline void join_u64_8(__m256i lo32, __m256i hi32, __m256i& w03, __m256i& w47) {
  const __m256i lo_i = _mm256_unpacklo_epi32(lo32, hi32);  // blocks 0,1 | 4,5
  const __m256i hi_i = _mm256_unpackhi_epi32(lo32, hi32);  // blocks 2,3 | 6,7
  w03 = _mm256_permute2x128_si256(lo_i, hi_i, 0x20);
  w47 = _mm256_permute2x128_si256(lo_i, hi_i, 0x31);
}

void philox_words_counter_range_avx2(std::uint64_t seed, std::uint64_t stream,
                                     std::uint64_t counter0, std::uint64_t* out,
                                     std::size_t nblocks) {
  const std::size_t main = nblocks & ~std::size_t{7};
  const __m256i step_lo = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i step_hi = _mm256_setr_epi64x(4, 5, 6, 7);
  const std::uint32_t key0 = static_cast<std::uint32_t>(seed);
  const std::uint32_t key1 = static_cast<std::uint32_t>(seed >> 32);
  const __m256i s_lo = _mm256_set1_epi32(static_cast<int>(
      static_cast<std::uint32_t>(stream)));
  const __m256i s_hi = _mm256_set1_epi32(static_cast<int>(
      static_cast<std::uint32_t>(stream >> 32)));
  for (std::size_t i = 0; i < main; i += 8) {
    // Counters counter0 + i .. + i + 7 with full 64-bit carry, then split
    // into the Philox dword lanes.
    const __m256i base = _mm256_set1_epi64x(
        static_cast<long long>(counter0 + i));
    alignas(32) std::uint64_t ctr[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(ctr),
                       _mm256_add_epi64(base, step_lo));
    _mm256_store_si256(reinterpret_cast<__m256i*>(ctr + 4),
                       _mm256_add_epi64(base, step_hi));
    __m256i c0, c1;
    split_u64_8(ctr, c0, c1);
    __m256i c2 = s_lo;
    __m256i c3 = s_hi;
    philox10_8x(c0, c1, c2, c3, key0, key1);
    // Engine word order: lo64 then hi64 per block.
    __m256i lo03, lo47, hi03, hi47;
    join_u64_8(c0, c1, lo03, lo47);
    join_u64_8(c2, c3, hi03, hi47);
    // Interleave (lo, hi) pairs per block: [lo0,hi0,lo1,hi1,...].
    const __m256i ul0 = _mm256_unpacklo_epi64(lo03, hi03);  // lo0,hi0 | lo2,hi2
    const __m256i uh0 = _mm256_unpackhi_epi64(lo03, hi03);  // lo1,hi1 | lo3,hi3
    const __m256i ul1 = _mm256_unpacklo_epi64(lo47, hi47);
    const __m256i uh1 = _mm256_unpackhi_epi64(lo47, hi47);
    std::uint64_t* o = out + 2 * i;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o),
                        _mm256_permute2x128_si256(ul0, uh0, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 4),
                        _mm256_permute2x128_si256(ul0, uh0, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 8),
                        _mm256_permute2x128_si256(ul1, uh1, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 12),
                        _mm256_permute2x128_si256(ul1, uh1, 0x31));
  }
  if (main < nblocks) {
    philox_words_counter_range_scalar(seed, stream, counter0 + main,
                                      out + 2 * main, nblocks - main);
  }
}

void philox_bits_streams_avx2(std::uint64_t seed, std::uint64_t counter,
                              const std::uint64_t* streams, std::uint64_t* out,
                              std::size_t n) {
  const std::size_t main = n & ~std::size_t{7};
  const std::uint32_t key0 = static_cast<std::uint32_t>(seed);
  const std::uint32_t key1 = static_cast<std::uint32_t>(seed >> 32);
  const __m256i t_lo = _mm256_set1_epi32(static_cast<int>(
      static_cast<std::uint32_t>(counter)));
  const __m256i t_hi = _mm256_set1_epi32(static_cast<int>(
      static_cast<std::uint32_t>(counter >> 32)));
  for (std::size_t i = 0; i < main; i += 8) {
    __m256i c0 = t_lo;
    __m256i c1 = t_hi;
    __m256i c2, c3;
    split_u64_8(streams + i, c2, c3);
    philox10_8x(c0, c1, c2, c3, key0, key1);
    __m256i w03, w47;
    join_u64_8(c0, c1, w03, w47);  // low u64 only: the deterministic bits
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w03);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), w47);
  }
  if (main < n) {
    philox_bits_streams_scalar(seed, counter, streams + main, out + main,
                               n - main);
  }
}

void philox_bits_keyed_avx2(const std::uint64_t* seeds,
                            const std::uint64_t* counters,
                            const std::uint64_t* streams, std::uint64_t* out,
                            std::size_t n) {
  const std::size_t main = n & ~std::size_t{7};
  for (std::size_t i = 0; i < main; i += 8) {
    // All three 64-bit key words vary per lane: counters feed c0/c1,
    // streams feed c2/c3, and seeds become per-lane round keys.
    __m256i c0, c1, c2, c3, k0, k1;
    split_u64_8(counters + i, c0, c1);
    split_u64_8(streams + i, c2, c3);
    split_u64_8(seeds + i, k0, k1);
    philox10_8x_vkey(c0, c1, c2, c3, k0, k1);
    __m256i w03, w47;
    join_u64_8(c0, c1, w03, w47);  // low u64 only: the deterministic bits
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w03);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), w47);
  }
  if (main < n) {
    philox_bits_keyed_scalar(seeds + main, counters + main, streams + main,
                             out + main, n - main);
  }
}

void fill_u01_from_bits_avx2(const std::uint64_t* bits, double* out,
                             std::size_t n) {
  const std::size_t main = n & ~std::size_t{3};
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i exp52 = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52));
  const __m256i exp84 = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p84));
  const __m256d sub = _mm256_set1_pd(0x1.0p84 + 0x1.0p52);
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  for (std::size_t i = 0; i < main; i += 4) {
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + i));
    // v = (bits >> 11) + 1, in [1, 2^53] — exactly representable.
    const __m256i v = _mm256_add_epi64(_mm256_srli_epi64(b, 11), one);
    // Exact u64 -> f64 via the two-halves trick: hi dwords become
    // 2^84 + hi * 2^32, low dwords become 2^52 + lo; the magic-constant
    // subtraction cancels both biases with exact adds (v <= 2^53).
    const __m256i x_hi = _mm256_or_si256(_mm256_srli_epi64(v, 32), exp84);
    const __m256i x_lo = _mm256_blend_epi32(v, exp52, 0xAA);
    const __m256d hi_d = _mm256_sub_pd(_mm256_castsi256_pd(x_hi), sub);
    const __m256d d = _mm256_add_pd(hi_d, _mm256_castsi256_pd(x_lo));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(d, scale));
  }
  if (main < n) fill_u01_from_bits_scalar(bits + main, out + main, n - main);
}

double bound_pass_avx2(const double* u, const double* inv_f, double* ub,
                       std::size_t n) {
  const std::size_t main = n & ~std::size_t{3};
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d vmax = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < main; i += 4) {
    const __m256d b = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(u + i), one),
                                    _mm256_loadu_pd(inv_f + i));
    _mm256_storeu_pd(ub + i, b);
    vmax = _mm256_max_pd(vmax, b);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  double block_max = lanes[0];
  for (int j = 1; j < 4; ++j) {
    if (lanes[j] > block_max) block_max = lanes[j];
  }
  if (main < n) {
    const double tail = bound_pass_scalar(u + main, inv_f + main, ub + main,
                                          n - main);
    if (tail > block_max) block_max = tail;
  }
  return block_max;
}

constexpr Ops kAvx2Ops = {
    "avx2",
    Target::kAvx2,
    &philox_words_counter_range_avx2,
    &philox_bits_streams_avx2,
    &philox_bits_keyed_avx2,
    &fill_u01_from_bits_avx2,
    &bound_pass_avx2,
};

}  // namespace

const Ops* avx2_ops() noexcept { return &kAvx2Ops; }

}  // namespace lrb::simd::detail

#else  // !__AVX2__

namespace lrb::simd::detail {
const Ops* avx2_ops() noexcept { return nullptr; }
}  // namespace lrb::simd::detail

#endif
