// Internal seams of the SIMD engine: the per-target kernel tables and the
// exported scalar kernels.
//
// Each kernels_<target>.cpp translation unit is compiled with exactly its
// own ISA flags and publishes its table through <target>_ops() — nullptr
// when the compiler could not target that ISA, so dispatch.cpp never links
// against instructions that do not exist in the binary.  The scalar kernels
// are additionally exported by name: the vector TUs call them for loop tails
// instead of instantiating inline library code, because an inline function
// emitted under -mavx512f and COMDAT-merged into a TU that runs on any CPU
// would be an illegal-instruction bug waiting for a linker to pick wrong.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.hpp"

namespace lrb::simd::detail {

/// Per-target tables; scalar_ops() is never null.
[[nodiscard]] const Ops* scalar_ops() noexcept;
[[nodiscard]] const Ops* avx2_ops() noexcept;
[[nodiscard]] const Ops* avx512_ops() noexcept;

/// The scalar reference kernels (kernels_scalar.cpp, base ISA flags) — the
/// definition of correct output for every vector target, and the tail path
/// the vector kernels delegate their last n % width elements to.
void philox_words_counter_range_scalar(std::uint64_t seed, std::uint64_t stream,
                                       std::uint64_t counter0,
                                       std::uint64_t* out, std::size_t nblocks);
void philox_bits_streams_scalar(std::uint64_t seed, std::uint64_t counter,
                                const std::uint64_t* streams,
                                std::uint64_t* out, std::size_t n);
void philox_bits_keyed_scalar(const std::uint64_t* seeds,
                              const std::uint64_t* counters,
                              const std::uint64_t* streams, std::uint64_t* out,
                              std::size_t n);
void fill_u01_from_bits_scalar(const std::uint64_t* bits, double* out,
                               std::size_t n);
double bound_pass_scalar(const double* u, const double* inv_f, double* ub,
                         std::size_t n);

}  // namespace lrb::simd::detail
