// The AVX-512 target: 16 Philox4x32-10 blocks per iteration, 8-wide
// conversion and bound pass.  Compiled with -mavx512f -mavx512dq and
// selected only after cpuid confirms both features (DQ supplies the exact
// _mm512_cvtepu64_pd the conversion uses).  The same bit-equality argument
// as the AVX2 target applies: integer Philox lanes, exact conversion for
// values <= 2^53, sub-mul-max with no contraction; tails delegate to the
// exported scalar kernels so no AVX-512 COMDAT leaks into portable TUs.
#include "simd/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <limits>

#include "rng/philox.hpp"

namespace lrb::simd::detail {
namespace {

// 16-lane widening 32x32 multiply; same even/odd split as the AVX2 target,
// with the 32-bit-lane blend done by mask (0xAAAA = odd dword lanes).
inline void mul_hilo_16x32(__m512i a, __m512i m, __m512i& hi, __m512i& lo) {
  const __m512i even = _mm512_mul_epu32(a, m);
  const __m512i odd = _mm512_mul_epu32(_mm512_srli_epi64(a, 32), m);
  lo = _mm512_mask_blend_epi32(0xAAAA, even, _mm512_slli_epi64(odd, 32));
  hi = _mm512_mask_blend_epi32(0xAAAA, _mm512_srli_epi64(even, 32), odd);
}

inline void philox10_16x_vkey(__m512i& c0, __m512i& c1, __m512i& c2,
                              __m512i& c3, __m512i k0, __m512i k1) {
  const __m512i m0 = _mm512_set1_epi64(rng::detail::kPhiloxM0);
  const __m512i m1 = _mm512_set1_epi64(rng::detail::kPhiloxM1);
  const __m512i w0 = _mm512_set1_epi32(static_cast<int>(rng::detail::kPhiloxW0));
  const __m512i w1 = _mm512_set1_epi32(static_cast<int>(rng::detail::kPhiloxW1));
  for (int round = 0; round < 10; ++round) {
    __m512i p0hi, p0lo, p1hi, p1lo;
    mul_hilo_16x32(c0, m0, p0hi, p0lo);
    mul_hilo_16x32(c2, m1, p1hi, p1lo);
    const __m512i n0 = _mm512_xor_si512(_mm512_xor_si512(p1hi, c1), k0);
    const __m512i n2 = _mm512_xor_si512(_mm512_xor_si512(p0hi, c3), k1);
    c0 = n0;
    c1 = p1lo;
    c2 = n2;
    c3 = p0lo;
    k0 = _mm512_add_epi32(k0, w0);
    k1 = _mm512_add_epi32(k1, w1);
  }
}

// Broadcast-key wrapper — the fixed-seed kernels' original entry point.
inline void philox10_16x(__m512i& c0, __m512i& c1, __m512i& c2, __m512i& c3,
                         std::uint32_t key0, std::uint32_t key1) {
  philox10_16x_vkey(c0, c1, c2, c3, _mm512_set1_epi32(static_cast<int>(key0)),
                    _mm512_set1_epi32(static_cast<int>(key1)));
}

// Dword-lane shuffles for u64 <-> SoA: permutex2var indices picking the
// even (low) or odd (high) dwords of 16 consecutive u64s.
inline __m512i idx_seq(const int (&v)[16]) {
  return _mm512_loadu_si512(v);
}

inline void split_u64_16(const std::uint64_t* p, __m512i& lo32, __m512i& hi32) {
  static const int kLo[16] = {0, 2, 4, 6, 8, 10, 12, 14,
                              16, 18, 20, 22, 24, 26, 28, 30};
  static const int kHi[16] = {1, 3, 5, 7, 9, 11, 13, 15,
                              17, 19, 21, 23, 25, 27, 29, 31};
  const __m512i a = _mm512_loadu_si512(p);
  const __m512i b = _mm512_loadu_si512(p + 8);
  lo32 = _mm512_permutex2var_epi32(a, idx_seq(kLo), b);
  hi32 = _mm512_permutex2var_epi32(a, idx_seq(kHi), b);
}

inline void join_u64_16(__m512i lo32, __m512i hi32, __m512i& w07,
                        __m512i& w8f) {
  static const int kLoHalf[16] = {0, 16, 1, 17, 2, 18, 3, 19,
                                  4, 20, 5, 21, 6, 22, 7, 23};
  static const int kHiHalf[16] = {8, 24, 9, 25, 10, 26, 11, 27,
                                  12, 28, 13, 29, 14, 30, 15, 31};
  w07 = _mm512_permutex2var_epi32(lo32, idx_seq(kLoHalf), hi32);
  w8f = _mm512_permutex2var_epi32(lo32, idx_seq(kHiHalf), hi32);
}

void philox_words_counter_range_avx512(std::uint64_t seed,
                                       std::uint64_t stream,
                                       std::uint64_t counter0,
                                       std::uint64_t* out,
                                       std::size_t nblocks) {
  const std::size_t main = nblocks & ~std::size_t{15};
  const std::uint32_t key0 = static_cast<std::uint32_t>(seed);
  const std::uint32_t key1 = static_cast<std::uint32_t>(seed >> 32);
  const __m512i s_lo = _mm512_set1_epi32(static_cast<int>(
      static_cast<std::uint32_t>(stream)));
  const __m512i s_hi = _mm512_set1_epi32(static_cast<int>(
      static_cast<std::uint32_t>(stream >> 32)));
  const __m512i step0 = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i step1 = _mm512_setr_epi64(8, 9, 10, 11, 12, 13, 14, 15);
  for (std::size_t i = 0; i < main; i += 16) {
    const __m512i base =
        _mm512_set1_epi64(static_cast<long long>(counter0 + i));
    alignas(64) std::uint64_t ctr[16];
    _mm512_store_si512(ctr, _mm512_add_epi64(base, step0));
    _mm512_store_si512(ctr + 8, _mm512_add_epi64(base, step1));
    __m512i c0, c1;
    split_u64_16(ctr, c0, c1);
    __m512i c2 = s_lo;
    __m512i c3 = s_hi;
    philox10_16x(c0, c1, c2, c3, key0, key1);
    __m512i lo07, lo8f, hi07, hi8f;
    join_u64_16(c0, c1, lo07, lo8f);   // low u64 of blocks 0..7 / 8..15
    join_u64_16(c2, c3, hi07, hi8f);   // high u64
    // Interleave (lo, hi) per block into the engine's word order.
    std::uint64_t* o = out + 2 * i;
    _mm512_storeu_si512(o, _mm512_permutex2var_epi64(
        lo07, _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11), hi07));
    _mm512_storeu_si512(o + 8, _mm512_permutex2var_epi64(
        lo07, _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15), hi07));
    _mm512_storeu_si512(o + 16, _mm512_permutex2var_epi64(
        lo8f, _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11), hi8f));
    _mm512_storeu_si512(o + 24, _mm512_permutex2var_epi64(
        lo8f, _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15), hi8f));
  }
  if (main < nblocks) {
    philox_words_counter_range_scalar(seed, stream, counter0 + main,
                                      out + 2 * main, nblocks - main);
  }
}

void philox_bits_streams_avx512(std::uint64_t seed, std::uint64_t counter,
                                const std::uint64_t* streams,
                                std::uint64_t* out, std::size_t n) {
  const std::size_t main = n & ~std::size_t{15};
  const std::uint32_t key0 = static_cast<std::uint32_t>(seed);
  const std::uint32_t key1 = static_cast<std::uint32_t>(seed >> 32);
  const __m512i t_lo = _mm512_set1_epi32(static_cast<int>(
      static_cast<std::uint32_t>(counter)));
  const __m512i t_hi = _mm512_set1_epi32(static_cast<int>(
      static_cast<std::uint32_t>(counter >> 32)));
  for (std::size_t i = 0; i < main; i += 16) {
    __m512i c0 = t_lo;
    __m512i c1 = t_hi;
    __m512i c2, c3;
    split_u64_16(streams + i, c2, c3);
    philox10_16x(c0, c1, c2, c3, key0, key1);
    __m512i w07, w8f;
    join_u64_16(c0, c1, w07, w8f);
    _mm512_storeu_si512(out + i, w07);
    _mm512_storeu_si512(out + i + 8, w8f);
  }
  if (main < n) {
    philox_bits_streams_scalar(seed, counter, streams + main, out + main,
                               n - main);
  }
}

void philox_bits_keyed_avx512(const std::uint64_t* seeds,
                              const std::uint64_t* counters,
                              const std::uint64_t* streams, std::uint64_t* out,
                              std::size_t n) {
  const std::size_t main = n & ~std::size_t{15};
  for (std::size_t i = 0; i < main; i += 16) {
    // All three 64-bit key words vary per lane: counters feed c0/c1,
    // streams feed c2/c3, and seeds become per-lane round keys.
    __m512i c0, c1, c2, c3, k0, k1;
    split_u64_16(counters + i, c0, c1);
    split_u64_16(streams + i, c2, c3);
    split_u64_16(seeds + i, k0, k1);
    philox10_16x_vkey(c0, c1, c2, c3, k0, k1);
    __m512i w07, w8f;
    join_u64_16(c0, c1, w07, w8f);  // low u64 only: the deterministic bits
    _mm512_storeu_si512(out + i, w07);
    _mm512_storeu_si512(out + i + 8, w8f);
  }
  if (main < n) {
    philox_bits_keyed_scalar(seeds + main, counters + main, streams + main,
                             out + main, n - main);
  }
}

void fill_u01_from_bits_avx512(const std::uint64_t* bits, double* out,
                               std::size_t n) {
  const std::size_t main = n & ~std::size_t{7};
  const __m512i one = _mm512_set1_epi64(1);
  const __m512d scale = _mm512_set1_pd(0x1.0p-53);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m512i b = _mm512_loadu_si512(bits + i);
    const __m512i v = _mm512_add_epi64(_mm512_srli_epi64(b, 11), one);
    // AVX-512DQ converts u64 -> f64 directly; exact for v <= 2^53.
    _mm512_storeu_pd(out + i, _mm512_mul_pd(_mm512_cvtepu64_pd(v), scale));
  }
  if (main < n) fill_u01_from_bits_scalar(bits + main, out + main, n - main);
}

double bound_pass_avx512(const double* u, const double* inv_f, double* ub,
                         std::size_t n) {
  const std::size_t main = n & ~std::size_t{7};
  const __m512d one = _mm512_set1_pd(1.0);
  __m512d vmax = _mm512_set1_pd(-std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < main; i += 8) {
    const __m512d b = _mm512_mul_pd(
        _mm512_sub_pd(_mm512_loadu_pd(u + i), one), _mm512_loadu_pd(inv_f + i));
    _mm512_storeu_pd(ub + i, b);
    vmax = _mm512_max_pd(vmax, b);
  }
  double block_max = _mm512_reduce_max_pd(vmax);
  if (main < n) {
    const double tail =
        bound_pass_scalar(u + main, inv_f + main, ub + main, n - main);
    if (tail > block_max) block_max = tail;
  }
  return block_max;
}

constexpr Ops kAvx512Ops = {
    "avx512",
    Target::kAvx512,
    &philox_words_counter_range_avx512,
    &philox_bits_streams_avx512,
    &philox_bits_keyed_avx512,
    &fill_u01_from_bits_avx512,
    &bound_pass_avx512,
};

}  // namespace

const Ops* avx512_ops() noexcept { return &kAvx512Ops; }

}  // namespace lrb::simd::detail

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace lrb::simd::detail {
const Ops* avx512_ops() noexcept { return nullptr; }
}  // namespace lrb::simd::detail

#endif
