// Target resolution for the SIMD engine: cpuid, the LRB_SIMD override, and
// the process-wide active table.  See dispatch.hpp for the contract.
#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"
#include "simd/kernels.hpp"

namespace lrb::simd {

namespace {

/// The compiled-in table for a target (independent of the running CPU).
const Ops* compiled_table(Target target) noexcept {
  switch (target) {
    case Target::kScalar: return detail::scalar_ops();
    case Target::kAvx2: return detail::avx2_ops();
    case Target::kAvx512: return detail::avx512_ops();
  }
  return nullptr;
}

/// Parses an LRB_SIMD value; returns true and sets `out` on a recognized
/// target name.  "auto" (and empty) mean best-available and parse as false.
bool parse_target(const char* s, Target& out) noexcept {
  if (std::strcmp(s, "scalar") == 0) {
    out = Target::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    out = Target::kAvx2;
    return true;
  }
  if (std::strcmp(s, "avx512") == 0) {
    out = Target::kAvx512;
    return true;
  }
  return false;
}

/// Best table the CPU executes, honoring the LRB_SIMD override.  Called at
/// most a handful of times (results are cached in g_active); warnings go to
/// stderr because a silently ignored override would invalidate a benchmark
/// or a CI matrix leg without anyone noticing.
const Ops* resolve() noexcept {
  if (const char* env = std::getenv("LRB_SIMD");
      env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    Target requested;
    if (!parse_target(env, requested)) {
      LRB_OBS_COUNTER_ADD("lrb_simd_env_fallback_total", 1);
      std::fprintf(stderr,
                   "lrb: LRB_SIMD=%s is not a target "
                   "(scalar | avx2 | avx512 | auto); using auto\n",
                   env);
    } else if (const Ops* table = ops_for(requested)) {
      return table;
    } else {
      LRB_OBS_COUNTER_ADD("lrb_simd_env_fallback_total", 1);
      std::fprintf(stderr,
                   "lrb: LRB_SIMD=%s unavailable on this "
                   "machine/build; using auto\n",
                   env);
    }
  }
  if (const Ops* table = ops_for(Target::kAvx512)) return table;
  if (const Ops* table = ops_for(Target::kAvx2)) return table;
  return detail::scalar_ops();
}

/// The active table.  Resolved lazily on first use; force_target() swaps it.
std::atomic<const Ops*> g_active{nullptr};

}  // namespace

bool cpu_supports(Target target) noexcept {
  if (target == Target::kScalar) return true;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (target) {
    case Target::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Target::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
    default:
      return false;
  }
#else
  return false;
#endif
}

const Ops* ops_for(Target target) noexcept {
  const Ops* table = compiled_table(target);
  return (table != nullptr && cpu_supports(target)) ? table : nullptr;
}

const Ops& ops() noexcept {
  const Ops* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    active = resolve();
    g_active.store(active, std::memory_order_release);
    // Resolved target as a gauge (Target enum value) so an exported
    // snapshot records which kernel table this process actually ran.
    LRB_OBS_GAUGE_SET("lrb_simd_active_target",
                      static_cast<int>(active->target));
  }
  return *active;
}

bool force_target(Target target) noexcept {
  const Ops* table = ops_for(target);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  LRB_OBS_COUNTER_ADD("lrb_simd_force_target_total", 1);
  LRB_OBS_GAUGE_SET("lrb_simd_active_target", static_cast<int>(table->target));
  return true;
}

Target active_target() noexcept { return ops().target; }

const char* target_name() noexcept { return ops().name; }

}  // namespace lrb::simd
