// A cycle-synchronous PRAM shared-memory simulator.
//
// The paper's model (Section I): synchronous processors over a shared
// memory; under CRCW, concurrent writes to one cell are resolved by a
// *uniformly random* winning write.  Theorem 1's O(log k) bound is a
// statement about synchronous rounds in exactly this model, so the
// simulator's job is to count rounds/steps with the model's semantics —
// not to be fast.
//
// Two machines:
//  * CrcwMachine — concurrent reads allowed; writes buffered per round and
//    resolved with a random winner per cell at commit().
//  * ErewMachine — every cell may be read OR written by at most one
//    processor per round; violations throw PramModelViolation.  Used by the
//    prefix-sum baseline program to certify it is EREW-legal.
//
// Cells hold doubles; programs that need an index store it via the cell
// (exact for indices < 2^53, asserted).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::pram {

/// Statistics every machine accumulates.
struct MachineStats {
  std::uint64_t rounds = 0;          ///< commit() calls
  std::uint64_t reads = 0;           ///< total read operations
  std::uint64_t writes = 0;          ///< total write *attempts*
  std::uint64_t write_conflicts = 0; ///< losing writes under CRCW
};

class CrcwMachine {
 public:
  /// `num_cells` is the shared memory size; the paper's algorithm needs
  /// O(1) cells (we allocate exactly what the program asks for).
  explicit CrcwMachine(std::size_t num_cells, std::uint64_t seed);

  [[nodiscard]] std::size_t num_cells() const noexcept { return cells_.size(); }

  /// Concurrent read (any number of processors per round).
  [[nodiscard]] double read(std::size_t cell);

  /// Buffered write attempt by `proc`; takes effect at commit().
  void write(std::size_t cell, double value);

  /// Ends the round: for every cell with pending writes, installs one
  /// uniformly random winner (the paper's conflict rule).  Returns the
  /// number of cells written this round.
  std::size_t commit();

  [[nodiscard]] const MachineStats& stats() const noexcept { return stats_; }

  /// Direct cell poke for program setup (not counted as a PRAM operation).
  void poke(std::size_t cell, double value);
  [[nodiscard]] double peek(std::size_t cell) const;

 private:
  std::vector<double> cells_;
  // Pending writes per round: cell -> candidate values.
  std::unordered_map<std::size_t, std::vector<double>> pending_;
  rng::Xoshiro256StarStar arbiter_;
  MachineStats stats_;
};

class ErewMachine {
 public:
  explicit ErewMachine(std::size_t num_cells);

  [[nodiscard]] std::size_t num_cells() const noexcept { return cells_.size(); }

  /// Exclusive read: throws PramModelViolation if the cell was already
  /// accessed this round.
  [[nodiscard]] double read(std::size_t cell);

  /// Exclusive write: throws PramModelViolation if the cell was already
  /// accessed this round.  Takes effect at commit() (synchronous PRAM:
  /// reads in a round see the previous round's values).
  void write(std::size_t cell, double value);

  /// Ends the round.
  void commit();

  [[nodiscard]] const MachineStats& stats() const noexcept { return stats_; }

  void poke(std::size_t cell, double value);
  [[nodiscard]] double peek(std::size_t cell) const;

 private:
  std::vector<double> cells_;
  std::unordered_set<std::size_t> read_this_round_;
  std::unordered_map<std::size_t, double> write_this_round_;
  MachineStats stats_;
};

}  // namespace lrb::pram
