// PRAM programs from the paper, executed on the simulators in machine.hpp.
//
//  * crcw_max_race            — Section III's "identify the maximum r_i"
//                               with O(1) shared memory; round counts are
//                               Theorem 1's observable.
//  * crcw_bidding_selection   — the full selection: draw bids, race, read
//                               the winner (experiment E3 driver).
//  * erew_tree_max            — the obvious O(log n)-time, O(n)-memory EREW
//                               reduction the paper contrasts against.
//  * erew_prefix_sum_selection— Section I's prefix-sum baseline on the EREW
//                               machine (certified EREW-legal by the
//                               machine's conflict checks).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/machine.hpp"

namespace lrb::pram {

/// Outcome of a CRCW max race.
struct RaceResult {
  std::size_t winner = 0;       ///< index of the maximum element
  std::uint64_t rounds = 0;     ///< while-loop iterations (Theorem 1's count)
  std::uint64_t write_attempts = 0;  ///< total writes offered to the cell
  std::size_t initially_active = 0;  ///< processors with finite bids ("k")
  /// Active-processor count at the start of every round (size == rounds).
  /// This is the trajectory the paper's proof reasons about: a round is a
  /// "success" if at least half its active processors become inactive, and
  /// Theorem 1 follows from success-probability >= 1/2 plus at most
  /// ceil(log2 k) successes.  Exposed so tests/benches can validate the
  /// proof mechanics, not just the endpoint.
  std::vector<std::size_t> active_per_round;

  /// Rounds where the active set at least halved (the paper's "success").
  [[nodiscard]] std::size_t success_rounds() const noexcept {
    std::size_t successes = 0;
    for (std::size_t r = 0; r < active_per_round.size(); ++r) {
      const std::size_t before = active_per_round[r];
      const std::size_t after =
          r + 1 < active_per_round.size() ? active_per_round[r + 1] : 0;
      if (after * 2 <= before) ++successes;
    }
    return successes;
  }
};

/// Section III's algorithm on the CRCW machine: every processor with a
/// finite bid repeatedly writes it to cell `s` while `s < r_i`; one random
/// write wins per round; after stabilization the processor with `s == r_i`
/// writes its index to `output`.
///
/// `bids` may contain -inf (zero-fitness processors never participate).
/// Requires at least one finite bid.  Shared memory used: 2 cells.
[[nodiscard]] RaceResult crcw_max_race(std::span<const double> bids,
                                       std::uint64_t machine_seed);

/// Full logarithmic-bidding selection at the PRAM level: draws
/// r_i = log(u_i)/f_i for f_i > 0 (processor-local computation, not charged
/// to shared memory), then races.  Returns the RaceResult whose `winner` is
/// the selected processor.
[[nodiscard]] RaceResult crcw_bidding_selection(std::span<const double> fitness,
                                                std::uint64_t draw_seed,
                                                std::uint64_t machine_seed);

/// Outcome of an EREW reduction/scan program.
struct ErewResult {
  std::size_t winner = 0;
  std::uint64_t rounds = 0;
  std::size_t memory_cells = 0;  ///< shared memory footprint (O(n))
};

/// Binary-tree maximum on the EREW machine: O(ceil(log2 n)) rounds, O(n)
/// cells.  Ties resolve to the smaller index (library-wide rule).
[[nodiscard]] ErewResult erew_tree_max(std::span<const double> values);

/// Section I's prefix-sum-based roulette selection on the EREW machine:
/// up-sweep/down-sweep inclusive scan (2*ceil(log2 n) rounds), processor 0
/// draws R = u * p_{n-1}, every processor checks p_{i-1} <= R < p_i.
[[nodiscard]] ErewResult erew_prefix_sum_selection(std::span<const double> fitness,
                                                   std::uint64_t draw_seed);

}  // namespace lrb::pram
