#include "pram/machine.hpp"

#include "rng/uniform.hpp"

namespace lrb::pram {

// ---------------------------------------------------------------------------
// CrcwMachine

CrcwMachine::CrcwMachine(std::size_t num_cells, std::uint64_t seed)
    : cells_(num_cells, 0.0), arbiter_(seed) {
  LRB_REQUIRE(num_cells > 0, InvalidArgumentError,
              "CrcwMachine needs at least one cell");
}

double CrcwMachine::read(std::size_t cell) {
  LRB_REQUIRE(cell < cells_.size(), InvalidArgumentError,
              "CrcwMachine::read: cell out of range");
  ++stats_.reads;
  return cells_[cell];
}

void CrcwMachine::write(std::size_t cell, double value) {
  LRB_REQUIRE(cell < cells_.size(), InvalidArgumentError,
              "CrcwMachine::write: cell out of range");
  ++stats_.writes;
  pending_[cell].push_back(value);
}

std::size_t CrcwMachine::commit() {
  ++stats_.rounds;
  const std::size_t written = pending_.size();
  for (auto& [cell, candidates] : pending_) {
    // The paper's rule: "a randomly selected one among the multiple memory
    // write operations succeeds".
    const std::size_t winner = static_cast<std::size_t>(
        rng::uniform_below(arbiter_, candidates.size()));
    cells_[cell] = candidates[winner];
    stats_.write_conflicts += candidates.size() - 1;
  }
  pending_.clear();
  return written;
}

void CrcwMachine::poke(std::size_t cell, double value) {
  LRB_REQUIRE(cell < cells_.size(), InvalidArgumentError,
              "CrcwMachine::poke: cell out of range");
  cells_[cell] = value;
}

double CrcwMachine::peek(std::size_t cell) const {
  LRB_REQUIRE(cell < cells_.size(), InvalidArgumentError,
              "CrcwMachine::peek: cell out of range");
  return cells_[cell];
}

// ---------------------------------------------------------------------------
// ErewMachine

ErewMachine::ErewMachine(std::size_t num_cells) : cells_(num_cells, 0.0) {
  LRB_REQUIRE(num_cells > 0, InvalidArgumentError,
              "ErewMachine needs at least one cell");
}

// PRAM rounds have a read subcycle followed by a write subcycle; EREW
// exclusivity is per subcycle: at most one read and at most one write per
// cell per round.  Reads always observe the previous round's value.
double ErewMachine::read(std::size_t cell) {
  LRB_REQUIRE(cell < cells_.size(), InvalidArgumentError,
              "ErewMachine::read: cell out of range");
  LRB_REQUIRE(read_this_round_.insert(cell).second, PramModelViolation,
              "EREW violation: concurrent read of cell " + std::to_string(cell));
  ++stats_.reads;
  return cells_[cell];
}

void ErewMachine::write(std::size_t cell, double value) {
  LRB_REQUIRE(cell < cells_.size(), InvalidArgumentError,
              "ErewMachine::write: cell out of range");
  LRB_REQUIRE(write_this_round_.emplace(cell, value).second, PramModelViolation,
              "EREW violation: concurrent write of cell " + std::to_string(cell));
  ++stats_.writes;
}

void ErewMachine::commit() {
  ++stats_.rounds;
  for (const auto& [cell, value] : write_this_round_) cells_[cell] = value;
  read_this_round_.clear();
  write_this_round_.clear();
}

void ErewMachine::poke(std::size_t cell, double value) {
  LRB_REQUIRE(cell < cells_.size(), InvalidArgumentError,
              "ErewMachine::poke: cell out of range");
  cells_[cell] = value;
}

double ErewMachine::peek(std::size_t cell) const {
  LRB_REQUIRE(cell < cells_.size(), InvalidArgumentError,
              "ErewMachine::peek: cell out of range");
  return cells_[cell];
}

}  // namespace lrb::pram
