#include "pram/programs.hpp"

#include <cmath>
#include <limits>

#include "common/math.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::pram {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

RaceResult crcw_max_race(std::span<const double> bids,
                         std::uint64_t machine_seed) {
  LRB_REQUIRE(!bids.empty(), InvalidArgumentError,
              "crcw_max_race: empty bid vector");

  RaceResult result;
  std::vector<std::size_t> active;
  active.reserve(bids.size());
  for (std::size_t i = 0; i < bids.size(); ++i) {
    LRB_REQUIRE(!std::isnan(bids[i]), InvalidArgumentError,
                "crcw_max_race: NaN bid");
    if (bids[i] > kNegInf) active.push_back(i);
  }
  LRB_REQUIRE(!active.empty(), InvalidArgumentError,
              "crcw_max_race: no finite bids");
  result.initially_active = active.size();

  // Shared memory: cell 0 = s, cell 1 = output.  The paper initializes s
  // "to zero", which only types-checks with its do-while reading (all k
  // processors are active in the first iteration); with negative bids we
  // realize that reading by initializing s to -inf.
  CrcwMachine machine(2, machine_seed);
  machine.poke(0, kNegInf);

  // while s < r_i do s <- r_i   (one synchronous round per iteration)
  std::vector<std::size_t> next;
  next.reserve(active.size());
  while (true) {
    next.clear();
    // Read subcycle: every active processor reads s (concurrent read OK).
    for (std::size_t i : active) {
      const double s = machine.read(0);
      if (s < bids[i]) {
        machine.write(0, bids[i]);
        next.push_back(i);
      }
    }
    if (next.empty()) break;  // all active processors observed s >= r_i
    ++result.rounds;
    result.active_per_round.push_back(next.size());
    machine.commit();
    // Processors whose condition just became false exit their loop; the
    // others retry next round.  (We keep them all in `next` and re-test at
    // the top — identical semantics, since the test is s < r_i.)
    active.swap(next);
  }
  result.write_attempts = machine.stats().writes;

  // Step 2: barrier (implicit between rounds).  Step 3: if s == r_i then
  // output <- i.  Exact float equality is intentional — s holds a bid that
  // was written verbatim.  Duplicate bids (possible when two processors
  // share a fitness and collide in 53 bits) both write; CRCW arbitration
  // picks one uniformly, which is the correct tie semantics.
  const double s_final = machine.peek(0);
  for (std::size_t i = 0; i < bids.size(); ++i) {
    if (bids[i] == s_final) {
      machine.write(1, static_cast<double>(i));
    }
  }
  machine.commit();
  result.winner = static_cast<std::size_t>(machine.peek(1));
  return result;
}

RaceResult crcw_bidding_selection(std::span<const double> fitness,
                                  std::uint64_t draw_seed,
                                  std::uint64_t machine_seed) {
  (void)checked_fitness_total(fitness);
  rng::Xoshiro256StarStar gen(draw_seed);
  std::vector<double> bids(fitness.size(), kNegInf);
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] > 0.0) bids[i] = rng::log_bid(gen, fitness[i]);
  }
  return crcw_max_race(bids, machine_seed);
}

ErewResult erew_tree_max(std::span<const double> values) {
  LRB_REQUIRE(!values.empty(), InvalidArgumentError,
              "erew_tree_max: empty input");
  const std::size_t n = values.size();
  const std::size_t m = lrb::next_pow2(n);

  // Heap layout: nodes 1..2m-1; leaves at m..2m-1.  Two planes of cells:
  // plane 0 = value, plane 1 = argmax index.
  const std::size_t value_base = 0;
  const std::size_t index_base = 2 * m;
  ErewMachine machine(4 * m);
  ErewResult result;
  result.memory_cells = 4 * m;

  for (std::size_t i = 0; i < m; ++i) {
    machine.poke(value_base + m + i, i < n ? values[i] : kNegInf);
    machine.poke(index_base + m + i, static_cast<double>(i < n ? i : n - 1));
  }

  // Up-sweep: level by level, one processor per internal node.
  for (std::size_t width = m / 2; width >= 1; width /= 2) {
    for (std::size_t p = width; p < 2 * width; ++p) {
      const double vl = machine.read(value_base + 2 * p);
      const double vr = machine.read(value_base + 2 * p + 1);
      const double il = machine.read(index_base + 2 * p);
      const double ir = machine.read(index_base + 2 * p + 1);
      // Smaller index wins ties (vl first).
      if (vl >= vr) {
        machine.write(value_base + p, vl);
        machine.write(index_base + p, il);
      } else {
        machine.write(value_base + p, vr);
        machine.write(index_base + p, ir);
      }
    }
    machine.commit();
    ++result.rounds;
    if (width == 1) break;
  }
  result.winner = static_cast<std::size_t>(machine.peek(index_base + 1));
  return result;
}

ErewResult erew_prefix_sum_selection(std::span<const double> fitness,
                                     std::uint64_t draw_seed) {
  const std::size_t n = fitness.size();
  (void)checked_fitness_total(fitness);
  const std::size_t m = lrb::next_pow2(n);
  const std::uint32_t levels = lrb::ceil_log2(m);

  // Cell planes: work[0..m) (Blelloch scratch), f[m..m+n), p[...] inclusive
  // prefixes, r[...] broadcast copies of R, plus one output cell.
  const std::size_t work_base = 0;
  const std::size_t f_base = m;
  const std::size_t p_base = m + n;
  const std::size_t r_base = m + 2 * n;
  const std::size_t out_cell = m + 3 * n;
  ErewMachine machine(m + 3 * n + 1);
  ErewResult result;
  result.memory_cells = m + 3 * n + 1;

  for (std::size_t i = 0; i < m; ++i) {
    machine.poke(work_base + i, i < n ? fitness[i] : 0.0);
  }
  for (std::size_t i = 0; i < n; ++i) machine.poke(f_base + i, fitness[i]);

  // Blelloch up-sweep: work[j + 2^{d+1} - 1] += work[j + 2^d - 1].
  for (std::uint32_t d = 0; d < levels; ++d) {
    const std::size_t stride = std::size_t{1} << (d + 1);
    const std::size_t half = std::size_t{1} << d;
    for (std::size_t j = 0; j + stride <= m; j += stride) {
      const double a = machine.read(work_base + j + half - 1);
      const double b = machine.read(work_base + j + stride - 1);
      machine.write(work_base + j + stride - 1, a + b);
    }
    machine.commit();
    ++result.rounds;
  }

  // Root clear (one processor, one round).
  const double total = machine.peek(work_base + m - 1);
  machine.write(work_base + m - 1, 0.0);
  machine.commit();
  ++result.rounds;

  // Down-sweep: left gets parent, right gets parent + old left.
  for (std::uint32_t d = levels; d-- > 0;) {
    const std::size_t stride = std::size_t{1} << (d + 1);
    const std::size_t half = std::size_t{1} << d;
    for (std::size_t j = 0; j + stride <= m; j += stride) {
      const double left = machine.read(work_base + j + half - 1);
      const double parent = machine.read(work_base + j + stride - 1);
      machine.write(work_base + j + half - 1, parent);
      machine.write(work_base + j + stride - 1, parent + left);
    }
    machine.commit();
    ++result.rounds;
  }

  // Inclusive prefixes: p_i = exclusive_i + f_i (processor i reads its two
  // private cells).
  for (std::size_t i = 0; i < n; ++i) {
    const double e = machine.read(work_base + i);
    const double f = machine.read(f_base + i);
    machine.write(p_base + i, e + f);
  }
  machine.commit();
  ++result.rounds;

  // Processor 0 draws R = rand() * p_{n-1}.
  rng::Xoshiro256StarStar gen(draw_seed);
  {
    const double p_last = machine.read(p_base + n - 1);
    LRB_ASSERT(lrb::is_close(p_last, total, 1e-9),
               "scan total must match up-sweep total");
    const double r_value = rng::u01_closed_open(gen) * p_last;
    machine.write(r_base + 0, r_value);
    machine.commit();
    ++result.rounds;
  }

  // EREW broadcast of R by doubling: round d copies r[j] -> r[j + 2^d].
  for (std::size_t have = 1; have < n; have *= 2) {
    const std::size_t copies = std::min(have, n - have);
    for (std::size_t j = 0; j < copies; ++j) {
      const double v = machine.read(r_base + j);
      machine.write(r_base + j + have, v);
    }
    machine.commit();
    ++result.rounds;
  }

  // Shadow copy so processor i can read p_{i-1} without a concurrent read:
  // processor i copies its own p_i into work[i] (work plane is free now).
  for (std::size_t i = 0; i < n; ++i) {
    const double v = machine.read(p_base + i);
    machine.write(work_base + i, v);
  }
  machine.commit();
  ++result.rounds;

  // Check p_{i-1} <= R < p_i; the unique holder writes its index.
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = i == 0 ? 0.0 : machine.read(work_base + i - 1);
    const double hi = machine.read(p_base + i);
    const double r_value = machine.read(r_base + i);
    if (lo <= r_value && r_value < hi) {
      machine.write(out_cell, static_cast<double>(i));
    }
  }
  machine.commit();
  ++result.rounds;

  result.winner = static_cast<std::size_t>(machine.peek(out_cell));
  return result;
}

}  // namespace lrb::pram
