// xoshiro256** 1.0 (Blackman & Vigna): the library's default engine.
//
// Chosen as the default because it is ~3x faster than MT19937-64 with
// excellent statistical quality, and it supports jump()/long_jump() for
// provably non-overlapping parallel substreams — which the thread-pool
// selection paths rely on for reproducible parallel runs.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

#include "rng/splitmix64.hpp"

namespace lrb::rng {

class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 state bits through SplitMix64 as the authors recommend.
  constexpr explicit Xoshiro256StarStar(std::uint64_t seed = 1) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
    // An all-zero state is a fixed point; SplitMix64 cannot produce four
    // zero outputs in a row from any seed, but keep the guard explicit.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  constexpr void discard(std::uint64_t n) noexcept {
    for (std::uint64_t i = 0; i < n; ++i) (void)(*this)();
  }

  /// Advances the state by 2^128 steps: partitions the period into 2^128
  /// non-overlapping substreams for parallel workers.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    apply_polynomial(kJump);
  }

  /// Advances by 2^192 steps (substreams of substreams).
  constexpr void long_jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kLongJump = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    apply_polynomial(kLongJump);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  friend constexpr bool operator==(const Xoshiro256StarStar&,
                                   const Xoshiro256StarStar&) = default;

 private:
  constexpr void apply_polynomial(const std::array<std::uint64_t, 4>& poly) noexcept {
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : poly) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          acc[0] ^= state_[0];
          acc[1] ^= state_[1];
          acc[2] ^= state_[2];
          acc[3] ^= state_[3];
        }
        (void)(*this)();
      }
    }
    state_ = acc;
  }

  std::array<std::uint64_t, 4> state_{};
};

/// The engine the library uses unless the caller asks for another.
using DefaultRng = Xoshiro256StarStar;

}  // namespace lrb::rng
