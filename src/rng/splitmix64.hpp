// SplitMix64: Steele, Lea & Flood's fast 64-bit mixer.
//
// Used in two roles:
//  * as the canonical seed-expansion function for the other engines
//    (a single user seed deterministically yields arbitrarily many
//    well-distributed 64-bit state words), and
//  * as a standalone engine for throughput baselines.
#pragma once

#include <cstdint>
#include <limits>

namespace lrb::rng {

/// One stateless SplitMix64 step: mixes `x` into a 64-bit output.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// SplitMix64 engine.  Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
      : state_(seed) {}

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Skips `n` outputs in O(1) (the state advances linearly).
  constexpr void discard(std::uint64_t n) noexcept {
    state_ += n * 0x9e3779b97f4a7c15ULL;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  friend constexpr bool operator==(const SplitMix64&, const SplitMix64&) = default;

 private:
  std::uint64_t state_;
};

}  // namespace lrb::rng
