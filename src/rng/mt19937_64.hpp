// MT19937-64: Matsumoto & Nishimura's 64-bit Mersenne Twister.
//
// The paper's experiments use the Mersenne Twister [Matsumoto & Nishimura
// 1998] for rand(); we carry our own implementation so the reproduction does
// not silently depend on a standard-library detail, and verify it bit-exactly
// against std::mt19937_64 in tests/rng/mt19937_64_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace lrb::rng {

class Mt19937_64 {
 public:
  using result_type = std::uint64_t;

  static constexpr std::size_t kStateSize = 312;
  static constexpr std::uint64_t kDefaultSeed = 5489ULL;

  explicit Mt19937_64(std::uint64_t seed = kDefaultSeed) noexcept;

  void seed(std::uint64_t value) noexcept;

  result_type operator()() noexcept;

  void discard(std::uint64_t n) noexcept {
    for (std::uint64_t i = 0; i < n; ++i) (void)(*this)();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  friend bool operator==(const Mt19937_64& a, const Mt19937_64& b) noexcept {
    return a.index_ == b.index_ && a.state_ == b.state_;
  }

 private:
  void twist() noexcept;

  std::array<std::uint64_t, kStateSize> state_{};
  std::size_t index_ = kStateSize;
};

}  // namespace lrb::rng
