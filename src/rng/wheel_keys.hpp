// Per-wheel stream keying for multi-tenant selection (core/wheel_set.hpp).
//
// A WheelSet holds K independent wheels that must behave exactly as K
// independently seeded selectors: wheel w's deterministic bid for
// (draw t, item i) is rng::deterministic_bid(wheel_seed(set_seed, w), t, i, f)
// — the SAME pure function every single-wheel selector uses, just with a
// derived seed.  Two properties follow:
//
//   * statistical isolation: wheel_seed is the canonical SplitMix64
//     seed-expansion (the w-th output of a SplitMix64 engine seeded with
//     set_seed), so distinct wheels get well-separated Philox keys — no
//     shared counters, no stream overlap by construction;
//   * traffic isolation: a wheel's draw sequence is a pure function of
//     (its seed, its cursor), so draws on neighboring wheels — batched
//     together or not — can never perturb it.  Both are tested in
//     tests/core/wheel_set_isolation_test.cpp.
#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace lrb::rng {

/// The Philox key of wheel `wheel` inside an arena seeded with `set_seed`:
/// the wheel-th output of SplitMix64(set_seed) (see SplitMix64::discard —
/// the engine's state after w steps is set_seed + (w + 1) * gamma).
[[nodiscard]] constexpr std::uint64_t wheel_seed(std::uint64_t set_seed,
                                                 std::uint64_t wheel) noexcept {
  return splitmix64_mix(set_seed + wheel * 0x9e3779b97f4a7c15ULL);
}

}  // namespace lrb::rng
