// Canonical floating-point draws and the distributions the selection
// algorithms consume.
//
// The paper's rand() is uniform on [0,1).  Its bid is r = log(rand())/f,
// which is -inf when rand() returns exactly 0.  A -inf bid merely guarantees
// that processor loses the race (harmless but wasteful), so the library
// draws bids from the open-closed interval (0,1] where log() is always
// finite.  The selection distribution is unchanged: {0} has measure zero.
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>
#include <random>
#include <span>

namespace lrb::rng {

/// Concept for the engines this library accepts: 64-bit output covering the
/// full range, like all engines in lrb::rng and std::mt19937_64.
template <typename G>
concept Engine64 = std::uniform_random_bit_generator<std::remove_reference_t<G>> &&
                   std::same_as<typename std::remove_reference_t<G>::result_type,
                                std::uint64_t>;

/// Uniform on [0,1), 53-bit resolution (the classic "canonical" mapping;
/// matches the paper's rand() contract).
template <Engine64 G>
[[nodiscard]] double u01_closed_open(G&& gen) noexcept {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// THE bits -> (0,1] mapping: ((bits >> 11) + 1) * 2^-53, 53-bit resolution.
///
/// This is the library's single definition of the open-closed uniform.  Both
/// the stream engines (u01_open_closed below) and the counter-based
/// deterministic paths (rng::deterministic_bid, core::DeterministicBidder,
/// core::DeterministicDrawKernel, sample_without_replacement) consume raw
/// 64-bit words through this one function, so the replay contract — same
/// bits, same double, same winner — cannot drift between call sites.
/// Pinned bit-for-bit in tests/rng/uniform_test.cpp.
[[nodiscard]] constexpr double u01_open_closed_from_bits(std::uint64_t bits) noexcept {
  return static_cast<double>((bits >> 11) + 1) * 0x1.0p-53;
}

/// Uniform on (0,1], 53-bit resolution.  log(u01_open_closed()) is always
/// finite; use this for bid generation.
template <Engine64 G>
[[nodiscard]] double u01_open_closed(G&& gen) noexcept {
  return u01_open_closed_from_bits(gen());
}

/// Bulk fill of (0,1] uniforms — one engine step per element, in element
/// order, so a filled block consumes exactly out.size() draws and matches a
/// loop of u01_open_closed() calls bit for bit.  The batched selection
/// kernels (core/draw_many.hpp) fill a block at a time so the bid loop that
/// follows is free of RNG calls and vectorizer-friendly.
template <Engine64 G>
void fill_u01_open_closed(G&& gen, std::span<double> out) noexcept {
  for (double& x : out) x = u01_open_closed(gen);
}

/// Uniform on (0,1) — both endpoints excluded.
template <Engine64 G>
[[nodiscard]] double u01_open_open(G&& gen) noexcept {
  return (static_cast<double>(gen() >> 12) + 0.5) * 0x1.0p-52;
}

/// Uniform integer in [0, bound) by Lemire's multiply-shift rejection method
/// (unbiased, no modulo).
template <Engine64 G>
[[nodiscard]] std::uint64_t uniform_below(G&& gen, std::uint64_t bound) noexcept {
  // Degenerate bound: the only valid return is 0.
  if (bound <= 1) return 0;
  while (true) {
    const std::uint64_t x = gen();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
    // Rejection zone: accept unless low < 2^64 mod bound.
    const std::uint64_t threshold = (0 - bound) % bound;
    if (low >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

/// Exponential with rate `lambda` (> 0) by inversion.
template <Engine64 G>
[[nodiscard]] double exponential(G&& gen, double lambda) noexcept {
  return -std::log(u01_open_closed(gen)) / lambda;
}

/// Standard Gumbel(0,1): -log(-log(U)).
template <Engine64 G>
[[nodiscard]] double gumbel(G&& gen) noexcept {
  return -std::log(-std::log(u01_open_open(gen)));
}

/// The paper's logarithmic random bid for fitness f > 0:
///   r = log(u)/f,  u ~ Uniform(0,1].
/// r is in (-inf, 0]; larger is better.  Exactly equivalent to negating an
/// Exponential(f) arrival time, hence the winner of max(r_i) is index i with
/// probability f_i / sum(f).
template <Engine64 G>
[[nodiscard]] double log_bid(G&& gen, double fitness) noexcept {
  return std::log(u01_open_closed(gen)) / fitness;
}

/// Stateless variant used by counter-based deterministic parallel paths:
/// forms the bid from a pre-drawn uniform.
[[nodiscard]] inline double log_bid_from_uniform(double u, double fitness) noexcept {
  return std::log(u) / fitness;
}

/// The Efraimidis–Spirakis key u^(1/w) for ablation A2.  Mathematically the
/// winner distribution equals log-bidding (it is exp(log(u)/w)), but the
/// direct form underflows to 0 for small w / small u, collapsing ties —
/// measured in bench/ablation_key_formulations.
template <Engine64 G>
[[nodiscard]] double es_key(G&& gen, double weight) noexcept {
  return std::pow(u01_open_closed(gen), 1.0 / weight);
}

/// The biased "independent roulette" draw r = f * u from Cecilia et al.,
/// kept as the paper's baseline.
template <Engine64 G>
[[nodiscard]] double independent_draw(G&& gen, double fitness) noexcept {
  return fitness * u01_closed_open(gen);
}

}  // namespace lrb::rng
