// Seed management and stream splitting.
//
// Every stochastic component in lrb takes an explicit 64-bit seed; nothing
// reads std::random_device behind the caller's back.  SeedSequence expands
// one master seed into decorrelated child seeds for substreams (threads,
// repetitions, ants, ...).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "rng/splitmix64.hpp"

namespace lrb::rng {

/// Expands a master seed into named/indexed child seeds.
///
/// child(i) is a SplitMix64-mixed function of (master, i); children are
/// decorrelated and reproducible.  Deriving by both index and label keeps
/// unrelated components (e.g. "workload" vs "selector") on provably
/// different streams even when they use the same index.
class SeedSequence {
 public:
  constexpr explicit SeedSequence(std::uint64_t master) noexcept
      : master_(master) {}

  [[nodiscard]] constexpr std::uint64_t master() const noexcept { return master_; }

  /// The i-th child seed.
  [[nodiscard]] constexpr std::uint64_t child(std::uint64_t index) const noexcept {
    return splitmix64_mix(splitmix64_mix(master_ ^ 0xa02bdbf7bb3c0a7ULL) + index);
  }

  /// A labeled child: hashes the label into the stream id.
  [[nodiscard]] std::uint64_t child(std::string_view label,
                                    std::uint64_t index = 0) const noexcept;

  /// A derived sequence (for hierarchies: run -> thread -> draw).
  [[nodiscard]] constexpr SeedSequence subsequence(std::uint64_t index) const noexcept {
    return SeedSequence(child(index));
  }

  /// n decorrelated child seeds (convenience for spawning engine vectors).
  [[nodiscard]] std::vector<std::uint64_t> children(std::size_t n) const;

 private:
  std::uint64_t master_;
};

/// FNV-1a 64-bit hash; used to fold labels into seed streams.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace lrb::rng
