// Umbrella header + runtime engine selection for benches/CLI tools that let
// the user pick an engine by name (ablation A3).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rng/deterministic_bid.hpp"
#include "rng/mt19937_64.hpp"
#include "rng/philox.hpp"
#include "rng/seed.hpp"
#include "rng/splitmix64.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::rng {

/// Engines selectable by name on bench command lines.
enum class EngineKind {
  kXoshiro256StarStar,
  kMt19937_64,
  kSplitMix64,
  kPhilox4x32_10,
};

[[nodiscard]] constexpr std::string_view to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kXoshiro256StarStar: return "xoshiro256**";
    case EngineKind::kMt19937_64: return "mt19937_64";
    case EngineKind::kSplitMix64: return "splitmix64";
    case EngineKind::kPhilox4x32_10: return "philox4x32-10";
  }
  return "unknown";
}

/// Parses an engine name ("mt19937", "xoshiro", ...).  Throws
/// InvalidArgumentError on unknown names.
[[nodiscard]] EngineKind parse_engine_kind(std::string_view name);

/// All engine kinds (for sweeps).
[[nodiscard]] std::vector<EngineKind> all_engine_kinds();

/// Invokes `fn` with a freshly-seeded engine of the requested kind:
///   dispatch_engine(kind, seed, [&](auto rng) { ... });
template <typename Fn>
decltype(auto) dispatch_engine(EngineKind kind, std::uint64_t seed, Fn&& fn) {
  switch (kind) {
    case EngineKind::kMt19937_64: return fn(Mt19937_64(seed));
    case EngineKind::kSplitMix64: return fn(SplitMix64(seed));
    case EngineKind::kPhilox4x32_10: return fn(PhiloxRng(seed));
    case EngineKind::kXoshiro256StarStar:
    default: return fn(Xoshiro256StarStar(seed));
  }
}

}  // namespace lrb::rng
