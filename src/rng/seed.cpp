#include "rng/seed.hpp"

namespace lrb::rng {

std::uint64_t SeedSequence::child(std::string_view label,
                                  std::uint64_t index) const noexcept {
  return splitmix64_mix(splitmix64_mix(master_ ^ fnv1a64(label)) + index);
}

std::vector<std::uint64_t> SeedSequence::children(std::size_t n) const {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(child(i));
  return out;
}

}  // namespace lrb::rng
