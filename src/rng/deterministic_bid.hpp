// The counter-based deterministic bid: one definition for every machine.
//
// A stream-based bid (rng::log_bid) draws its uniform from whichever engine
// happens to reach the item, so the winner of draw t depends on how the items
// were divided over lanes or ranks.  The deterministic bid instead derives
// the uniform for (draw t, item i) from a Philox4x32-10 block keyed by
// (seed, t, i) — a pure function, so the argmax over any partition of the
// items is the same winner: thread-count-, rank-count- and
// partition-invariant by construction.
//
// Serial (core::DeterministicBidder), shared-memory parallel
// (batch_select_deterministic), and distributed
// (dist::distributed_bidding_deterministic) all funnel through this header,
// which is what makes their bit-equality a structural fact rather than a
// coincidence of three copies agreeing.
#pragma once

#include <cstdint>

#include "rng/philox.hpp"
#include "rng/uniform.hpp"

namespace lrb::rng {

/// The raw 64 bits item `item` consumes in deterministic draw `t` of stream
/// `seed`: Philox block (seed | counter = t, stream = item), low word.
[[nodiscard]] constexpr std::uint64_t deterministic_bits(std::uint64_t seed,
                                                         std::uint64_t t,
                                                         std::uint64_t item) noexcept {
  return philox_u64_at(seed, t, item);
}

/// The (0,1] uniform behind item `item`'s bid in draw `t` — the same
/// bits -> double mapping every stream engine uses.
[[nodiscard]] constexpr double deterministic_uniform(std::uint64_t seed,
                                                     std::uint64_t t,
                                                     std::uint64_t item) noexcept {
  return u01_open_closed_from_bits(deterministic_bits(seed, t, item));
}

/// The logarithmic bid item `item` places in draw `t`: log(u)/fitness with
/// u = deterministic_uniform(seed, t, item).  Identical arithmetic to
/// rng::log_bid, so the deterministic race has exactly the same selection
/// distribution — only the provenance of the uniform differs.
[[nodiscard]] inline double deterministic_bid(std::uint64_t seed, std::uint64_t t,
                                              std::uint64_t item,
                                              double fitness) noexcept {
  return log_bid_from_uniform(deterministic_uniform(seed, t, item), fitness);
}

}  // namespace lrb::rng
