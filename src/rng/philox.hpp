// Philox4x32-10 counter-based RNG (Salmon, Moraes, Dror & Shaw, SC'11).
//
// A counter-based generator computes the i-th random block as a pure function
// of (key, counter=i).  That property is what makes parallel selection
// *reproducible independent of thread count*: the j-th draw of a Monte-Carlo
// experiment always consumes block j no matter which worker executes it.
// src/core's deterministic parallel paths are built on this.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace lrb::rng {

/// One 128-bit Philox4x32-10 block: 4 lanes of 32 bits.
struct PhiloxBlock {
  std::array<std::uint32_t, 4> lane;

  /// Packs lanes {0,1} and {2,3} into two 64-bit words.
  [[nodiscard]] constexpr std::uint64_t u64_lo() const noexcept {
    return (static_cast<std::uint64_t>(lane[1]) << 32) | lane[0];
  }
  [[nodiscard]] constexpr std::uint64_t u64_hi() const noexcept {
    return (static_cast<std::uint64_t>(lane[3]) << 32) | lane[2];
  }
};

namespace detail {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

struct MulHiLo {
  std::uint32_t hi;
  std::uint32_t lo;
};

constexpr MulHiLo mulhilo32(std::uint32_t a, std::uint32_t b) noexcept {
  const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
  return {static_cast<std::uint32_t>(p >> 32), static_cast<std::uint32_t>(p)};
}

constexpr PhiloxBlock philox_round(PhiloxBlock ctr,
                                   std::array<std::uint32_t, 2> key) noexcept {
  const MulHiLo p0 = mulhilo32(kPhiloxM0, ctr.lane[0]);
  const MulHiLo p1 = mulhilo32(kPhiloxM1, ctr.lane[2]);
  return PhiloxBlock{{p1.hi ^ ctr.lane[1] ^ key[0], p1.lo,
                      p0.hi ^ ctr.lane[3] ^ key[1], p0.lo}};
}

}  // namespace detail

/// Computes the Philox4x32-10 block for (key, counter).  Stateless; safe to
/// call from any thread.
[[nodiscard]] constexpr PhiloxBlock philox4x32_10(
    std::array<std::uint32_t, 4> counter,
    std::array<std::uint32_t, 2> key) noexcept {
  PhiloxBlock block{counter};
  for (int round = 0; round < 10; ++round) {
    block = detail::philox_round(block, key);
    key[0] += detail::kPhiloxW0;
    key[1] += detail::kPhiloxW1;
  }
  return block;
}

/// 64-bit convenience: the i-th 128-bit block of stream `seed`, with a
/// 64-bit stream discriminator folded into the counter's upper half.
[[nodiscard]] constexpr PhiloxBlock philox_block_at(std::uint64_t seed,
                                                    std::uint64_t counter,
                                                    std::uint64_t stream = 0) noexcept {
  const std::array<std::uint32_t, 4> ctr = {
      static_cast<std::uint32_t>(counter), static_cast<std::uint32_t>(counter >> 32),
      static_cast<std::uint32_t>(stream), static_cast<std::uint32_t>(stream >> 32)};
  const std::array<std::uint32_t, 2> key = {
      static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32)};
  return philox4x32_10(ctr, key);
}

/// Stateless draw: 64 random bits fully determined by (seed, counter, stream).
[[nodiscard]] constexpr std::uint64_t philox_u64_at(std::uint64_t seed,
                                                    std::uint64_t counter,
                                                    std::uint64_t stream = 0) noexcept {
  return philox_block_at(seed, counter, stream).u64_lo();
}

/// Stateful engine view over the counter sequence.  Each 128-bit block yields
/// two 64-bit outputs before the counter advances.
class PhiloxRng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit PhiloxRng(std::uint64_t seed = 0,
                               std::uint64_t stream = 0) noexcept
      : seed_(seed), stream_(stream) {}

  constexpr result_type operator()() noexcept {
    if (phase_ == 0) {
      block_ = philox_block_at(seed_, counter_, stream_);
      phase_ = 1;
      return block_.u64_lo();
    }
    phase_ = 0;
    ++counter_;
    return block_.u64_hi();
  }

  /// O(1) skip-ahead: position the engine so the next output is output
  /// index `n` of the stream (output 2c is block c's low word, 2c+1 its
  /// high word).
  constexpr void seek(std::uint64_t n) noexcept {
    counter_ = n / 2;
    phase_ = static_cast<int>(n % 2);
    if (phase_ == 1) {
      block_ = philox_block_at(seed_, counter_, stream_);
    }
  }

  constexpr void discard(std::uint64_t n) noexcept {
    for (std::uint64_t i = 0; i < n; ++i) (void)(*this)();
  }

  /// The engine's stream parameters and output position (the `n` a seek(n)
  /// would need to land here).  Exposed so bulk fills
  /// (rng::fill_bits / fill_u01_open_closed in uniform.hpp) can hand the
  /// counter range to the SIMD Philox kernels and seek past it — the whole
  /// point of a counter-based engine is that its future outputs are
  /// addressable without stepping.
  [[nodiscard]] constexpr std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] constexpr std::uint64_t stream() const noexcept { return stream_; }
  [[nodiscard]] constexpr std::uint64_t position() const noexcept {
    return 2 * counter_ + static_cast<std::uint64_t>(phase_);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  friend constexpr bool operator==(const PhiloxRng& a, const PhiloxRng& b) noexcept {
    return a.seed_ == b.seed_ && a.stream_ == b.stream_ &&
           a.counter_ == b.counter_ && a.phase_ == b.phase_;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t counter_ = 0;
  int phase_ = 0;
  PhiloxBlock block_{};
};

}  // namespace lrb::rng
