#include "rng/engines.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace lrb::rng {

EngineKind parse_engine_kind(std::string_view name) {
  std::string low(name);
  std::transform(low.begin(), low.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "xoshiro" || low == "xoshiro256" || low == "xoshiro256**" ||
      low == "xoshiro256starstar") {
    return EngineKind::kXoshiro256StarStar;
  }
  if (low == "mt" || low == "mt19937" || low == "mt19937_64" ||
      low == "mersenne" || low == "mersenne_twister") {
    return EngineKind::kMt19937_64;
  }
  if (low == "splitmix" || low == "splitmix64" || low == "sm64") {
    return EngineKind::kSplitMix64;
  }
  if (low == "philox" || low == "philox4x32" || low == "philox4x32-10") {
    return EngineKind::kPhilox4x32_10;
  }
  throw InvalidArgumentError("unknown RNG engine '" + std::string(name) +
                             "' (expected xoshiro|mt19937|splitmix64|philox)");
}

std::vector<EngineKind> all_engine_kinds() {
  return {EngineKind::kXoshiro256StarStar, EngineKind::kMt19937_64,
          EngineKind::kSplitMix64, EngineKind::kPhilox4x32_10};
}

}  // namespace lrb::rng
