#include "rng/mt19937_64.hpp"

namespace lrb::rng {

namespace {
constexpr std::size_t kN = Mt19937_64::kStateSize;  // 312
constexpr std::size_t kM = 156;
constexpr std::uint64_t kMatrixA = 0xb5026f5aa96619e9ULL;
constexpr std::uint64_t kUpperMask = 0xffffffff80000000ULL;  // most significant 33 bits
constexpr std::uint64_t kLowerMask = 0x7fffffffULL;          // least significant 31 bits
}  // namespace

Mt19937_64::Mt19937_64(std::uint64_t seed_value) noexcept { seed(seed_value); }

void Mt19937_64::seed(std::uint64_t value) noexcept {
  state_[0] = value;
  for (std::size_t i = 1; i < kN; ++i) {
    state_[i] =
        6364136223846793005ULL * (state_[i - 1] ^ (state_[i - 1] >> 62)) + i;
  }
  index_ = kN;  // force a twist on the first draw
}

void Mt19937_64::twist() noexcept {
  for (std::size_t i = 0; i < kN; ++i) {
    const std::uint64_t x =
        (state_[i] & kUpperMask) | (state_[(i + 1) % kN] & kLowerMask);
    std::uint64_t x_a = x >> 1;
    if (x & 1ULL) x_a ^= kMatrixA;
    state_[i] = state_[(i + kM) % kN] ^ x_a;
  }
  index_ = 0;
}

Mt19937_64::result_type Mt19937_64::operator()() noexcept {
  if (index_ >= kN) twist();
  std::uint64_t y = state_[index_++];
  y ^= (y >> 29) & 0x5555555555555555ULL;
  y ^= (y << 17) & 0x71d67fffeda60000ULL;
  y ^= (y << 37) & 0xfff7eee000000000ULL;
  y ^= y >> 43;
  return y;
}

}  // namespace lrb::rng
