#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace lrb::detail {

void assert_fail(const char* expr, std::source_location loc,
                 const std::string& message) {
  std::fprintf(stderr, "lrb internal assertion failed: %s\n  at %s:%u (%s)\n  %s\n",
               expr, loc.file_name(), loc.line(), loc.function_name(),
               message.c_str());
  std::abort();
}

}  // namespace lrb::detail
