#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/obs.hpp"

namespace lrb {

InvalidFitnessError::InvalidFitnessError(const std::string& what_arg)
    : Error(what_arg) {
  LRB_OBS_COUNTER_ADD("lrb_errors_invalid_fitness_total", 1);
}

CommTimeoutError::CommTimeoutError(const std::string& what_arg)
    : CommError(what_arg) {
  LRB_OBS_COUNTER_ADD("lrb_fault_detected_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_fault_timeouts_total", 1);
}

RankFailedError::RankFailedError(std::size_t rank, const std::string& what_arg)
    : CommError(what_arg), rank_(rank) {
  LRB_OBS_COUNTER_ADD("lrb_fault_detected_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_fault_rank_failures_total", 1);
}

FaultSpecError::FaultSpecError(std::string token, const std::string& what_arg)
    : InvalidArgumentError(what_arg), token_(std::move(token)) {
  LRB_OBS_COUNTER_ADD("lrb_fault_spec_errors_total", 1);
}

PersistIoError::PersistIoError(const std::string& what_arg)
    : PersistError(what_arg) {
  LRB_OBS_COUNTER_ADD("lrb_persist_io_errors_total", 1);
}

CorruptSnapshotError::CorruptSnapshotError(const std::string& what_arg)
    : PersistError(what_arg) {
  LRB_OBS_COUNTER_ADD("lrb_persist_corrupt_snapshots_total", 1);
}

CorruptLogError::CorruptLogError(const std::string& what_arg)
    : PersistError(what_arg) {
  LRB_OBS_COUNTER_ADD("lrb_persist_corrupt_logs_total", 1);
}

}  // namespace lrb

namespace lrb::detail {

void assert_fail(const char* expr, std::source_location loc,
                 const std::string& message) {
  std::fprintf(stderr, "lrb internal assertion failed: %s\n  at %s:%u (%s)\n  %s\n",
               expr, loc.file_name(), loc.line(), loc.function_name(),
               message.c_str());
  std::abort();
}

}  // namespace lrb::detail
