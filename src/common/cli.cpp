#include "common/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace lrb {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token if it is not an option.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[i + 1];
      ++i;
    } else {
      options_[arg] = "";  // bare flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::optional<std::string> CliArgs::lookup(const std::string& name,
                                           const std::string& env) const {
  if (auto it = options_.find(name); it != options_.end()) return it->second;
  if (!env.empty()) {
    if (const char* v = std::getenv(env.c_str()); v != nullptr) {
      return std::string(v);
    }
  }
  return std::nullopt;
}

std::string CliArgs::get_string(const std::string& name, const std::string& def,
                                const std::string& env) const {
  return lookup(name, env).value_or(def);
}

std::uint64_t CliArgs::parse_u64(const std::string& text) {
  LRB_REQUIRE(!text.empty(), InvalidArgumentError, "empty integer option");
  std::string clean;
  clean.reserve(text.size());
  for (char c : text) {
    if (c != '_' && c != ',') clean += c;
  }
  // Scientific shorthand: "1e9", "2.5e6".
  if (clean.find('e') != std::string::npos ||
      clean.find('E') != std::string::npos ||
      clean.find('.') != std::string::npos) {
    char* end = nullptr;
    const double v = std::strtod(clean.c_str(), &end);
    LRB_REQUIRE(end != nullptr && *end == '\0' && v >= 0 &&
                    v <= 1.8446744073709552e19 && std::floor(v) == v,
                InvalidArgumentError,
                "cannot parse '" + text + "' as a non-negative integer");
    return static_cast<std::uint64_t>(v);
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(clean.c_str(), &end, 10);
  LRB_REQUIRE(end != nullptr && *end == '\0', InvalidArgumentError,
              "cannot parse '" + text + "' as a non-negative integer");
  return v;
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t def,
                               const std::string& env) const {
  const auto v = lookup(name, env);
  return v ? parse_u64(*v) : def;
}

double CliArgs::get_double(const std::string& name, double def,
                           const std::string& env) const {
  const auto v = lookup(name, env);
  if (!v) return def;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  LRB_REQUIRE(end != nullptr && *end == '\0', InvalidArgumentError,
              "cannot parse '" + *v + "' as a double");
  return d;
}

bool CliArgs::get_bool(const std::string& name, bool def,
                       const std::string& env) const {
  const auto v = lookup(name, env);
  if (!v) return def;
  if (v->empty()) return true;  // bare flag
  std::string low = *v;
  std::transform(low.begin(), low.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "1" || low == "true" || low == "yes" || low == "on") return true;
  if (low == "0" || low == "false" || low == "no" || low == "off") return false;
  throw InvalidArgumentError("cannot parse '" + *v + "' as a boolean");
}

}  // namespace lrb
