// Minimal command-line parsing for the bench/example binaries.
//
// Supports `--name=value`, `--name value` and boolean `--flag` forms, with
// environment-variable fallbacks so CI can scale experiments without editing
// command lines (e.g. LRB_ITERS=1000000000 reproduces the paper's 1e9 draws).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lrb {

class CliArgs {
 public:
  /// Parses argv.  Unknown options are collected and reported by
  /// `unknown_options()`; positional arguments by `positionals()`.
  CliArgs(int argc, const char* const* argv);

  /// True if `--name` was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String option: `--name=value` / `--name value`, else env fallback,
  /// else `def`.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def,
                                       const std::string& env = "") const;

  /// Integer option with env fallback.  Accepts scientific shorthand
  /// ("1e9") and thousands separators ("1_000_000").
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t def,
                                      const std::string& env = "") const;

  [[nodiscard]] double get_double(const std::string& name, double def,
                                  const std::string& env = "") const;

  /// Boolean flag: present (no value) or explicit true/false/1/0/yes/no.
  [[nodiscard]] bool get_bool(const std::string& name, bool def,
                              const std::string& env = "") const;

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  [[nodiscard]] const std::vector<std::string>& unknown_values() const {
    return positionals_;
  }
  [[nodiscard]] const std::string& program_name() const { return program_; }

  /// Parses "1e9", "1_000_000", "42" into u64.  Throws InvalidArgumentError
  /// on garbage.  Exposed for tests.
  static std::uint64_t parse_u64(const std::string& text);

 private:
  [[nodiscard]] std::optional<std::string> lookup(const std::string& name,
                                                  const std::string& env) const;

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positionals_;
};

}  // namespace lrb
