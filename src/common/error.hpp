// Error handling primitives shared by every lrb module.
//
// The library throws typed exceptions for user errors (bad fitness vectors,
// malformed parameters) and uses LRB_ASSERT for internal invariants that
// indicate a library bug rather than a user mistake.
#pragma once

#include <cstddef>
#include <source_location>
#include <stdexcept>
#include <string>

namespace lrb {

/// Base class of every exception thrown by lrb.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A fitness vector violated a precondition (negative entry, NaN, empty,
/// or all-zero where a positive total is required).
///
/// The constructor is out-of-line (common/error.cpp): every construction —
/// i.e. every rejected draw, at any of the ~dozen throw sites — increments
/// the obs counter `lrb_errors_invalid_fitness_total`, so rejection rates
/// are countable in production without touching each site.
class InvalidFitnessError : public Error {
 public:
  explicit InvalidFitnessError(const std::string& what_arg);
};

/// A parameter was outside its documented domain.
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// A fault-schedule spec string (fault/schedule.hpp's mini-grammar) failed
/// to parse.  Derived from InvalidArgumentError — a malformed spec is still
/// bad user input — but typed so tooling can catch it specifically, and it
/// carries the exact offending token so a CLI/CI log names what to fix, not
/// just that something was wrong.
///
/// Out-of-line constructor increments `lrb_fault_spec_errors_total`.
class FaultSpecError : public InvalidArgumentError {
 public:
  FaultSpecError(std::string token, const std::string& what_arg);

  /// The substring of the spec that failed to parse (e.g. the unknown verb,
  /// the non-numeric field value, or the whole event missing its '@').
  [[nodiscard]] const std::string& token() const noexcept { return token_; }

 private:
  std::string token_;
};

/// Base of the durability-layer exceptions (src/persist): the process-death
/// counterpart of CommError's machine faults.  Never thrown for bad caller
/// input — these mean the storage layer misbehaved (I/O failure) or handed
/// back bytes that fail verification (corruption).
class PersistError : public Error {
 public:
  using Error::Error;
};

/// A filesystem operation (open/read/write/fsync/rename) failed.  Carries
/// the errno text.  Out-of-line constructor increments
/// `lrb_persist_io_errors_total`.
class PersistIoError : public PersistError {
 public:
  explicit PersistIoError(const std::string& what_arg);
};

/// A snapshot file failed verification: bad magic, unsupported version,
/// CRC mismatch, truncation, or internally inconsistent state (e.g. a
/// positive count that does not match the values).  Restore never
/// constructs an object from such bytes.  Out-of-line constructor
/// increments `lrb_persist_corrupt_snapshots_total`.
class CorruptSnapshotError : public PersistError {
 public:
  explicit CorruptSnapshotError(const std::string& what_arg);
};

/// A draw-log record that passed CRC framing is semantically malformed
/// (unknown kind, short payload, trailing bytes).  Distinct from a torn
/// tail, which the reader handles by truncation, not by throwing (see
/// persist/draw_log.hpp).  Out-of-line constructor increments
/// `lrb_persist_corrupt_logs_total`.
class CorruptLogError : public PersistError {
 public:
  explicit CorruptLogError(const std::string& what_arg);
};

/// Base of the communication-fault exceptions a CommBackend may surface.
/// Distinct from InvalidArgumentError/InvalidFitnessError: those mean the
/// caller handed the library bad input, these mean the *machine* misbehaved —
/// which the dist layer can detect, retry, and recover from (src/fault/).
class CommError : public Error {
 public:
  using Error::Error;
};

/// An exchange exceeded its deadline (dropped or delayed message, hung
/// peer).  Transient by contract: the collective layer retries these with
/// exponential backoff (CommBackend::retry_policy) before escalating.
///
/// Out-of-line constructor (common/error.cpp): every construction — i.e.
/// every detected timeout, from the fault injector or a real MpiBackend
/// deadline — increments `lrb_fault_detected_total` and
/// `lrb_fault_timeouts_total`, so fault rates are countable in production.
class CommTimeoutError : public CommError {
 public:
  explicit CommTimeoutError(const std::string& what_arg);
};

/// A rank failed permanently (fail-stop).  Never retried: the recovery
/// driver (fault/recovery.hpp) reshards onto the survivors and resumes from
/// the deterministic cursor instead.  Carries the failed rank so recovery
/// knows who to exclude.
///
/// Out-of-line constructor increments `lrb_fault_detected_total` and
/// `lrb_fault_rank_failures_total`.
class RankFailedError : public CommError {
 public:
  RankFailedError(std::size_t rank, const std::string& what_arg);

  /// The rank that failed (as numbered by the topology that detected it).
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

 private:
  std::size_t rank_;
};

/// The PRAM simulator detected an access that the configured machine model
/// forbids (e.g. a read/write conflict under EREW rules).
class PramModelViolation : public Error {
 public:
  using Error::Error;
};

namespace detail {
/// Aborts with a readable message.  Out-of-line so the assert macro stays
/// cheap at call sites.
[[noreturn]] void assert_fail(const char* expr, std::source_location loc,
                              const std::string& message);
}  // namespace detail

}  // namespace lrb

/// Internal-invariant check.  Enabled in all build types: the algorithms in
/// this library are cheap relative to their surrounding Monte-Carlo loops and
/// silent corruption of a sampler is far worse than a predictable abort.
#define LRB_ASSERT(expr, message)                                     \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::lrb::detail::assert_fail(#expr, std::source_location::current(), \
                                 (message));                          \
    }                                                                 \
  } while (false)

/// Precondition check that throws a typed exception (user-facing).
#define LRB_REQUIRE(expr, exception_type, message) \
  do {                                             \
    if (!(expr)) [[unlikely]] {                    \
      throw exception_type(message);               \
    }                                              \
  } while (false)
