// Error handling primitives shared by every lrb module.
//
// The library throws typed exceptions for user errors (bad fitness vectors,
// malformed parameters) and uses LRB_ASSERT for internal invariants that
// indicate a library bug rather than a user mistake.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace lrb {

/// Base class of every exception thrown by lrb.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A fitness vector violated a precondition (negative entry, NaN, empty,
/// or all-zero where a positive total is required).
///
/// The constructor is out-of-line (common/error.cpp): every construction —
/// i.e. every rejected draw, at any of the ~dozen throw sites — increments
/// the obs counter `lrb_errors_invalid_fitness_total`, so rejection rates
/// are countable in production without touching each site.
class InvalidFitnessError : public Error {
 public:
  explicit InvalidFitnessError(const std::string& what_arg);
};

/// A parameter was outside its documented domain.
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// The PRAM simulator detected an access that the configured machine model
/// forbids (e.g. a read/write conflict under EREW rules).
class PramModelViolation : public Error {
 public:
  using Error::Error;
};

namespace detail {
/// Aborts with a readable message.  Out-of-line so the assert macro stays
/// cheap at call sites.
[[noreturn]] void assert_fail(const char* expr, std::source_location loc,
                              const std::string& message);
}  // namespace detail

}  // namespace lrb

/// Internal-invariant check.  Enabled in all build types: the algorithms in
/// this library are cheap relative to their surrounding Monte-Carlo loops and
/// silent corruption of a sampler is far worse than a predictable abort.
#define LRB_ASSERT(expr, message)                                     \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::lrb::detail::assert_fail(#expr, std::source_location::current(), \
                                 (message));                          \
    }                                                                 \
  } while (false)

/// Precondition check that throws a typed exception (user-facing).
#define LRB_REQUIRE(expr, exception_type, message) \
  do {                                             \
    if (!(expr)) [[unlikely]] {                    \
      throw exception_type(message);               \
    }                                              \
  } while (false)
