// Wall-clock timing helpers for benches and examples.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

namespace lrb {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t elapsed_nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Best-of-`reps` wall-clock measurement: runs `fn()` `reps` times and
/// returns the fastest elapsed seconds.  The single definition of the
/// repeated-timing idiom — bench binaries and tools/bench_json route their
/// measurement loops through this instead of hand-rolling steady_clock
/// blocks, so every ns/op cell in every artifact means the same thing
/// (minimum over reps, one WallTimer per rep).
template <typename Fn>
[[nodiscard]] double time_best_of(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.elapsed_seconds());
  }
  return best;
}

/// Formats a duration like "1.23 s" / "4.56 ms" / "789 ns".
[[nodiscard]] std::string format_duration(double seconds);

/// Formats a rate like "12.3 M ops/s".
[[nodiscard]] std::string format_rate(double ops_per_second);

}  // namespace lrb
