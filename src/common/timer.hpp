// Wall-clock timing helpers for benches and examples.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace lrb {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t elapsed_nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Formats a duration like "1.23 s" / "4.56 ms" / "789 ns".
[[nodiscard]] std::string format_duration(double seconds);

/// Formats a rate like "12.3 M ops/s".
[[nodiscard]] std::string format_rate(double ops_per_second);

}  // namespace lrb
