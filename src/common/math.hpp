// Small numeric helpers shared across modules: compensated summation,
// power-of-two utilities, and floating-point comparison helpers.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <span>
#include <string>

#include "common/error.hpp"

namespace lrb {

namespace detail {
/// Formats a fitness value for error messages: shortest round-trip-ish %g
/// ("nan", "-inf", "-2.5", "1e+308") — std::to_string's fixed six decimals
/// would render 5e-324 as "0.000000", which is exactly the value a user
/// debugging an InvalidFitnessError needs to see.
[[nodiscard]] inline std::string fitness_value_str(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return std::string(buf);
}
}  // namespace detail

/// Kahan–Babuška compensated accumulator.  Used wherever we sum fitness
/// vectors or probabilities: plain summation of 1e6 doubles loses ~1e-10
/// relative accuracy, which is visible in chi-square statistics over 1e9
/// draws.
class KahanSum {
 public:
  constexpr void add(double x) noexcept {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  constexpr KahanSum& operator+=(double x) noexcept {
    add(x);
    return *this;
  }

  [[nodiscard]] constexpr double value() const noexcept { return sum_ + comp_; }

  /// The two words of the compensated state, exposed for checkpointing
  /// (lrb::persist): value() collapses them, but future add() calls depend
  /// on the exact (sum, compensation) split, so a bit-identical restore must
  /// carry both.
  [[nodiscard]] constexpr double sum_part() const noexcept { return sum_; }
  [[nodiscard]] constexpr double compensation_part() const noexcept {
    return comp_;
  }

  /// Rebuilds an accumulator from checkpointed parts.  from_parts(sum_part(),
  /// compensation_part()) is the identity.
  [[nodiscard]] static constexpr KahanSum from_parts(double sum,
                                                     double comp) noexcept {
    KahanSum s;
    s.sum_ = sum;
    s.comp_ = comp;
    return s;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Compensated sum of a span.
[[nodiscard]] inline double accurate_sum(std::span<const double> xs) noexcept {
  KahanSum s;
  for (double x : xs) s.add(x);
  return s.value();
}

/// ceil(log2(x)) for x >= 1.  ceil_log2(1) == 0.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return static_cast<std::uint32_t>(64 - std::countl_zero(x - 1));
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return static_cast<std::uint32_t>(63 - std::countl_zero(x));
}

/// Smallest power of two >= x (x >= 1).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : std::uint64_t{1} << ceil_log2(x);
}

[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Relative/absolute closeness in the style of Python's math.isclose.
[[nodiscard]] inline bool is_close(double a, double b, double rel_tol = 1e-9,
                                   double abs_tol = 0.0) noexcept {
  if (a == b) return true;
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  const double diff = std::abs(a - b);
  return diff <= rel_tol * std::max(std::abs(a), std::abs(b)) ||
         diff <= abs_tol;
}

/// Validates a fitness vector: finite, non-negative, and (optionally) with a
/// strictly positive total.  Returns the compensated total.
///
/// Every selector in src/core funnels through this, so the error surface is
/// uniform: a user passing NaN gets the same exception from every algorithm,
/// naming the offending index AND value — validation is hoisted to once per
/// batch everywhere (DrawManyKernel, DeterministicDrawKernel, ShardedFitness),
/// so carrying the context is cheap.
[[nodiscard]] inline double checked_fitness_total(std::span<const double> fitness,
                                                  bool require_positive_total = true) {
  LRB_REQUIRE(!fitness.empty(), InvalidFitnessError,
              "fitness vector must not be empty");
  KahanSum total;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    const double f = fitness[i];
    LRB_REQUIRE(std::isfinite(f), InvalidFitnessError,
                "fitness values must be finite (index " + std::to_string(i) +
                    ", value " + detail::fitness_value_str(f) + ")");
    LRB_REQUIRE(f >= 0.0, InvalidFitnessError,
                "fitness values must be non-negative (index " +
                    std::to_string(i) + ", value " +
                    detail::fitness_value_str(f) + ")");
    total.add(f);
  }
  const double t = total.value();
  if (require_positive_total) {
    LRB_REQUIRE(t > 0.0, InvalidFitnessError,
                "fitness vector must contain at least one positive value");
  }
  return t;
}

/// Number of strictly positive entries ("k" in the paper's Theorem 1).
[[nodiscard]] inline std::size_t count_nonzero(std::span<const double> fitness) noexcept {
  std::size_t k = 0;
  for (double f : fitness) k += (f > 0.0);
  return k;
}

/// Normalizes fitness into probabilities F_i = f_i / sum.  Writes into `out`
/// (same length).  Returns the total.
inline double normalize_fitness(std::span<const double> fitness,
                                std::span<double> out) {
  LRB_REQUIRE(fitness.size() == out.size(), InvalidArgumentError,
              "normalize_fitness: output span has wrong length");
  const double total = checked_fitness_total(fitness);
  for (std::size_t i = 0; i < fitness.size(); ++i) out[i] = fitness[i] / total;
  return total;
}

}  // namespace lrb
