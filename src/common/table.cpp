#include "common/table.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace lrb {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  LRB_REQUIRE(!headers_.empty(), InvalidArgumentError,
              "Table requires at least one column");
}

void Table::set_align(std::size_t column, Align align) {
  LRB_REQUIRE(column < aligns_.size(), InvalidArgumentError,
              "Table::set_align: column out of range");
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  LRB_REQUIRE(cells.size() == headers_.size(), InvalidArgumentError,
              "Table::add_row: wrong number of cells");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_fixed(v, precision));
  add_row(std::move(cells));
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void print_aligned(std::ostream& os, const std::string& cell, std::size_t width,
                   Align align) {
  const std::size_t pad = width > cell.size() ? width - cell.size() : 0;
  if (align == Align::kRight) {
    os << std::string(pad, ' ') << cell;
  } else {
    os << cell << std::string(pad, ' ');
  }
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print(std::ostream& os) const {
  const auto widths = column_widths(headers_, rows_);
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    print_aligned(os, headers_[c], widths[c], aligns_[c]);
    os << " |";
  }
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ';
      print_aligned(os, row[c], widths[c], aligns_[c]);
      os << " |";
    }
    os << '\n';
  }
  rule();
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
}

void Table::print_markdown(std::ostream& os) const {
  const auto widths = column_widths(headers_, rows_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    print_aligned(os, headers_[c], widths[c], aligns_[c]);
    os << " |";
  }
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 1, '-')
       << (aligns_[c] == Align::kRight ? ":" : "-") << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ';
      print_aligned(os, row[c], widths[c], aligns_[c]);
      os << " |";
    }
    os << '\n';
  }
}

std::string format_fixed(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return buf.data();
}

std::string format_sci(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*e", precision, value);
  return buf.data();
}

std::string format_count(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace lrb
