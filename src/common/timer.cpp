#include "common/timer.hpp"

#include <array>
#include <cstdio>

namespace lrb {

std::string format_duration(double seconds) {
  std::array<char, 64> buf{};
  if (seconds >= 1.0) {
    std::snprintf(buf.data(), buf.size(), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf.data(), buf.size(), "%.3f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf.data(), buf.size(), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.0f ns", seconds * 1e9);
  }
  return buf.data();
}

std::string format_rate(double ops_per_second) {
  std::array<char, 64> buf{};
  if (ops_per_second >= 1e9) {
    std::snprintf(buf.data(), buf.size(), "%.2f G ops/s", ops_per_second / 1e9);
  } else if (ops_per_second >= 1e6) {
    std::snprintf(buf.data(), buf.size(), "%.2f M ops/s", ops_per_second / 1e6);
  } else if (ops_per_second >= 1e3) {
    std::snprintf(buf.data(), buf.size(), "%.2f k ops/s", ops_per_second / 1e3);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f ops/s", ops_per_second);
  }
  return buf.data();
}

}  // namespace lrb
