// Console table and CSV rendering used by the bench harness to print
// paper-style tables (Table I / Table II of the paper) and experiment sweeps.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace lrb {

/// Column alignment for console rendering.
enum class Align { kLeft, kRight };

/// A simple row/column table.  Cells are preformatted strings; the renderer
/// handles width computation, alignment, separators and CSV escaping.
///
/// Usage:
///   Table t({"i", "f_i", "F_i", "independent", "logarithmic"});
///   t.add_row({"0", "0", "0.000000", "0.000000", "0.000000"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Sets the alignment of one column (default: right).
  void set_align(std::size_t column, Align align);

  /// Appends a row.  Throws InvalidArgumentError if the arity differs from
  /// the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience for building numeric rows.
  void add_row_values(const std::vector<double>& values, int precision = 6);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return headers_.size(); }

  /// Renders an aligned, boxed console table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180 CSV (quotes cells containing commas/quotes/newlines).
  void print_csv(std::ostream& os) const;

  /// Renders a GitHub-flavored markdown table.
  void print_markdown(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (drop-in for building table cells).
[[nodiscard]] std::string format_fixed(double value, int precision = 6);

/// Formats a double in scientific notation.
[[nodiscard]] std::string format_sci(double value, int precision = 3);

/// Formats an integer with thousands separators ("1,000,000,000").
[[nodiscard]] std::string format_count(unsigned long long value);

}  // namespace lrb
