// Instrumentation macro layer — the ONLY obs header instrumented code
// includes.
//
// Under the default build (LRB_OBS=ON ⇒ the build defines
// LRB_OBS_ENABLED), each macro writes through Registry::global().  Metric
// lookup is a mutex-guarded map walk, so the fixed-name macros cache the
// reference in a function-local static: the first execution pays the
// lookup, every later one is a single relaxed fetch_add on a thread-local
// shard.  Because of that cache, the `name` argument of the fixed-name
// macros MUST be the same string on every execution of the site — for
// names computed at runtime (one counter per selector kind) use the _DYN
// variant, which looks up every call and belongs on cold paths only.
//
// Under -DLRB_OBS=OFF nothing here touches lrb::obs at all: the macros
// expand to `if (false)` discards that keep the arguments formally used
// (no -Wunused warnings) while dead-code elimination removes every trace —
// the CI compile-out leg proves the built library contains zero lrb::obs
// symbols.
//
// The ≤2% draw_many overhead contract (README "Observability") is enforced
// by the CI obs-overhead job via `bench_json --obs-overhead` +
// `--compare`: instrument hot loops with plain local variables and flush
// them through ONE macro per draw, never a macro per item.
#pragma once

#if defined(LRB_OBS_ENABLED)

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

#define LRB_OBS_CONCAT_IMPL(a, b) a##b
#define LRB_OBS_CONCAT(a, b) LRB_OBS_CONCAT_IMPL(a, b)

/// Adds `n` to the counter `name` (string literal).
#define LRB_OBS_COUNTER_ADD(name, n)                                         \
  do {                                                                       \
    static ::lrb::obs::Counter& lrb_obs_counter_cached_ =                    \
        ::lrb::obs::Registry::global().counter(name);                        \
    lrb_obs_counter_cached_.add(static_cast<std::uint64_t>(n));              \
  } while (false)

/// Adds `n` to the counter named by the runtime expression `name`.  Pays a
/// registry lookup per call — cold paths only (object construction, error
/// throws, dispatch decisions).
#define LRB_OBS_COUNTER_ADD_DYN(name, n)                                     \
  ::lrb::obs::Registry::global().counter(name).add(                          \
      static_cast<std::uint64_t>(n))

#define LRB_OBS_GAUGE_SET(name, v)                                           \
  do {                                                                       \
    static ::lrb::obs::Gauge& lrb_obs_gauge_cached_ =                        \
        ::lrb::obs::Registry::global().gauge(name);                          \
    lrb_obs_gauge_cached_.set(static_cast<std::int64_t>(v));                 \
  } while (false)

#define LRB_OBS_GAUGE_ADD(name, d)                                           \
  do {                                                                       \
    static ::lrb::obs::Gauge& lrb_obs_gauge_cached_ =                        \
        ::lrb::obs::Registry::global().gauge(name);                          \
    lrb_obs_gauge_cached_.add(static_cast<std::int64_t>(d));                 \
  } while (false)

#define LRB_OBS_GAUGE_SUB(name, d)                                           \
  do {                                                                       \
    static ::lrb::obs::Gauge& lrb_obs_gauge_cached_ =                        \
        ::lrb::obs::Registry::global().gauge(name);                          \
    lrb_obs_gauge_cached_.sub(static_cast<std::int64_t>(d));                 \
  } while (false)

/// Records `v` (any u64 magnitude: nanoseconds, batch sizes, ...) into the
/// log2 histogram `name`.
#define LRB_OBS_HISTOGRAM_RECORD(name, v)                                    \
  do {                                                                       \
    static ::lrb::obs::LatencyHistogram& lrb_obs_hist_cached_ =              \
        ::lrb::obs::Registry::global().histogram(name);                      \
    lrb_obs_hist_cached_.record(static_cast<std::uint64_t>(v));              \
  } while (false)

/// Declares an RAII probe recording the enclosing scope's duration (ns)
/// into the histogram `name`.  Expands to declarations — use inside a
/// braced block, not as the body of an unbraced `if`.
#define LRB_OBS_SCOPED_NS(name)                                              \
  static ::lrb::obs::LatencyHistogram& LRB_OBS_CONCAT(                       \
      lrb_obs_hist_, __LINE__) = ::lrb::obs::Registry::global().histogram(   \
      name);                                                                 \
  ::lrb::obs::ScopedLatency LRB_OBS_CONCAT(lrb_obs_scope_, __LINE__)(        \
      LRB_OBS_CONCAT(lrb_obs_hist_, __LINE__))

/// Declares an RAII trace span covering the enclosing scope.  Same braced-
/// block caveat as LRB_OBS_SCOPED_NS.
#define LRB_TRACE_SPAN(name)                                                 \
  ::lrb::obs::TraceSpan LRB_OBS_CONCAT(lrb_obs_span_, __LINE__)(name)
#define LRB_TRACE_SPAN_ARG(name, arg)                                        \
  ::lrb::obs::TraceSpan LRB_OBS_CONCAT(lrb_obs_span_, __LINE__)(             \
      name, static_cast<std::uint64_t>(arg))

#else  // !LRB_OBS_ENABLED — every macro compiles to nothing.

// The `if (false)` keeps arguments formally used (no -Wunused-* under
// -Werror, side-effect expressions still type-checked) while the optimizer
// — and even -O0 dead-block elimination — emits no code and no symbols.
#define LRB_OBS_COUNTER_ADD(name, n)                                         \
  do {                                                                       \
    if (false) {                                                             \
      static_cast<void>(name);                                               \
      static_cast<void>(n);                                                  \
    }                                                                        \
  } while (false)
#define LRB_OBS_COUNTER_ADD_DYN(name, n) LRB_OBS_COUNTER_ADD(name, n)
#define LRB_OBS_GAUGE_SET(name, v) LRB_OBS_COUNTER_ADD(name, v)
#define LRB_OBS_GAUGE_ADD(name, d) LRB_OBS_COUNTER_ADD(name, d)
#define LRB_OBS_GAUGE_SUB(name, d) LRB_OBS_COUNTER_ADD(name, d)
#define LRB_OBS_HISTOGRAM_RECORD(name, v) LRB_OBS_COUNTER_ADD(name, v)
#define LRB_OBS_SCOPED_NS(name)                                              \
  do {                                                                       \
    if (false) static_cast<void>(name);                                      \
  } while (false)
#define LRB_TRACE_SPAN(name) LRB_OBS_SCOPED_NS(name)
#define LRB_TRACE_SPAN_ARG(name, arg) LRB_OBS_COUNTER_ADD(name, arg)

#endif  // LRB_OBS_ENABLED
