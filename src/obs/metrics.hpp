// Lock-free, thread-sharded metric primitives — the data plane of the
// lrb::obs flight recorder.
//
// Three primitives, all safe for any number of concurrent writers with no
// locks on the write path:
//
//   * Counter          — monotone u64; add() is one relaxed fetch_add on a
//                        cache-line-private shard, value() sums the shards.
//   * Gauge            — signed point-in-time level (queue depth, active
//                        lanes); one atomic cell, set/add/sub.
//   * LatencyHistogram — fixed log2 bucket boundaries (bucket i counts
//                        values v with bit_width(v) == i, i.e. v in
//                        [2^(i-1), 2^i)), plus exact count/sum/min/max per
//                        shard.  Records are two fetch_adds, one bucket
//                        fetch_add and two bounded CAS loops; snapshots
//                        yield exact totals and log2-resolution
//                        p50/p99/p999 — the tail-latency view the async
//                        selection service is judged on.  Moment summaries
//                        reuse stats::OnlineMoments (Chan's merge) rather
//                        than growing a second mean/variance definition.
//
// Sharding: writers hash their thread onto one of kShards cache-line-padded
// cells, so concurrent increments never contend on one line.  Totals are
// exact — every write lands in exactly one shard and reads sum all shards —
// but a snapshot taken WHILE writers are active is per-cell coherent, not a
// cross-metric instantaneous cut (each cell is monotone, so totals never go
// backwards; tests join writers before asserting exact values).
//
// These types are engine plumbing: instrumentation sites reach them through
// the macros in obs/obs.hpp (which compile to nothing under -DLRB_OBS=OFF)
// and the named lookup in obs/registry.hpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>

#include "common/timer.hpp"
#include "stats/online.hpp"

namespace lrb::obs {

/// Writer shards per metric.  Power of two; 16 lines absorb the thread
/// counts the pool actually runs (hardware_lanes() on CI and dev boxes)
/// without turning every metric into a page of atomics.
inline constexpr std::size_t kShards = 16;

namespace detail {
/// The calling thread's shard index: a sticky per-thread slot assigned from
/// a process-wide round-robin, masked into [0, kShards).  Threads created
/// at different times may share a shard — that only costs contention, never
/// correctness.
[[nodiscard]] std::size_t shard_slot() noexcept;
}  // namespace detail

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Exact total of every add() that happened-before this read.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Signed point-in-time level.  set() is a plain store, so a gauge is NOT
/// sharded — "the current queue depth" has one value, not a per-thread sum;
/// add()/sub() are atomic so concurrent enter/leave pairs net to zero.
class Gauge {
 public:
  void set(std::int64_t x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(std::int64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d = 1) noexcept {
    v_.fetch_sub(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Read-side view of one LatencyHistogram, merged over its shards.
struct HistogramSnapshot {
  /// Bucket count: bit_width of a u64 never exceeds 64, but values beyond
  /// 2^47 ns (~1.6 days) are saturated into the last bucket — boundaries
  /// stay fixed and the exposition stays bounded.
  static constexpr std::size_t kBuckets = 48;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();  ///< valid when count > 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Inclusive upper bound of bucket i: values v with bit_width(v) == i,
  /// i.e. v <= 2^i - 1.  Bucket 0 holds exactly v == 0.
  [[nodiscard]] static constexpr std::uint64_t bucket_le(std::size_t i) noexcept {
    return (std::uint64_t{1} << i) - 1;
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Quantile estimate (q in [0,1]) at log2 bucket resolution: the midpoint
  /// of the bucket holding the q-th sample, clamped into [min, max] so the
  /// estimate never leaves the observed range.  p999 of a latency stream is
  /// exact to within one octave — enough to see a tail, not to bill it.
  [[nodiscard]] double percentile(double q) const noexcept;

  /// The bucket contents folded into a moments accumulator (each bucket
  /// contributes its midpoint `count` times via OnlineMoments::add_repeated)
  /// — mean/stddev at bucket resolution for table rendering.
  [[nodiscard]] stats::OnlineMoments moments() const noexcept;
};

/// Fixed-boundary log2 latency/value histogram.  record() is wait-free
/// except for two bounded min/max CAS loops; all totals are exact.
class LatencyHistogram {
 public:
  void record(std::uint64_t value) noexcept {
    const std::size_t b =
        std::min<std::size_t>(std::bit_width(value),
                              HistogramSnapshot::kBuckets - 1);
    Shard& s = shards_[detail::shard_slot()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = s.min.load(std::memory_order_relaxed);
    while (value < seen &&
           !s.min.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
    seen = s.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !s.max.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
        buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

/// RAII wall-clock probe: records the scope's duration (in nanoseconds, via
/// common/timer's WallTimer — the one wall-clock definition) into a
/// LatencyHistogram at destruction.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram& hist) noexcept : hist_(hist) {}
  ~ScopedLatency() { hist_.record(timer_.elapsed_nanoseconds()); }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram& hist_;
  WallTimer timer_;
};

}  // namespace lrb::obs
