// Exporters for a Registry Snapshot: Prometheus text exposition and a
// versioned JSON document.
//
// Both render a *Snapshot*, not a live Registry — take the snapshot once
// and feed it to as many sinks as needed; the export itself never touches
// the hot metrics.
#pragma once

#include <string>

#include "obs/registry.hpp"

namespace lrb::obs {

/// Prometheus text exposition format (version 0.0.4): `# TYPE` comments,
/// counters as `<name> <value>`, gauges likewise, histograms as cumulative
/// `<name>_bucket{le="..."}` series plus `_sum` and `_count`.  Only buckets
/// up to the highest non-empty one are emitted (plus the `+Inf` catch-all),
/// so 48 mostly-empty octaves don't bloat the scrape.
[[nodiscard]] std::string prometheus_text(const Snapshot& snap);

/// JSON document following the repo's artifact conventions (see
/// tools/json_read.hpp and BENCH_selection.json): a top-level `schema` tag
/// "lrb-obs-metrics/v1", then `counters` / `gauges` objects mapping name to
/// value and a `histograms` array with count/sum/min/max/p50/p99/p999 and
/// the non-empty `{le, count}` buckets.
[[nodiscard]] std::string json_text(const Snapshot& snap);

}  // namespace lrb::obs
