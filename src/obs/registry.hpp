// Named-metric registry — the control plane of the lrb::obs flight
// recorder.
//
// A Registry owns its metrics (stable addresses for the lifetime of the
// registry, so instrumentation sites can cache `Counter&` across calls) and
// hands out get-or-create references by name.  `Registry::global()` is the
// process-wide instance every LRB_OBS_* macro writes through; tests build
// private instances to assert golden exports without cross-talk.
//
// Naming convention (mirrors Prometheus): `lrb_<subsystem>_<what>_<unit>`,
// `_total` suffix for counters, `_ns` for nanosecond histograms.  Names
// must be unique ACROSS metric types — the registry keeps counters, gauges
// and histograms in separate maps, but the exporters emit one flat
// namespace, so `counter("x")` and `gauge("x")` would collide on export.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace lrb::obs {

/// Point-in-time copy of every registered metric, sorted by name within
/// each kind.  Plain data — safe to hand to exporters, tables, tests.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name.  The returned reference stays valid for the
  /// registry's lifetime; lookup takes a mutex, so call sites on hot paths
  /// cache the reference (the LRB_OBS_* macros do this with a static
  /// local).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Coherent in the sharded-metric sense (see metrics.hpp): each metric's
  /// value is an exact total of the writes that happened-before the read.
  [[nodiscard]] Snapshot snapshot() const;

  /// The process-wide registry the instrumentation macros write through.
  /// Intentionally leaked: error counters increment from exception
  /// constructors that may run during static destruction.
  static Registry& global() noexcept;

 private:
  mutable std::mutex mutex_;
  // unique_ptr values so node addresses survive rehash-free map growth and
  // the references handed out never move.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace lrb::obs
