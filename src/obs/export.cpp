#include "obs/export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace lrb::obs {

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// Index of the highest non-empty bucket, or SIZE_MAX when all are empty.
std::size_t last_used_bucket(const HistogramSnapshot& h) {
  for (std::size_t i = HistogramSnapshot::kBuckets; i-- > 0;) {
    if (h.buckets[i] != 0) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

std::string prometheus_text(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    append_fmt(out, "# TYPE %s counter\n", name.c_str());
    append_fmt(out, "%s %" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, value] : snap.gauges) {
    append_fmt(out, "# TYPE %s gauge\n", name.c_str());
    append_fmt(out, "%s %" PRId64 "\n", name.c_str(), value);
  }
  for (const auto& [name, h] : snap.histograms) {
    append_fmt(out, "# TYPE %s histogram\n", name.c_str());
    const std::size_t last = last_used_bucket(h);
    std::uint64_t cumulative = 0;
    if (last != static_cast<std::size_t>(-1)) {
      for (std::size_t i = 0; i <= last; ++i) {
        cumulative += h.buckets[i];
        append_fmt(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                   name.c_str(), HistogramSnapshot::bucket_le(i), cumulative);
      }
    }
    append_fmt(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
               h.count);
    append_fmt(out, "%s_sum %" PRIu64 "\n", name.c_str(), h.sum);
    append_fmt(out, "%s_count %" PRIu64 "\n", name.c_str(), h.count);
  }
  return out;
}

std::string json_text(const Snapshot& snap) {
  std::string out;
  out += "{\n  \"schema\": \"lrb-obs-metrics/v1\",\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    append_fmt(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
               name.c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    append_fmt(out, "%s\n    \"%s\": %" PRId64, first ? "" : ",",
               name.c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": [";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    append_fmt(out, "%s\n    {\"name\": \"%s\", \"count\": %" PRIu64
                    ", \"sum\": %" PRIu64,
               first ? "" : ",", name.c_str(), h.count, h.sum);
    first = false;
    if (h.count > 0) {
      append_fmt(out, ", \"min\": %" PRIu64 ", \"max\": %" PRIu64, h.min,
                 h.max);
      append_fmt(out, ", \"p50\": %.1f, \"p99\": %.1f, \"p999\": %.1f",
                 h.percentile(0.50), h.percentile(0.99), h.percentile(0.999));
    }
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      append_fmt(out, "%s{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}",
                 first_bucket ? "" : ", ", HistogramSnapshot::bucket_le(i),
                 h.buckets[i]);
      first_bucket = false;
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace lrb::obs
