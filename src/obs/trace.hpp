// RAII trace spans dumping Chrome trace_event JSON — the timeline half of
// the lrb::obs flight recorder.
//
// A TraceSpan marks a scope on the process timeline: construction stamps
// the start against a process-wide steady-clock epoch (common/timer's
// WallTimer — the same clock every other measurement uses), destruction
// stamps the duration, and the completed event lands in a per-thread
// buffer.  Nesting needs no bookkeeping: Chrome's `trace_event` viewer (and
// Perfetto at https://ui.perfetto.dev) reconstructs the stack per thread
// from ts/dur containment, so a collective span naturally encloses its
// per-round child spans.
//
// Recording is off until enabled, and a disabled span costs one relaxed
// atomic load — cheap enough to leave LRB_TRACE_SPAN in the dist round
// loops unconditionally.  Enable by either
//
//   * setting `LRB_TRACE=<path>` in the environment (read lazily on the
//     first span), or
//   * calling trace_enable(path) (what `lrb --trace=<path>` does).
//
// Events flush to the path as Chrome trace JSON at process exit, or
// eagerly via trace_flush().  Flushing synchronizes with writers, so a
// mid-run flush is safe — spans still open at flush time are simply not in
// that dump (only completed events are buffered).
#pragma once

#include <cstdint>
#include <string>

namespace lrb::obs {

/// True when span recording is active (env var seen or trace_enable called).
[[nodiscard]] bool trace_enabled() noexcept;

/// Start recording spans; completed events will flush to `path` (Chrome
/// trace JSON) at exit or on trace_flush().  Overrides any LRB_TRACE value.
void trace_enable(std::string path);

/// Write everything recorded so far to the enabled path.  No-op when
/// recording was never enabled.  Safe to call repeatedly; each call
/// rewrites the file with the full event list.
void trace_flush();

class TraceSpan {
 public:
  /// `name` must outlive the process dump (string literals in practice);
  /// `arg` is an optional numeric payload shown in the viewer (round index,
  /// batch size, ...).
  explicit TraceSpan(const char* name, std::uint64_t arg = 0) noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t arg_;
  std::uint64_t start_ns_;
  bool live_;
};

}  // namespace lrb::obs
