#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>

namespace lrb::obs {

namespace detail {

std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

}  // namespace detail

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based, ceil(q * count) clamped to [1,count].
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const double lo =
          i == 0 ? 0.0
                 : static_cast<double>(std::uint64_t{1} << (i - 1));
      const double hi = static_cast<double>(bucket_le(i));
      const double mid = 0.5 * (lo + hi);
      return std::clamp(mid, static_cast<double>(min),
                        static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

stats::OnlineMoments HistogramSnapshot::moments() const noexcept {
  stats::OnlineMoments m;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double lo =
        i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
    const double hi = static_cast<double>(bucket_le(i));
    m.add_repeated(0.5 * (lo + hi), buckets[i]);
  }
  return m;
}

HistogramSnapshot LatencyHistogram::snapshot() const noexcept {
  HistogramSnapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.min = std::min(out.min, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

}  // namespace lrb::obs
