#include "obs/registry.hpp"

namespace lrb::obs {

namespace {

template <typename Map>
auto& get_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(gauges_, name);
}

LatencyHistogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(histograms_, name);
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

Registry& Registry::global() noexcept {
  static Registry* instance = new Registry();  // leaked by design, see header
  return *instance;
}

}  // namespace lrb::obs
