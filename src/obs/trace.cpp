#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/timer.hpp"

namespace lrb::obs {

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint64_t arg;
};

// One buffer per recording thread, guarded by its own mutex: span ends are
// coarse (collective rounds, pool jobs, batches — not per-item work), so an
// uncontended lock per completed span is noise, and it lets trace_flush()
// read buffers while other threads keep recording.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

class Recorder {
 public:
  static Recorder& instance() {
    // Leaked so spans completing during static destruction stay safe;
    // flush-at-exit is handled by atexit below, not a destructor.
    static Recorder* r = new Recorder();
    return *r;
  }

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void enable(std::string path) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      path_ = std::move(path);
    }
    register_atexit_flush();
    enabled_.store(true, std::memory_order_relaxed);
  }

  std::uint64_t now_ns() const noexcept { return epoch_.elapsed_nanoseconds(); }

  void record(const TraceEvent& ev) {
    // Buffer index doubles as the dumped tid (1-based, in first-span order).
    thread_local ThreadBuffer* buffer = nullptr;
    if (buffer == nullptr) {
      std::lock_guard<std::mutex> lock(mutex_);
      buffers_.push_back(std::make_unique<ThreadBuffer>());
      buffer = buffers_.back().get();
    }
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.push_back(ev);
  }

  void flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "lrb::obs: cannot open trace path '%s'\n",
                   path_.c_str());
      return;
    }
    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
    bool first = true;
    for (std::size_t t = 0; t < buffers_.size(); ++t) {
      ThreadBuffer& buf = *buffers_[t];
      std::lock_guard<std::mutex> buf_lock(buf.mutex);
      for (const TraceEvent& ev : buf.events) {
        if (!first) std::fputs(",\n", f);
        first = false;
        // Complete ('X') events; ts/dur are microseconds in the format.
        std::fprintf(f,
                     "{\"name\":\"%s\",\"cat\":\"lrb\",\"ph\":\"X\","
                     "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%zu,"
                     "\"args\":{\"v\":%llu}}",
                     ev.name, static_cast<double>(ev.start_ns) / 1e3,
                     static_cast<double>(ev.dur_ns) / 1e3, t + 1,
                     static_cast<unsigned long long>(ev.arg));
      }
    }
    std::fputs("\n]}\n", f);
    std::fclose(f);
  }

 private:
  Recorder() {
    if (const char* path = std::getenv("LRB_TRACE");
        path != nullptr && path[0] != '\0') {
      enable(path);
    }
  }

  void register_atexit_flush() {
    std::call_once(atexit_once_, [] { std::atexit([] { trace_flush(); }); });
  }

  std::atomic<bool> enabled_{false};
  WallTimer epoch_;  // process-relative timestamps; never reset
  mutable std::mutex mutex_;
  std::string path_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::once_flag atexit_once_;
};

}  // namespace

bool trace_enabled() noexcept { return Recorder::instance().enabled(); }

void trace_enable(std::string path) {
  Recorder::instance().enable(std::move(path));
}

void trace_flush() { Recorder::instance().flush(); }

TraceSpan::TraceSpan(const char* name, std::uint64_t arg) noexcept
    : name_(name), arg_(arg), start_ns_(0), live_(trace_enabled()) {
  if (live_) start_ns_ = Recorder::instance().now_ns();
}

TraceSpan::~TraceSpan() {
  if (!live_) return;
  Recorder& r = Recorder::instance();
  r.record({name_, start_ns_, r.now_ns() - start_ns_, arg_});
}

}  // namespace lrb::obs
