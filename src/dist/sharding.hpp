// Block-sharded fitness vectors: the data layout of distributed selection.
//
// The global fitness vector f_0..f_{n-1} is partitioned into P contiguous
// blocks (sizes differing by at most one, via parallel::partition_range — the
// same deterministic split the shared-memory paths use).  Each rank owns its
// block plus a cached block sum, so the two quantities distributed selection
// needs are local and O(1):
//
//   * a rank's shard span (for the local bidding sub-race / inverse CDF);
//   * a rank's shard sum (the prefix-sum pipeline's scan input).
//
// Point updates are O(1): overwrite the cell, nudge the owning shard's sum by
// the delta.  That is the distributed echo of the paper's core selling point —
// logarithmic bidding needs no prebuilt global structure, so a fitness update
// touches one rank and nothing else (contrast a distributed Fenwick tree or
// alias table, which must rebuild or ship O(log n) updates).
//
// Elasticity: the partition is stored as P+1 shard boundaries, so it can be
// REPLACED mid-stream — reshard(P') repartitions over a different rank count
// (the fault-recovery path: P -> P-1 after a rank failure) and the weighted
// overload supports non-uniform splits for heterogeneous survivors.  Data
// motion is O(moved cells) and ledger-charged; the deterministic selection
// paths are partition-invariant (bids are keyed by GLOBAL index), so winners
// before and after a reshard stitch into one bit-identical draw sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dist/topology.hpp"
#include "parallel/partition.hpp"

namespace lrb::persist {
struct ShardedFitnessAccess;  // snapshot serializer (persist/snapshot.cpp)
}

namespace lrb::dist {

/// A fitness vector block-partitioned over the ranks of a Topology.
///
/// Simulation note: one process holds all shards, but every accessor is
/// phrased rank-locally so the selection algorithms in dist/selection.cpp
/// only ever touch data a real rank would own.
class ShardedFitness {
 public:
  /// Copies `fitness` (validated: finite, non-negative, positive total) and
  /// partitions it over `ranks` blocks.  `ranks` may exceed the vector
  /// length; trailing ranks then own empty shards.
  ShardedFitness(std::span<const double> fitness, std::size_t ranks);

  /// Same partitioning, with the collectives of every selection draw routed
  /// through `backend` (dist/backend.hpp) instead of the default simulated
  /// machine.  Under a real backend each process holds the same replicated
  /// vector but computes only the shard of the rank it embodies
  /// (CommBackend::owns_rank); the wire carries only rank-owned
  /// contributions.
  ShardedFitness(std::span<const double> fitness, std::size_t ranks,
                 std::shared_ptr<const CommBackend> backend);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] std::size_t ranks() const noexcept { return topology_.ranks(); }
  /// Global vector length n.
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// The half-open global index range owned by `rank`.
  [[nodiscard]] parallel::Range shard_range(std::size_t rank) const;

  /// The fitness values owned by `rank` (possibly empty).
  [[nodiscard]] std::span<const double> shard(std::size_t rank) const;

  /// Cached sum of `rank`'s shard — O(1), maintained across updates.
  /// Guaranteed positive iff the shard holds a positive entry: an emptied
  /// shard reports exactly 0.0 (no rounding residue), so ownership tests
  /// downstream never select a shard with nothing to select.
  [[nodiscard]] double shard_sum(std::size_t rank) const;

  /// Sum of all shard sums.  Bookkeeping convenience for tests and sanity
  /// checks; the selection algorithms recompute the total on the wire so the
  /// ledgers stay honest.
  [[nodiscard]] double total() const noexcept;

  /// The rank owning global index `index`.
  [[nodiscard]] std::size_t owner(std::size_t index) const;

  /// The current value at global index `index`.
  [[nodiscard]] double value(std::size_t index) const;

  /// O(1) point update: sets f_index to `fitness` (finite, non-negative) and
  /// adjusts the owning shard's cached sum by the delta.  May drive the
  /// global total to zero; the selection entry points then throw
  /// InvalidFitnessError on the next draw, like every serial selector.
  void update(std::size_t index, double fitness);

  /// Elastic repartition onto `new_ranks` uniform blocks (grow or shrink,
  /// including the P'=1 collapse and P' > n with trailing empty shards),
  /// keeping the current backend.  The result is indistinguishable from a
  /// freshly constructed ShardedFitness(values, new_ranks) — same
  /// boundaries, bit-identical cached shard sums (recomputed by the same
  /// Kahan loop) — except that no validation pass runs: resharding is legal
  /// mid-update-stream even while the global total is transiently zero.
  ///
  /// Returns the data-motion bill: O(moved) — `words` counts exactly the
  /// cells whose owning rank changed, `messages` the distinct (old owner ->
  /// new owner) transfers, `critical_path_words` the heaviest single new
  /// rank's inbound volume, `rounds` 1 iff anything moved.  Deterministic
  /// replay (the recovery contract) needs no more: surviving processes
  /// replicate the values, so only ownership — who computes which sub-race —
  /// actually moves.
  CommLedger reshard(std::size_t new_ranks);

  /// Same repartition, rebinding the collectives to `backend` — the
  /// rank-failure path, where the survivors form a new (smaller)
  /// communicator and need a backend bound to it.  Null keeps the default
  /// simulated machine.
  CommLedger reshard(std::size_t new_ranks,
                     std::shared_ptr<const CommBackend> backend);

  /// Non-uniform repartition for heterogeneous survivors: rank r's shard
  /// size is proportional to capacities[r] (finite, >= 0, positive total),
  /// boundaries at floor(n * cum_capacity / total_capacity).  Equal
  /// capacities give a balanced split (sizes differ by at most one), though
  /// not necessarily the same boundaries as reshard(new_ranks) — the floor
  /// rule and partition_range place the remainder cells differently.  Same
  /// bill and same O(moved) contract as reshard(new_ranks).
  CommLedger reshard_weighted(std::span<const double> capacities);

  CommLedger reshard_weighted(std::span<const double> capacities,
                              std::shared_ptr<const CommBackend> backend);

 private:
  // The checkpoint layer (persist/snapshot.cpp) must restore the cached
  // shard sums VERBATIM — they are delta-maintained, so the recomputing
  // constructor could disagree in the last ulp — which needs field-level
  // access and the validation-free default constructor below.
  friend struct lrb::persist::ShardedFitnessAccess;

  /// Restore-only: an empty placeholder the snapshot layer fills field by
  /// field (after verifying the bytes).  Private so the public API never
  /// sees a vector that skipped validation.
  ShardedFitness() : topology_(1) {}

  /// Shared tail of construction and resharding: installs `begins` (size
  /// ranks+1) and recomputes every cached shard sum / positive count from
  /// values_ with the construction-time Kahan loop.
  void install_partition(std::vector<std::size_t> begins);

  CommLedger reshard_to(std::vector<std::size_t> new_begins,
                        std::shared_ptr<const CommBackend> backend,
                        bool keep_backend);

  Topology topology_;
  std::vector<double> values_;
  /// Shard boundaries: rank r owns [begins_[r], begins_[r+1]).  Uniform
  /// block partition at construction; replaced wholesale by reshard.
  std::vector<std::size_t> begins_;
  std::vector<double> shard_sums_;
  std::vector<std::size_t> positive_counts_;
};

}  // namespace lrb::dist
