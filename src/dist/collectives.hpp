// Collective operations over the simulated message-passing machine.
//
// Every collective takes the per-rank local values (one entry per rank),
// executes the real round-by-round dataflow of a classical algorithm, and
// returns the per-rank results while charging a CommLedger.  Results are
// exact — tests compare them against serial references — and the ledgers
// are the numbers a real backend would pay:
//
//   collective            algorithm                rounds         messages
//   ------------------    ---------------------    -----------    -----------
//   allreduce_max/argmax  dissemination shifts     ceil(lg P)     P per round
//   allreduce_sum         hypercube exchange       ceil(lg P)     P per round
//                         (+fold/unfold rounds when P is not a power of two)
//   exclusive_scan_sum    Hillis–Steele shifts     ceil(lg P)     P-2^r per rd
//   reduce_sum            binomial tree to root    ceil(lg P)     P-1 total
//   broadcast             binomial tree from root  ceil(lg P)     P-1 total
//
// The distributed selection story (dist/selection.hpp) is told entirely in
// these primitives: logarithmic bidding is ONE allreduce_argmax of a 2-word
// pair, while prefix-sum roulette needs the scan + reduce + broadcast
// pipeline.
//
// Execution is pluggable: these free functions validate their arguments and
// dispatch to the Topology's CommBackend (dist/backend.hpp) — the in-process
// SimulatedBackend by default, real MPI under LRB_WITH_MPI — so every caller
// below this layer runs unchanged on either machine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/topology.hpp"

namespace lrb::dist {

/// A (value, index) pair reduced by allreduce_argmax.  Ties break toward the
/// lower index, matching the serial selectors' "first maximum wins" rule.
struct ArgMax {
  double value = 0.0;
  std::uint64_t index = 0;

  friend constexpr bool operator==(const ArgMax&, const ArgMax&) = default;
};

/// Combine rule shared by allreduce_argmax and the serial references in
/// tests: larger value wins; equal values keep the smaller index.
[[nodiscard]] constexpr ArgMax argmax_combine(const ArgMax& a,
                                              const ArgMax& b) noexcept {
  if (a.value > b.value) return a;
  if (b.value > a.value) return b;
  return a.index <= b.index ? a : b;
}

/// Allreduce(max): after the call every rank holds max over all ranks.
/// Dissemination algorithm — exactly ceil(log2 P) rounds for every P.
[[nodiscard]] std::vector<double> allreduce_max(const Topology& topo,
                                                std::span<const double> local,
                                                CommLedger& ledger);

/// Allreduce(argmax) over (value, index) pairs; 2 words per message.
/// This is the whole communication cost of one distributed bidding draw.
[[nodiscard]] std::vector<ArgMax> allreduce_argmax(const Topology& topo,
                                                   std::span<const ArgMax> local,
                                                   CommLedger& ledger);

/// Batched allreduce(argmax): B independent argmax races resolved by ONE
/// dissemination exchange of B-pair (2B-word) messages.  local[r] holds rank
/// r's B (value, index) pairs; afterwards every rank knows all B winners.
///
/// The round count is ceil(log2 P) for the whole batch — not per draw — so
/// the latency bill of a selection draw amortizes to ceil(log2 P)/B rounds
/// while the total words moved stay exactly B times the single-draw cost.
/// This is the communication backbone of distributed_bidding_batch.
[[nodiscard]] std::vector<std::vector<ArgMax>> allreduce_argmax_batch(
    const Topology& topo, std::span<const std::vector<ArgMax>> local,
    CommLedger& ledger);

/// Allreduce(sum): hypercube exchange when P is a power of two
/// (ceil(log2 P) rounds); otherwise fold-to-hypercube adds one round before
/// and one after (floor(log2 P) + 2 <= ceil(log2 P) + 1 rounds).
[[nodiscard]] std::vector<double> allreduce_sum(const Topology& topo,
                                                std::span<const double> local,
                                                CommLedger& ledger);

/// Exclusive prefix sum over rank order: result[i] = sum of local[j], j < i
/// (result[0] == 0).  Hillis–Steele shifts, ceil(log2 P) rounds.  The
/// exclusive prefix is accumulated directly from received partials — no
/// inclusive-minus-own subtraction — and matches the serial left fold up to
/// floating-point associativity.
[[nodiscard]] std::vector<double> exclusive_scan_sum(const Topology& topo,
                                                     std::span<const double> local,
                                                     CommLedger& ledger);

/// Reduce(sum) to `root`: binomial tree, ceil(log2 P) rounds, P-1 messages.
/// Returns the total as observed at the root.
[[nodiscard]] double reduce_sum(const Topology& topo,
                                std::span<const double> local, std::size_t root,
                                CommLedger& ledger);

/// Broadcast of one value from `root`: binomial tree, ceil(log2 P) rounds,
/// P-1 messages.  Returns the per-rank received values (all equal).
[[nodiscard]] std::vector<double> broadcast(const Topology& topo, double value,
                                            std::size_t root,
                                            CommLedger& ledger);

}  // namespace lrb::dist
