#include "dist/selection.hpp"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/deterministic.hpp"
#include "dist/backend.hpp"
#include "core/draw_many.hpp"
#include "obs/obs.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::dist {

namespace {

constexpr double kNoBid = -std::numeric_limits<double>::infinity();
constexpr std::uint64_t kNoIndex = std::numeric_limits<std::uint64_t>::max();

/// Updates may legally drive every entry to zero; a draw from that state is
/// a user error and throws like every serial selector (common/math.hpp's
/// checked_fitness_total), not an internal-invariant abort.
void require_positive_total(const ShardedFitness& shards) {
  LRB_REQUIRE(shards.total() > 0.0, InvalidFitnessError,
              "distributed selection requires at least one positive fitness");
}

/// The scaffolding both bidding batches share — validation, the p x B local
/// sub-race matrix (ranks with nothing positive ship kNoBid pairs), ONE
/// batched argmax-allreduce, winner extraction.  `fill_rank(r, rows)` fills
/// rank r's B (bid, global index) pairs; the bid SOURCE (stream engine vs
/// counter-based kernel) is the only thing the two paths do differently,
/// which is also why their ledgers are identical by construction.
template <typename FillRank>
BatchDrawResult bidding_batch_scaffold(const ShardedFitness& shards,
                                       std::size_t batch, const char* name,
                                       FillRank&& fill_rank) {
  require_positive_total(shards);
  LRB_REQUIRE(batch >= 1, InvalidArgumentError,
              std::string(name) + " requires batch >= 1");
  LRB_TRACE_SPAN_ARG(name, batch);
  LRB_OBS_COUNTER_ADD("lrb_dist_draws_total", batch);
  const Topology& topo = shards.topology();
  const std::size_t p = topo.ranks();

  // Sub-races run only for ranks this process embodies: all P on the
  // simulated machine, exactly one per process under a real backend — the
  // O(n/P) local compute a cluster buys.  Non-owned (and all-zero) ranks
  // contribute sentinel pairs that a real backend never puts on the wire.
  const CommBackend& backend = topo.backend();
  std::vector<std::vector<ArgMax>> local(
      p, std::vector<ArgMax>(batch, ArgMax{kNoBid, kNoIndex}));
  for (std::size_t r = 0; r < p; ++r) {
    if (!backend.owns_rank(r)) continue;
    if (!(shards.shard_sum(r) > 0.0)) continue;
    fill_rank(r, local[r]);
  }

  // The entire communication bill: ONE batched argmax-allreduce of B-pair
  // messages — ceil(log2 P) rounds for the whole batch.
  BatchDrawResult result;
  const std::vector<std::vector<ArgMax>> winners =
      allreduce_argmax_batch(topo, local, result.comm);
  result.indices.resize(batch);
  for (std::size_t t = 0; t < batch; ++t) {
    // A real bid can legitimately BE -inf (log(u)/f overflows for subnormal
    // f), so "did anyone bid" is judged by the index: bidding ranks ship a
    // genuine global index, silent ranks ship kNoIndex, and the argmax tie
    // rule (smaller index wins) lets a real -inf bid beat the sentinel.
    LRB_ASSERT(winners[0][t].index != kNoIndex,
               "positive total fitness implies at least one bid per draw");
    result.indices[t] = static_cast<std::size_t>(winners[0][t].index);
  }
  return result;
}

}  // namespace

DrawResult distributed_bidding(const ShardedFitness& shards,
                               const rng::SeedSequence& seeds) {
  // The single draw is the B == 1 case of the batched path: the local
  // sub-races consume the same uniforms in the same order, and a 1-pair
  // batched allreduce charges exactly what allreduce_argmax does.
  BatchDrawResult batch = distributed_bidding_batch(shards, 1, seeds);
  return DrawResult{batch.indices.front(), batch.comm};
}

DrawResult distributed_bidding(const ShardedFitness& shards,
                               std::uint64_t seed) {
  return distributed_bidding(shards, rng::SeedSequence(seed));
}

BatchDrawResult distributed_bidding_batch(const ShardedFitness& shards,
                                          std::size_t batch,
                                          const rng::SeedSequence& seeds) {
  // B local sub-races on every rank: one DrawManyKernel per shard (active
  // set + reciprocals built once, validation hoisted out of the B draws),
  // decorrelated engine per rank, exactly B uniforms consumed per positive
  // local entry.
  return bidding_batch_scaffold(
      shards, batch, "distributed_bidding_batch",
      [&](std::size_t r, std::vector<ArgMax>& rows) {
        rng::Xoshiro256StarStar gen(seeds.child(r));
        const parallel::Range range = shards.shard_range(r);
        core::DrawManyKernel kernel(shards.shard(r));
        for (std::size_t t = 0; t < rows.size(); ++t) {
          const core::DrawManyKernel::Scored won = kernel.draw_scored(gen);
          rows[t] = ArgMax{won.bid,
                           static_cast<std::uint64_t>(range.begin + won.index)};
        }
      });
}

BatchDrawResult distributed_bidding_batch(const ShardedFitness& shards,
                                          std::size_t batch,
                                          std::uint64_t seed) {
  return distributed_bidding_batch(shards, batch, rng::SeedSequence(seed));
}

DrawResult distributed_bidding_deterministic(const ShardedFitness& shards,
                                             std::uint64_t seed,
                                             std::uint64_t draw_id) {
  BatchDrawResult batch =
      distributed_bidding_deterministic_batch(shards, 1, seed, draw_id);
  return DrawResult{batch.indices.front(), batch.comm};
}

BatchDrawResult distributed_bidding_deterministic_batch(
    const ShardedFitness& shards, std::size_t batch, std::uint64_t seed,
    std::uint64_t first_draw_id) {
  // B local sub-races per rank with COUNTER-BASED bids: the kernel bids
  // rng::deterministic_bid(seed, draw id, GLOBAL index, f) over its shard,
  // so rank r's sub-race winner is the max over r's slice of the very same
  // global bid table serial DeterministicBidder scans, and the argmax over
  // shards reconstructs the serial argmax exactly — for any P and any
  // partition (skipped all-zero ranks are absent from the serial scan too).
  // Identical collective to the stream batch: the deterministic contract
  // costs extra Philox compute, zero extra ledger.
  return bidding_batch_scaffold(
      shards, batch, "distributed_bidding_deterministic_batch",
      [&](std::size_t r, std::vector<ArgMax>& rows) {
        const parallel::Range range = shards.shard_range(r);
        const core::DeterministicDrawKernel kernel(shards.shard(r), range.begin);
        for (std::size_t t = 0; t < rows.size(); ++t) {
          const core::DeterministicDrawKernel::Scored won =
              kernel.draw_scored(seed, first_draw_id + t);
          rows[t] = ArgMax{won.bid, won.index};
        }
      });
}

DrawResult DeterministicDistributedBidder::select(const ShardedFitness& shards) {
  DrawResult result = distributed_bidding_deterministic(shards, seed_, draw_);
  draw_ += 1;
  return result;
}

BatchDrawResult DeterministicDistributedBidder::select_batch(
    const ShardedFitness& shards, std::size_t batch) {
  BatchDrawResult result =
      distributed_bidding_deterministic_batch(shards, batch, seed_, draw_);
  draw_ += batch;
  return result;
}

DrawResult distributed_prefix_sum(const ShardedFitness& shards,
                                  const rng::SeedSequence& seeds) {
  require_positive_total(shards);
  LRB_TRACE_SPAN("distributed_prefix_sum");
  LRB_OBS_COUNTER_ADD("lrb_dist_prefix_draws_total", 1);
  const Topology& topo = shards.topology();
  const std::size_t p = topo.ranks();
  DrawResult result;

  // Shard sums are cached rank-locally (no communication).
  std::vector<double> sums(p);
  for (std::size_t r = 0; r < p; ++r) sums[r] = shards.shard_sum(r);

  // 1. Exclusive scan: every rank learns the CDF offset of its shard.
  const std::vector<double> offsets =
      exclusive_scan_sum(topo, sums, result.comm);

  // 2. Reduce the global total to the root, which draws the threshold
  //    t = u * total, u ~ Uniform[0,1).  `total` is the global sum only
  //    where the reduce tree rooted — everywhere on the simulated machine,
  //    at kRoot under a real backend (other processes hold partials, validly
  //    zero for zero shards) — so the positivity invariant and the only
  //    threshold anyone consumes are the root's; non-root thresholds are
  //    overwritten by the broadcast below.
  constexpr std::size_t kRoot = 0;
  const double total = reduce_sum(topo, sums, kRoot, result.comm);
  if (topo.backend().owns_rank(kRoot)) {
    LRB_ASSERT(total > 0.0, "sharded fitness total must be positive");
  }
  rng::Xoshiro256StarStar gen(seeds.child("prefix-threshold"));
  const double threshold = rng::u01_closed_open(gen) * total;

  // 3. Broadcast the threshold so every rank can test ownership locally.
  const std::vector<double> thresholds =
      broadcast(topo, threshold, kRoot, result.comm);

  // 4. Ownership test + local inverse-CDF walk (both rank-local; the walk
  //    runs only on the owner).  Extracted into prefix_sum_locate so the
  //    threshold edges — t = 0 with leading zero cells, t exactly on a shard
  //    boundary — are pinned by direct tests.  Every rank holds the same
  //    broadcast threshold; the simulation evaluates the step once.
  const PrefixLocation located = prefix_sum_locate(shards, offsets, thresholds[0]);

  // 5. Publish the winner: a final argmax-allreduce (2-word pairs) gives
  //    every rank the selected index, matching what bidding delivers.
  std::vector<ArgMax> claim(p, ArgMax{kNoBid, kNoIndex});
  claim[located.owner] = ArgMax{1.0, static_cast<std::uint64_t>(located.index)};
  const std::vector<ArgMax> winners = allreduce_argmax(topo, claim, result.comm);
  result.index = static_cast<std::size_t>(winners[0].index);
  return result;
}

PrefixLocation prefix_sum_locate(const ShardedFitness& shards,
                                 std::span<const double> offsets,
                                 double threshold) {
  const std::size_t p = shards.ranks();
  LRB_REQUIRE(offsets.size() == p, InvalidArgumentError,
              "prefix_sum_locate: one offset per rank required");
  LRB_REQUIRE(threshold >= 0.0, InvalidArgumentError,
              "prefix_sum_locate: threshold must be non-negative");

  // Ownership: the owner is the non-empty rank whose interval
  // [offset, offset + sum) contains the threshold.  Resolved as "LAST
  // non-empty rank with offset <= threshold", which is the same rank in
  // exact arithmetic and never gaps or double-claims under rounding: empty
  // and all-zero shards (sum exactly 0.0 — sharding.cpp snaps them) can
  // never own, and a threshold exactly on a shard boundary belongs to the
  // rank STARTING there, matching the half-open intervals.
  std::size_t owner = kNoIndex;
  for (std::size_t r = 0; r < p; ++r) {
    if (shards.shard_sum(r) > 0.0 && offsets[r] <= threshold) owner = r;
  }
  LRB_ASSERT(owner != kNoIndex, "threshold below total implies an owner");

  // Local inverse CDF on the owner: walk the shard until the running sum
  // crosses the threshold.  Zero-fitness cells add nothing and never update
  // `selected`, so no edge — t = 0, boundary hits, rounding overshoot past
  // the shard's own mass — can select a zero-fitness index; overshoot
  // saturates at the owner's last positive cell.
  const parallel::Range range = shards.shard_range(owner);
  const std::span<const double> shard = shards.shard(owner);
  double cumulative = offsets[owner];
  std::uint64_t selected = kNoIndex;
  for (std::size_t j = 0; j < shard.size(); ++j) {
    if (shard[j] <= 0.0) continue;
    cumulative += shard[j];
    selected = static_cast<std::uint64_t>(range.begin + j);
    if (cumulative > threshold) break;
  }
  LRB_ASSERT(selected != kNoIndex, "owning shard holds a positive entry");
  return PrefixLocation{owner, static_cast<std::size_t>(selected)};
}

DrawResult distributed_prefix_sum(const ShardedFitness& shards,
                                  std::uint64_t seed) {
  return distributed_prefix_sum(shards, rng::SeedSequence(seed));
}

}  // namespace lrb::dist
