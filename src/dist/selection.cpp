#include "dist/selection.hpp"

#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "core/draw_many.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::dist {

namespace {

constexpr double kNoBid = -std::numeric_limits<double>::infinity();
constexpr std::uint64_t kNoIndex = std::numeric_limits<std::uint64_t>::max();

/// Updates may legally drive every entry to zero; a draw from that state is
/// a user error and throws like every serial selector (common/math.hpp's
/// checked_fitness_total), not an internal-invariant abort.
void require_positive_total(const ShardedFitness& shards) {
  LRB_REQUIRE(shards.total() > 0.0, InvalidFitnessError,
              "distributed selection requires at least one positive fitness");
}

}  // namespace

DrawResult distributed_bidding(const ShardedFitness& shards,
                               const rng::SeedSequence& seeds) {
  // The single draw is the B == 1 case of the batched path: the local
  // sub-races consume the same uniforms in the same order, and a 1-pair
  // batched allreduce charges exactly what allreduce_argmax does.
  BatchDrawResult batch = distributed_bidding_batch(shards, 1, seeds);
  return DrawResult{batch.indices.front(), batch.comm};
}

DrawResult distributed_bidding(const ShardedFitness& shards,
                               std::uint64_t seed) {
  return distributed_bidding(shards, rng::SeedSequence(seed));
}

BatchDrawResult distributed_bidding_batch(const ShardedFitness& shards,
                                          std::size_t batch,
                                          const rng::SeedSequence& seeds) {
  require_positive_total(shards);
  LRB_REQUIRE(batch >= 1, InvalidArgumentError,
              "distributed_bidding_batch requires batch >= 1");
  const Topology& topo = shards.topology();
  const std::size_t p = topo.ranks();

  // B local sub-races on every rank: one DrawManyKernel per shard (active
  // set + reciprocals built once, validation hoisted out of the B draws),
  // decorrelated engine per rank, exactly B uniforms consumed per positive
  // local entry.  Ranks with nothing positive to bid ship kNoBid pairs.
  std::vector<std::vector<ArgMax>> local(
      p, std::vector<ArgMax>(batch, ArgMax{kNoBid, kNoIndex}));
  for (std::size_t r = 0; r < p; ++r) {
    if (!(shards.shard_sum(r) > 0.0)) continue;
    rng::Xoshiro256StarStar gen(seeds.child(r));
    const parallel::Range range = shards.shard_range(r);
    core::DrawManyKernel kernel(shards.shard(r));
    for (std::size_t t = 0; t < batch; ++t) {
      const core::DrawManyKernel::Scored won = kernel.draw_scored(gen);
      local[r][t] =
          ArgMax{won.bid, static_cast<std::uint64_t>(range.begin + won.index)};
    }
  }

  // The entire communication bill: ONE batched argmax-allreduce of B-pair
  // messages — ceil(log2 P) rounds for the whole batch.
  BatchDrawResult result;
  const std::vector<std::vector<ArgMax>> winners =
      allreduce_argmax_batch(topo, local, result.comm);
  result.indices.resize(batch);
  for (std::size_t t = 0; t < batch; ++t) {
    LRB_ASSERT(winners[0][t].value > kNoBid,
               "positive total fitness implies at least one bid per draw");
    result.indices[t] = static_cast<std::size_t>(winners[0][t].index);
  }
  return result;
}

BatchDrawResult distributed_bidding_batch(const ShardedFitness& shards,
                                          std::size_t batch,
                                          std::uint64_t seed) {
  return distributed_bidding_batch(shards, batch, rng::SeedSequence(seed));
}

DrawResult distributed_prefix_sum(const ShardedFitness& shards,
                                  const rng::SeedSequence& seeds) {
  require_positive_total(shards);
  const Topology& topo = shards.topology();
  const std::size_t p = topo.ranks();
  DrawResult result;

  // Shard sums are cached rank-locally (no communication).
  std::vector<double> sums(p);
  for (std::size_t r = 0; r < p; ++r) sums[r] = shards.shard_sum(r);

  // 1. Exclusive scan: every rank learns the CDF offset of its shard.
  const std::vector<double> offsets =
      exclusive_scan_sum(topo, sums, result.comm);

  // 2. Reduce the global total to the root, which draws the threshold
  //    t = u * total, u ~ Uniform[0,1).
  constexpr std::size_t kRoot = 0;
  const double total = reduce_sum(topo, sums, kRoot, result.comm);
  LRB_ASSERT(total > 0.0, "sharded fitness total must be positive");
  rng::Xoshiro256StarStar gen(seeds.child("prefix-threshold"));
  const double threshold = rng::u01_closed_open(gen) * total;

  // 3. Broadcast the threshold so every rank can test ownership locally.
  const std::vector<double> thresholds =
      broadcast(topo, threshold, kRoot, result.comm);

  // 4. Ownership test (rank-local): the owner is the non-empty rank whose
  //    interval [offset, offset + sum) contains t.  The simulation resolves
  //    it as "last non-empty rank with offset <= t", which is the same rank
  //    in exact arithmetic and never gaps or double-claims under rounding.
  std::size_t owner = kNoIndex;
  for (std::size_t r = 0; r < p; ++r) {
    if (sums[r] > 0.0 && offsets[r] <= thresholds[r]) owner = r;
  }
  LRB_ASSERT(owner != kNoIndex, "threshold below total implies an owner");

  // Local inverse CDF on the owner: walk the shard until the running sum
  // crosses t.  Zero-fitness cells add nothing and can never be selected.
  const parallel::Range range = shards.shard_range(owner);
  const std::span<const double> shard = shards.shard(owner);
  double cumulative = offsets[owner];
  std::uint64_t selected = kNoIndex;
  for (std::size_t j = 0; j < shard.size(); ++j) {
    if (shard[j] <= 0.0) continue;
    cumulative += shard[j];
    selected = static_cast<std::uint64_t>(range.begin + j);
    if (cumulative > thresholds[owner]) break;
  }
  LRB_ASSERT(selected != kNoIndex, "owning shard holds a positive entry");

  // 5. Publish the winner: a final argmax-allreduce (2-word pairs) gives
  //    every rank the selected index, matching what bidding delivers.
  std::vector<ArgMax> claim(p, ArgMax{kNoBid, kNoIndex});
  claim[owner] = ArgMax{1.0, selected};
  const std::vector<ArgMax> winners = allreduce_argmax(topo, claim, result.comm);
  result.index = static_cast<std::size_t>(winners[0].index);
  return result;
}

DrawResult distributed_prefix_sum(const ShardedFitness& shards,
                                  std::uint64_t seed) {
  return distributed_prefix_sum(shards, rng::SeedSequence(seed));
}

}  // namespace lrb::dist
