// Distributed roulette wheel selection over sharded fitness vectors.
//
// This is the paper's Section III contrast replayed on a message-passing
// machine.  Both algorithms select global index i with probability
// F_i = f_i / sum f, and both finish in O(log P) communication rounds — but
// their bills differ the same way the PRAM cell counts did:
//
//   * distributed_bidding — every rank runs the serial logarithmic-bidding
//     sub-race over its own shard (pure local compute), then ONE
//     allreduce_argmax of a 2-word (bid, global index) pair crowns the
//     winner on every rank.  The distributed echo of the paper's "single
//     O(1) shared cell".
//
//   * distributed_prefix_sum — the classical pipeline the paper's baseline
//     implies: exclusive scan of shard sums (shard offsets), reduce of the
//     global total to a root, root draws the threshold u * total, broadcast
//     of the threshold, a local inverse-CDF walk on the owning rank, and a
//     final argmax-allreduce to publish the winner everywhere (parity with
//     bidding: every rank must learn the result).
//
//   * distributed_bidding_deterministic — the same bidding dataflow with
//     counter-based (Philox) bids keyed by (seed, draw id, global index):
//     P-invariant and partition-invariant replay, bit-identical to serial
//     core::DeterministicBidder, for the identical communication bill.
//
// Exactness: bidding inherits select_bidding's proof — per-shard maxima of
// independent log(u)/f_i bids are themselves exponential-race winners, and
// the argmax over shards is the global race, so Pr[i] = F_i with no
// approximation.  The prefix pipeline is the standard inverse-CDF argument.
// Both are chi-square-validated in tests/dist/selection_test.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/collectives.hpp"
#include "dist/sharding.hpp"
#include "dist/topology.hpp"
#include "rng/seed.hpp"

namespace lrb::dist {

/// One distributed selection draw: the agreed winner plus the communication
/// the draw cost.  `index` is identical on every rank by construction.
struct DrawResult {
  std::size_t index = 0;  ///< selected global index, known to all ranks
  CommLedger comm;        ///< rounds/messages/words/critical path of the draw
};

/// A batch of B distributed selection draws that shared ONE batched
/// argmax-allreduce.  indices[t] is draw t's winner, identical on every
/// rank; `comm` is the bill of the whole batch — ceil(log2 P) rounds total,
/// i.e. ceil(log2 P)/B rounds per draw.
struct BatchDrawResult {
  std::vector<std::size_t> indices;  ///< B selected global indices
  CommLedger comm;                   ///< bill of the whole batch
};

/// Logarithmic random bidding over shards: local sub-race per rank, one
/// argmax-allreduce.  Rank r draws its bids from engine seeds.child(r), so
/// streams are decorrelated and a draw consumes exactly one uniform per
/// positive local entry (as the serial selector does).
[[nodiscard]] DrawResult distributed_bidding(const ShardedFitness& shards,
                                             const rng::SeedSequence& seeds);

/// Convenience overload seeding the sequence from a bare master seed.
[[nodiscard]] DrawResult distributed_bidding(const ShardedFitness& shards,
                                             std::uint64_t seed);

/// B batched bidding draws (B >= 1), with replacement, amortizing the
/// allreduce round latency: every rank runs B local sub-races over its
/// shard (one core::DrawManyKernel, B filtered O(k_r) passes, consuming
/// exactly B uniforms per positive local entry from engine seeds.child(r)),
/// then all B (bid, index) winners ride ONE allreduce_argmax_batch of
/// 2B-word messages.
///
/// Joint distribution: the B draws are independent, each exactly
/// F_i-distributed (chi-square-validated in tests/dist/).  With batch == 1
/// this reproduces distributed_bidding bit for bit — same winner, same
/// ledger.
[[nodiscard]] BatchDrawResult distributed_bidding_batch(
    const ShardedFitness& shards, std::size_t batch,
    const rng::SeedSequence& seeds);

[[nodiscard]] BatchDrawResult distributed_bidding_batch(
    const ShardedFitness& shards, std::size_t batch, std::uint64_t seed);

/// Counter-based deterministic distributed bidding: the P-INVARIANT replay
/// contract.  The stream-based paths above draw rank r's bids from
/// seeds.child(r), so the same master seed selects different individuals at
/// P = 4 vs P = 8.  Here instead every rank computes the pure-function bids
/// rng::deterministic_bid(seed, draw_id, global index, f) over its own shard
/// (one core::DeterministicDrawKernel, filtered exactly like the stream hot
/// path) and the usual argmax-allreduce crowns the winner — so the selected
/// index is a function of (seed, draw_id, fitness) alone: bit-identical to
/// serial core::DeterministicBidder at every rank count and every shard
/// partition, for the SAME communication bill as distributed_bidding
/// (identical collective, identical ledger).  Cost: one Philox4x32-10 block
/// per positive item per draw — ~2.5-4x the filtered xoshiro stream kernel
/// (the `deterministic` column of BENCH_selection.json).
///
/// `draw_id` is the absolute position in the deterministic draw stream —
/// pass t to reproduce exactly what DeterministicBidder(seed) returns for
/// its t-th select() (replay, checkpoint-restart, cross-machine audits).
[[nodiscard]] DrawResult distributed_bidding_deterministic(
    const ShardedFitness& shards, std::uint64_t seed, std::uint64_t draw_id = 0);

/// B batched deterministic draws with draw ids first_draw_id .. +B-1, all
/// riding ONE allreduce_argmax_batch — the same 2B-word, ceil(log2 P)-round
/// exchange as distributed_bidding_batch, hence the identical CommLedger at
/// every (P, B).  indices[t] equals the serial DeterministicBidder winner of
/// draw first_draw_id + t at every rank count and partition.
[[nodiscard]] BatchDrawResult distributed_bidding_deterministic_batch(
    const ShardedFitness& shards, std::size_t batch, std::uint64_t seed,
    std::uint64_t first_draw_id = 0);

/// Draw-id cursor over the deterministic distributed stream, mirroring
/// core::DeterministicBidder's seek/replay contract: select() consumes draw
/// ids sequentially, seek() repositions, and any interleaving of single and
/// batched selects that covers the same draw ids returns the same winners.
/// The cursor holds no RNG state — only (seed, next draw id) — so it can be
/// checkpointed as two integers and resumed on a cluster of any size.
class DeterministicDistributedBidder {
 public:
  constexpr explicit DeterministicDistributedBidder(std::uint64_t seed) noexcept
      : seed_(seed) {}

  [[nodiscard]] constexpr std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] constexpr std::uint64_t next_draw_id() const noexcept {
    return draw_;
  }

  /// Positions the cursor at an absolute draw id (replay support).
  constexpr void seek(std::uint64_t draw_id) noexcept { draw_ = draw_id; }

  /// One draw at the cursor; advances it by 1.
  [[nodiscard]] DrawResult select(const ShardedFitness& shards);

  /// B draws at the cursor through one batched allreduce; advances it by B.
  [[nodiscard]] BatchDrawResult select_batch(const ShardedFitness& shards,
                                             std::size_t batch);

 private:
  std::uint64_t seed_;
  std::uint64_t draw_ = 0;
};

/// Prefix-sum (inverse CDF) roulette over shards: scan + reduce + broadcast
/// + local inverse-CDF + winner publication.  Same selection distribution,
/// strictly larger communication bill — the point of experiment A9.
[[nodiscard]] DrawResult distributed_prefix_sum(const ShardedFitness& shards,
                                                const rng::SeedSequence& seeds);

[[nodiscard]] DrawResult distributed_prefix_sum(const ShardedFitness& shards,
                                                std::uint64_t seed);

/// What prefix_sum_locate resolved: the rank whose CDF interval contains the
/// threshold and the positive-fitness cell its inverse-CDF walk landed on
/// (index is always inside owner's shard — one derivation, no second
/// ownership lookup for the caller to keep consistent).
struct PrefixLocation {
  std::size_t owner = 0;  ///< rank whose [offset, offset + sum) contains t
  std::size_t index = 0;  ///< selected global index, fitness[index] > 0
};

/// The ownership + local inverse-CDF step of distributed_prefix_sum, exposed
/// so its threshold edges are directly testable (the RNG cannot be steered
/// onto them through the public entry points).  `offsets[r]` is the
/// exclusive prefix sum of the shard sums (offsets[0] == 0) and `threshold`
/// is in [0, total).  The owner is the LAST non-empty rank with
/// offset <= threshold — under exact arithmetic the unique rank whose
/// interval [offset, offset + sum) contains the threshold, and under
/// rounding a rule that never gaps or double-claims, including when the
/// threshold lands exactly on a shard boundary or is 0 with leading
/// zero-fitness cells.  The walk inside the owner only ever lands on
/// positive-fitness cells.  Edge cases pinned in tests/dist/.
[[nodiscard]] PrefixLocation prefix_sum_locate(const ShardedFitness& shards,
                                               std::span<const double> offsets,
                                               double threshold);

}  // namespace lrb::dist
