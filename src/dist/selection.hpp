// Distributed roulette wheel selection over sharded fitness vectors.
//
// This is the paper's Section III contrast replayed on a message-passing
// machine.  Both algorithms select global index i with probability
// F_i = f_i / sum f, and both finish in O(log P) communication rounds — but
// their bills differ the same way the PRAM cell counts did:
//
//   * distributed_bidding — every rank runs the serial logarithmic-bidding
//     sub-race over its own shard (pure local compute), then ONE
//     allreduce_argmax of a 2-word (bid, global index) pair crowns the
//     winner on every rank.  The distributed echo of the paper's "single
//     O(1) shared cell".
//
//   * distributed_prefix_sum — the classical pipeline the paper's baseline
//     implies: exclusive scan of shard sums (shard offsets), reduce of the
//     global total to a root, root draws the threshold u * total, broadcast
//     of the threshold, a local inverse-CDF walk on the owning rank, and a
//     final argmax-allreduce to publish the winner everywhere (parity with
//     bidding: every rank must learn the result).
//
// Exactness: bidding inherits select_bidding's proof — per-shard maxima of
// independent log(u)/f_i bids are themselves exponential-race winners, and
// the argmax over shards is the global race, so Pr[i] = F_i with no
// approximation.  The prefix pipeline is the standard inverse-CDF argument.
// Both are chi-square-validated in tests/dist/selection_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/collectives.hpp"
#include "dist/sharding.hpp"
#include "dist/topology.hpp"
#include "rng/seed.hpp"

namespace lrb::dist {

/// One distributed selection draw: the agreed winner plus the communication
/// the draw cost.  `index` is identical on every rank by construction.
struct DrawResult {
  std::size_t index = 0;  ///< selected global index, known to all ranks
  CommLedger comm;        ///< rounds/messages/words/critical path of the draw
};

/// A batch of B distributed selection draws that shared ONE batched
/// argmax-allreduce.  indices[t] is draw t's winner, identical on every
/// rank; `comm` is the bill of the whole batch — ceil(log2 P) rounds total,
/// i.e. ceil(log2 P)/B rounds per draw.
struct BatchDrawResult {
  std::vector<std::size_t> indices;  ///< B selected global indices
  CommLedger comm;                   ///< bill of the whole batch
};

/// Logarithmic random bidding over shards: local sub-race per rank, one
/// argmax-allreduce.  Rank r draws its bids from engine seeds.child(r), so
/// streams are decorrelated and a draw consumes exactly one uniform per
/// positive local entry (as the serial selector does).
[[nodiscard]] DrawResult distributed_bidding(const ShardedFitness& shards,
                                             const rng::SeedSequence& seeds);

/// Convenience overload seeding the sequence from a bare master seed.
[[nodiscard]] DrawResult distributed_bidding(const ShardedFitness& shards,
                                             std::uint64_t seed);

/// B batched bidding draws (B >= 1), with replacement, amortizing the
/// allreduce round latency: every rank runs B local sub-races over its
/// shard (one core::DrawManyKernel, B filtered O(k_r) passes, consuming
/// exactly B uniforms per positive local entry from engine seeds.child(r)),
/// then all B (bid, index) winners ride ONE allreduce_argmax_batch of
/// 2B-word messages.
///
/// Joint distribution: the B draws are independent, each exactly
/// F_i-distributed (chi-square-validated in tests/dist/).  With batch == 1
/// this reproduces distributed_bidding bit for bit — same winner, same
/// ledger.
[[nodiscard]] BatchDrawResult distributed_bidding_batch(
    const ShardedFitness& shards, std::size_t batch,
    const rng::SeedSequence& seeds);

[[nodiscard]] BatchDrawResult distributed_bidding_batch(
    const ShardedFitness& shards, std::size_t batch, std::uint64_t seed);

/// Prefix-sum (inverse CDF) roulette over shards: scan + reduce + broadcast
/// + local inverse-CDF + winner publication.  Same selection distribution,
/// strictly larger communication bill — the point of experiment A9.
[[nodiscard]] DrawResult distributed_prefix_sum(const ShardedFitness& shards,
                                                const rng::SeedSequence& seeds);

[[nodiscard]] DrawResult distributed_prefix_sum(const ShardedFitness& shards,
                                                std::uint64_t seed);

}  // namespace lrb::dist
