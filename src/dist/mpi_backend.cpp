#include "dist/mpi_backend.hpp"

#if defined(LRB_HAS_MPI)

#include <mpi.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/obs.hpp"

namespace lrb::dist {

namespace {

// ArgMax pairs travel as raw bytes: 8-byte double + 8-byte index, identical
// layout on every rank of a homogeneous cluster (the only kind the parity
// contract addresses — bit-identity across heterogeneous FP hardware is not
// a claim anyone can make).
static_assert(std::is_trivially_copyable_v<ArgMax> && sizeof(ArgMax) == 16,
              "ArgMax must be wire-safe as 2 words");

/// What one exchange needs to know about the backend: which communicator to
/// ride and whether a deadline is armed.
struct Wire {
  MPI_Comm comm;
  std::uint64_t deadline_ns;
};

/// One exchange with this round's neighbors; either side may be
/// MPI_PROC_NULL (one-way rounds of the fold/tree schedules), which MPI
/// turns into a no-op on that side.
///
/// Deadline off (the default): a single blocking MPI_Sendrecv — one call per
/// modeled round is the invariant tools/mpi_parity counts via PMPI.
/// Deadline armed: the same dataflow as a nonblocking pair polled against
/// the clock; expiry throws CommTimeoutError, the typed transient failure
/// the collective retry loop (dist/collectives.cpp) retries with backoff.
void sendrecv_bytes(const Wire& wire, const void* send, std::size_t bytes,
                    int dest, void* recv, int src, int tag) {
  if (wire.deadline_ns == 0) {
    MPI_Sendrecv(send, static_cast<int>(bytes), MPI_BYTE, dest, tag, recv,
                 static_cast<int>(bytes), MPI_BYTE, src, tag, wire.comm,
                 MPI_STATUS_IGNORE);
    return;
  }
  MPI_Request requests[2];
  MPI_Irecv(recv, static_cast<int>(bytes), MPI_BYTE, src, tag, wire.comm,
            &requests[0]);
  MPI_Isend(send, static_cast<int>(bytes), MPI_BYTE, dest, tag, wire.comm,
            &requests[1]);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(wire.deadline_ns);
  for (;;) {
    int done = 0;
    MPI_Testall(2, requests, &done, MPI_STATUSES_IGNORE);
    if (done != 0) return;
    if (std::chrono::steady_clock::now() >= deadline) {
      // Best-effort cancellation; an unfinished request we abandon here is
      // acceptable on what is an error path headed for retry-or-escalate.
      MPI_Cancel(&requests[0]);
      MPI_Request_free(&requests[0]);
      MPI_Request_free(&requests[1]);
      throw CommTimeoutError("mpi exchange exceeded deadline (" +
                             std::to_string(wire.deadline_ns) + " ns)");
    }
  }
}

int as_int(std::size_t v) { return static_cast<int>(v); }

}  // namespace

MpiBackend::MpiBackend(MPI_Comm comm, std::uint64_t exchange_deadline_ns)
    : comm_(comm), deadline_ns_(exchange_deadline_ns) {
  int initialized = 0;
  MPI_Initialized(&initialized);
  LRB_REQUIRE(initialized != 0, InvalidArgumentError,
              "MpiBackend requires MPI_Init to have run");
  int rank = 0;
  int size = 1;
  MPI_Comm_rank(comm_, &rank);
  MPI_Comm_size(comm_, &size);
  rank_ = static_cast<std::size_t>(rank);
  size_ = static_cast<std::size_t>(size);
}

std::string_view MpiBackend::name() const noexcept { return "mpi"; }

bool MpiBackend::owns_rank(std::size_t rank) const noexcept {
  return rank == rank_;
}

namespace {

void require_world_sized(const Topology& topo, std::size_t world) {
  LRB_REQUIRE(topo.ranks() == world, InvalidArgumentError,
              "MpiBackend: topology rank count must equal the MPI world size");
}

/// SPMD dissemination allreduce (idempotent combines): round r exchanges the
/// running value with the +/- 2^r neighbors on the ring; the shift never
/// reaches P, so every round is a genuine two-sided exchange.  Same combine,
/// same order as the simulation's current[to] = combine(current[to], sent).
template <typename T, typename Combine>
void mpi_dissemination(const Wire& wire, const Topology& topo, std::size_t me,
                       T* mine, std::size_t count,
                       std::uint64_t words_per_message, CommLedger& ledger,
                       Combine&& combine) {
  const std::size_t p = topo.ranks();
  std::vector<T> received(count);
  for (std::uint32_t r = 0; r < topo.log_rounds(); ++r) {
    // Same span/histogram names as SimulatedBackend: on a real cluster the
    // round histogram shows wire latency instead of memcpy time, which is
    // exactly the comparison the flight recorder exists to make.
    LRB_TRACE_SPAN_ARG("round", r);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const std::size_t shift = std::size_t{1} << r;
    const int dest = as_int((me + shift) % p);
    const int src = as_int((me + p - shift) % p);
    sendrecv_bytes(wire, mine, count * sizeof(T), dest, received.data(), src,
                   as_int(r));
    for (std::size_t t = 0; t < count; ++t) {
      mine[t] = combine(mine[t], received[t]);
    }
    ledger.charge_round(p, words_per_message);
  }
}

}  // namespace

std::vector<double> MpiBackend::allreduce_max(const Topology& topo,
                                              std::span<const double> local,
                                              CommLedger& ledger) const {
  require_world_sized(topo, size_);
  const Wire wire{comm_, deadline_ns_};
  double mine = local[rank_];
  mpi_dissemination(wire, topo, rank_, &mine, 1, /*words_per_message=*/1,
                    ledger,
                    [](double a, double b) { return a > b ? a : b; });
  return std::vector<double>(topo.ranks(), mine);
}

std::vector<ArgMax> MpiBackend::allreduce_argmax(const Topology& topo,
                                                 std::span<const ArgMax> local,
                                                 CommLedger& ledger) const {
  require_world_sized(topo, size_);
  const Wire wire{comm_, deadline_ns_};
  ArgMax mine = local[rank_];
  mpi_dissemination(wire, topo, rank_, &mine, 1, /*words_per_message=*/2,
                    ledger,
                    [](const ArgMax& a, const ArgMax& b) {
                      return argmax_combine(a, b);
                    });
  return std::vector<ArgMax>(topo.ranks(), mine);
}

std::vector<std::vector<ArgMax>> MpiBackend::allreduce_argmax_batch(
    const Topology& topo, std::span<const std::vector<ArgMax>> local,
    CommLedger& ledger) const {
  require_world_sized(topo, size_);
  const Wire wire{comm_, deadline_ns_};
  const std::size_t batch = local.front().size();
  std::vector<ArgMax> mine = local[rank_];
  mpi_dissemination(wire, topo, rank_, mine.data(), batch,
                    /*words_per_message=*/2 * batch, ledger,
                    [](const ArgMax& a, const ArgMax& b) {
                      return argmax_combine(a, b);
                    });
  return std::vector<std::vector<ArgMax>>(topo.ranks(), mine);
}

std::vector<double> MpiBackend::allreduce_sum(const Topology& topo,
                                              std::span<const double> local,
                                              CommLedger& ledger) const {
  require_world_sized(topo, size_);
  const Wire wire{comm_, deadline_ns_};
  const std::size_t p = topo.ranks();
  const std::size_t me = rank_;
  double mine = local[me];
  if (p == 1) return {mine};

  // Fold / hypercube exchange / unfold, the simulation's schedule verbatim;
  // each process adds received partials in the identical order, so its own
  // entry is bit-equal to the simulation's entry for this rank.
  const std::size_t m = std::size_t{1} << floor_log2(p);
  const std::size_t extra = p - m;
  if (extra > 0) {
    double received = 0.0;
    const int dest = me >= m ? as_int(me - m) : MPI_PROC_NULL;
    const int src = me < extra ? as_int(me + m) : MPI_PROC_NULL;
    sendrecv_bytes(wire, &mine, sizeof mine, dest, &received, src, 0);
    if (me < extra) mine += received;
    ledger.charge_round(extra, 1);
  }
  for (std::uint32_t bit = 0; bit < floor_log2(p); ++bit) {
    LRB_TRACE_SPAN_ARG("round", bit);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    if (me < m) {
      const int partner = as_int(topo.hypercube_partner(me, bit));
      double received = 0.0;
      sendrecv_bytes(wire, &mine, sizeof mine, partner, &received, partner,
                     as_int(1 + bit));
      mine += received;
    }
    ledger.charge_round(m, 1);
  }
  if (extra > 0) {
    double received = 0.0;
    const int dest = me < extra ? as_int(me + m) : MPI_PROC_NULL;
    const int src = me >= m ? as_int(me - m) : MPI_PROC_NULL;
    sendrecv_bytes(wire, &mine, sizeof mine, dest, &received, src, 0);
    if (me >= m) mine = received;
    ledger.charge_round(extra, 1);
  }
  // Only this process's own entry is promised (backend.hpp): recursive
  // doubling accumulates in rank-dependent order, so entries differ in the
  // last ulp across ranks and reconstructing all P of them is not worth a
  // wire round.
  return std::vector<double>(p, mine);
}

std::vector<double> MpiBackend::exclusive_scan_sum(const Topology& topo,
                                                   std::span<const double> local,
                                                   CommLedger& ledger) const {
  require_world_sized(topo, size_);
  const Wire wire{comm_, deadline_ns_};
  const std::size_t p = topo.ranks();
  const std::size_t me = rank_;
  // Hillis–Steele, simulation order: my exclusive prefix accumulates exactly
  // the partials received from me - shift.
  double incl = local[me];
  double excl = 0.0;
  int tag = 0;
  for (std::size_t shift = 1; shift < p; shift <<= 1) {
    LRB_TRACE_SPAN_ARG("round", shift);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const double sent = incl;  // pre-round value, like the sim's snapshot
    double received = 0.0;
    const int dest = me + shift < p ? as_int(me + shift) : MPI_PROC_NULL;
    const int src = me >= shift ? as_int(me - shift) : MPI_PROC_NULL;
    sendrecv_bytes(wire, &sent, sizeof sent, dest, &received, src, tag++);
    if (me >= shift) {
      excl += received;
      incl += received;
    }
    ledger.charge_round(static_cast<std::uint64_t>(p - shift), 1);
  }
  // The model is done; the allgather below only reassembles the global
  // offset vector the simulation-shaped ownership scan reads (see the
  // header note) and is deliberately not billed.
  std::vector<double> offsets(p, 0.0);
  MPI_Allgather(&excl, 1, MPI_DOUBLE, offsets.data(), 1, MPI_DOUBLE, comm_);
  return offsets;
}

double MpiBackend::reduce_sum(const Topology& topo,
                              std::span<const double> local, std::size_t root,
                              CommLedger& ledger) const {
  require_world_sized(topo, size_);
  const Wire wire{comm_, deadline_ns_};
  const std::size_t p = topo.ranks();
  const std::size_t rel = (rank_ + p - root) % p;
  double mine = local[rank_];
  for (std::uint32_t r = 0; r < topo.log_rounds(); ++r) {
    LRB_TRACE_SPAN_ARG("round", r);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const std::size_t stride = std::size_t{1} << r;
    // In round r, relative ranks stride, 3*stride, ... send to the rank
    // `stride` below; the charge mirrors the simulation's count loop.
    std::uint64_t message_count = 0;
    for (std::size_t s = stride; s < p; s += 2 * stride) ++message_count;

    if (rel % (2 * stride) == stride) {
      double unused = 0.0;
      sendrecv_bytes(wire, &mine, sizeof mine, as_int((root + rel - stride) % p),
                     &unused, MPI_PROC_NULL, as_int(r));
    } else if (rel % (2 * stride) == 0 && rel + stride < p) {
      double received = 0.0;
      sendrecv_bytes(wire, &mine, sizeof mine, MPI_PROC_NULL, &received,
                     as_int((root + rel + stride) % p), as_int(r));
      mine += received;
    }
    ledger.charge_round(message_count, 1);
  }
  // `mine` is the global total at the root and a partial elsewhere — the
  // free function's contract only promises the root's view.
  return mine;
}

std::vector<double> MpiBackend::broadcast(const Topology& topo, double value,
                                          std::size_t root,
                                          CommLedger& ledger) const {
  require_world_sized(topo, size_);
  const Wire wire{comm_, deadline_ns_};
  const std::size_t p = topo.ranks();
  const std::size_t rel = (rank_ + p - root) % p;
  double mine = rel == 0 ? value : 0.0;
  if (p == 1) return {mine};
  // The reduce tree in reverse: after the stride-2^r round, every relative
  // rank divisible by 2^r holds the value.
  for (std::uint32_t r = topo.log_rounds(); r-- > 0;) {
    LRB_TRACE_SPAN_ARG("round", r);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const std::size_t stride = std::size_t{1} << r;
    std::uint64_t message_count = 0;
    for (std::size_t s = 0; s + stride < p; s += 2 * stride) ++message_count;

    if (rel % (2 * stride) == 0 && rel + stride < p) {
      double unused = 0.0;
      sendrecv_bytes(wire, &mine, sizeof mine, as_int((rank_ + stride) % p), &unused,
                     MPI_PROC_NULL, as_int(r));
    } else if (rel % (2 * stride) == stride) {
      double received = 0.0;
      sendrecv_bytes(wire, &mine, sizeof mine, MPI_PROC_NULL, &received,
                     as_int((rank_ + p - stride) % p), as_int(r));
      mine = received;
    }
    ledger.charge_round(message_count, 1);
  }
  return std::vector<double>(p, mine);
}

}  // namespace lrb::dist

#endif  // LRB_HAS_MPI
