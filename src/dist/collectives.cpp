// The free collectives: argument validation shared by every backend, then
// dispatch to the Topology's CommBackend.  The dataflow itself lives in
// dist/backend.cpp (SimulatedBackend, the default) and dist/mpi_backend.cpp
// (MpiBackend, under LRB_WITH_MPI).  Validating here — before dispatch —
// guarantees both backends reject malformed input identically, which the
// backend-dispatch tests pin.
#include "dist/collectives.hpp"

#include <vector>

#include "common/error.hpp"
#include "dist/backend.hpp"

namespace lrb::dist {

namespace {

void require_one_entry_per_rank(const Topology& topo, std::size_t entries) {
  LRB_REQUIRE(entries == topo.ranks(), InvalidArgumentError,
              "collective input must have one entry per rank");
}

}  // namespace

std::vector<double> allreduce_max(const Topology& topo,
                                  std::span<const double> local,
                                  CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  return topo.backend().allreduce_max(topo, local, ledger);
}

std::vector<ArgMax> allreduce_argmax(const Topology& topo,
                                     std::span<const ArgMax> local,
                                     CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  return topo.backend().allreduce_argmax(topo, local, ledger);
}

std::vector<std::vector<ArgMax>> allreduce_argmax_batch(
    const Topology& topo, std::span<const std::vector<ArgMax>> local,
    CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  const std::size_t batch = local.empty() ? 0 : local.front().size();
  LRB_REQUIRE(batch >= 1, InvalidArgumentError,
              "batched argmax allreduce needs at least one pair per rank");
  for (const std::vector<ArgMax>& pairs : local) {
    LRB_REQUIRE(pairs.size() == batch, InvalidArgumentError,
                "batched argmax allreduce needs equal batch sizes per rank");
  }
  return topo.backend().allreduce_argmax_batch(topo, local, ledger);
}

std::vector<double> allreduce_sum(const Topology& topo,
                                  std::span<const double> local,
                                  CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  return topo.backend().allreduce_sum(topo, local, ledger);
}

std::vector<double> exclusive_scan_sum(const Topology& topo,
                                       std::span<const double> local,
                                       CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  return topo.backend().exclusive_scan_sum(topo, local, ledger);
}

double reduce_sum(const Topology& topo, std::span<const double> local,
                  std::size_t root, CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_REQUIRE(root < topo.ranks(), InvalidArgumentError,
              "reduce root out of range");
  return topo.backend().reduce_sum(topo, local, root, ledger);
}

std::vector<double> broadcast(const Topology& topo, double value,
                              std::size_t root, CommLedger& ledger) {
  LRB_REQUIRE(root < topo.ranks(), InvalidArgumentError,
              "broadcast root out of range");
  return topo.backend().broadcast(topo, value, root, ledger);
}

}  // namespace lrb::dist
