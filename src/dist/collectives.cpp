// The free collectives: argument validation shared by every backend, then
// dispatch to the Topology's CommBackend.  The dataflow itself lives in
// dist/backend.cpp (SimulatedBackend, the default) and dist/mpi_backend.cpp
// (MpiBackend, under LRB_WITH_MPI).  Validating here — before dispatch —
// guarantees both backends reject malformed input identically, which the
// backend-dispatch tests pin.
#include "dist/collectives.hpp"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "dist/backend.hpp"
#include "obs/obs.hpp"

namespace lrb::dist {

namespace {

void require_one_entry_per_rank(const Topology& topo, std::size_t entries) {
  LRB_REQUIRE(entries == topo.ranks(), InvalidArgumentError,
              "collective input must have one entry per rank");
}

/// Flushes a demoted (failed-attempt) ledger delta to the obs counters.
/// The CommLedger's retried axes already hold this traffic for collectives
/// that eventually succeed; the counters additionally capture attempts that
/// escalate — whose local ledger dies with the propagating exception — so
/// the flight recorder never under-reports wasted wire traffic.
void note_demoted(const CommLedger& before, const CommLedger& after) {
#if defined(LRB_OBS_ENABLED)
  LRB_OBS_COUNTER_ADD("lrb_fault_retried_rounds_total",
                      after.retried_rounds - before.retried_rounds);
  LRB_OBS_COUNTER_ADD("lrb_fault_retried_words_total",
                      after.retried_words - before.retried_words);
#else
  static_cast<void>(before);
  static_cast<void>(after);
#endif
}

/// Detection & bounded retry around one backend collective.  Transient
/// faults (CommTimeoutError) are retried under the backend's RetryPolicy
/// with exponential backoff; each failed attempt's ledger charges are
/// reclassified to the retried axes, so the useful bill of a collective
/// that eventually succeeds is exactly the unfaulted bill.  Permanent
/// faults (RankFailedError) escalate immediately to the caller — typically
/// the recovery driver in fault/recovery.hpp.  On the clean path this is
/// one ledger copy (already needed for note_collective) and zero branches
/// taken: the zero-overhead contract the obs suite pins.
template <typename Fn>
auto with_retry(const Topology& topo, CommLedger& ledger, Fn&& fn)
    -> decltype(fn()) {
  for (std::uint32_t attempt = 1;; ++attempt) {
    const CommLedger checkpoint = ledger;
    try {
      return fn();
    } catch (const RankFailedError&) {
      ledger.demote_to_retried(checkpoint);
      note_demoted(checkpoint, ledger);
      throw;  // fail-stop: nothing to retry against, recovery reshards
    } catch (const CommTimeoutError&) {
      ledger.demote_to_retried(checkpoint);
      note_demoted(checkpoint, ledger);
      const RetryPolicy policy = topo.backend().retry_policy();
      if (attempt >= policy.max_attempts) {
        LRB_OBS_COUNTER_ADD("lrb_fault_retry_exhausted_total", 1);
        throw;  // escalation: the transient fault was not transient enough
      }
      LRB_OBS_COUNTER_ADD("lrb_fault_retries_total", 1);
      const std::uint64_t delay = policy.delay_ns(attempt - 1);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
      }
    }
  }
}

/// Rolls one completed collective's CommLedger delta into the obs counters:
/// the always-on production record of the paper's central quantity (rounds
/// and words on the critical path), aggregated across both backends.  Cold
/// relative to the rounds it bills, so the per-name counter may pay a
/// registry lookup.
void note_collective(const char* name, const CommLedger& before,
                     const CommLedger& after) {
#if defined(LRB_OBS_ENABLED)
  LRB_OBS_COUNTER_ADD("lrb_dist_collectives_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_dist_rounds_total", after.rounds - before.rounds);
  LRB_OBS_COUNTER_ADD("lrb_dist_messages_total",
                      after.messages - before.messages);
  LRB_OBS_COUNTER_ADD("lrb_dist_words_total", after.words - before.words);
  LRB_OBS_COUNTER_ADD(
      "lrb_dist_critical_path_words_total",
      after.critical_path_words - before.critical_path_words);
  LRB_OBS_COUNTER_ADD_DYN(std::string("lrb_dist_") + name + "_total", 1);
#else
  static_cast<void>(name);
  static_cast<void>(before);
  static_cast<void>(after);
#endif
}

}  // namespace

std::vector<double> allreduce_max(const Topology& topo,
                                  std::span<const double> local,
                                  CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_TRACE_SPAN("allreduce_max");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = with_retry(
      topo, ledger,
      [&] { return topo.backend().allreduce_max(topo, local, ledger); });
  note_collective("allreduce_max", before, ledger);
  return out;
}

std::vector<ArgMax> allreduce_argmax(const Topology& topo,
                                     std::span<const ArgMax> local,
                                     CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_TRACE_SPAN("allreduce_argmax");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = with_retry(
      topo, ledger,
      [&] { return topo.backend().allreduce_argmax(topo, local, ledger); });
  note_collective("allreduce_argmax", before, ledger);
  return out;
}

std::vector<std::vector<ArgMax>> allreduce_argmax_batch(
    const Topology& topo, std::span<const std::vector<ArgMax>> local,
    CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  const std::size_t batch = local.empty() ? 0 : local.front().size();
  LRB_REQUIRE(batch >= 1, InvalidArgumentError,
              "batched argmax allreduce needs at least one pair per rank");
  for (const std::vector<ArgMax>& pairs : local) {
    LRB_REQUIRE(pairs.size() == batch, InvalidArgumentError,
                "batched argmax allreduce needs equal batch sizes per rank");
  }
  LRB_TRACE_SPAN_ARG("allreduce_argmax_batch", batch);
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = with_retry(topo, ledger, [&] {
    return topo.backend().allreduce_argmax_batch(topo, local, ledger);
  });
  note_collective("allreduce_argmax_batch", before, ledger);
  return out;
}

std::vector<double> allreduce_sum(const Topology& topo,
                                  std::span<const double> local,
                                  CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_TRACE_SPAN("allreduce_sum");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = with_retry(
      topo, ledger,
      [&] { return topo.backend().allreduce_sum(topo, local, ledger); });
  note_collective("allreduce_sum", before, ledger);
  return out;
}

std::vector<double> exclusive_scan_sum(const Topology& topo,
                                       std::span<const double> local,
                                       CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_TRACE_SPAN("exclusive_scan_sum");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = with_retry(
      topo, ledger,
      [&] { return topo.backend().exclusive_scan_sum(topo, local, ledger); });
  note_collective("exclusive_scan_sum", before, ledger);
  return out;
}

double reduce_sum(const Topology& topo, std::span<const double> local,
                  std::size_t root, CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_REQUIRE(root < topo.ranks(), InvalidArgumentError,
              "reduce root out of range");
  LRB_TRACE_SPAN("reduce_sum");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  const double out = with_retry(topo, ledger, [&] {
    return topo.backend().reduce_sum(topo, local, root, ledger);
  });
  note_collective("reduce_sum", before, ledger);
  return out;
}

std::vector<double> broadcast(const Topology& topo, double value,
                              std::size_t root, CommLedger& ledger) {
  LRB_REQUIRE(root < topo.ranks(), InvalidArgumentError,
              "broadcast root out of range");
  LRB_TRACE_SPAN("broadcast");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = with_retry(
      topo, ledger,
      [&] { return topo.backend().broadcast(topo, value, root, ledger); });
  note_collective("broadcast", before, ledger);
  return out;
}

}  // namespace lrb::dist
