// The free collectives: argument validation shared by every backend, then
// dispatch to the Topology's CommBackend.  The dataflow itself lives in
// dist/backend.cpp (SimulatedBackend, the default) and dist/mpi_backend.cpp
// (MpiBackend, under LRB_WITH_MPI).  Validating here — before dispatch —
// guarantees both backends reject malformed input identically, which the
// backend-dispatch tests pin.
#include "dist/collectives.hpp"

#include <vector>

#include "common/error.hpp"
#include "dist/backend.hpp"
#include "obs/obs.hpp"

namespace lrb::dist {

namespace {

void require_one_entry_per_rank(const Topology& topo, std::size_t entries) {
  LRB_REQUIRE(entries == topo.ranks(), InvalidArgumentError,
              "collective input must have one entry per rank");
}

/// Rolls one completed collective's CommLedger delta into the obs counters:
/// the always-on production record of the paper's central quantity (rounds
/// and words on the critical path), aggregated across both backends.  Cold
/// relative to the rounds it bills, so the per-name counter may pay a
/// registry lookup.
void note_collective(const char* name, const CommLedger& before,
                     const CommLedger& after) {
#if defined(LRB_OBS_ENABLED)
  LRB_OBS_COUNTER_ADD("lrb_dist_collectives_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_dist_rounds_total", after.rounds - before.rounds);
  LRB_OBS_COUNTER_ADD("lrb_dist_messages_total",
                      after.messages - before.messages);
  LRB_OBS_COUNTER_ADD("lrb_dist_words_total", after.words - before.words);
  LRB_OBS_COUNTER_ADD(
      "lrb_dist_critical_path_words_total",
      after.critical_path_words - before.critical_path_words);
  LRB_OBS_COUNTER_ADD_DYN(std::string("lrb_dist_") + name + "_total", 1);
#else
  static_cast<void>(name);
  static_cast<void>(before);
  static_cast<void>(after);
#endif
}

}  // namespace

std::vector<double> allreduce_max(const Topology& topo,
                                  std::span<const double> local,
                                  CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_TRACE_SPAN("allreduce_max");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = topo.backend().allreduce_max(topo, local, ledger);
  note_collective("allreduce_max", before, ledger);
  return out;
}

std::vector<ArgMax> allreduce_argmax(const Topology& topo,
                                     std::span<const ArgMax> local,
                                     CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_TRACE_SPAN("allreduce_argmax");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = topo.backend().allreduce_argmax(topo, local, ledger);
  note_collective("allreduce_argmax", before, ledger);
  return out;
}

std::vector<std::vector<ArgMax>> allreduce_argmax_batch(
    const Topology& topo, std::span<const std::vector<ArgMax>> local,
    CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  const std::size_t batch = local.empty() ? 0 : local.front().size();
  LRB_REQUIRE(batch >= 1, InvalidArgumentError,
              "batched argmax allreduce needs at least one pair per rank");
  for (const std::vector<ArgMax>& pairs : local) {
    LRB_REQUIRE(pairs.size() == batch, InvalidArgumentError,
                "batched argmax allreduce needs equal batch sizes per rank");
  }
  LRB_TRACE_SPAN_ARG("allreduce_argmax_batch", batch);
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = topo.backend().allreduce_argmax_batch(topo, local, ledger);
  note_collective("allreduce_argmax_batch", before, ledger);
  return out;
}

std::vector<double> allreduce_sum(const Topology& topo,
                                  std::span<const double> local,
                                  CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_TRACE_SPAN("allreduce_sum");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = topo.backend().allreduce_sum(topo, local, ledger);
  note_collective("allreduce_sum", before, ledger);
  return out;
}

std::vector<double> exclusive_scan_sum(const Topology& topo,
                                       std::span<const double> local,
                                       CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_TRACE_SPAN("exclusive_scan_sum");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = topo.backend().exclusive_scan_sum(topo, local, ledger);
  note_collective("exclusive_scan_sum", before, ledger);
  return out;
}

double reduce_sum(const Topology& topo, std::span<const double> local,
                  std::size_t root, CommLedger& ledger) {
  require_one_entry_per_rank(topo, local.size());
  LRB_REQUIRE(root < topo.ranks(), InvalidArgumentError,
              "reduce root out of range");
  LRB_TRACE_SPAN("reduce_sum");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  const double out = topo.backend().reduce_sum(topo, local, root, ledger);
  note_collective("reduce_sum", before, ledger);
  return out;
}

std::vector<double> broadcast(const Topology& topo, double value,
                              std::size_t root, CommLedger& ledger) {
  LRB_REQUIRE(root < topo.ranks(), InvalidArgumentError,
              "broadcast root out of range");
  LRB_TRACE_SPAN("broadcast");
  LRB_OBS_SCOPED_NS("lrb_dist_collective_ns");
  const CommLedger before = ledger;
  auto out = topo.backend().broadcast(topo, value, root, ledger);
  note_collective("broadcast", before, ledger);
  return out;
}

}  // namespace lrb::dist
