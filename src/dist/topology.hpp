// The simulated message-passing machine underneath lrb::dist.
//
// The paper contrasts selection algorithms on shared-memory PRAMs; at
// production scale the fitness vector is sharded over P distributed ranks
// and the interesting cost is communication, not cell count.  This header
// models that machine just concretely enough to *meter* it:
//
//   * Topology — P ranks connected all-to-all, executing synchronous
//     communication rounds.  Hypercube exchange, dissemination (circulant)
//     shifts and binomial trees are all expressible; each needs
//     ceil(log2 P) rounds (plus up to two fold/unfold rounds for
//     non-power-of-two sum reductions).
//   * CommLedger — the per-operation bill: synchronized rounds, total
//     point-to-point messages, total 64-bit words moved, and the words
//     received along the longest dependency chain (critical path).
//
// The collectives in dist/collectives.hpp execute real dataflow over this
// model (results are exact, tests compare them to serial references) while
// charging the ledger.  WHO moves the words is pluggable: a Topology carries
// a CommBackend handle (dist/backend.hpp) — the in-process SimulatedBackend
// by default, or the real-cluster MpiBackend (dist/mpi_backend.hpp, built
// under LRB_WITH_MPI), both executing the same round schedules for the same
// bill, proven bit-identical by tools/mpi_parity in CI.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"

namespace lrb::dist {

class CommBackend;  // dist/backend.hpp — who executes the rounds

/// Communication bill of one collective (or one whole selection draw).
///
/// Units: `rounds` are barrier-synchronized communication steps in which
/// every rank sends at most one message; `words` are 64-bit payload words
/// (a double or an index counts 1, a (bid, index) pair counts 2);
/// `critical_path_words` sums the payload received along the longest
/// sender->receiver dependency chain — the latency-bound term that survives
/// even when all P messages of a round fly in parallel.
struct CommLedger {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  std::uint64_t critical_path_words = 0;

  // The retransmission axes: traffic that was charged, then thrown away
  // because the exchange failed (timeout, dead rank) and had to be re-sent
  // or abandoned.  Kept separate from the useful axes above so the paper's
  // cost invariants ("bidding moves strictly fewer words than prefix-sum")
  // compare algorithm bills, not luck with the network: after a successful
  // retry the useful axes equal an unfaulted run's exactly, and an unfaulted
  // run has retries == 0 and zeros here (pinned by the dist tests).
  std::uint64_t retries = 0;  ///< failed attempts that were reclassified
  std::uint64_t retried_rounds = 0;
  std::uint64_t retried_messages = 0;
  std::uint64_t retried_words = 0;

  /// Charges one synchronous round carrying `message_count` point-to-point
  /// messages of `words_per_message` payload words each.
  constexpr void charge_round(std::uint64_t message_count,
                              std::uint64_t words_per_message) noexcept {
    rounds += 1;
    messages += message_count;
    words += message_count * words_per_message;
    if (message_count > 0) critical_path_words += words_per_message;
  }

  /// Reclassifies everything charged to the useful axes since `checkpoint`
  /// as retransmission: the useful axes roll back to the checkpoint, the
  /// retried axes absorb the delta, and `retries` counts the failed attempt.
  /// Called by the collective layer's retry loop (dist/collectives.cpp) with
  /// the ledger snapshot it takes before each attempt — so a collective that
  /// eventually succeeds bills its useful axes exactly once, no matter how
  /// many attempts the fault schedule cost it.
  constexpr void demote_to_retried(const CommLedger& checkpoint) noexcept {
    retries += 1;
    retried_rounds += rounds - checkpoint.rounds;
    retried_messages += messages - checkpoint.messages;
    retried_words += words - checkpoint.words;
    rounds = checkpoint.rounds;
    messages = checkpoint.messages;
    words = checkpoint.words;
    critical_path_words = checkpoint.critical_path_words;
  }

  /// Accumulates another ledger (sequential composition of collectives).
  constexpr CommLedger& operator+=(const CommLedger& other) noexcept {
    rounds += other.rounds;
    messages += other.messages;
    words += other.words;
    critical_path_words += other.critical_path_words;
    retries += other.retries;
    retried_rounds += other.retried_rounds;
    retried_messages += other.retried_messages;
    retried_words += other.retried_words;
    return *this;
  }

  friend constexpr bool operator==(const CommLedger&,
                                   const CommLedger&) = default;
};

/// P ranks executing synchronous rounds.  Pure topology arithmetic; the
/// dataflow lives in dist/collectives.cpp.
class Topology {
 public:
  /// A null backend means "the simulated machine" (dist/backend.hpp's
  /// process-wide SimulatedBackend) — the seed behavior, bit for bit, with
  /// no allocation, so existing callers are untouched.  Passing a backend
  /// (e.g. MpiBackend under LRB_WITH_MPI) reroutes every collective issued
  /// against this topology; the handle is shared, so copies of the Topology
  /// (ShardedFitness stores one by value) stay on the same machine.
  explicit Topology(std::size_t ranks,
                    std::shared_ptr<const CommBackend> backend = nullptr)
      : ranks_(ranks), backend_(std::move(backend)) {
    LRB_REQUIRE(ranks >= 1, InvalidArgumentError,
                "Topology requires at least one rank");
  }

  [[nodiscard]] std::size_t ranks() const noexcept { return ranks_; }

  /// The backend executing this topology's collectives (the simulated
  /// machine unless one was injected).  Defined in dist/backend.cpp.
  [[nodiscard]] const CommBackend& backend() const noexcept;

  /// The shareable backend handle this topology was constructed with (null
  /// when it runs on the default simulated machine).  Lets elastic
  /// operations — ShardedFitness::reshard shrinking P after a rank failure —
  /// rebuild a differently-sized Topology on the SAME machine.
  [[nodiscard]] const std::shared_ptr<const CommBackend>& backend_handle()
      const noexcept {
    return backend_;
  }

  /// ceil(log2 P): the round count of dissemination collectives and binomial
  /// trees, and the lower bound for any P-rank reduction.
  [[nodiscard]] std::uint32_t log_rounds() const noexcept {
    return ceil_log2(static_cast<std::uint64_t>(ranks_));
  }

  /// True when P is a power of two (hypercube exchange needs no fold).
  [[nodiscard]] bool is_hypercube() const noexcept {
    return is_pow2(static_cast<std::uint64_t>(ranks_));
  }

  /// Dissemination (circulant) shift: in round r, rank i sends to
  /// (i + 2^r) mod P.  After ceil(log2 P) rounds every rank has heard,
  /// directly or transitively, from every other — the basis of the
  /// idempotent allreduces (max, argmax).
  [[nodiscard]] std::size_t dissemination_target(std::size_t rank,
                                                 std::uint32_t round) const noexcept {
    return (rank + (std::size_t{1} << round)) % ranks_;
  }

  /// Hypercube partner i XOR 2^bit (only meaningful when is_hypercube()).
  [[nodiscard]] std::size_t hypercube_partner(std::size_t rank,
                                              std::uint32_t bit) const noexcept {
    return rank ^ (std::size_t{1} << bit);
  }

 private:
  std::size_t ranks_;
  std::shared_ptr<const CommBackend> backend_;
};

}  // namespace lrb::dist
