// Pluggable communication backends: who actually moves the words.
//
// Every collective in dist/collectives.hpp is *specified* by the machine
// model in dist/topology.hpp — a round schedule, a combine rule, and a
// CommLedger bill.  The CommBackend interface separates that specification
// from its execution:
//
//   * SimulatedBackend — one process embodies all P ranks and executes the
//     round-by-round dataflow in memory.  This is the seed behavior, bit for
//     bit: a default-constructed Topology routes here, so existing callers
//     pay nothing and change nothing.
//
//   * MpiBackend (dist/mpi_backend.hpp, compiled only under LRB_WITH_MPI) —
//     one process per rank, the same round schedules executed as real
//     MPI_Sendrecv exchanges over MPI_COMM_WORLD.  Because both backends run
//     the identical per-round combines in the identical order, their results
//     are bit-for-bit equal and their ledgers are equal by construction —
//     tools/mpi_parity re-proves both claims under mpirun on every CI run,
//     cross-checking the ledger against PMPI call counters.
//
// Contract for the per-rank vectors: the free collectives take/return one
// entry per rank (the simulation's global view).  A distributed backend uses
// ONLY entry [r] of ranks r it owns (owns_rank) as this process's
// contribution.  On return, idempotent allreduces (max, argmax, argmax_batch)
// and broadcast fill every entry with the agreed value — identical on all
// ranks and across backends.  For the non-idempotent collectives the entries
// of ranks this process does not own are backend-defined: allreduce_sum and
// reduce_sum promise only the calling process's own entry (and the root's
// total, respectively); exclusive_scan_sum promises the full offset vector on
// every process (MpiBackend allgathers it — see the note on the model bill in
// mpi_backend.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "dist/collectives.hpp"
#include "dist/topology.hpp"

namespace lrb::dist {

/// How the collective layer (dist/collectives.cpp) reacts to a transient
/// CommTimeoutError from a backend: up to `max_attempts` total tries, with
/// exponential backoff between them.  RankFailedError is permanent and never
/// retried — it escalates straight to the recovery driver (fault/recovery.hpp).
struct RetryPolicy {
  std::uint32_t max_attempts = 4;    ///< 1 initial attempt + 3 retries
  std::uint64_t base_delay_ns = 0;   ///< backoff before retry k: base * mult^k
  std::uint32_t multiplier = 2;

  /// Backoff before the (retry+1)-th re-attempt (retry counts from 0).
  [[nodiscard]] constexpr std::uint64_t delay_ns(std::uint32_t retry)
      const noexcept {
    std::uint64_t d = base_delay_ns;
    for (std::uint32_t i = 0; i < retry; ++i) d *= multiplier;
    return d;
  }
};

/// Executes the model's collectives.  Implementations are stateless or
/// immutable after construction (const methods), so one instance can be
/// shared by every Topology in the process.
class CommBackend {
 public:
  virtual ~CommBackend();

  /// Stable identifier reported by tools ("simulated", "mpi") so benchmark
  /// and parity JSON can never silently mix backends.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The retry discipline for transient faults surfaced by this backend.
  /// The default is deliberate for test determinism: retries happen (4
  /// attempts) but with zero backoff sleep, so a seeded fault schedule
  /// replays identically regardless of wall-clock speed.  Backends fronting
  /// a real network (or the fault injector, configurably) override this.
  [[nodiscard]] virtual RetryPolicy retry_policy() const noexcept {
    return RetryPolicy{};
  }

  /// True when this process computes rank `rank`'s local work (sub-races,
  /// shard sums).  The simulation embodies every rank; an MPI process
  /// embodies exactly one.  Selection scaffolds skip non-owned ranks, which
  /// is what makes the per-rank compute O(n/P) on a real cluster.
  [[nodiscard]] virtual bool owns_rank(std::size_t rank) const noexcept = 0;

  // Collectives: the dataflow behind the free functions of the same names in
  // dist/collectives.hpp (which validate arguments and dispatch here).  Each
  // charges `ledger` the machine-model bill — identical across backends.
  [[nodiscard]] virtual std::vector<double> allreduce_max(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const = 0;
  [[nodiscard]] virtual std::vector<ArgMax> allreduce_argmax(
      const Topology& topo, std::span<const ArgMax> local,
      CommLedger& ledger) const = 0;
  [[nodiscard]] virtual std::vector<std::vector<ArgMax>> allreduce_argmax_batch(
      const Topology& topo, std::span<const std::vector<ArgMax>> local,
      CommLedger& ledger) const = 0;
  [[nodiscard]] virtual std::vector<double> allreduce_sum(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const = 0;
  [[nodiscard]] virtual std::vector<double> exclusive_scan_sum(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const = 0;
  [[nodiscard]] virtual double reduce_sum(const Topology& topo,
                                          std::span<const double> local,
                                          std::size_t root,
                                          CommLedger& ledger) const = 0;
  [[nodiscard]] virtual std::vector<double> broadcast(const Topology& topo,
                                                      double value,
                                                      std::size_t root,
                                                      CommLedger& ledger) const = 0;
};

/// The in-memory machine: all P ranks in one process, the seed dataflow
/// moved verbatim from collectives.cpp.  Stateless; a default-constructed
/// Topology routes to the process-wide instance below.
class SimulatedBackend final : public CommBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] bool owns_rank(std::size_t rank) const noexcept override;
  [[nodiscard]] std::vector<double> allreduce_max(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const override;
  [[nodiscard]] std::vector<ArgMax> allreduce_argmax(
      const Topology& topo, std::span<const ArgMax> local,
      CommLedger& ledger) const override;
  [[nodiscard]] std::vector<std::vector<ArgMax>> allreduce_argmax_batch(
      const Topology& topo, std::span<const std::vector<ArgMax>> local,
      CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> allreduce_sum(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> exclusive_scan_sum(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const override;
  [[nodiscard]] double reduce_sum(const Topology& topo,
                                  std::span<const double> local,
                                  std::size_t root,
                                  CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> broadcast(const Topology& topo,
                                              double value, std::size_t root,
                                              CommLedger& ledger) const override;
};

/// The process-wide default backend — what Topology(ranks) without an
/// explicit backend resolves to.
[[nodiscard]] const CommBackend& simulated_backend() noexcept;

/// A shareable SimulatedBackend handle for callers that want the backend
/// explicit (tests, tools that report which backend produced their numbers).
[[nodiscard]] std::shared_ptr<const CommBackend> make_simulated_backend();

}  // namespace lrb::dist
