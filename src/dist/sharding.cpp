#include "dist/sharding.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"

namespace lrb::dist {

ShardedFitness::ShardedFitness(std::span<const double> fitness,
                               std::size_t ranks)
    : ShardedFitness(fitness, ranks, nullptr) {}

ShardedFitness::ShardedFitness(std::span<const double> fitness,
                               std::size_t ranks,
                               std::shared_ptr<const CommBackend> backend)
    : topology_(ranks, std::move(backend)),
      values_(fitness.begin(), fitness.end()),
      shard_sums_(ranks, 0.0),
      positive_counts_(ranks, 0) {
  (void)checked_fitness_total(fitness);
  for (std::size_t r = 0; r < ranks; ++r) {
    KahanSum sum;
    for (double f : shard(r)) {
      sum.add(f);
      positive_counts_[r] += (f > 0.0);
    }
    shard_sums_[r] = sum.value();
  }
}

parallel::Range ShardedFitness::shard_range(std::size_t rank) const {
  LRB_REQUIRE(rank < ranks(), InvalidArgumentError,
              "shard_range: rank out of range");
  return parallel::partition_range(values_.size(), ranks(), rank);
}

std::span<const double> ShardedFitness::shard(std::size_t rank) const {
  const parallel::Range r = shard_range(rank);
  return std::span<const double>(values_).subspan(r.begin, r.size());
}

double ShardedFitness::shard_sum(std::size_t rank) const {
  LRB_REQUIRE(rank < ranks(), InvalidArgumentError,
              "shard_sum: rank out of range");
  return shard_sums_[rank];
}

double ShardedFitness::total() const noexcept {
  KahanSum sum;
  for (double s : shard_sums_) sum.add(s);
  return sum.value();
}

std::size_t ShardedFitness::owner(std::size_t index) const {
  LRB_REQUIRE(index < values_.size(), InvalidArgumentError,
              "owner: index out of range");
  // Inverse of parallel::partition_range's split: the first n % P shards
  // hold base+1 elements, the rest hold base.
  const std::size_t n = values_.size();
  const std::size_t p = ranks();
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t big_span = extra * (base + 1);
  if (index < big_span) return index / (base + 1);
  return extra + (index - big_span) / base;
}

double ShardedFitness::value(std::size_t index) const {
  LRB_REQUIRE(index < values_.size(), InvalidArgumentError,
              "value: index out of range");
  return values_[index];
}

void ShardedFitness::update(std::size_t index, double fitness) {
  LRB_REQUIRE(index < values_.size(), InvalidArgumentError,
              "update: index out of range");
  // Same message shape as checked_fitness_total (common/math.hpp): the
  // offending index and value, uniform across every selector's error surface.
  LRB_REQUIRE(std::isfinite(fitness), InvalidFitnessError,
              "update: fitness must be finite (index " + std::to_string(index) +
                  ", value " + detail::fitness_value_str(fitness) + ")");
  LRB_REQUIRE(fitness >= 0.0, InvalidFitnessError,
              "update: fitness must be non-negative (index " +
                  std::to_string(index) + ", value " +
                  detail::fitness_value_str(fitness) + ")");
  const std::size_t rank = owner(index);
  positive_counts_[rank] += (fitness > 0.0);
  positive_counts_[rank] -= (values_[index] > 0.0);
  shard_sums_[rank] += fitness - values_[index];
  values_[index] = fitness;
  // Delta maintenance leaves rounding residue (of either sign) when large
  // and small entries cancel.  Keep the invariant "sum > 0 iff the shard
  // holds a positive entry": an emptied shard snaps to exactly zero, and a
  // non-empty shard whose cached sum degenerated is recomputed — O(shard),
  // but only on pathological cancellation.
  if (positive_counts_[rank] == 0) {
    shard_sums_[rank] = 0.0;
  } else if (shard_sums_[rank] <= 0.0) {
    KahanSum sum;
    for (double f : shard(rank)) sum.add(f);
    shard_sums_[rank] = sum.value();
  }
}

}  // namespace lrb::dist
