#include "dist/sharding.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/obs.hpp"

namespace lrb::dist {

namespace {

/// The uniform block partition as boundary form: begins[r] is where rank r's
/// shard starts, begins[ranks] == n.  Exactly parallel::partition_range's
/// split (first n % ranks shards get the extra element), so constructing
/// from boundaries is bit-compatible with the pre-elastic closed form.
std::vector<std::size_t> uniform_begins(std::size_t n, std::size_t ranks) {
  std::vector<std::size_t> begins(ranks + 1, 0);
  for (std::size_t r = 0; r < ranks; ++r) {
    begins[r + 1] = parallel::partition_range(n, ranks, r).end;
  }
  return begins;
}

/// Capacity-proportional boundaries: rank r's shard ends at
/// floor(n * cum_capacity(0..r) / total_capacity).  Monotone by clamping, so
/// rounding can never produce overlapping or reversed shards; a rank with
/// zero capacity owns an empty shard.
std::vector<std::size_t> weighted_begins(std::size_t n,
                                         std::span<const double> capacities) {
  LRB_REQUIRE(!capacities.empty(), InvalidArgumentError,
              "reshard_weighted: need at least one capacity");
  KahanSum total;
  for (std::size_t r = 0; r < capacities.size(); ++r) {
    const double c = capacities[r];
    LRB_REQUIRE(std::isfinite(c) && c >= 0.0, InvalidArgumentError,
                "reshard_weighted: capacities must be finite and non-negative"
                " (rank " + std::to_string(r) + ")");
    total.add(c);
  }
  LRB_REQUIRE(total.value() > 0.0, InvalidArgumentError,
              "reshard_weighted: capacity total must be positive");
  std::vector<std::size_t> begins(capacities.size() + 1, 0);
  KahanSum cum;
  for (std::size_t r = 0; r + 1 < capacities.size(); ++r) {
    cum.add(capacities[r]);
    const double frac = cum.value() / total.value();
    const auto cut =
        static_cast<std::size_t>(static_cast<double>(n) * frac);
    begins[r + 1] = std::min(std::max(cut, begins[r]), n);
  }
  begins[capacities.size()] = n;
  return begins;
}

}  // namespace

ShardedFitness::ShardedFitness(std::span<const double> fitness,
                               std::size_t ranks)
    : ShardedFitness(fitness, ranks, nullptr) {}

ShardedFitness::ShardedFitness(std::span<const double> fitness,
                               std::size_t ranks,
                               std::shared_ptr<const CommBackend> backend)
    : topology_(ranks, std::move(backend)),
      values_(fitness.begin(), fitness.end()) {
  (void)checked_fitness_total(fitness);
  install_partition(uniform_begins(values_.size(), ranks));
}

void ShardedFitness::install_partition(std::vector<std::size_t> begins) {
  begins_ = std::move(begins);
  const std::size_t p = begins_.size() - 1;
  shard_sums_.assign(p, 0.0);
  positive_counts_.assign(p, 0);
  for (std::size_t r = 0; r < p; ++r) {
    KahanSum sum;
    for (double f : shard(r)) {
      sum.add(f);
      positive_counts_[r] += (f > 0.0);
    }
    shard_sums_[r] = sum.value();
  }
}

parallel::Range ShardedFitness::shard_range(std::size_t rank) const {
  LRB_REQUIRE(rank < ranks(), InvalidArgumentError,
              "shard_range: rank out of range");
  return parallel::Range{begins_[rank], begins_[rank + 1]};
}

std::span<const double> ShardedFitness::shard(std::size_t rank) const {
  const parallel::Range r = shard_range(rank);
  return std::span<const double>(values_).subspan(r.begin, r.size());
}

double ShardedFitness::shard_sum(std::size_t rank) const {
  LRB_REQUIRE(rank < ranks(), InvalidArgumentError,
              "shard_sum: rank out of range");
  return shard_sums_[rank];
}

double ShardedFitness::total() const noexcept {
  KahanSum sum;
  for (double s : shard_sums_) sum.add(s);
  return sum.value();
}

std::size_t ShardedFitness::owner(std::size_t index) const {
  LRB_REQUIRE(index < values_.size(), InvalidArgumentError,
              "owner: index out of range");
  // Last boundary <= index.  Empty shards share a boundary value with their
  // successor; upper_bound lands past the whole run, so the owner is always
  // the (unique) shard whose half-open range actually contains the index.
  const auto it = std::upper_bound(begins_.begin(), begins_.end(), index);
  return static_cast<std::size_t>(it - begins_.begin()) - 1;
}

double ShardedFitness::value(std::size_t index) const {
  LRB_REQUIRE(index < values_.size(), InvalidArgumentError,
              "value: index out of range");
  return values_[index];
}

void ShardedFitness::update(std::size_t index, double fitness) {
  LRB_REQUIRE(index < values_.size(), InvalidArgumentError,
              "update: index out of range");
  // Same message shape as checked_fitness_total (common/math.hpp): the
  // offending index and value, uniform across every selector's error surface.
  LRB_REQUIRE(std::isfinite(fitness), InvalidFitnessError,
              "update: fitness must be finite (index " + std::to_string(index) +
                  ", value " + detail::fitness_value_str(fitness) + ")");
  LRB_REQUIRE(fitness >= 0.0, InvalidFitnessError,
              "update: fitness must be non-negative (index " +
                  std::to_string(index) + ", value " +
                  detail::fitness_value_str(fitness) + ")");
  const std::size_t rank = owner(index);
  positive_counts_[rank] += (fitness > 0.0);
  positive_counts_[rank] -= (values_[index] > 0.0);
  shard_sums_[rank] += fitness - values_[index];
  values_[index] = fitness;
  // Delta maintenance leaves rounding residue (of either sign) when large
  // and small entries cancel.  Keep the invariant "sum > 0 iff the shard
  // holds a positive entry": an emptied shard snaps to exactly zero, and a
  // non-empty shard whose cached sum degenerated is recomputed — O(shard),
  // but only on pathological cancellation.
  if (positive_counts_[rank] == 0) {
    shard_sums_[rank] = 0.0;
  } else if (shard_sums_[rank] <= 0.0) {
    KahanSum sum;
    for (double f : shard(rank)) sum.add(f);
    shard_sums_[rank] = sum.value();
  }
}

CommLedger ShardedFitness::reshard(std::size_t new_ranks) {
  LRB_REQUIRE(new_ranks >= 1, InvalidArgumentError,
              "reshard: need at least one rank");
  return reshard_to(uniform_begins(values_.size(), new_ranks), nullptr,
                    /*keep_backend=*/true);
}

CommLedger ShardedFitness::reshard(std::size_t new_ranks,
                                   std::shared_ptr<const CommBackend> backend) {
  LRB_REQUIRE(new_ranks >= 1, InvalidArgumentError,
              "reshard: need at least one rank");
  return reshard_to(uniform_begins(values_.size(), new_ranks),
                    std::move(backend), /*keep_backend=*/false);
}

CommLedger ShardedFitness::reshard_weighted(
    std::span<const double> capacities) {
  return reshard_to(weighted_begins(values_.size(), capacities), nullptr,
                    /*keep_backend=*/true);
}

CommLedger ShardedFitness::reshard_weighted(
    std::span<const double> capacities,
    std::shared_ptr<const CommBackend> backend) {
  return reshard_to(weighted_begins(values_.size(), capacities),
                    std::move(backend), /*keep_backend=*/false);
}

CommLedger ShardedFitness::reshard_to(
    std::vector<std::size_t> new_begins,
    std::shared_ptr<const CommBackend> backend, bool keep_backend) {
  LRB_TRACE_SPAN("reshard");
  LRB_OBS_SCOPED_NS("lrb_fault_reshard_ns");
  const std::size_t n = values_.size();
  const std::size_t new_ranks = new_begins.size() - 1;

  // O(P + P') boundary sweep for the data-motion bill.  Each maximal cell
  // run with a single (old owner, new owner) pair is one point-to-point
  // transfer; runs whose owner did not change move nothing (the O(moved)
  // guarantee — shrinking P by one moves only the cells that change hands,
  // not the whole vector).  All transfers fly concurrently, so the bill is
  // one round and the critical path is the heaviest single new rank's
  // inbound volume (the straggler receiver).
  CommLedger motion;
  std::vector<std::uint64_t> inbound(new_ranks, 0);
  std::size_t old_shard = 0;
  std::size_t new_shard = 0;
  std::size_t pos = 0;
  while (pos < n) {
    while (begins_[old_shard + 1] <= pos) ++old_shard;
    while (new_begins[new_shard + 1] <= pos) ++new_shard;
    const std::size_t seg_end =
        std::min(begins_[old_shard + 1], new_begins[new_shard + 1]);
    if (old_shard != new_shard) {
      motion.messages += 1;
      motion.words += seg_end - pos;
      inbound[new_shard] += seg_end - pos;
    }
    pos = seg_end;
  }
  if (motion.words > 0) {
    motion.rounds = 1;
    motion.critical_path_words =
        *std::max_element(inbound.begin(), inbound.end());
  }

  topology_ = Topology(
      new_ranks, keep_backend ? topology_.backend_handle() : std::move(backend));
  // No checked_fitness_total here, deliberately: resharding must be legal
  // while the global total is transiently zero (recovery can race a zeroing
  // update stream).  The cached sums still come out bit-identical to a fresh
  // construction at the same boundaries — same per-shard Kahan loop.
  install_partition(std::move(new_begins));

  LRB_OBS_COUNTER_ADD("lrb_fault_reshards_total", 1);
  LRB_OBS_COUNTER_ADD("lrb_fault_moved_words_total", motion.words);
  return motion;
}

}  // namespace lrb::dist
