#include "dist/backend.hpp"

#include <vector>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace lrb::dist {

CommBackend::~CommBackend() = default;

const CommBackend& Topology::backend() const noexcept {
  return backend_ ? *backend_ : simulated_backend();
}

const CommBackend& simulated_backend() noexcept {
  static const SimulatedBackend instance;
  return instance;
}

std::shared_ptr<const CommBackend> make_simulated_backend() {
  return std::make_shared<const SimulatedBackend>();
}

namespace {

/// Dissemination allreduce for idempotent, commutative combines: in round r
/// every rank ships its running value to (rank + 2^r) mod P.  After
/// ceil(log2 P) rounds each rank has absorbed a window of 2^rounds >= P
/// predecessors — overlap is harmless precisely because the combine is
/// idempotent (max-like), which is why sum needs a different algorithm.
template <typename T, typename Combine>
std::vector<T> dissemination_allreduce(const Topology& topo,
                                       std::span<const T> local,
                                       std::uint64_t words_per_message,
                                       CommLedger& ledger, Combine&& combine) {
  const std::size_t p = topo.ranks();
  std::vector<T> current(local.begin(), local.end());
  for (std::uint32_t r = 0; r < topo.log_rounds(); ++r) {
    // Each synchronized round is one child span (nested under the enclosing
    // collective span from dist/collectives.cpp) and one latency sample.
    LRB_TRACE_SPAN_ARG("round", r);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const std::vector<T> sent = current;  // values on the wire this round
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t to = topo.dissemination_target(i, r);
      current[to] = combine(current[to], sent[i]);
    }
    ledger.charge_round(p, words_per_message);
  }
  return current;
}

}  // namespace

std::string_view SimulatedBackend::name() const noexcept { return "simulated"; }

bool SimulatedBackend::owns_rank(std::size_t) const noexcept { return true; }

std::vector<double> SimulatedBackend::allreduce_max(
    const Topology& topo, std::span<const double> local,
    CommLedger& ledger) const {
  return dissemination_allreduce<double>(
      topo, local, /*words_per_message=*/1, ledger,
      [](double a, double b) { return a > b ? a : b; });
}

std::vector<ArgMax> SimulatedBackend::allreduce_argmax(
    const Topology& topo, std::span<const ArgMax> local,
    CommLedger& ledger) const {
  return dissemination_allreduce<ArgMax>(
      topo, local, /*words_per_message=*/2, ledger,
      [](const ArgMax& a, const ArgMax& b) { return argmax_combine(a, b); });
}

std::vector<std::vector<ArgMax>> SimulatedBackend::allreduce_argmax_batch(
    const Topology& topo, std::span<const std::vector<ArgMax>> local,
    CommLedger& ledger) const {
  // Element-wise argmax is still idempotent and commutative, so the whole
  // batch rides the same dissemination schedule as a single pair — only the
  // message payload grows, to 2B words.
  const std::size_t batch = local.front().size();
  return dissemination_allreduce<std::vector<ArgMax>>(
      topo, local, /*words_per_message=*/2 * batch, ledger,
      [](const std::vector<ArgMax>& a, const std::vector<ArgMax>& b) {
        std::vector<ArgMax> combined(a.size());
        for (std::size_t t = 0; t < a.size(); ++t) {
          combined[t] = argmax_combine(a[t], b[t]);
        }
        return combined;
      });
}

std::vector<double> SimulatedBackend::allreduce_sum(
    const Topology& topo, std::span<const double> local,
    CommLedger& ledger) const {
  const std::size_t p = topo.ranks();
  std::vector<double> current(local.begin(), local.end());
  if (p == 1) return current;

  // Fold the ranks above the largest power of two m into their partners, run
  // the hypercube exchange on [0, m), then unfold.  When P is a power of two
  // the fold/unfold rounds vanish and this is plain recursive doubling.
  const std::size_t m = std::size_t{1} << floor_log2(p);
  const std::size_t extra = p - m;
  if (extra > 0) {
    for (std::size_t i = m; i < p; ++i) current[i - m] += current[i];
    ledger.charge_round(extra, 1);
  }
  for (std::uint32_t bit = 0; bit < floor_log2(p); ++bit) {
    LRB_TRACE_SPAN_ARG("round", bit);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const std::vector<double> sent = current;
    for (std::size_t i = 0; i < m; ++i) {
      current[i] += sent[topo.hypercube_partner(i, bit)];
    }
    ledger.charge_round(m, 1);
  }
  if (extra > 0) {
    for (std::size_t i = 0; i < extra; ++i) current[m + i] = current[i];
    ledger.charge_round(extra, 1);
  }
  return current;
}

std::vector<double> SimulatedBackend::exclusive_scan_sum(
    const Topology& topo, std::span<const double> local,
    CommLedger& ledger) const {
  const std::size_t p = topo.ranks();
  // Hillis–Steele with two accumulators: `incl` is the classic shifting
  // partial sum; `excl` absorbs exactly the received partials, so the
  // exclusive prefix emerges without an inclusive-minus-own subtraction.
  std::vector<double> incl(local.begin(), local.end());
  std::vector<double> excl(p, 0.0);
  for (std::size_t shift = 1; shift < p; shift <<= 1) {
    LRB_TRACE_SPAN_ARG("round", shift);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const std::vector<double> sent = incl;
    for (std::size_t i = shift; i < p; ++i) {
      excl[i] += sent[i - shift];
      incl[i] += sent[i - shift];
    }
    ledger.charge_round(p - shift, 1);
  }
  return excl;
}

double SimulatedBackend::reduce_sum(const Topology& topo,
                                    std::span<const double> local,
                                    std::size_t root,
                                    CommLedger& ledger) const {
  const std::size_t p = topo.ranks();
  // Binomial tree over ranks relative to the root: in round r, every rank
  // whose relative id has bit r set (and all lower bits clear) sends its
  // partial to the rank 2^r below it.
  std::vector<double> current(local.begin(), local.end());
  for (std::uint32_t r = 0; r < topo.log_rounds(); ++r) {
    LRB_TRACE_SPAN_ARG("round", r);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const std::size_t stride = std::size_t{1} << r;
    std::uint64_t message_count = 0;
    for (std::size_t rel = stride; rel < p; rel += 2 * stride) {
      const std::size_t sender = (root + rel) % p;
      const std::size_t receiver = (root + rel - stride) % p;
      current[receiver] += current[sender];
      ++message_count;
    }
    ledger.charge_round(message_count, 1);
  }
  return current[root];
}

std::vector<double> SimulatedBackend::broadcast(const Topology& topo,
                                                double value, std::size_t root,
                                                CommLedger& ledger) const {
  const std::size_t p = topo.ranks();
  // The reduce tree run in reverse: the root's subtree doubles every round.
  std::vector<double> current(p, 0.0);
  current[root] = value;
  if (p == 1) return current;
  for (std::uint32_t r = topo.log_rounds(); r-- > 0;) {
    LRB_TRACE_SPAN_ARG("round", r);
    LRB_OBS_SCOPED_NS("lrb_dist_round_ns");
    const std::size_t stride = std::size_t{1} << r;
    std::uint64_t message_count = 0;
    for (std::size_t rel = 0; rel + stride < p; rel += 2 * stride) {
      const std::size_t sender = (root + rel) % p;
      const std::size_t receiver = (root + rel + stride) % p;
      current[receiver] = current[sender];
      ++message_count;
    }
    ledger.charge_round(message_count, 1);
  }
  return current;
}

}  // namespace lrb::dist
