// MpiBackend — the simulated machine's round schedules executed as real MPI
// traffic, one process per rank.
//
// Built only when the top-level LRB_WITH_MPI option is ON and
// find_package(MPI) succeeded (the lrb_mpi target defines LRB_HAS_MPI
// publicly); without MPI this header declares nothing, so the rest of the
// library never sees an MPI symbol.
//
// Equality by construction: every collective runs the SAME per-round
// combines in the SAME order as SimulatedBackend — dissemination shifts for
// max/argmax, fold/hypercube/unfold for sum, Hillis–Steele for the scan,
// binomial trees for reduce/broadcast — except that the per-round exchange
// is a blocking MPI_Sendrecv with the rank's actual neighbor instead of an
// in-memory copy.  Results are therefore bit-identical across backends, and
// each collective charges the identical CommLedger bill.  Because one
// MPI_Sendrecv is issued per modeled round, the ledger's `rounds` equals the
// per-process PMPI call count — the cross-check tools/mpi_parity enforces.
//
// Data contract (see dist/backend.hpp): callers pass the simulation-shaped
// one-entry-per-rank vectors; this backend puts ONLY entry [world rank] on
// the wire.  ShardedFitness is replicated per process (the parity harness
// builds identical vectors everywhere) but each process computes only its
// own rank's sub-races via owns_rank.  One deliberate step outside the
// model: exclusive_scan_sum finishes with an MPI_Allgather so every process
// holds the full offset vector the (simulation-shaped) central ownership
// scan in prefix_sum_locate reads; a natively rank-local implementation
// needs only its own prefix, so the ledger intentionally does not bill it.
#pragma once

#if defined(LRB_HAS_MPI)

#include <mpi.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dist/backend.hpp"

namespace lrb::dist {

/// One process per rank of a communicator (default MPI_COMM_WORLD).
/// Construct after MPI_Init; every Topology routed here must have exactly
/// as many ranks as the communicator has processes.
///
/// The communicator parameter is the fault-recovery hook: after a rank
/// failure the survivors MPI_Comm_split themselves a smaller world and bind
/// a fresh MpiBackend to it, then ShardedFitness::reshard(P-1, backend)
/// resumes selection on the remnant (tools/mpi_parity's rank-failure drill).
///
/// `exchange_deadline_ns` > 0 arms a per-exchange deadline: each modeled
/// round runs as a nonblocking send/recv pair polled against the deadline,
/// and expiry throws CommTimeoutError (common/error.hpp) — the typed,
/// retryable failure the collective retry loop understands.  The default 0
/// keeps the blocking MPI_Sendrecv fast path, whose one-call-per-round shape
/// is what mpi_parity's PMPI counter cross-checks.
class MpiBackend final : public CommBackend {
 public:
  explicit MpiBackend(MPI_Comm comm = MPI_COMM_WORLD,
                      std::uint64_t exchange_deadline_ns = 0);

  /// This process's rank / the size of the bound communicator.
  [[nodiscard]] std::size_t self_rank() const noexcept { return rank_; }
  [[nodiscard]] std::size_t world_size() const noexcept { return size_; }
  [[nodiscard]] MPI_Comm comm() const noexcept { return comm_; }
  [[nodiscard]] std::uint64_t exchange_deadline_ns() const noexcept {
    return deadline_ns_;
  }

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] bool owns_rank(std::size_t rank) const noexcept override;
  [[nodiscard]] std::vector<double> allreduce_max(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const override;
  [[nodiscard]] std::vector<ArgMax> allreduce_argmax(
      const Topology& topo, std::span<const ArgMax> local,
      CommLedger& ledger) const override;
  [[nodiscard]] std::vector<std::vector<ArgMax>> allreduce_argmax_batch(
      const Topology& topo, std::span<const std::vector<ArgMax>> local,
      CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> allreduce_sum(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> exclusive_scan_sum(
      const Topology& topo, std::span<const double> local,
      CommLedger& ledger) const override;
  [[nodiscard]] double reduce_sum(const Topology& topo,
                                  std::span<const double> local,
                                  std::size_t root,
                                  CommLedger& ledger) const override;
  [[nodiscard]] std::vector<double> broadcast(const Topology& topo,
                                              double value, std::size_t root,
                                              CommLedger& ledger) const override;

 private:
  MPI_Comm comm_ = MPI_COMM_WORLD;
  std::uint64_t deadline_ns_ = 0;
  std::size_t rank_ = 0;
  std::size_t size_ = 1;
};

}  // namespace lrb::dist

#endif  // LRB_HAS_MPI
