// OpenMP execution of the bidding selection (ablation A4's second runtime).
//
// The thread-pool paths in logarithmic_bidding.hpp own their workers; HPC
// codes that already live inside OpenMP parallel regions want the selection
// expressed as an OpenMP kernel instead.  These entry points compile to the
// serial algorithm when OpenMP is absent, so callers never need an #ifdef.
#pragma once

#include <cstdint>
#include <span>

namespace lrb::core {

/// True iff this build has real OpenMP behind the *_omp entry points.
[[nodiscard]] bool openmp_available() noexcept;

/// Number of threads an omp parallel region would use right now (1 when
/// OpenMP is absent).
[[nodiscard]] std::size_t openmp_threads() noexcept;

/// One bidding selection over `fitness`, parallelized with OpenMP.
/// Exactly fitness-proportionate for any thread count; the specific winner
/// for a given seed depends on the thread count (per-thread bid streams),
/// like select_bidding_parallel.
[[nodiscard]] std::size_t select_bidding_omp(std::span<const double> fitness,
                                             std::uint64_t seed);

/// The CRCW-style race on an atomic cell, expressed as an OpenMP kernel
/// (compare with select_bidding_race on the thread pool).
[[nodiscard]] std::size_t select_bidding_race_omp(std::span<const double> fitness,
                                                  std::uint64_t seed);

}  // namespace lrb::core
