#include "core/batch.hpp"

#include "core/deterministic.hpp"

namespace lrb::core {

std::vector<std::size_t> batch_select_deterministic(
    std::span<const double> fitness, std::size_t m, std::uint64_t seed) {
  // One kernel build (validation + active set + reciprocals) serves all m
  // draws; the filtered pass inside is bit-identical to the unfiltered scan
  // (see DeterministicDrawKernel), so this reroute changed the speed of the
  // deterministic batch, not a single selected index.
  LRB_TRACE_SPAN_ARG("batch_select_deterministic", m);
  LRB_OBS_COUNTER_ADD("lrb_core_batch_deterministic_total", 1);
  const DeterministicDrawKernel kernel(fitness);
  std::vector<std::size_t> out;
  out.reserve(m);
  for (std::uint64_t t = 0; t < m; ++t) out.push_back(kernel.draw_one(seed, t));
  return out;
}

std::vector<std::size_t> batch_select_deterministic(
    parallel::ThreadPool& pool, std::span<const double> fitness, std::size_t m,
    std::uint64_t seed) {
  LRB_TRACE_SPAN_ARG("batch_select_deterministic_pool", m);
  LRB_OBS_COUNTER_ADD("lrb_core_batch_deterministic_total", 1);
  const DeterministicDrawKernel kernel(fitness);
  std::vector<std::size_t> out(m);
  if (m == 0) return out;
  // Parallelize over draws (not items): draw_scored is a const pure function
  // of (seed, t), so any partition of draws across lanes yields the
  // identical batch — one shared kernel, no per-lane state.
  pool.parallel_for(m, [&](parallel::Range r, std::size_t) {
    for (std::uint64_t t = r.begin; t < r.end; ++t) {
      out[t] = kernel.draw_one(seed, t);
    }
  });
  return out;
}

}  // namespace lrb::core
