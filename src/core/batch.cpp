#include "core/batch.hpp"

#include <limits>

#include "core/deterministic.hpp"

namespace lrb::core {

namespace {

/// Winner of draw t over [begin, end) with counter-based bids.
struct Best {
  double bid = -std::numeric_limits<double>::infinity();
  std::size_t index = 0;
  bool found = false;
};

Best best_in_range(std::span<const double> fitness, std::uint64_t seed,
                   std::uint64_t t, std::size_t begin, std::size_t end) {
  Best best;
  for (std::size_t i = begin; i < end; ++i) {
    if (fitness[i] <= 0.0) continue;
    const std::uint64_t raw = rng::philox_u64_at(seed, t, i);
    const double u = static_cast<double>((raw >> 11) + 1) * 0x1.0p-53;
    const double bid = rng::log_bid_from_uniform(u, fitness[i]);
    if (!best.found || bid > best.bid) {
      best.bid = bid;
      best.index = i;
      best.found = true;
    }
  }
  return best;
}

}  // namespace

std::vector<std::size_t> batch_select_deterministic(
    std::span<const double> fitness, std::size_t m, std::uint64_t seed) {
  (void)checked_fitness_total(fitness);
  std::vector<std::size_t> out;
  out.reserve(m);
  for (std::uint64_t t = 0; t < m; ++t) {
    const Best b = best_in_range(fitness, seed, t, 0, fitness.size());
    LRB_ASSERT(b.found, "positive total fitness implies a winner");
    out.push_back(b.index);
  }
  return out;
}

std::vector<std::size_t> batch_select_deterministic(
    parallel::ThreadPool& pool, std::span<const double> fitness, std::size_t m,
    std::uint64_t seed) {
  (void)checked_fitness_total(fitness);
  std::vector<std::size_t> out(m);
  if (m == 0) return out;
  // Parallelize over draws (not items): each draw is independent and the
  // per-draw winner is a pure function of (seed, t), so any partition of
  // draws across lanes yields the identical batch.
  pool.parallel_for(m, [&](parallel::Range r, std::size_t) {
    for (std::uint64_t t = r.begin; t < r.end; ++t) {
      const Best b = best_in_range(fitness, seed, t, 0, fitness.size());
      LRB_ASSERT(b.found, "positive total fitness implies a winner");
      out[t] = b.index;
    }
  });
  return out;
}

}  // namespace lrb::core
