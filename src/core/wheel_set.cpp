// WheelSet out-of-line parts: admission, point updates, the deterministic
// batch entry, and the occupancy gauge bookkeeping (see wheel_set.hpp).
#include "core/wheel_set.hpp"

#include <string>
#include <utility>

namespace lrb::core {

namespace {
// Shared error-surface helper: "wheel 3" in every message, so a service
// log names the tenant, not just an index.
std::string wheel_str(std::size_t wheel) {
  return "wheel " + std::to_string(wheel);
}
}  // namespace

WheelSet::WheelSet(WheelSet&& other) noexcept
    : set_seed_(other.set_seed_),
      offsets_(std::move(other.offsets_)),
      values_(std::move(other.values_)),
      seeds_(std::move(other.seeds_)),
      cursors_(std::move(other.cursors_)),
      sums_(std::move(other.sums_)),
      positive_count_(std::move(other.positive_count_)),
      dirty_(std::move(other.dirty_)),
      active_streams_(std::move(other.active_streams_)),
      active_f_(std::move(other.active_f_)),
      active_inv_f_(std::move(other.active_inv_f_)),
      pos_in_active_(std::move(other.pos_in_active_)),
      total_active_(other.total_active_) {
  // The moved-from arena must stay a valid (empty) arena whose destructor
  // releases nothing: the gauges moved with the wheels.
  other.offsets_.assign(1, 0);
  other.total_active_ = 0;
}

WheelSet& WheelSet::operator=(WheelSet&& other) noexcept {
  if (this != &other) {
    release_gauges();
    set_seed_ = other.set_seed_;
    offsets_ = std::move(other.offsets_);
    values_ = std::move(other.values_);
    seeds_ = std::move(other.seeds_);
    cursors_ = std::move(other.cursors_);
    sums_ = std::move(other.sums_);
    positive_count_ = std::move(other.positive_count_);
    dirty_ = std::move(other.dirty_);
    active_streams_ = std::move(other.active_streams_);
    active_f_ = std::move(other.active_f_);
    active_inv_f_ = std::move(other.active_inv_f_);
    pos_in_active_ = std::move(other.pos_in_active_);
    total_active_ = other.total_active_;
    other.offsets_.assign(1, 0);
    other.total_active_ = 0;
  }
  return *this;
}

WheelSet::~WheelSet() { release_gauges(); }

void WheelSet::release_gauges() noexcept {
  LRB_OBS_GAUGE_SUB("lrb_wheelset_wheels", wheels());
  LRB_OBS_GAUGE_SUB("lrb_wheelset_items", total_items());
  LRB_OBS_GAUGE_SUB("lrb_wheelset_active_items", total_active_);
}

void WheelSet::check_wheel(std::size_t wheel, const char* what) const {
  LRB_REQUIRE(wheel < wheels(), InvalidArgumentError,
              std::string(what) + ": " + wheel_str(wheel) +
                  " out of range (wheels: " + std::to_string(wheels()) + ")");
}

void WheelSet::check_item(std::size_t wheel, std::size_t item,
                          const char* what) const {
  check_wheel(wheel, what);
  LRB_REQUIRE(item < offsets_[wheel + 1] - offsets_[wheel],
              InvalidArgumentError,
              std::string(what) + ": index " + std::to_string(item) +
                  " out of range for " + wheel_str(wheel) +
                  " (size: " +
                  std::to_string(offsets_[wheel + 1] - offsets_[wheel]) + ")");
}

std::size_t WheelSet::add_wheel(std::span<const double> fitness) {
  return add_wheel(fitness, rng::wheel_seed(set_seed_, wheels()));
}

std::size_t WheelSet::add_wheel(std::span<const double> fitness,
                                std::uint64_t wheel_seed) {
  // The uniform selector error surface (finite, non-negative, index+value
  // named), but a zero TOTAL is legal at admission: tenants arrive empty
  // and fill in via update(); prepare_batch rejects drawing from them.
  (void)checked_fitness_total(fitness, /*require_positive_total=*/false);
  const std::size_t w = wheels();
  const std::size_t base = offsets_.back();
  const std::size_t n = fitness.size();
  values_.insert(values_.end(), fitness.begin(), fitness.end());
  offsets_.push_back(base + n);
  active_streams_.resize(base + n);
  active_f_.resize(base + n);
  active_inv_f_.resize(base + n);
  pos_in_active_.resize(base + n);
  seeds_.push_back(wheel_seed);
  cursors_.push_back(0);
  KahanSum sum;
  std::size_t positives = 0;
  for (double f : fitness) {
    sum.add(f);
    positives += (f > 0.0);
  }
  sums_.push_back(positives == 0 ? KahanSum{} : sum);
  positive_count_.push_back(positives);
  dirty_.push_back(1);
  rebuild_active(w);
  total_active_ += positives;
  LRB_OBS_GAUGE_ADD("lrb_wheelset_wheels", 1);
  LRB_OBS_GAUGE_ADD("lrb_wheelset_items", n);
  LRB_OBS_GAUGE_ADD("lrb_wheelset_active_items", positives);
  return w;
}

void WheelSet::rebuild_active(std::size_t wheel) {
  const std::size_t base = offsets_[wheel];
  const std::size_t n = offsets_[wheel + 1] - base;
  std::size_t p = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = values_[base + i];
    if (!(f > 0.0)) continue;
    active_streams_[base + p] = i;  // LOCAL index == per-wheel Philox stream
    active_f_[base + p] = f;
    active_inv_f_[base + p] = bid_filter::bound_reciprocal(f);
    pos_in_active_[base + i] = p;
    ++p;
  }
  LRB_ASSERT(p == positive_count_[wheel],
             "packed active prefix must match the maintained positive count");
  dirty_[wheel] = 0;
}

void WheelSet::update(std::size_t wheel, std::size_t item, double fitness) {
  check_item(wheel, item, "update");
  // Same message shape as ShardedFitness::update / checked_fitness_total:
  // the offending wheel, index, and value.
  LRB_REQUIRE(std::isfinite(fitness), InvalidFitnessError,
              "update: fitness must be finite (" + wheel_str(wheel) +
                  ", index " + std::to_string(item) + ", value " +
                  detail::fitness_value_str(fitness) + ")");
  LRB_REQUIRE(fitness >= 0.0, InvalidFitnessError,
              "update: fitness must be non-negative (" + wheel_str(wheel) +
                  ", index " + std::to_string(item) + ", value " +
                  detail::fitness_value_str(fitness) + ")");
  const std::size_t slot = offsets_[wheel] + item;
  const double old = values_[slot];
  const bool was = old > 0.0;
  const bool now = fitness > 0.0;
  sums_[wheel].add(-old);
  sums_[wheel].add(fitness);
  values_[slot] = fitness;
  if (was != now) {
    // Membership flip: defer the O(n_w) repack to this wheel's next draw.
    positive_count_[wheel] += now ? 1 : std::size_t(-1);
    total_active_ += now ? 1 : std::size_t(-1);
    dirty_[wheel] = 1;
    if (now) {
      LRB_OBS_GAUGE_ADD("lrb_wheelset_active_items", 1);
    } else {
      LRB_OBS_GAUGE_SUB("lrb_wheelset_active_items", 1);
    }
  } else if (now && !dirty_[wheel]) {
    // Same membership: O(1) in-place patch of the packed arrays.
    const std::size_t p = offsets_[wheel] + pos_in_active_[slot];
    active_f_[p] = fitness;
    active_inv_f_[p] = bid_filter::bound_reciprocal(fitness);
  }
  // Delta maintenance leaves rounding residue when large and small entries
  // cancel.  Keep the invariant "wheel_sum > 0 iff a positive entry
  // exists": an emptied wheel snaps to exactly zero, and a non-empty wheel
  // whose cached sum degenerated is recomputed — O(n_w), but only on
  // pathological cancellation (the ShardedFitness idiom).
  if (positive_count_[wheel] == 0) {
    sums_[wheel] = KahanSum{};
  } else if (sums_[wheel].value() <= 0.0) {
    KahanSum sum;
    for (double f : wheel_values(wheel)) sum.add(f);
    sums_[wheel] = sum;
  }
  LRB_OBS_COUNTER_ADD("lrb_wheelset_updates_total", 1);
}

std::size_t WheelSet::prepare_batch(std::span<const DrawRequest> requests) {
  std::size_t total_draws = 0;
  for (const DrawRequest& r : requests) {
    check_wheel(r.wheel, "draw_batch");
    if (r.draws == 0) continue;
    if (dirty_[r.wheel]) rebuild_active(r.wheel);
    LRB_REQUIRE(positive_count_[r.wheel] > 0, InvalidFitnessError,
                "draw_batch: " + wheel_str(r.wheel) +
                    " has no positive fitness");
    total_draws += r.draws;
  }
  return total_draws;
}

void WheelSet::draw_batch_into(std::span<const DrawRequest> requests,
                               std::vector<std::size_t>& out) {
  const std::size_t total_draws = prepare_batch(requests);
  // Keyed mode: chunks enqueue (seed_w, t, local item) key triples and each
  // tile derives its bits in ONE philox_bits_keyed sweep — identical bits
  // to a standalone DeterministicDrawKernel over every wheel.
  run_batch<true>(requests, total_draws, out,
                  [](std::uint64_t*, std::size_t) {});
}

std::vector<std::size_t> WheelSet::draw_batch(
    std::span<const DrawRequest> requests) {
  std::vector<std::size_t> out;
  draw_batch_into(requests, out);
  return out;
}

std::size_t WheelSet::draw_one(std::size_t wheel) {
  const DrawRequest r{wheel, 1};
  scratch_out_.clear();
  draw_batch_into({&r, 1}, scratch_out_);
  return scratch_out_.front();
}

}  // namespace lrb::core
