#include "core/selector_registry.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "core/alias_table.hpp"
#include "core/baselines.hpp"
#include "core/cdf_selector.hpp"
#include "core/deterministic.hpp"
#include "core/fenwick_selector.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::core {

namespace {

constexpr std::array<SelectorInfo, 13> kInfos = {{
    {SelectorKind::kBidding, "bidding", true, false, false,
     "logarithmic random bidding (paper), serial scan"},
    {SelectorKind::kBiddingParallel, "bidding_parallel", true, true, false,
     "logarithmic bidding, per-lane sub-races + tree combine"},
    {SelectorKind::kBiddingRace, "bidding_race", true, true, false,
     "logarithmic bidding, CRCW-style atomic max race (paper Sec. III)"},
    {SelectorKind::kBiddingDeterministic, "bidding_deterministic", true, true,
     false, "logarithmic bidding, counter-based (thread-count invariant)"},
    {SelectorKind::kLinearCdf, "linear_cdf", true, false, false,
     "inverse CDF, linear scan"},
    {SelectorKind::kBinaryCdf, "binary_cdf", true, false, true,
     "inverse CDF, prebuilt prefix sums + binary search"},
    {SelectorKind::kFenwick, "fenwick", true, false, true,
     "Fenwick tree: O(log n) draws and O(log n) point updates"},
    {SelectorKind::kAlias, "alias", true, false, true,
     "Vose alias table, O(1) draws"},
    {SelectorKind::kPrefixSumParallel, "prefix_sum", true, true, false,
     "parallel prefix sums + parallel locate (paper Sec. I baseline)"},
    {SelectorKind::kIndependent, "independent", false, false, false,
     "independent roulette r_i = f_i * u_i (biased; Cecilia et al.)"},
    {SelectorKind::kGumbelMax, "gumbel", true, false, false,
     "Gumbel-max: argmax(log f_i + Gumbel)"},
    {SelectorKind::kEsKey, "es_key", true, false, false,
     "Efraimidis-Spirakis key u^(1/f) (exact in theory, underflows)"},
    {SelectorKind::kStochasticAcceptance, "stochastic_acceptance", true, false,
     false, "rejection sampling against f_max (Lipowski & Lipowska)"},
}};

}  // namespace

const SelectorInfo& selector_info(SelectorKind kind) {
  for (const auto& info : kInfos) {
    if (info.kind == kind) return info;
  }
  throw InvalidArgumentError("unknown SelectorKind");
}

std::string_view to_string(SelectorKind kind) { return selector_info(kind).name; }

SelectorKind parse_selector_kind(std::string_view name) {
  std::string low(name);
  std::transform(low.begin(), low.end(), low.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  for (const auto& info : kInfos) {
    if (low == info.name) return info.kind;
  }
  std::string known;
  for (const auto& info : kInfos) {
    known += info.name;
    known += ' ';
  }
  throw InvalidArgumentError("unknown selector '" + std::string(name) +
                             "'; known: " + known);
}

std::vector<SelectorKind> all_selector_kinds() {
  std::vector<SelectorKind> out;
  out.reserve(kInfos.size());
  for (const auto& info : kInfos) out.push_back(info.kind);
  return out;
}

namespace {

/// Common state: owned fitness copy + engine.
class SelectorBase : public Selector {
 public:
  SelectorBase(SelectorKind kind, std::span<const double> fitness,
               std::uint64_t seed)
      : info_(selector_info(kind)),
        fitness_(fitness.begin(), fitness.end()),
        gen_(seed) {}

  void set_fitness(std::span<const double> fitness) override {
    fitness_.assign(fitness.begin(), fitness.end());
    on_fitness_changed();
  }

  [[nodiscard]] const SelectorInfo& info() const override { return info_; }
  [[nodiscard]] std::size_t size() const override { return fitness_.size(); }

 protected:
  virtual void on_fitness_changed() {}

  const SelectorInfo& info_;
  std::vector<double> fitness_;
  rng::Xoshiro256StarStar gen_;
};

class BiddingSelector final : public SelectorBase {
 public:
  using SelectorBase::SelectorBase;
  std::size_t select() override { return select_bidding(fitness_, gen_); }
};

class LinearCdfSelector final : public SelectorBase {
 public:
  using SelectorBase::SelectorBase;
  std::size_t select() override { return select_linear_cdf(fitness_, gen_); }
};

class IndependentSelector final : public SelectorBase {
 public:
  using SelectorBase::SelectorBase;
  std::size_t select() override { return select_independent(fitness_, gen_); }
};

class GumbelSelector final : public SelectorBase {
 public:
  using SelectorBase::SelectorBase;
  std::size_t select() override { return select_gumbel_max(fitness_, gen_); }
};

class EsKeySelector final : public SelectorBase {
 public:
  using SelectorBase::SelectorBase;
  std::size_t select() override { return select_es_key(fitness_, gen_); }
};

class StochasticAcceptanceSelector final : public SelectorBase {
 public:
  StochasticAcceptanceSelector(SelectorKind kind,
                               std::span<const double> fitness,
                               std::uint64_t seed)
      : SelectorBase(kind, fitness, seed) {
    on_fitness_changed();
  }
  std::size_t select() override {
    return select_stochastic_acceptance(fitness_, gen_, max_fitness_);
  }

 protected:
  void on_fitness_changed() override {
    max_fitness_ = 0.0;
    for (double f : fitness_) max_fitness_ = std::max(max_fitness_, f);
  }

 private:
  double max_fitness_ = 0.0;
};

class BinaryCdfSelectorImpl final : public SelectorBase {
 public:
  BinaryCdfSelectorImpl(SelectorKind kind, std::span<const double> fitness,
                        std::uint64_t seed)
      : SelectorBase(kind, fitness, seed), cdf_(fitness_) {}
  std::size_t select() override { return cdf_.select(gen_); }

 protected:
  void on_fitness_changed() override { cdf_.rebuild(fitness_); }

 private:
  CdfSelector cdf_;
};

class FenwickSelectorImpl final : public SelectorBase {
 public:
  FenwickSelectorImpl(SelectorKind kind, std::span<const double> fitness,
                      std::uint64_t seed)
      : SelectorBase(kind, fitness, seed), tree_(fitness_) {}
  std::size_t select() override { return tree_.select(gen_); }

 protected:
  void on_fitness_changed() override { tree_.rebuild(fitness_); }

 private:
  FenwickSelector tree_;
};

class AliasSelectorImpl final : public SelectorBase {
 public:
  AliasSelectorImpl(SelectorKind kind, std::span<const double> fitness,
                    std::uint64_t seed)
      : SelectorBase(kind, fitness, seed), table_(fitness_) {}
  std::size_t select() override { return table_.select(gen_); }

 protected:
  void on_fitness_changed() override { table_.rebuild(fitness_); }

 private:
  AliasTable table_;
};

/// Parallel kinds share the pool and a seed sequence that advances per draw
/// (each draw must use fresh lane streams).
class PoolSelectorBase : public SelectorBase {
 public:
  PoolSelectorBase(SelectorKind kind, std::span<const double> fitness,
                   std::uint64_t seed, parallel::ThreadPool* pool)
      : SelectorBase(kind, fitness, seed),
        pool_(pool != nullptr ? pool : &parallel::ThreadPool::global()),
        seeds_(seed) {}

 protected:
  rng::SeedSequence next_draw_seeds() { return seeds_.subsequence(draw_++); }

  parallel::ThreadPool* pool_;
  rng::SeedSequence seeds_;
  std::uint64_t draw_ = 0;
};

class BiddingParallelSelector final : public PoolSelectorBase {
 public:
  using PoolSelectorBase::PoolSelectorBase;
  std::size_t select() override {
    return select_bidding_parallel(*pool_, fitness_, next_draw_seeds());
  }
};

class BiddingRaceSelector final : public PoolSelectorBase {
 public:
  using PoolSelectorBase::PoolSelectorBase;
  std::size_t select() override {
    return select_bidding_race(*pool_, fitness_, next_draw_seeds());
  }
};

class PrefixSumParallelSelector final : public PoolSelectorBase {
 public:
  using PoolSelectorBase::PoolSelectorBase;
  std::size_t select() override {
    return select_prefix_sum_parallel(*pool_, fitness_, gen_, scratch_);
  }

 private:
  std::vector<double> scratch_;
};

class DeterministicSelector final : public PoolSelectorBase {
 public:
  DeterministicSelector(SelectorKind kind, std::span<const double> fitness,
                        std::uint64_t seed, parallel::ThreadPool* pool)
      : PoolSelectorBase(kind, fitness, seed, pool), bidder_(seed) {}
  std::size_t select() override { return bidder_.select(*pool_, fitness_); }

 private:
  DeterministicBidder bidder_;
};

}  // namespace

std::unique_ptr<Selector> make_selector(SelectorKind kind,
                                        std::span<const double> fitness,
                                        std::uint64_t seed,
                                        parallel::ThreadPool* pool) {
  // One counter per algorithm kind (cold path: construction only).  The
  // name is computed, so this is the _DYN registry-lookup-per-call variant.
  LRB_OBS_COUNTER_ADD_DYN(
      "lrb_core_selector_" + std::string(selector_info(kind).name) + "_total",
      1);
  switch (kind) {
    case SelectorKind::kBidding:
      return std::make_unique<BiddingSelector>(kind, fitness, seed);
    case SelectorKind::kLinearCdf:
      return std::make_unique<LinearCdfSelector>(kind, fitness, seed);
    case SelectorKind::kIndependent:
      return std::make_unique<IndependentSelector>(kind, fitness, seed);
    case SelectorKind::kGumbelMax:
      return std::make_unique<GumbelSelector>(kind, fitness, seed);
    case SelectorKind::kEsKey:
      return std::make_unique<EsKeySelector>(kind, fitness, seed);
    case SelectorKind::kStochasticAcceptance:
      return std::make_unique<StochasticAcceptanceSelector>(kind, fitness, seed);
    case SelectorKind::kBinaryCdf:
      return std::make_unique<BinaryCdfSelectorImpl>(kind, fitness, seed);
    case SelectorKind::kFenwick:
      return std::make_unique<FenwickSelectorImpl>(kind, fitness, seed);
    case SelectorKind::kAlias:
      return std::make_unique<AliasSelectorImpl>(kind, fitness, seed);
    case SelectorKind::kBiddingParallel:
      return std::make_unique<BiddingParallelSelector>(kind, fitness, seed, pool);
    case SelectorKind::kBiddingRace:
      return std::make_unique<BiddingRaceSelector>(kind, fitness, seed, pool);
    case SelectorKind::kPrefixSumParallel:
      return std::make_unique<PrefixSumParallelSelector>(kind, fitness, seed, pool);
    case SelectorKind::kBiddingDeterministic:
      return std::make_unique<DeterministicSelector>(kind, fitness, seed, pool);
  }
  throw InvalidArgumentError("make_selector: unknown SelectorKind");
}

}  // namespace lrb::core
