// Precomputed-CDF selector: O(n) build, O(log n) exact draws by binary
// search on the inclusive prefix sums.  The right tool when many draws are
// made against *unchanging* fitness; the bidding algorithms win when fitness
// changes between draws (ACO) or when n is distributed across processors.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "rng/uniform.hpp"

namespace lrb::core {

class CdfSelector {
 public:
  CdfSelector() = default;

  explicit CdfSelector(std::span<const double> fitness) { rebuild(fitness); }

  /// Rebuilds the prefix-sum table; O(n).
  void rebuild(std::span<const double> fitness) {
    total_ = checked_fitness_total(fitness);
    prefix_.resize(fitness.size());
    KahanSum acc;
    for (std::size_t i = 0; i < fitness.size(); ++i) {
      acc.add(fitness[i]);
      prefix_[i] = acc.value();
      if (fitness[i] > 0.0) last_positive_ = i;
    }
    // Guard against compensation pushing the last prefix below later draws.
    prefix_.back() = std::max(prefix_.back(), total_);
  }

  [[nodiscard]] bool empty() const noexcept { return prefix_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return prefix_.size(); }
  [[nodiscard]] double total() const noexcept { return total_; }

  /// One exact draw; O(log n).
  template <rng::Engine64 G>
  [[nodiscard]] std::size_t select(G&& gen) const {
    LRB_REQUIRE(!prefix_.empty(), InvalidArgumentError,
                "CdfSelector::select on an empty selector");
    const double r = rng::u01_closed_open(gen) * total_;
    return locate(r);
  }

  /// Index of the first prefix strictly greater than r (the paper's
  /// p_{i-1} <= R < p_i condition).  Zero-fitness indices have
  /// p_{i-1} == p_i and can never be returned: upper_bound skips them
  /// because their prefix equals their predecessor's.
  [[nodiscard]] std::size_t locate(double r) const {
    auto it = std::upper_bound(prefix_.begin(), prefix_.end(), r);
    // r >= total only via fp slack; return the last selectable index rather
    // than a trailing zero-fitness one.
    if (it == prefix_.end()) return last_positive_;
    return static_cast<std::size_t>(it - prefix_.begin());
  }

  [[nodiscard]] std::span<const double> prefix_sums() const noexcept {
    return prefix_;
  }

 private:
  std::vector<double> prefix_;
  double total_ = 0.0;
  std::size_t last_positive_ = 0;
};

}  // namespace lrb::core
