// The record-breaking bid filter shared by the batched selection kernels.
//
// Both multi-draw kernels (DrawManyKernel in draw_many.hpp, stream uniforms;
// DeterministicDrawKernel in deterministic.hpp, counter-based uniforms) skip
// almost every std::log with the same bound: since log(u) <= u - 1 and
// 1/f > 0, an item's bid log(u)/f is bounded above by (u - 1) * (1/f) — one
// FMA — and the running maximum of an exponential race is beaten only
// O(log k) expected times per draw.  The filter is exact only because of two
// numerical guards, and THIS header is their single proof site:
//
//   * the gate is slackened by a relative margin (kGateRelax) that strictly
//     dominates the O(ulp) rounding of the FMA bound, so a skipped item's
//     true bid is provably below the current best — the filter can skip
//     work, never change a winner;
//   * 1/f rounds to +inf for subnormal f, which would poison the bound pass
//     with NaN/-inf; clamping to DBL_MAX (<= the true 1/f) still
//     over-approximates the bid — (u - 1) <= 0, so a SMALLER multiplier
//     yields a bound closer to 0 — keeping every bound finite and the
//     filter exact.
//
// Keeping the constant and both guards here means a future retuning cannot
// silently leave the two kernels with different skip criteria.
#pragma once

#include <cmath>
#include <limits>

namespace lrb::core::bid_filter {

/// Gate slack: ~1e-12 relative, >> 4 ulp of the bound arithmetic.
inline constexpr double kGateRelax = 1.0 + 1e-12;

/// The gate for a current best bid (bids are <= 0): slightly below best, so
/// the bound's rounding error can never skip a potential record-breaker.
[[nodiscard]] constexpr double gate_below(double best) noexcept {
  return best < 0.0 ? best * kGateRelax : best;
}

/// The cached multiplier for the bound pass: 1/f, clamped to DBL_MAX when
/// the reciprocal overflows (subnormal f).
[[nodiscard]] inline double bound_reciprocal(double fitness) noexcept {
  const double inv = 1.0 / fitness;
  return std::isfinite(inv) ? inv : std::numeric_limits<double>::max();
}

}  // namespace lrb::core::bid_filter
