// The record-breaking bid filter shared by the batched selection kernels.
//
// Both multi-draw kernels (DrawManyKernel in draw_many.hpp, stream uniforms;
// DeterministicDrawKernel in deterministic.hpp, counter-based uniforms) skip
// almost every std::log with the same bound: since log(u) <= u - 1 and
// 1/f > 0, an item's bid log(u)/f is bounded above by (u - 1) * (1/f) — one
// FMA — and the running maximum of an exponential race is beaten only
// O(log k) expected times per draw.  The filter is exact only because of two
// numerical guards, and THIS header is their single proof site:
//
//   * the gate is slackened by a relative margin (kGateRelax) that strictly
//     dominates the O(ulp) rounding of the FMA bound, so a skipped item's
//     true bid is provably below the current best — the filter can skip
//     work, never change a winner;
//   * 1/f rounds to +inf for subnormal f, which would poison the bound pass
//     with NaN/-inf; clamping to DBL_MAX (<= the true 1/f) still
//     over-approximates the bid — (u - 1) <= 0, so a SMALLER multiplier
//     yields a bound closer to 0 — keeping every bound finite and the
//     filter exact.
//
// Keeping the constant and both guards here means a future retuning cannot
// silently leave the two kernels with different skip criteria.  The carried
// scan state itself (RecordScan below) lives here for the same reason: the
// stream kernel, the deterministic kernel, and the WheelSet arena all run
// the identical filtered argmax, possibly split across several calls when a
// wheel straddles a tile boundary — one definition, one tie rule.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace lrb::core::bid_filter {

/// Gate slack: ~1e-12 relative, >> 4 ulp of the bound arithmetic.
inline constexpr double kGateRelax = 1.0 + 1e-12;

/// The gate for a current best bid (bids are <= 0): slightly below best, so
/// the bound's rounding error can never skip a potential record-breaker.
[[nodiscard]] constexpr double gate_below(double best) noexcept {
  return best < 0.0 ? best * kGateRelax : best;
}

/// The cached multiplier for the bound pass: 1/f, clamped to DBL_MAX when
/// the reciprocal overflows (subnormal f).
[[nodiscard]] inline double bound_reciprocal(double fitness) noexcept {
  const double inv = 1.0 / fitness;
  return std::isfinite(inv) ? inv : std::numeric_limits<double>::max();
}

/// Carried state of one filtered record-breaking argmax — one draw's race.
///
/// The scan may be fed in any number of consecutive chunks (a kernel's
/// fixed-size blocks, or the ragged tile slices of a WheelSet draw that
/// straddles a tile boundary): because every stage upstream of the scan is
/// elementwise and the scan itself carries (best, gate, found) across calls,
/// the chunking is unobservable — the installed records, the final winner,
/// and the first-maximum-wins tie rule are identical to one contiguous pass.
///
/// `best_pos` is the position the caller passed as pos0 + j, i.e. an index
/// into whatever packed active set the caller scans; `log_evals` counts the
/// std::log calls actually paid (the filter's complement, for obs rollups).
struct RecordScan {
  double best = -std::numeric_limits<double>::infinity();
  double gate = -std::numeric_limits<double>::infinity();
  std::size_t best_pos = 0;
  bool found = false;
  std::size_t log_evals = 0;

  /// Whole chunk provably loses?  Then its logs can be skipped wholesale.
  /// (While !found every item must be visited so the first-install rule
  /// matches the unfiltered scan.)
  [[nodiscard]] bool skip_chunk(double chunk_max) const noexcept {
    return found && !(chunk_max > gate);
  }

  /// Evaluates one chosen item out of scan order — the WheelSet flush seeds
  /// a fresh race with the strongest-bound element, which is usually the
  /// winner, so the gate starts tight and most of the chunk's logs are
  /// skipped.  The install rule is position-aware (see scan), so probing
  /// cannot change the winner the in-order pass would have produced; the
  /// caller must still present the probed position to scan() or mask its
  /// bound, whichever is cheaper.
  void probe(double u, double f, std::size_t pos) noexcept {
    const double bid = std::log(u) / f;
    ++log_evals;
    install(bid, pos);
  }

  /// Scans `len` items: uniforms u[j], cached bounds ub[j] (from the SIMD
  /// bound pass), packed fitness f[j], occupying positions pos0 + j of the
  /// caller's active set.  Exact bid arithmetic: log(u)/f, identical to
  /// rng::log_bid / rng::deterministic_bid.
  ///
  /// The tie rule is smallest-position-wins, enforced by the explicit
  /// position compare in install(): for an in-order scan that compare can
  /// never fire (positions only grow), making this exactly the classic
  /// first-maximum-wins pass — but it also keeps the winner identical when
  /// a probe() visited some position early.
  void scan(const double* u, const double* ub, const double* f,
            std::size_t pos0, std::size_t len) noexcept {
    for (std::size_t j = 0; j < len; ++j) {
      if (found && !(ub[j] > gate)) continue;
      const double bid = std::log(u[j]) / f[j];
      ++log_evals;
      install(bid, pos0 + j);
    }
  }

 private:
  void install(double bid, std::size_t pos) noexcept {
    if (!found || bid > best || (bid == best && pos < best_pos)) {
      best = bid;
      best_pos = pos;
      found = true;
      gate = gate_below(best);
    }
  }
};

}  // namespace lrb::core::bid_filter
