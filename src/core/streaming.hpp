// Streaming roulette selection: exact fitness-proportionate selection over
// a stream of candidates of unknown length, one pass, O(1) state.
//
// The bidding rule makes this trivial where prefix-sum methods need two
// passes: keep the maximum bid seen so far.  After offering items
// 0..t, `winner()` is distributed exactly as a roulette spin over those
// items — at *every* prefix of the stream (anytime property, tested).
//
// StreamingSampler generalizes to m winners without replacement (a bounded
// min-heap of the m best bids): Efraimidis–Spirakis reservoir sampling,
// expressed in the paper's log-domain keys.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::core {

/// Single-winner streaming selection.
class StreamingSelector {
 public:
  explicit StreamingSelector(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Offers the next item; returns true iff it became the current winner.
  /// Zero fitness never wins; negative/NaN fitness throws.
  bool offer(double fitness) {
    LRB_REQUIRE(std::isfinite(fitness) && fitness >= 0.0, InvalidFitnessError,
                "StreamingSelector::offer: fitness must be finite and >= 0");
    const std::uint64_t index = count_++;
    if (fitness <= 0.0) return false;
    const double bid = rng::log_bid(gen_, fitness);
    if (bid > best_bid_) {
      best_bid_ = bid;
      winner_ = index;
      return true;
    }
    return false;
  }

  /// Items offered so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// True once any positive-fitness item has been offered.
  [[nodiscard]] bool has_winner() const noexcept {
    return best_bid_ > -std::numeric_limits<double>::infinity();
  }

  /// Index (offer order, 0-based) of the current winner.  Throws if no
  /// positive-fitness item has been offered yet.
  [[nodiscard]] std::uint64_t winner() const {
    LRB_REQUIRE(has_winner(), InvalidFitnessError,
                "StreamingSelector::winner: no positive-fitness item offered");
    return winner_;
  }

  /// Resets to an empty stream (fresh randomness continues from the engine).
  void reset() noexcept {
    count_ = 0;
    winner_ = 0;
    best_bid_ = -std::numeric_limits<double>::infinity();
  }

 private:
  rng::Xoshiro256StarStar gen_;
  std::uint64_t count_ = 0;
  std::uint64_t winner_ = 0;
  double best_bid_ = -std::numeric_limits<double>::infinity();
};

/// m-winner streaming sampler (weighted, without replacement).
class StreamingSampler {
 public:
  StreamingSampler(std::size_t m, std::uint64_t seed)
      : m_(m), gen_(seed) {
    LRB_REQUIRE(m > 0, InvalidArgumentError,
                "StreamingSampler requires m >= 1");
    heap_.reserve(m);
  }

  /// Offers the next item; returns true iff it entered the reservoir.
  bool offer(double fitness) {
    LRB_REQUIRE(std::isfinite(fitness) && fitness >= 0.0, InvalidFitnessError,
                "StreamingSampler::offer: fitness must be finite and >= 0");
    const std::uint64_t index = count_++;
    if (fitness <= 0.0) return false;
    const Entry e{rng::log_bid(gen_, fitness), index};
    if (heap_.size() < m_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), higher_bid_first);
      return true;
    }
    if (e.bid > heap_.front().bid) {
      std::pop_heap(heap_.begin(), heap_.end(), higher_bid_first);
      heap_.back() = e;
      std::push_heap(heap_.begin(), heap_.end(), higher_bid_first);
      return true;
    }
    return false;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t reservoir_size() const noexcept {
    return heap_.size();
  }

  /// Current sample in selection order (best bid first).
  [[nodiscard]] std::vector<std::uint64_t> sample() const {
    std::vector<Entry> sorted = heap_;
    std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
      if (a.bid != b.bid) return a.bid > b.bid;
      return a.index < b.index;
    });
    std::vector<std::uint64_t> out;
    out.reserve(sorted.size());
    for (const Entry& e : sorted) out.push_back(e.index);
    return out;
  }

 private:
  struct Entry {
    double bid;
    std::uint64_t index;
  };

  // Min-heap on bid: the root is the weakest current member.
  static bool higher_bid_first(const Entry& a, const Entry& b) noexcept {
    if (a.bid != b.bid) return a.bid > b.bid;
    return a.index < b.index;
  }

  std::size_t m_;
  rng::Xoshiro256StarStar gen_;
  std::uint64_t count_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace lrb::core
