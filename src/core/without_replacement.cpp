#include "core/without_replacement.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "common/math.hpp"
#include "rng/deterministic_bid.hpp"

namespace lrb::core {

namespace {

struct Entry {
  double bid;
  std::size_t index;
};

/// Ordering for the winners: higher bid first; ties (measure zero) to the
/// smaller index for determinism.
bool better(const Entry& a, const Entry& b) {
  if (a.bid != b.bid) return a.bid > b.bid;
  return a.index < b.index;
}

double bid_at(std::uint64_t seed, std::size_t index, double fitness) {
  // One whole-population race (draw id 0); the top-m of its bids IS the
  // without-replacement sample.  Shares the single bits -> (0,1] -> log(u)/f
  // definition with every other deterministic path.
  return rng::deterministic_bid(seed, /*t=*/0, index, fitness);
}

/// Keeps the m best entries of a range in `heap` (min-heap on `better`).
void accumulate_top_m(std::span<const double> fitness, std::uint64_t seed,
                      std::size_t begin, std::size_t end, std::size_t m,
                      std::vector<Entry>& heap) {
  auto worse_first = [](const Entry& a, const Entry& b) { return better(a, b); };
  for (std::size_t i = begin; i < end; ++i) {
    if (fitness[i] <= 0.0) continue;
    const Entry e{bid_at(seed, i, fitness[i]), i};
    if (heap.size() < m) {
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), worse_first);
    } else if (better(e, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse_first);
      heap.back() = e;
      std::push_heap(heap.begin(), heap.end(), worse_first);
    }
  }
}

std::vector<std::size_t> finalize(std::vector<Entry> winners, std::size_t m) {
  LRB_REQUIRE(winners.size() >= m, InvalidArgumentError,
              "sample_without_replacement: m exceeds the number of "
              "positive-fitness entries");
  std::sort(winners.begin(), winners.end(), better);
  winners.resize(m);
  std::vector<std::size_t> out;
  out.reserve(m);
  for (const Entry& e : winners) out.push_back(e.index);
  return out;
}

}  // namespace

std::vector<std::size_t> sample_without_replacement(
    std::span<const double> fitness, std::size_t m, std::uint64_t seed) {
  (void)checked_fitness_total(fitness);
  if (m == 0) return {};
  std::vector<Entry> heap;
  heap.reserve(m);
  accumulate_top_m(fitness, seed, 0, fitness.size(), m, heap);
  return finalize(std::move(heap), m);
}

std::vector<std::size_t> sample_without_replacement(
    parallel::ThreadPool& pool, std::span<const double> fitness, std::size_t m,
    std::uint64_t seed) {
  (void)checked_fitness_total(fitness);
  if (m == 0) return {};
  const std::size_t lanes = pool.lanes();
  std::vector<std::vector<Entry>> lane_heaps(lanes);
  pool.parallel_for(fitness.size(), [&](parallel::Range r, std::size_t lane) {
    lane_heaps[lane].reserve(m);
    accumulate_top_m(fitness, seed, r.begin, r.end, m, lane_heaps[lane]);
  });
  std::vector<Entry> merged;
  for (auto& h : lane_heaps) {
    merged.insert(merged.end(), h.begin(), h.end());
  }
  // Keep the global top m of the per-lane top-m's.  Bids are pure functions
  // of (seed, index), so this equals the serial result exactly.
  return finalize(std::move(merged), m);
}

std::vector<std::size_t> weighted_shuffle(std::span<const double> fitness,
                                          std::uint64_t seed) {
  (void)checked_fitness_total(fitness);
  std::vector<Entry> entries;
  entries.reserve(fitness.size());
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] <= 0.0) continue;
    entries.push_back(Entry{bid_at(seed, i, fitness[i]), i});
  }
  std::sort(entries.begin(), entries.end(), better);
  std::vector<std::size_t> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) out.push_back(e.index);
  return out;
}

}  // namespace lrb::core
