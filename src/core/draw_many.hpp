// Batched logarithmic bidding: the multi-draw hot path.
//
// GA/ACO generations draw a whole population (m = hundreds..thousands) from
// one fitness vector, and a loop of select_bidding() calls pays, per draw,
// a full O(n) validation pass, a zero-skip branch per item, one std::log
// and one divide per positive item.  DrawManyKernel hoists everything that
// is loop-invariant out of the m draws:
//
//   * validation runs once per batch (not once per draw);
//   * the positive-fitness indices are packed into an active set once, so
//     the per-draw loop touches exactly k items with no zero-test branch;
//   * reciprocals 1/f_i are cached, so the filter below is one FMA per item;
//   * raw bits are filled a block at a time (rng::fill_bits — engine-order
//     serial for stream engines, SIMD counter-range Philox for PhiloxRng),
//     the bits -> (0,1] conversion and the bound pass below run through the
//     runtime-dispatched vector kernels (simd/dispatch.hpp), and all scratch
//     is reused across the whole batch — zero per-draw allocation.
//
// The kernel's actual speedup comes from a record-breaking filter: since
// log(u) <= u - 1, every item's bid log(u_i)/f_i is bounded above by
// (u_i - 1) * (1/f_i) — one FMA, no log.  The running maximum of m
// exponential-race bids is beaten only O(log k) expected times per draw, so
// almost every item fails the cheap bound test and the expensive log runs
// only for the rare candidates that might actually win.  The filter is
// slackened by a relative margin (core/bid_filter.hpp, the shared proof
// site) that strictly dominates the rounding error of the FMA bound, so it
// never discards a true winner:
// the produced indices and the engine state match a loop of
// select_bidding() calls exactly (same uniforms, in the same order, same
// log(u)/f bid arithmetic, same first-maximum-wins tie rule).
//
// batch_select() (core/batch.hpp) routes its bidding strategy through this
// kernel; lrb::dist packs per-shard draw_scored() winners into batched
// allreduces (dist/selection.cpp).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "core/bid_filter.hpp"
#include "obs/obs.hpp"
#include "rng/uniform.hpp"
#include "simd/dispatch.hpp"

namespace lrb::core {

class DrawManyKernel {
 public:
  /// Winner of one draw with its actual bid — what a distributed rank ships
  /// into an argmax-allreduce.
  struct Scored {
    double bid = -std::numeric_limits<double>::infinity();
    std::size_t index = 0;
  };

  /// Validates once (same error surface as every selector: finite,
  /// non-negative, positive total) and packs the active set + reciprocals.
  /// O(n); every subsequent draw is O(k) with k = active_count().
  explicit DrawManyKernel(std::span<const double> fitness) {
    (void)checked_fitness_total(fitness);
    active_.reserve(fitness.size());
    for (std::size_t i = 0; i < fitness.size(); ++i) {
      if (fitness[i] > 0.0) active_.push_back(i);
    }
    f_.reserve(active_.size());
    inv_f_.reserve(active_.size());
    for (std::size_t i : active_) {
      f_.push_back(fitness[i]);
      inv_f_.push_back(bid_filter::bound_reciprocal(fitness[i]));
    }
    size_ = fitness.size();
    bits_.resize(kBlock);
    u_.resize(kBlock);
    ub_.resize(kBlock);
    // Active-set density: items_total vs active_items_total gives the mean
    // density of the wheels this process actually built.
    LRB_OBS_COUNTER_ADD("lrb_core_kernel_builds_total", 1);
    LRB_OBS_COUNTER_ADD("lrb_core_kernel_items_total", size_);
    LRB_OBS_COUNTER_ADD("lrb_core_kernel_active_items_total", active_.size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Number of positive-fitness items ("k" in the paper's Theorem 1).
  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }

  /// One draw; consumes exactly active_count() engine steps.
  template <rng::Engine64 G>
  [[nodiscard]] std::size_t draw_one(G&& gen) {
    return draw_scored(gen).index;
  }

  /// One draw reporting the winning bid (for distributed sub-races).
  template <rng::Engine64 G>
  [[nodiscard]] Scored draw_scored(G&& gen) {
    const std::size_t k = f_.size();
    const simd::Ops& ops = simd::ops();
    bid_filter::RecordScan race;
    for (std::size_t start = 0; start < k; start += kBlock) {
      const std::size_t len = std::min(kBlock, k - start);
      // Engine bits in element order (exactly len draws consumed), then the
      // exact bits -> (0,1] conversion on the SIMD engine: same doubles as a
      // loop of u01_open_closed() calls, any lane width.
      rng::fill_bits(gen, std::span<std::uint64_t>(bits_.data(), len));
      ops.fill_u01_from_bits(bits_.data(), u_.data(), len);
      // Vectorized bound pass: bid <= (u - 1) * (1/f) because
      // log(u) <= u - 1 and 1/f > 0.  One sub+mul+max per item, bit-equal
      // to the scalar loop on every dispatch target (simd/dispatch.hpp).
      const double block_max =
          ops.bound_pass(u_.data(), inv_f_.data() + start, ub_.data(), len);
      if (race.skip_chunk(block_max)) continue;
      // The shared filtered argmax (core/bid_filter.hpp): exact log(u)/f
      // bids for the rare bound survivors, first-maximum-wins tie rule.
      race.scan(u_.data(), ub_.data(), f_.data() + start, start, len);
    }
    LRB_ASSERT(race.found, "positive total fitness implies at least one bid");
    LRB_OBS_COUNTER_ADD("lrb_core_draws_total", 1);
    LRB_OBS_COUNTER_ADD("lrb_core_log_evals_total", race.log_evals);
    LRB_OBS_COUNTER_ADD("lrb_core_filter_skips_total", k - race.log_evals);
    return Scored{race.best, active_[race.best_pos]};
  }

  /// Appends m draws to `out`; consumes exactly m * active_count() engine
  /// steps — the same bill as m select_bidding() calls.
  template <rng::Engine64 G>
  void draw_into(std::size_t m, G&& gen, std::vector<std::size_t>& out) {
    LRB_TRACE_SPAN_ARG("draw_many", m);
    LRB_OBS_HISTOGRAM_RECORD("lrb_core_batch_size", m);
    out.reserve(out.size() + m);
    for (std::size_t t = 0; t < m; ++t) out.push_back(draw_one(gen));
  }

 private:
  /// Uniform/bound scratch granularity: 2 x 2 KiB, resident in L1.
  static constexpr std::size_t kBlock = 256;

  std::size_t size_ = 0;
  std::vector<std::size_t> active_;    // original indices of positive items
  std::vector<double> f_;              // fitness, packed over the active set
  std::vector<double> inv_f_;          // cached reciprocals for the bound
  std::vector<std::uint64_t> bits_;    // per-block raw engine words (scratch)
  std::vector<double> u_;              // per-block uniforms (scratch)
  std::vector<double> ub_;             // per-block bid upper bounds (scratch)
};

/// m batched draws with replacement; exact roulette marginals, and the
/// returned indices (plus the engine state afterwards) match m consecutive
/// select_bidding() calls.
template <rng::Engine64 G>
[[nodiscard]] std::vector<std::size_t> draw_many(std::span<const double> fitness,
                                                 std::size_t m, G&& gen) {
  DrawManyKernel kernel(fitness);
  std::vector<std::size_t> out;
  kernel.draw_into(m, gen, out);
  return out;
}

}  // namespace lrb::core
