#include "core/openmp.hpp"

#include <limits>
#include <vector>

#ifdef LRB_HAVE_OPENMP
#include <omp.h>
#endif

#include "common/math.hpp"
#include "parallel/atomic_max.hpp"
#include "rng/seed.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::core {

bool openmp_available() noexcept {
#ifdef LRB_HAVE_OPENMP
  return true;
#else
  return false;
#endif
}

std::size_t openmp_threads() noexcept {
#ifdef LRB_HAVE_OPENMP
  return static_cast<std::size_t>(omp_get_max_threads());
#else
  return 1;
#endif
}

namespace {

struct Best {
  double bid = -std::numeric_limits<double>::infinity();
  std::size_t index = 0;
  bool found = false;
};

Best scan_range(std::span<const double> fitness, rng::Xoshiro256StarStar& gen,
                std::size_t begin, std::size_t end) {
  Best best;
  for (std::size_t i = begin; i < end; ++i) {
    if (fitness[i] <= 0.0) continue;
    const double bid = rng::log_bid(gen, fitness[i]);
    if (!best.found || bid > best.bid) {
      best.bid = bid;
      best.index = i;
      best.found = true;
    }
  }
  return best;
}

}  // namespace

std::size_t select_bidding_omp(std::span<const double> fitness,
                               std::uint64_t seed) {
  (void)checked_fitness_total(fitness);
  const rng::SeedSequence seeds(seed);
#ifdef LRB_HAVE_OPENMP
  const std::size_t n = fitness.size();
  Best overall;
#pragma omp parallel
  {
    const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t nthreads = static_cast<std::size_t>(omp_get_num_threads());
    rng::Xoshiro256StarStar gen(seeds.child(tid));
    const std::size_t chunk = (n + nthreads - 1) / nthreads;
    const std::size_t begin = std::min(n, tid * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    const Best local = scan_range(fitness, gen, begin, end);
#pragma omp critical(lrb_bidding_combine)
    {
      // Ascending-thread chunks: strict > keeps the smallest index on
      // (measure-zero) ties regardless of arrival order, because equal
      // bids only arise from identical (bid, index) replays.
      if (local.found &&
          (!overall.found || local.bid > overall.bid ||
           (local.bid == overall.bid && local.index < overall.index))) {
        overall = local;
      }
    }
  }
  LRB_ASSERT(overall.found, "positive total fitness implies a winner");
  return overall.index;
#else
  rng::Xoshiro256StarStar gen(seeds.child(0));
  const Best best = scan_range(fitness, gen, 0, fitness.size());
  LRB_ASSERT(best.found, "positive total fitness implies a winner");
  return best.index;
#endif
}

std::size_t select_bidding_race_omp(std::span<const double> fitness,
                                    std::uint64_t seed) {
  (void)checked_fitness_total(fitness);
  const rng::SeedSequence seeds(seed);
  parallel::AtomicArgMaxCell cell;
#ifdef LRB_HAVE_OPENMP
  const std::size_t n = fitness.size();
#pragma omp parallel
  {
    const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t nthreads = static_cast<std::size_t>(omp_get_num_threads());
    rng::Xoshiro256StarStar gen(seeds.child(tid));
    const std::size_t chunk = (n + nthreads - 1) / nthreads;
    const std::size_t begin = std::min(n, tid * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      if (fitness[i] <= 0.0) continue;
      const double bid = rng::log_bid(gen, fitness[i]);
      cell.update(bid, static_cast<std::uint32_t>(i));
    }
    // The implicit barrier at the end of the parallel region is the
    // paper's step 2.
  }
#else
  rng::Xoshiro256StarStar gen(seeds.child(0));
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] <= 0.0) continue;
    cell.update(rng::log_bid(gen, fitness[i]), static_cast<std::uint32_t>(i));
  }
#endif
  return cell.load().index;
}

}  // namespace lrb::core
