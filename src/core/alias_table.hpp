// Walker/Vose alias method: O(n) build, O(1) exact draws.
//
// The strongest sequential baseline for *static* fitness with many draws;
// the throughput benches (A1) use it as the performance ceiling against
// which bidding's flexibility (no build step, zero-cost fitness updates)
// is traded off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/uniform.hpp"

namespace lrb::core {

class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> fitness);

  /// Rebuilds from new fitness; O(n), single allocation reused.
  void rebuild(std::span<const double> fitness);

  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// One exact draw: pick a uniform column, then flip the column's biased
  /// coin between the column index and its alias.
  template <rng::Engine64 G>
  [[nodiscard]] std::size_t select(G&& gen) const {
    const std::size_t column = static_cast<std::size_t>(
        rng::uniform_below(gen, prob_.size()));
    return rng::u01_closed_open(gen) < prob_[column] ? column : alias_[column];
  }

  /// Exposed for structural tests: the per-column acceptance probability and
  /// alias target.
  [[nodiscard]] std::span<const double> probabilities() const noexcept {
    return prob_;
  }
  [[nodiscard]] std::span<const std::uint32_t> aliases() const noexcept {
    return alias_;
  }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace lrb::core
