// Counter-based deterministic parallel bidding.
//
// select_bidding_parallel (logarithmic_bidding.hpp) is exact for every lane
// count but consumes per-lane RNG streams, so the *specific* winner of draw
// t depends on how many lanes ran.  For simulation workloads that must
// replay bit-identically across machines, DeterministicBidder derives the
// uniform for (draw t, item i) from a Philox block keyed by (seed, t, i):
// a pure function, so serial and parallel evaluation — with any lane count —
// return the same winner.
//
// Cost: one Philox4x32-10 evaluation per positive-fitness item per draw
// (~2x the throughput cost of the xoshiro path; measured in A3/A4 benches).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "core/bid_filter.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/deterministic_bid.hpp"
#include "rng/uniform.hpp"
#include "simd/dispatch.hpp"

namespace lrb::core {

class DeterministicBidder {
 public:
  explicit DeterministicBidder(std::uint64_t seed) noexcept : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t next_draw_id() const noexcept { return draw_; }

  /// Positions the bidder at an absolute draw id (replay support).
  void seek(std::uint64_t draw_id) noexcept { draw_ = draw_id; }

  /// Serial selection for the current draw id; advances the draw counter.
  [[nodiscard]] std::size_t select(std::span<const double> fitness) {
    (void)checked_fitness_total(fitness);
    const std::uint64_t t = draw_++;
    return best_in_range(fitness, t, 0, fitness.size()).index;
  }

  /// Parallel selection; bit-identical to the serial path for any lane count.
  [[nodiscard]] std::size_t select(parallel::ThreadPool& pool,
                                   std::span<const double> fitness) {
    (void)checked_fitness_total(fitness);
    const std::uint64_t t = draw_++;
    const std::size_t lanes = pool.lanes();
    std::vector<Best> partial(lanes);
    pool.parallel_for(fitness.size(), [&](parallel::Range r, std::size_t lane) {
      partial[lane] = best_in_range(fitness, t, r.begin, r.end);
    });
    Best overall;  // bid = -inf
    for (const Best& b : partial) {
      // Ascending lane order covers ascending index ranges: strict `>`
      // keeps the smallest index on (measure-zero) ties, matching serial.
      if (b.found && (!overall.found || b.bid > overall.bid)) overall = b;
    }
    LRB_ASSERT(overall.found, "positive total fitness implies at least one bid");
    return overall.index;
  }

  /// The bid item i would place in draw t.  Exposed for tests (determinism
  /// and distribution checks hit this directly).
  [[nodiscard]] double bid_for(std::uint64_t t, std::size_t item,
                               double fitness) const noexcept {
    return rng::deterministic_bid(seed_, t, item, fitness);
  }

 private:
  struct Best {
    double bid = -std::numeric_limits<double>::infinity();
    std::size_t index = 0;
    bool found = false;
  };

  [[nodiscard]] Best best_in_range(std::span<const double> fitness,
                                   std::uint64_t t, std::size_t begin,
                                   std::size_t end) const noexcept {
    Best best;
    for (std::size_t i = begin; i < end; ++i) {
      if (fitness[i] <= 0.0) continue;
      const double bid = bid_for(t, i, fitness[i]);
      if (!best.found || bid > best.bid) {
        best.bid = bid;
        best.index = i;
        best.found = true;
      }
    }
    return best;
  }

  std::uint64_t seed_;
  std::uint64_t draw_ = 0;
};

/// The deterministic twin of DrawManyKernel (core/draw_many.hpp): a filtered
/// multi-draw pass over one fitness block with counter-based bids.
///
/// Construction hoists everything loop-invariant out of the draws exactly as
/// the stream kernel does — validation once per batch, positive-fitness
/// indices packed into an active set (a draw touches k items with no
/// zero-test branch), reciprocals 1/f cached for the bound pass.  Each draw
/// must still pay one Philox block per active item (the bid is DEFINED as a
/// function of (seed, t, i), so no evaluation can be skipped), but the
/// blocks are generated N lanes at a time by the runtime-dispatched SIMD
/// Philox kernel over the item streams (simd/dispatch.hpp — this is where
/// the counter-based design pays off: every lane is independent by
/// construction), and the record-breaking filter log(u) <= u - 1 skips
/// almost every std::log: the running maximum is beaten only O(log k)
/// expected times per draw, and the shared numerical guards
/// (core/bid_filter.hpp) guarantee the filter can skip work but never
/// change a winner, so the result is bit-identical to the unfiltered scan
/// DeterministicBidder performs — on every dispatch target (tested in
/// tests/core/deterministic_test.cpp and tests/simd/).
///
/// `index_base` shifts the item ids: a kernel over a shard [base, base + len)
/// bids with the GLOBAL Philox stream (seed, t, base + j) and reports global
/// indices, which is precisely what makes dist::distributed_bidding_
/// deterministic partition-invariant — the bid of global item i is the same
/// no matter which rank owns it.  draw_scored() is const and allocation-free,
/// so one kernel serves any number of threads.
class DeterministicDrawKernel {
 public:
  /// Winner of one draw with its actual bid — what a distributed rank ships
  /// into an argmax-allreduce.
  struct Scored {
    double bid = -std::numeric_limits<double>::infinity();
    std::uint64_t index = 0;  ///< global index (index_base + block position)
  };

  /// Validates once (finite, non-negative, positive total — the uniform
  /// selector error surface) and packs the active set.  O(n) build; every
  /// draw is O(k) with k = active_count().
  explicit DeterministicDrawKernel(std::span<const double> fitness,
                                   std::uint64_t index_base = 0) {
    (void)checked_fitness_total(fitness);
    active_.reserve(fitness.size());
    for (std::size_t i = 0; i < fitness.size(); ++i) {
      if (!(fitness[i] > 0.0)) continue;
      active_.push_back(index_base + i);
      f_.push_back(fitness[i]);
      inv_f_.push_back(bid_filter::bound_reciprocal(fitness[i]));
    }
    size_ = fitness.size();
    LRB_OBS_COUNTER_ADD("lrb_core_det_kernel_builds_total", 1);
    LRB_OBS_COUNTER_ADD("lrb_core_det_kernel_items_total", size_);
    LRB_OBS_COUNTER_ADD("lrb_core_det_kernel_active_items_total",
                        active_.size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Number of positive-fitness items ("k" in the paper's Theorem 1).
  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }

  /// Winner of draw `t`: argmax over the active set of the counter-based
  /// bids rng::deterministic_bid(seed, t, global index, f).  Pure function
  /// of (seed, t, fitness block) — thread-safe, no state advanced; the
  /// per-block scratch lives on the stack so one kernel serves any number
  /// of threads.  The SIMD stages are bit-exact on every dispatch target
  /// (simd/dispatch.hpp), so the winner cannot depend on lane width.
  [[nodiscard]] Scored draw_scored(std::uint64_t seed, std::uint64_t t) const {
    const std::size_t k = f_.size();
    const simd::Ops& ops = simd::ops();
    alignas(64) std::uint64_t bits[kBlock];
    alignas(64) double u[kBlock];
    alignas(64) double ub[kBlock];
    bid_filter::RecordScan race;
    for (std::size_t start = 0; start < k; start += kBlock) {
      const std::size_t len = std::min(kBlock, k - start);
      // The whole bid stream of this block, N lanes at a time: Philox
      // blocks keyed (seed, t, global item), then the exact bits -> (0,1]
      // conversion — identical doubles to rng::deterministic_uniform.
      ops.philox_bits_streams(seed, t, active_.data() + start, bits, len);
      ops.fill_u01_from_bits(bits, u, len);
      // Vectorized bound pass: bid <= (u - 1) * (1/f) because
      // log(u) <= u - 1 and 1/f > 0; one sub+mul+max per item decides
      // whether the std::log is worth paying.
      const double block_max =
          ops.bound_pass(u, inv_f_.data() + start, ub, len);
      if (race.skip_chunk(block_max)) continue;
      // The shared filtered argmax (core/bid_filter.hpp): exact log(u)/f
      // bids for the rare bound survivors, first-maximum-wins tie rule.
      race.scan(u, ub, f_.data() + start, start, len);
    }
    LRB_ASSERT(race.found, "positive total fitness implies at least one bid");
    LRB_OBS_COUNTER_ADD("lrb_core_det_draws_total", 1);
    LRB_OBS_COUNTER_ADD("lrb_core_det_log_evals_total", race.log_evals);
    LRB_OBS_COUNTER_ADD("lrb_core_det_filter_skips_total", k - race.log_evals);
    return Scored{race.best, active_[race.best_pos]};
  }

  /// Winner index only (serial/parallel batch selection).
  [[nodiscard]] std::size_t draw_one(std::uint64_t seed, std::uint64_t t) const {
    return static_cast<std::size_t>(draw_scored(seed, t).index);
  }

 private:
  /// Per-draw scratch granularity: three stack blocks (bits, u, ub) of 2 KiB
  /// each, resident in L1 — draw_scored stays const and allocation-free.
  static constexpr std::size_t kBlock = 256;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> active_;  // global indices of positive items
  std::vector<double> f_;              // fitness, packed over the active set
  std::vector<double> inv_f_;          // cached reciprocals for the bound
};

}  // namespace lrb::core
