// Counter-based deterministic parallel bidding.
//
// select_bidding_parallel (logarithmic_bidding.hpp) is exact for every lane
// count but consumes per-lane RNG streams, so the *specific* winner of draw
// t depends on how many lanes ran.  For simulation workloads that must
// replay bit-identically across machines, DeterministicBidder derives the
// uniform for (draw t, item i) from a Philox block keyed by (seed, t, i):
// a pure function, so serial and parallel evaluation — with any lane count —
// return the same winner.
//
// Cost: one Philox4x32-10 evaluation per positive-fitness item per draw
// (~2x the throughput cost of the xoshiro path; measured in A3/A4 benches).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/philox.hpp"
#include "rng/uniform.hpp"

namespace lrb::core {

class DeterministicBidder {
 public:
  explicit DeterministicBidder(std::uint64_t seed) noexcept : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t next_draw_id() const noexcept { return draw_; }

  /// Positions the bidder at an absolute draw id (replay support).
  void seek(std::uint64_t draw_id) noexcept { draw_ = draw_id; }

  /// Serial selection for the current draw id; advances the draw counter.
  [[nodiscard]] std::size_t select(std::span<const double> fitness) {
    (void)checked_fitness_total(fitness);
    const std::uint64_t t = draw_++;
    return best_in_range(fitness, t, 0, fitness.size()).index;
  }

  /// Parallel selection; bit-identical to the serial path for any lane count.
  [[nodiscard]] std::size_t select(parallel::ThreadPool& pool,
                                   std::span<const double> fitness) {
    (void)checked_fitness_total(fitness);
    const std::uint64_t t = draw_++;
    const std::size_t lanes = pool.lanes();
    std::vector<Best> partial(lanes);
    pool.parallel_for(fitness.size(), [&](parallel::Range r, std::size_t lane) {
      partial[lane] = best_in_range(fitness, t, r.begin, r.end);
    });
    Best overall;  // bid = -inf
    for (const Best& b : partial) {
      // Ascending lane order covers ascending index ranges: strict `>`
      // keeps the smallest index on (measure-zero) ties, matching serial.
      if (b.found && (!overall.found || b.bid > overall.bid)) overall = b;
    }
    LRB_ASSERT(overall.found, "positive total fitness implies at least one bid");
    return overall.index;
  }

  /// The bid item i would place in draw t.  Exposed for tests (determinism
  /// and distribution checks hit this directly).
  [[nodiscard]] double bid_for(std::uint64_t t, std::size_t item,
                               double fitness) const noexcept {
    const std::uint64_t raw = rng::philox_u64_at(seed_, t, item);
    const double u = static_cast<double>((raw >> 11) + 1) * 0x1.0p-53;  // (0,1]
    return rng::log_bid_from_uniform(u, fitness);
  }

 private:
  struct Best {
    double bid = -std::numeric_limits<double>::infinity();
    std::size_t index = 0;
    bool found = false;
  };

  [[nodiscard]] Best best_in_range(std::span<const double> fitness,
                                   std::uint64_t t, std::size_t begin,
                                   std::size_t end) const noexcept {
    Best best;
    for (std::size_t i = begin; i < end; ++i) {
      if (fitness[i] <= 0.0) continue;
      const double bid = bid_for(t, i, fitness[i]);
      if (!best.found || bid > best.bid) {
        best.bid = bid;
        best.index = i;
        best.found = true;
      }
    }
    return best;
  }

  std::uint64_t seed_;
  std::uint64_t draw_ = 0;
};

}  // namespace lrb::core
