// Baseline roulette-wheel algorithms the paper compares against or builds on.
//
//  * select_linear_cdf          — textbook inverse-CDF by linear scan, O(n);
//  * select_prefix_sum_parallel — the paper's Section I EREW baseline:
//                                 parallel prefix sums + parallel locate;
//  * select_independent         — the *biased* independent roulette of
//                                 Cecilia et al. (kept to reproduce its bias);
//  * select_gumbel_max          — argmax(log f_i + Gumbel_i), the log-domain
//                                 twin of bidding (exact);
//  * select_stochastic_acceptance — Lipowski & Lipowska rejection sampling,
//                                 O(1) expected per draw given max fitness.
//
// Precomputed-structure selectors (binary-search CDF, alias table) live in
// cdf_selector.hpp / alias_table.hpp.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/uniform.hpp"

namespace lrb::core {

/// Inverse-CDF selection by linear scan: draw R uniform in [0, total) and
/// return the first i with prefix_sum(i) > R.  Exact; O(n) per draw; O(1)
/// extra memory.
template <rng::Engine64 G>
[[nodiscard]] std::size_t select_linear_cdf(std::span<const double> fitness,
                                            G&& gen) {
  const double total = checked_fitness_total(fitness);
  const double r = rng::u01_closed_open(gen) * total;
  double acc = 0.0;
  std::size_t last_positive = 0;
  bool seen_positive = false;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] <= 0.0) continue;
    acc += fitness[i];
    last_positive = i;
    seen_positive = true;
    if (r < acc) return i;
  }
  // Floating-point slack: r can exceed the accumulated total by a few ulps.
  LRB_ASSERT(seen_positive, "positive total implies a positive entry");
  return last_positive;
}

/// The paper's prefix-sum-based parallel selection (Section I):
///   1. compute all prefix sums p_i in parallel,
///   2. processor 0 draws R = rand() * p_{n-1},
///   3. the processor with p_{i-1} <= R < p_i is selected.
/// Exact.  O(log n) PRAM time; here a two-pass scan + parallel locate.
/// `scratch` (resized to n) avoids per-draw allocation in hot loops.
template <rng::Engine64 G>
[[nodiscard]] std::size_t select_prefix_sum_parallel(
    parallel::ThreadPool& pool, std::span<const double> fitness, G&& gen,
    std::vector<double>& scratch) {
  (void)checked_fitness_total(fitness);
  scratch.resize(fitness.size());
  parallel::inclusive_scan(pool, fitness, scratch);
  const double total = scratch.back();
  const double r = rng::u01_closed_open(gen) * total;

  // Parallel locate: each lane checks its chunk for p_{i-1} <= R < p_i.
  // (A serial binary search would be O(log n) too, but the point of this
  // baseline is to mirror the paper's "each processor checks its cell".)
  std::atomic<std::size_t> selected{fitness.size()};
  pool.parallel_for(fitness.size(), [&](parallel::Range range, std::size_t) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const double lo = i == 0 ? 0.0 : scratch[i - 1];
      if (lo <= r && r < scratch[i]) {
        // Zero-fitness cells have lo == hi, so they can never satisfy this.
        std::size_t expected = fitness.size();
        selected.compare_exchange_strong(expected, i,
                                         std::memory_order_acq_rel);
        break;
      }
    }
  });
  std::size_t out = selected.load(std::memory_order_acquire);
  if (out == fitness.size()) {
    // r landed on total (fp slack): take the last positive-fitness index.
    for (std::size_t i = fitness.size(); i-- > 0;) {
      if (fitness[i] > 0.0) return i;
    }
    LRB_ASSERT(false, "positive total implies a positive entry");
  }
  return out;
}

/// Convenience overload that allocates its own scratch.
template <rng::Engine64 G>
[[nodiscard]] std::size_t select_prefix_sum_parallel(
    parallel::ThreadPool& pool, std::span<const double> fitness, G&& gen) {
  std::vector<double> scratch;
  return select_prefix_sum_parallel(pool, fitness, gen, scratch);
}

/// The independent roulette of Cecilia et al. [6]: r_i = f_i * u_i, max wins.
/// Intentionally *not* fitness-proportionate — the paper's Section I shows
/// Pr[select 0 | f={2,1}] = 3/4 instead of 2/3.  Provided so benches and
/// tests can reproduce the bias columns of Tables I and II.
template <rng::Engine64 G>
[[nodiscard]] std::size_t select_independent(std::span<const double> fitness,
                                             G&& gen) {
  (void)checked_fitness_total(fitness);
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  bool found = false;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] <= 0.0) continue;
    const double r = rng::independent_draw(gen, fitness[i]);
    if (!found || r > best) {
      best = r;
      best_index = i;
      found = true;
    }
  }
  return best_index;
}

/// Gumbel-max selection: argmax(log f_i + G_i) with G_i ~ Gumbel(0,1).
/// Mathematically identical winner distribution to logarithmic bidding
/// (both realize the exponential race); kept as a cross-check and for the
/// key-formulation ablation (A2).
template <rng::Engine64 G>
[[nodiscard]] std::size_t select_gumbel_max(std::span<const double> fitness,
                                            G&& gen) {
  (void)checked_fitness_total(fitness);
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  bool found = false;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] <= 0.0) continue;
    const double key = std::log(fitness[i]) + rng::gumbel(gen);
    if (!found || key > best) {
      best = key;
      best_index = i;
      found = true;
    }
  }
  return best_index;
}

/// Efraimidis–Spirakis key formulation: argmax u_i^(1/f_i).  Same winner
/// distribution in exact arithmetic; numerically fragile for tiny fitness
/// (keys underflow to 0) — that fragility is ablation A2's subject.
template <rng::Engine64 G>
[[nodiscard]] std::size_t select_es_key(std::span<const double> fitness,
                                        G&& gen) {
  (void)checked_fitness_total(fitness);
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  bool found = false;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] <= 0.0) continue;
    const double key = rng::es_key(gen, fitness[i]);
    if (!found || key > best) {
      best = key;
      best_index = i;
      found = true;
    }
  }
  return best_index;
}

/// Stochastic acceptance (Lipowski & Lipowska 2012): repeatedly pick a
/// uniform index, accept with probability f_i / f_max.  Exact; expected
/// draws ~ f_max * n / sum(f).  `max_fitness` <= 0 means "compute it".
template <rng::Engine64 G>
[[nodiscard]] std::size_t select_stochastic_acceptance(
    std::span<const double> fitness, G&& gen, double max_fitness = 0.0) {
  (void)checked_fitness_total(fitness);
  if (max_fitness <= 0.0) {
    for (double f : fitness) max_fitness = std::max(max_fitness, f);
  }
  while (true) {
    const std::size_t i = static_cast<std::size_t>(
        rng::uniform_below(gen, fitness.size()));
    if (fitness[i] <= 0.0) continue;
    if (rng::u01_closed_open(gen) * max_fitness < fitness[i]) return i;
  }
}

}  // namespace lrb::core
