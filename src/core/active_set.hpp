// Active-set bidding: strict O(k) selection when the caller maintains the
// set of positive-fitness indices explicitly.
//
// select_bidding() is O(n) because it must *find* the k positive entries.
// The paper's headline O(log k) presumes one processor per item; the serial
// analog of "only active processors work" is an index set that updates in
// O(1) as fitness flips between zero and non-zero.  ActiveSetBidder keeps
// exactly that: a swap-erase vector of active indices plus a position map,
// so ACO-style workloads pay O(k_t) per construction step — sum over a tour
// is n(n+1)/2 bids instead of n^2 scans — and sparse populations (k << n)
// select in O(k) regardless of n.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "rng/uniform.hpp"

namespace lrb::core {

class ActiveSetBidder {
 public:
  ActiveSetBidder() = default;

  explicit ActiveSetBidder(std::span<const double> fitness) { rebuild(fitness); }

  /// O(n) (re)build from a fitness vector.
  void rebuild(std::span<const double> fitness) {
    for (std::size_t i = 0; i < fitness.size(); ++i) {
      LRB_REQUIRE(std::isfinite(fitness[i]) && fitness[i] >= 0.0,
                  InvalidFitnessError,
                  "ActiveSetBidder: fitness must be finite and >= 0");
    }
    fitness_.assign(fitness.begin(), fitness.end());
    position_.assign(fitness_.size(), kInactive);
    active_.clear();
    for (std::size_t i = 0; i < fitness_.size(); ++i) {
      if (fitness_[i] > 0.0) {
        position_[i] = active_.size();
        active_.push_back(i);
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return fitness_.size(); }
  /// Number of positive-fitness indices ("k").
  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }
  [[nodiscard]] double fitness(std::size_t i) const {
    LRB_REQUIRE(i < fitness_.size(), InvalidArgumentError,
                "ActiveSetBidder::fitness: index out of range");
    return fitness_[i];
  }
  [[nodiscard]] std::span<const std::size_t> active_indices() const noexcept {
    return active_;
  }

  /// Sets f_i; O(1) (amortized) regardless of n.
  void update(std::size_t i, double value) {
    LRB_REQUIRE(i < fitness_.size(), InvalidArgumentError,
                "ActiveSetBidder::update: index out of range");
    LRB_REQUIRE(std::isfinite(value) && value >= 0.0, InvalidFitnessError,
                "ActiveSetBidder::update: fitness must be finite and >= 0");
    const bool was_active = fitness_[i] > 0.0;
    const bool is_active = value > 0.0;
    fitness_[i] = value;
    if (was_active == is_active) return;
    if (is_active) {
      position_[i] = active_.size();
      active_.push_back(i);
    } else {
      // swap-erase from the active list.
      const std::size_t pos = position_[i];
      const std::size_t last = active_.back();
      active_[pos] = last;
      position_[last] = pos;
      active_.pop_back();
      position_[i] = kInactive;
    }
  }

  /// The ACO "city visited" operation.
  void deactivate(std::size_t i) { update(i, 0.0); }

  /// One exact roulette draw over the active set; O(k).  Throws
  /// InvalidFitnessError when the active set is empty.
  template <rng::Engine64 G>
  [[nodiscard]] std::size_t select(G&& gen) const {
    LRB_REQUIRE(!active_.empty(), InvalidFitnessError,
                "ActiveSetBidder::select: no positive fitness values");
    double best_bid = -std::numeric_limits<double>::infinity();
    std::size_t best = active_[0];
    for (std::size_t i : active_) {
      const double bid = rng::log_bid(gen, fitness_[i]);
      if (bid > best_bid) {
        best_bid = bid;
        best = i;
      }
    }
    return best;
  }

 private:
  static constexpr std::size_t kInactive = ~std::size_t{0};

  std::vector<double> fitness_;
  std::vector<std::size_t> position_;  // index -> slot in active_, or kInactive
  std::vector<std::size_t> active_;    // the positive-fitness indices
};

}  // namespace lrb::core
