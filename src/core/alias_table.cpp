#include "core/alias_table.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace lrb::core {

AliasTable::AliasTable(std::span<const double> fitness) { rebuild(fitness); }

void AliasTable::rebuild(std::span<const double> fitness) {
  const double total = checked_fitness_total(fitness);
  const std::size_t n = fitness.size();
  LRB_REQUIRE(n <= 0xffffffffu, InvalidArgumentError,
              "AliasTable supports at most 2^32 entries");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities: mean 1.  Vose's two-stack partition into
  // under-full (< 1) and over-full (>= 1) columns.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = fitness[i] * static_cast<double>(n) / total;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    // s's column keeps probability scaled[s]; the rest routes to l.
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= (1.0 - scaled[s]);
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining columns are exactly full (modulo rounding): accept always.
  // Exception: a zero-fitness column can in principle survive here only via
  // pathological rounding; route it to a positive index instead of making it
  // selectable.
  std::uint32_t fallback = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (fitness[i] > 0.0) fallback = static_cast<std::uint32_t>(i);
  }
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) {
    if (fitness[s] > 0.0) {
      prob_[s] = 1.0;
    } else {
      prob_[s] = 0.0;
      alias_[s] = fallback;
    }
  }
}

}  // namespace lrb::core
