// Dynamic exact roulette selection on a Fenwick (binary indexed) tree:
// O(log n) fitness updates and O(log n) draws.
//
// Completes the selector design space the benches study:
//
//   | selector       | build | draw       | single update |
//   |----------------|-------|------------|---------------|
//   | bidding        | —     | O(k)       | O(1) (free)   |
//   | binary CDF     | O(n)  | O(log n)   | O(n) rebuild  |
//   | alias          | O(n)  | O(1)       | O(n) rebuild  |
//   | Fenwick (this) | O(n)  | O(log n)   | O(log n)      |
//
// ACO tour construction flips one weight to zero per step: Fenwick pays
// 2 log n per step; bidding pays k.  The crossover is measured in
// bench/bench_dynamic_updates.cpp.
//
// The draw walks the implicit tree top-down (Fenwick "search"), selecting
// index i with probability f_i / total — exact, like the CDF methods.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "rng/uniform.hpp"

namespace lrb::core {

class FenwickSelector {
 public:
  FenwickSelector() = default;

  explicit FenwickSelector(std::span<const double> fitness) { rebuild(fitness); }

  /// O(n) (re)build.
  void rebuild(std::span<const double> fitness) {
    (void)checked_fitness_total(fitness);
    n_ = fitness.size();
    cap_ = next_pow2(n_);
    fitness_.assign(fitness.begin(), fitness.end());
    tree_.assign(cap_ + 1, 0.0);
    // O(n) Fenwick construction: place values, then push partial sums up.
    for (std::size_t i = 0; i < n_; ++i) tree_[i + 1] = fitness[i];
    for (std::size_t i = 1; i <= cap_; ++i) {
      const std::size_t parent = i + (i & (~i + 1));
      if (parent <= cap_) tree_[parent] += tree_[i];
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Current fitness of index i; O(1).
  [[nodiscard]] double fitness(std::size_t i) const {
    LRB_REQUIRE(i < n_, InvalidArgumentError,
                "FenwickSelector::fitness: index out of range");
    return fitness_[i];
  }

  /// Current total; O(log n).
  [[nodiscard]] double total() const noexcept { return prefix_sum(n_); }

  /// Sets f_i to `value` (>= 0, finite); O(log n).
  void update(std::size_t i, double value) {
    LRB_REQUIRE(i < n_, InvalidArgumentError,
                "FenwickSelector::update: index out of range");
    LRB_REQUIRE(std::isfinite(value) && value >= 0.0, InvalidFitnessError,
                "FenwickSelector::update: fitness must be finite and >= 0");
    const double delta = value - fitness_[i];
    fitness_[i] = value;
    for (std::size_t j = i + 1; j <= cap_; j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Convenience: set f_i to zero (the ACO "city visited" operation).
  void deactivate(std::size_t i) { update(i, 0.0); }

  /// Inclusive prefix sum f_0 + ... + f_{count-1}; O(log n).
  [[nodiscard]] double prefix_sum(std::size_t count) const {
    double s = 0.0;
    for (std::size_t j = std::min(count, n_); j > 0; j -= j & (~j + 1)) {
      s += tree_[j];
    }
    return s;
  }

  /// One exact draw; O(log n).  Throws InvalidFitnessError if the current
  /// total is zero (everything deactivated).
  template <rng::Engine64 G>
  [[nodiscard]] std::size_t select(G&& gen) const {
    const double t = total();
    LRB_REQUIRE(t > 0.0, InvalidFitnessError,
                "FenwickSelector::select: all fitness values are zero");
    return locate(rng::u01_closed_open(gen) * t);
  }

  /// Smallest index i with prefix_sum(i+1) > r — the p_{i-1} <= r < p_i
  /// rule.  Top-down walk over the implicit tree; zero-fitness indices are
  /// never returned for r in [0, total).
  [[nodiscard]] std::size_t locate(double r) const {
    std::size_t pos = 0;
    for (std::size_t step = cap_; step > 0; step >>= 1) {
      const std::size_t next = pos + step;
      if (next <= cap_ && tree_[next] <= r) {
        // The whole subtree under `next` lies at or below r: skip it.
        r -= tree_[next];
        pos = next;
      }
    }
    // pos = number of leading indices whose cumulative prefix is <= r.  For
    // r in [0, total) this lands on a positive-fitness index (plateaus of
    // zeros are skipped by the <= comparisons).  r >= total can only occur
    // through fp slack; clamp and walk down to the last positive index.
    std::size_t i = pos < n_ ? pos : n_ - 1;
    while (i > 0 && fitness_[i] <= 0.0) --i;
    return i;
  }

 private:
  std::size_t n_ = 0;
  std::size_t cap_ = 0;           // power-of-two capacity
  std::vector<double> fitness_;   // mirror for O(1) reads & delta updates
  std::vector<double> tree_;      // 1-indexed Fenwick array
};

}  // namespace lrb::core
