// Type-erased selector interface + name registry.
//
// The template free functions in this module are the fast path; benches,
// examples and the ACO layer also need to pick an algorithm *at runtime*
// ("--selector=bidding").  Selector wraps any algorithm + engine behind a
// virtual `select()`, and the registry maps stable names to factories.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace lrb::core {

/// Every algorithm the registry can construct.
enum class SelectorKind {
  kBidding,               ///< the paper's contribution, serial
  kBiddingParallel,       ///< per-lane sub-races + tree combine
  kBiddingRace,           ///< CRCW-style atomic race (paper Section III)
  kBiddingDeterministic,  ///< counter-based, thread-count-invariant
  kLinearCdf,             ///< inverse CDF by linear scan
  kBinaryCdf,             ///< prebuilt prefix sums + binary search
  kFenwick,               ///< Fenwick tree: O(log n) draws AND updates
  kAlias,                 ///< Vose alias table
  kPrefixSumParallel,     ///< the paper's EREW baseline
  kIndependent,           ///< biased baseline (Cecilia et al.)
  kGumbelMax,             ///< log-domain twin of bidding
  kEsKey,                 ///< u^(1/f) key (numerically fragile twin)
  kStochasticAcceptance,  ///< Lipowski & Lipowska rejection
};

/// Static metadata about an algorithm.
struct SelectorInfo {
  SelectorKind kind;
  std::string_view name;        ///< stable CLI name
  bool exact;                   ///< selects i with probability exactly F_i
  bool parallel;                ///< uses a thread pool
  bool prebuilds;               ///< O(n) rebuild on fitness change
  std::string_view description;
};

[[nodiscard]] const SelectorInfo& selector_info(SelectorKind kind);
[[nodiscard]] SelectorKind parse_selector_kind(std::string_view name);
[[nodiscard]] std::vector<SelectorKind> all_selector_kinds();
[[nodiscard]] std::string_view to_string(SelectorKind kind);

/// Type-erased roulette wheel selector bound to a fitness vector and an
/// engine state.  Not thread-safe; create one per thread.
class Selector {
 public:
  virtual ~Selector() = default;

  /// Draws one index with the algorithm's selection distribution.
  [[nodiscard]] virtual std::size_t select() = 0;

  /// Replaces the fitness vector (rebuilds any precomputed structure).
  virtual void set_fitness(std::span<const double> fitness) = 0;

  [[nodiscard]] virtual const SelectorInfo& info() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
};

/// Creates a selector of the given kind over `fitness`, seeded with `seed`.
/// Parallel kinds use `pool` if provided, else ThreadPool::global().
[[nodiscard]] std::unique_ptr<Selector> make_selector(
    SelectorKind kind, std::span<const double> fitness, std::uint64_t seed,
    parallel::ThreadPool* pool = nullptr);

}  // namespace lrb::core
