// Weighted sampling *without* replacement via bidding keys.
//
// The paper's bid r_i = log(u_i)/f_i is exactly the logarithm of the
// Efraimidis–Spirakis key u_i^(1/f_i); taking the m largest bids therefore
// yields a weighted sample without replacement whose sequential distribution
// matches m successive roulette draws with winners removed (ES 2006,
// Theorem 1).  This extends the paper's single-selection primitive to the
// batched form heuristics often want (e.g. selecting m distinct parents).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace lrb::core {

/// Draws `m` distinct indices, fitness-proportionately without replacement,
/// using one pass and an m-element min-heap (O(n + m log m log(n/m))
/// expected).  Returns indices in selection order (first element = the draw
/// a single roulette spin would have produced).
///
/// Requires m <= (number of positive-fitness entries); throws
/// InvalidArgumentError otherwise.
///
/// `seed` feeds a counter-based generator, so results are independent of
/// thread count; the pool overload evaluates lanes in parallel and returns
/// the same sample as the serial overload.
[[nodiscard]] std::vector<std::size_t> sample_without_replacement(
    std::span<const double> fitness, std::size_t m, std::uint64_t seed);

[[nodiscard]] std::vector<std::size_t> sample_without_replacement(
    parallel::ThreadPool& pool, std::span<const double> fitness, std::size_t m,
    std::uint64_t seed);

/// Weighted shuffle: a full random permutation of the positive-fitness
/// indices, distributed as iterated roulette selection with removal
/// (equivalently: sort by descending bid).  Zero-fitness indices are
/// excluded from the result.  O(n log n).
[[nodiscard]] std::vector<std::size_t> weighted_shuffle(
    std::span<const double> fitness, std::uint64_t seed);

}  // namespace lrb::core
