// WheelSet: a multi-tenant selection arena — millions of small wheels
// through one batched pass.
//
// Real heavy-traffic selection workloads (ad auctions, per-user
// recommendation wheels, load balancers) are millions of SMALL fitness
// vectors, not one n=1e6 wheel.  A loop of batch_select_deterministic()
// calls over K tenants pays, per tenant, a full validation pass, three
// vector allocations, kernel setup, and a SIMD ramp that never reaches full
// lane occupancy when n is 8..64 — per-call overhead dominates the argmax
// itself.  WheelSet amortizes all of it across tenants:
//
//   * structure-of-arrays storage: all K wheels' fitness concatenated into
//     one arena with per-wheel offsets, plus per-wheel seed / draw-cursor /
//     compensated-sum state — admission cost is paid once per tenant, not
//     once per draw;
//   * packed active sets (positive-fitness item index, fitness, cached 1/f)
//     maintained per wheel: O(1) point updates patch values in place, and a
//     membership flip (zero <-> positive) marks only that wheel for an
//     O(n_w) repack on its next draw;
//   * one batched draw API: a request vector {(wheel, draws)} routes through
//     a SINGLE validation sweep and a tiled Philox-fill + segmented
//     bound-pass (simd/segmented.hpp) that concatenates many wheels' bid
//     streams into dense tiles — the vector kernels see full blocks even
//     when every wheel is 8 items wide.
//
// Determinism contract: wheel w draws bit-identically to a standalone
// batch_select_deterministic(wheel_values(w), m, seed(w)) — the per-item
// Philox streams are keyed (seed_w, t, LOCAL item index), seeds derive from
// the arena seed via rng::wheel_seed, and every SIMD stage is elementwise,
// so neither the batching, the tile boundaries, nor neighboring tenants'
// traffic can change a single winner (tests/core/wheel_set_test.cpp,
// tests/core/wheel_set_isolation_test.cpp).  The stream-engine variant
// likewise matches a per-wheel core::draw_many loop sharing the same
// engine: bits are consumed in request order, exactly k words per draw.
//
// Draws advance per-wheel cursors and share tile scratch: external
// synchronization is required, one arena per service shard.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "core/bid_filter.hpp"
#include "obs/obs.hpp"
#include "rng/uniform.hpp"
#include "rng/wheel_keys.hpp"
#include "simd/dispatch.hpp"
#include "simd/segmented.hpp"

namespace lrb::persist {
struct WheelSetAccess;  // snapshot serializer (persist/snapshot.cpp)
}

namespace lrb::core {

class WheelSet {
 public:
  /// One entry of a batched draw request: `draws` consecutive draws from
  /// `wheel`.  Requests are served in order; repeating a wheel within one
  /// batch continues its cursor exactly as two back-to-back batches would.
  struct DrawRequest {
    std::size_t wheel = 0;
    std::size_t draws = 0;
  };

  explicit WheelSet(std::uint64_t set_seed = 0) noexcept : set_seed_(set_seed) {
    offsets_.push_back(0);
  }

  // The arena is move-only: wheels are cheap to add, the arena itself is
  // hundreds of MB at production K, and the occupancy gauges below track
  // one owner per arena.
  WheelSet(const WheelSet&) = delete;
  WheelSet& operator=(const WheelSet&) = delete;
  WheelSet(WheelSet&& other) noexcept;
  WheelSet& operator=(WheelSet&& other) noexcept;
  ~WheelSet();

  /// Admits a wheel with a derived seed (rng::wheel_seed(set_seed, id)).
  /// Validates like every selector (finite, non-negative, named index+value
  /// on failure); an all-zero wheel is legal at admission — tenants fill in
  /// via update() — but drawing from it throws.  Returns the wheel id.
  std::size_t add_wheel(std::span<const double> fitness);
  /// Same, with an explicit per-wheel seed (tenant-owned replay streams).
  std::size_t add_wheel(std::span<const double> fitness, std::uint64_t seed);

  [[nodiscard]] std::size_t wheels() const noexcept {
    return offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t total_items() const noexcept {
    return values_.size();
  }
  /// Total positive-fitness items across all wheels (the occupancy gauge).
  [[nodiscard]] std::size_t total_active() const noexcept {
    return total_active_;
  }
  [[nodiscard]] std::size_t size(std::size_t wheel) const {
    check_wheel(wheel, "size");
    return offsets_[wheel + 1] - offsets_[wheel];
  }
  [[nodiscard]] std::span<const double> wheel_values(std::size_t wheel) const {
    check_wheel(wheel, "wheel_values");
    return {values_.data() + offsets_[wheel],
            offsets_[wheel + 1] - offsets_[wheel]};
  }
  [[nodiscard]] double value(std::size_t wheel, std::size_t item) const {
    check_item(wheel, item, "value");
    return values_[offsets_[wheel] + item];
  }
  /// Cached compensated fitness total of one wheel.  Invariant (maintained
  /// exactly, as ShardedFitness does): positive iff the wheel holds a
  /// positive entry, exactly 0.0 when emptied.
  [[nodiscard]] double wheel_sum(std::size_t wheel) const {
    check_wheel(wheel, "wheel_sum");
    return sums_[wheel].value();
  }
  /// Number of positive-fitness items ("k" in the paper's Theorem 1).
  [[nodiscard]] std::size_t active_count(std::size_t wheel) const {
    check_wheel(wheel, "active_count");
    return positive_count_[wheel];
  }
  [[nodiscard]] std::uint64_t seed(std::size_t wheel) const {
    check_wheel(wheel, "seed");
    return seeds_[wheel];
  }
  /// Next draw id of the wheel's deterministic stream (replay checkpoint:
  /// the whole arena resumes from K (seed, cursor) pairs).
  [[nodiscard]] std::uint64_t cursor(std::size_t wheel) const {
    check_wheel(wheel, "cursor");
    return cursors_[wheel];
  }
  /// Positions one wheel's deterministic stream at an absolute draw id.
  void seek(std::size_t wheel, std::uint64_t draw_id) {
    check_wheel(wheel, "seek");
    cursors_[wheel] = draw_id;
  }

  /// O(1) point update.  Same-membership updates patch the packed active
  /// arrays in place; a zero <-> positive flip defers the O(n_w) repack to
  /// the wheel's next draw.  The cached sum takes the delta through the
  /// wheel's carried Kahan state and keeps the sign invariant of
  /// wheel_sum() (snap to exact 0.0 when emptied; Kahan recompute on
  /// pathological cancellation — O(n_w), only when the cache degenerates).
  void update(std::size_t wheel, std::size_t item, double fitness);

  /// Batched deterministic draws: ONE validation sweep over the request
  /// vector, then one tiled Philox-fill + segmented bound-pass across all
  /// wheels.  Returns the winners (LOCAL item indices) in request order and
  /// advances each wheel's cursor by its draw count.  Bit-identical to
  /// calling batch_select_deterministic(wheel_values(w), draws, seed(w))
  /// per wheel (with cursors starting at 0) on every dispatch target.
  [[nodiscard]] std::vector<std::size_t> draw_batch(
      std::span<const DrawRequest> requests);
  void draw_batch_into(std::span<const DrawRequest> requests,
                       std::vector<std::size_t>& out);

  /// One deterministic draw from one wheel (request-queue convenience).
  [[nodiscard]] std::size_t draw_one(std::size_t wheel);

  /// Batched stream-engine draws: same single-sweep engine, uniforms from
  /// `gen` in request order (exactly active_count(w) words per draw) — the
  /// winners and the engine state afterwards match a per-wheel
  /// core::draw_many loop sharing the same engine.  Does not touch the
  /// deterministic cursors.
  template <rng::Engine64 G>
  void draw_batch_into(std::span<const DrawRequest> requests, G&& gen,
                       std::vector<std::size_t>& out) {
    const std::size_t total_draws = prepare_batch(requests);
    run_batch<false>(requests, total_draws, out,
                     [&](std::uint64_t* dst, std::size_t len) {
                       rng::fill_bits(gen, std::span<std::uint64_t>(dst, len));
                     });
  }
  template <rng::Engine64 G>
  [[nodiscard]] std::vector<std::size_t> draw_batch(
      std::span<const DrawRequest> requests, G&& gen) {
    std::vector<std::size_t> out;
    draw_batch_into(requests, gen, out);
    return out;
  }

 private:
  // The checkpoint layer (persist/snapshot.cpp) reads every field verbatim
  // and reconstructs arenas field by field — Kahan carries and deferred
  // dirty flags included, which no public accessor exposes in full.
  friend struct lrb::persist::WheelSetAccess;

  /// Tile capacity: 4 x 16 KiB scratch, L2-resident; big enough to amortize
  /// the two dispatched calls per tile across ~256 eight-item wheels.
  static constexpr std::size_t kTile = 2048;

  /// One ragged slice of a draw inside the tile (parallel to segs_): which
  /// wheel, where its chunk starts in the active arrays (absolute) and in
  /// the wheel's active set (relative), and whether it completes its draw.
  struct Chunk {
    std::size_t wheel = 0;
    std::size_t active_abs = 0;
    std::size_t pos0 = 0;
    bool closes = false;
  };

  void check_wheel(std::size_t wheel, const char* what) const;
  void check_item(std::size_t wheel, std::size_t item, const char* what) const;
  /// Repacks one wheel's active arrays from values_ (membership changed).
  void rebuild_active(std::size_t wheel);
  /// The single per-batch validation sweep: wheel ids in range, dirty
  /// wheels repacked, every drawn-from wheel has a positive entry.
  /// Returns the total draw count.
  std::size_t prepare_batch(std::span<const DrawRequest> requests);
  void release_gauges() noexcept;

  /// The batched draw engine, shared by the deterministic and stream paths.
  /// Chunks are packed into dense tiles; each full tile runs ONE
  /// bits-producing step and ONE segmented bits -> (0,1] + bound sweep
  /// (simd/segmented.hpp), then the shared filtered argmax
  /// (bid_filter::RecordScan) resolves each chunk, carrying the race of a
  /// draw that straddles a tile boundary.
  ///
  /// Keyed == true is the deterministic path: chunks enqueue per-element
  /// Philox keys (seed_w broadcast, the draw's cursor t broadcast, LOCAL
  /// item streams) and the flush derives the whole tile's bits in ONE
  /// philox_bits_keyed call — full vector lanes even when every wheel is 8
  /// items wide — and each draw consumes one cursor tick of its wheel.
  /// Keyed == false is the stream path: `fill(dst, len)` pulls raw bid bits
  /// from the caller's engine in request order and cursors stay untouched.
  template <bool Keyed, class Filler>
  void run_batch(std::span<const DrawRequest> requests,
                 std::size_t total_draws, std::vector<std::size_t>& out,
                 Filler&& fill) {
    LRB_TRACE_SPAN_ARG("wheelset_draw_batch", total_draws);
    LRB_OBS_SCOPED_NS("lrb_wheelset_batch_ns");
    out.reserve(out.size() + total_draws);
    const simd::Ops& ops = simd::ops();
    if (bits_.size() != kTile) {
      bits_.resize(kTile);
      u_.resize(kTile);
      ub_.resize(kTile);
      inv_tile_.resize(kTile);
    }
    if constexpr (Keyed) {
      if (seed_tile_.size() != kTile) {
        seed_tile_.resize(kTile);
        ctr_tile_.resize(kTile);
        stream_tile_.resize(kTile);
      }
    }
    segs_.clear();
    chunks_.clear();
    std::size_t pos = 0;          // tile fill level
    std::size_t work_items = 0;   // sum of k over all draws (obs partition)
    std::size_t log_evals = 0;
    bid_filter::RecordScan race;  // carried across tiles for an open draw

    const auto flush = [&]() {
      if (pos == 0) return;
      if constexpr (Keyed) {
        ops.philox_bits_keyed(seed_tile_.data(), ctr_tile_.data(),
                              stream_tile_.data(), bits_.data(), pos);
      }
      // No per-segment maxima: the RecordScan gates every element on its
      // bound anyway, so chunk-level skips would buy nothing on the fresh
      // single-chunk races that dominate here (see segmented.hpp).
      simd::segmented_bound_pass(ops, bits_.data(), inv_tile_.data(),
                                 u_.data(), ub_.data(), pos, segs_.data(),
                                 segs_.size(), /*seg_max=*/nullptr);
      for (std::size_t c = 0; c < chunks_.size(); ++c) {
        const Chunk& ch = chunks_[c];
        const simd::Segment sg = segs_[c];
        if (!race.found) {
          // Fresh race: probe the strongest-bound element first — it is
          // usually the winner, so the gate starts tight and the scan skips
          // almost every other log.  Mask its bound so the scan does not
          // pay its log twice (it is already installed; the winner cannot
          // change — see RecordScan::probe).
          const double* ubs = ub_.data() + sg.begin;
          std::size_t pm = 0;
          for (std::size_t j = 1; j < sg.len; ++j) {
            if (ubs[j] > ubs[pm]) pm = j;
          }
          race.probe(u_[sg.begin + pm], active_f_[ch.active_abs + pm],
                     ch.pos0 + pm);
          ub_[sg.begin + pm] = -std::numeric_limits<double>::infinity();
        }
        race.scan(u_.data() + sg.begin, ub_.data() + sg.begin,
                  active_f_.data() + ch.active_abs, ch.pos0, sg.len);
        if (ch.closes) {
          LRB_ASSERT(race.found,
                     "positive active count implies at least one bid");
          out.push_back(static_cast<std::size_t>(
              active_streams_[offsets_[ch.wheel] + race.best_pos]));
          log_evals += race.log_evals;
          race = bid_filter::RecordScan{};
        }
      }
      segs_.clear();
      chunks_.clear();
      pos = 0;
    };

    for (const DrawRequest& r : requests) {
      if (r.draws == 0) continue;
      const std::size_t w = r.wheel;
      const std::size_t abase = offsets_[w];
      const std::size_t k = positive_count_[w];
      for (std::size_t d = 0; d < r.draws; ++d) {
        // Stream-engine draws take their entropy from the engine, not the
        // counter stream: the deterministic cursors stay untouched.
        [[maybe_unused]] std::uint64_t t = 0;
        if constexpr (Keyed) t = cursors_[w]++;
        std::size_t done = 0;
        while (done < k) {
          if (pos == kTile) flush();
          const std::size_t take = std::min(k - done, kTile - pos);
          if constexpr (Keyed) {
            std::fill_n(seed_tile_.data() + pos, take, seeds_[w]);
            std::fill_n(ctr_tile_.data() + pos, take, t);
            std::memcpy(stream_tile_.data() + pos,
                        active_streams_.data() + abase + done,
                        take * sizeof(std::uint64_t));
          } else {
            fill(bits_.data() + pos, take);
          }
          std::memcpy(inv_tile_.data() + pos,
                      active_inv_f_.data() + abase + done,
                      take * sizeof(double));
          segs_.push_back({pos, take});
          chunks_.push_back({w, abase + done, done, done + take == k});
          pos += take;
          done += take;
        }
        work_items += k;
      }
    }
    flush();
    LRB_OBS_COUNTER_ADD("lrb_wheelset_batches_total", 1);
    LRB_OBS_COUNTER_ADD("lrb_wheelset_draws_total", total_draws);
    LRB_OBS_COUNTER_ADD("lrb_wheelset_log_evals_total", log_evals);
    LRB_OBS_COUNTER_ADD("lrb_wheelset_filter_skips_total",
                        work_items - log_evals);
    LRB_OBS_HISTOGRAM_RECORD("lrb_wheelset_batch_draws", total_draws);
  }

  std::uint64_t set_seed_ = 0;
  std::vector<std::size_t> offsets_;  // K+1 item offsets into the arena
  std::vector<double> values_;        // all wheels' fitness, concatenated
  std::vector<std::uint64_t> seeds_;  // per-wheel Philox keys
  std::vector<std::uint64_t> cursors_;        // per-wheel next draw id
  std::vector<KahanSum> sums_;                // per-wheel cached totals
  std::vector<std::size_t> positive_count_;   // per-wheel active item count
  std::vector<std::uint8_t> dirty_;   // packed actives stale for this wheel
  // Packed active sets: wheel w's positive items occupy the prefix
  // [offsets_[w], offsets_[w] + positive_count_[w]) of these arrays.  The
  // stream ids are LOCAL item indices — exactly the (seed_w, t, i) keying a
  // standalone kernel over wheel_values(w) uses.
  std::vector<std::uint64_t> active_streams_;
  std::vector<double> active_f_;
  std::vector<double> active_inv_f_;
  std::vector<std::size_t> pos_in_active_;  // slot -> active-prefix position
  std::size_t total_active_ = 0;

  // Batch scratch (reused across batches; sized on first draw).  The three
  // key tiles mirror bits_ element for element on the deterministic path:
  // one philox_bits_keyed call per tile turns them into bid bits.
  std::vector<std::uint64_t> seed_tile_;
  std::vector<std::uint64_t> ctr_tile_;
  std::vector<std::uint64_t> stream_tile_;
  std::vector<std::uint64_t> bits_;
  std::vector<double> u_;
  std::vector<double> ub_;
  std::vector<double> inv_tile_;
  std::vector<simd::Segment> segs_;
  std::vector<Chunk> chunks_;
  std::vector<std::size_t> scratch_out_;
};

}  // namespace lrb::core
