// Batched selection: m independent draws (with replacement) from one
// fitness vector, with the strategy chosen by batch size.
//
//   m small : repeated serial bidding — no build cost, O(m k) total
//   m large : one alias-table build + m O(1) draws — O(n + m)
//
// batch_select() picks the strategy from the measured crossover
// (m >= kAliasCrossover * n / max(k,1)); both produce exact roulette
// marginals and the choice only affects speed.  A deterministic
// counter-based variant serves replay workloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "core/alias_table.hpp"
#include "core/logarithmic_bidding.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/philox.hpp"
#include "rng/uniform.hpp"

namespace lrb::core {

/// Strategy for a batch of draws.
enum class BatchStrategy {
  kAuto,     ///< pick by crossover heuristic
  kBidding,  ///< m passes of serial bidding
  kAlias,    ///< build alias table once, then m O(1) draws
};

/// Measured crossover factor: alias build (~2n) amortizes once the batch
/// does more than ~1/4 that much bidding work.
inline constexpr double kAliasCrossover = 0.25;

/// Draws `m` indices with replacement; out.size() == m.
template <rng::Engine64 G>
std::vector<std::size_t> batch_select(std::span<const double> fitness,
                                      std::size_t m, G&& gen,
                                      BatchStrategy strategy = BatchStrategy::kAuto) {
  (void)checked_fitness_total(fitness);
  std::vector<std::size_t> out;
  out.reserve(m);
  if (m == 0) return out;

  if (strategy == BatchStrategy::kAuto) {
    const std::size_t k = count_nonzero(fitness);
    const double bidding_work = static_cast<double>(m) * static_cast<double>(k);
    const double alias_work =
        static_cast<double>(fitness.size()) / kAliasCrossover;
    strategy = bidding_work < alias_work ? BatchStrategy::kBidding
                                         : BatchStrategy::kAlias;
  }

  if (strategy == BatchStrategy::kBidding) {
    for (std::size_t t = 0; t < m; ++t) {
      out.push_back(select_bidding(fitness, gen));
    }
  } else {
    const AliasTable table(fitness);
    for (std::size_t t = 0; t < m; ++t) {
      out.push_back(table.select(gen));
    }
  }
  return out;
}

/// Deterministic batched draws: result depends only on (seed, fitness, m),
/// not on thread count; the pool overload returns the identical batch.
/// Draw t uses the counter-based bid stream (seed, t, item).
[[nodiscard]] std::vector<std::size_t> batch_select_deterministic(
    std::span<const double> fitness, std::size_t m, std::uint64_t seed);

[[nodiscard]] std::vector<std::size_t> batch_select_deterministic(
    parallel::ThreadPool& pool, std::span<const double> fitness, std::size_t m,
    std::uint64_t seed);

}  // namespace lrb::core
