// Batched selection: m independent draws (with replacement) from one
// fitness vector, with the strategy chosen by batch size.
//
//   m small : one DrawManyKernel build + m O(k) filtered bidding passes
//   m large : one alias-table build + m O(1) draws — O(n + m)
//
// batch_select() picks the strategy from the measured crossover (bidding
// while m * k < n / alias_crossover_for(n)); both produce exact roulette
// marginals and the choice only affects speed.  A deterministic
// counter-based variant serves replay workloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "core/alias_table.hpp"
#include "core/draw_many.hpp"
#include "core/logarithmic_bidding.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/philox.hpp"
#include "rng/uniform.hpp"

namespace lrb::core {

/// Strategy for a batch of draws.
enum class BatchStrategy {
  kAuto,     ///< pick by crossover heuristic
  kBidding,  ///< one DrawManyKernel, m filtered bidding passes
  kAlias,    ///< build alias table once, then m O(1) draws
};

/// Measured crossover factors: bidding wins while m * k stays under
/// n / alias_crossover_for(n).  Two regimes, both calibrated from
/// BENCH_selection.json's "crossover" array (measured break-even m* and the
/// implied factor n / (m* k) per config, so the calibration lives in the
/// artifact, not a commit message):
///
///   * small n (<= kSmallWheelCrossoverN): the multi-tenant regime the
///     WheelSet arena serves.  The v7 small-n rows (n in {256, 1024, 4096}
///     dense) measure m* ~= 1-2 — implied factors ~0.6-1.2 — because the
///     alias build is nearly free there while bidding still pays O(k) per
///     draw; 0.6 hands every batch beyond a single draw per wheel to
///     alias, where the old flat 0.35 kept bidding one near-break-even
///     batch size too long.
///   * large n: the v6-era rows stand — sparse rows imply 0.17-0.41 (the
///     vectorized bound pass keeps bidding competitive to m* ~= 57 at
///     n = 1e6 sparse) while dense rows degenerate to alias-from-m=1
///     (m* < 1, implied factor 1.9-3.6, because the kernel's O(n) build
///     alone exceeds the alias build).  No single factor satisfies both;
///     0.35 keeps the sparse side right and confines the dense mischoices
///     to m <= 2, where the two strategies cost within a few percent.
inline constexpr double kAliasCrossover = 0.35;        ///< large-n regime
inline constexpr double kAliasCrossoverSmallN = 0.6;   ///< n <= threshold
inline constexpr std::size_t kSmallWheelCrossoverN = 4'096;

/// The regime table, total over n: the factor resolve_batch_strategy uses
/// and tools/bench_json stamps next to every measured crossover row.
[[nodiscard]] constexpr double alias_crossover_for(std::size_t n) noexcept {
  return n <= kSmallWheelCrossoverN ? kAliasCrossoverSmallN : kAliasCrossover;
}

/// The kAuto decision, exposed so tooling (tools/bench_json) reports the
/// exact strategy batch_select would pick: bidding while the batch's
/// m * k bidding work stays under n / alias_crossover_for(n), alias beyond.
[[nodiscard]] inline BatchStrategy resolve_batch_strategy(
    std::span<const double> fitness, std::size_t m) noexcept {
  const std::size_t k = count_nonzero(fitness);
  const double bidding_work = static_cast<double>(m) * static_cast<double>(k);
  const double alias_work = static_cast<double>(fitness.size()) /
                            alias_crossover_for(fitness.size());
  // Crossover decision counters: the production record of which side of the
  // alias_crossover_for calibration real batches actually land on.
  if (bidding_work < alias_work) {
    LRB_OBS_COUNTER_ADD("lrb_core_crossover_bidding_total", 1);
    return BatchStrategy::kBidding;
  }
  LRB_OBS_COUNTER_ADD("lrb_core_crossover_alias_total", 1);
  return BatchStrategy::kAlias;
}

/// Draws `m` indices with replacement; out.size() == m.
///
/// Validation runs once per batch (the kernel/alias build), never per draw —
/// the m draws themselves are free of O(n) revalidation passes.
template <rng::Engine64 G>
std::vector<std::size_t> batch_select(std::span<const double> fitness,
                                      std::size_t m, G&& gen,
                                      BatchStrategy strategy = BatchStrategy::kAuto) {
  std::vector<std::size_t> out;
  if (m == 0) {
    (void)checked_fitness_total(fitness);  // same error surface as m > 0
    return out;
  }

  if (strategy == BatchStrategy::kAuto) {
    strategy = resolve_batch_strategy(fitness, m);
  }

  LRB_TRACE_SPAN_ARG("batch_select", m);
  if (strategy == BatchStrategy::kBidding) {
    LRB_OBS_COUNTER_ADD("lrb_core_batch_bidding_total", 1);
    DrawManyKernel kernel(fitness);  // validates once for the whole batch
    kernel.draw_into(m, gen, out);
  } else {
    LRB_OBS_COUNTER_ADD("lrb_core_batch_alias_total", 1);
    (void)checked_fitness_total(fitness);
    const AliasTable table(fitness);
    out.reserve(m);
    for (std::size_t t = 0; t < m; ++t) {
      out.push_back(table.select(gen));
    }
  }
  return out;
}

/// Deterministic batched draws: result depends only on (seed, fitness, m),
/// not on thread count; the pool overload returns the identical batch.
/// Draw t uses the counter-based bid stream (seed, t, item).
[[nodiscard]] std::vector<std::size_t> batch_select_deterministic(
    std::span<const double> fitness, std::size_t m, std::uint64_t seed);

[[nodiscard]] std::vector<std::size_t> batch_select_deterministic(
    parallel::ThreadPool& pool, std::span<const double> fitness, std::size_t m,
    std::uint64_t seed);

}  // namespace lrb::core
