// Fitness-vector helpers shared by every selector.
//
// Terminology follows the paper: `fitness` is a vector of non-negative reals
// f_0..f_{n-1}; the target selection probability of index i is
// F_i = f_i / sum_j f_j.  `k` denotes the number of strictly positive
// entries (Theorem 1's parameter).
#pragma once

#include <span>
#include <vector>

#include "common/math.hpp"

namespace lrb::core {

/// Exact target probabilities F_i.  Throws InvalidFitnessError unless the
/// vector is non-empty, finite, non-negative with positive total.
[[nodiscard]] inline std::vector<double> exact_probabilities(
    std::span<const double> fitness) {
  const double total = checked_fitness_total(fitness);
  std::vector<double> out(fitness.size());
  for (std::size_t i = 0; i < fitness.size(); ++i) out[i] = fitness[i] / total;
  return out;
}

/// Indices of strictly positive fitness (the "active" processors).
[[nodiscard]] inline std::vector<std::size_t> nonzero_indices(
    std::span<const double> fitness) {
  std::vector<std::size_t> idx;
  idx.reserve(fitness.size());
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] > 0.0) idx.push_back(i);
  }
  return idx;
}

}  // namespace lrb::core
