// The paper's contribution: roulette wheel selection by logarithmic random
// bidding.
//
//   1. every index i with f_i > 0 draws a bid r_i = log(u_i)/f_i,
//      u_i ~ Uniform(0,1];
//   2. the index with the maximum bid is selected.
//
// Since -r_i ~ Exponential(f_i) and the minimum of independent exponentials
// with rates f_i lands on clock i with probability f_i / sum f, the selection
// is *exactly* fitness-proportionate (paper, Section II) — unlike the
// "independent roulette" heuristic r_i = f_i * u_i, which is biased toward
// large fitness (paper, Section I).
//
// Three execution strategies share this header:
//   * select_bidding            — serial scan, O(n), O(1) memory;
//   * select_bidding_parallel   — tree-reduction over per-lane sub-races
//                                 (EREW-style, deterministic per lane count);
//   * select_bidding_race       — the paper's CRCW race on an atomic max
//                                 cell (Section III), with round statistics.
// A fourth, counter-based deterministic variant lives in
// core/deterministic.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "parallel/atomic_max.hpp"
#include "parallel/barrier.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/seed.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::core {

/// Serial logarithmic bidding.  One pass, no allocation.
///
/// Zero-fitness entries never win (their conceptual bid is -inf and is not
/// even drawn — this also means the RNG consumption equals the number of
/// positive entries, which the reproducibility tests rely on).
template <rng::Engine64 G>
[[nodiscard]] std::size_t select_bidding(std::span<const double> fitness, G&& gen) {
  (void)checked_fitness_total(fitness);
  double best_bid = -std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  bool found = false;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] <= 0.0) continue;
    const double bid = rng::log_bid(gen, fitness[i]);
    if (!found || bid > best_bid) {
      best_bid = bid;
      best_index = i;
      found = true;
    }
  }
  return best_index;
}

/// Round statistics reported by the race-based selector; the practical
/// analog of the paper's Theorem 1 accounting.
struct RaceStats {
  /// Barrier-synchronized rounds of the while-loop (>= 1 when any lane bids).
  std::uint64_t rounds = 0;
  /// Successful CAS installs across all lanes (each corresponds to one
  /// "winning write" in the CRCW model).
  std::uint64_t winning_writes = 0;
  /// Total CAS attempts (winning + lost arbitration).
  std::uint64_t cas_attempts = 0;
};

/// Parallel bidding via per-lane sub-races + deterministic tree combine.
///
/// Each lane runs the serial race over its contiguous chunk with its own
/// decorrelated engine (child seed `lane` of `seeds`), then lane-local
/// winners reduce in lane order.  Result distribution is exactly F_i for
/// every lane count; the *specific* winner for a given seed depends on the
/// lane count (per-lane streams), unlike core/deterministic.hpp.
[[nodiscard]] inline std::size_t select_bidding_parallel(
    parallel::ThreadPool& pool, std::span<const double> fitness,
    const rng::SeedSequence& seeds) {
  (void)checked_fitness_total(fitness);
  const std::size_t lanes = pool.lanes();
  struct LaneBest {
    double bid = -std::numeric_limits<double>::infinity();
    std::size_t index = 0;
    bool found = false;
  };
  std::vector<LaneBest> best(lanes);
  pool.parallel_for(fitness.size(), [&](parallel::Range r, std::size_t lane) {
    rng::Xoshiro256StarStar gen(seeds.child(lane));
    LaneBest local;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (fitness[i] <= 0.0) continue;
      const double bid = rng::log_bid(gen, fitness[i]);
      if (!local.found || bid > local.bid) {
        local.bid = bid;
        local.index = i;
        local.found = true;
      }
    }
    best[lane] = local;
  });
  LaneBest overall;
  for (const LaneBest& lb : best) {
    if (!lb.found) continue;
    // Lanes cover ascending ranges; ties keep the lower index.
    if (!overall.found || lb.bid > overall.bid) overall = lb;
  }
  LRB_ASSERT(overall.found, "positive total fitness implies at least one bid");
  return overall.index;
}

/// The paper's Section III algorithm on shared-memory threads: all lanes race
/// to raise one atomic (bid, index) cell, retrying while their bid exceeds
/// the published value; a barrier separates the race from reading the winner.
///
/// `stats`, when non-null, receives round/write counts for experiment E5.
[[nodiscard]] inline std::size_t select_bidding_race(
    parallel::ThreadPool& pool, std::span<const double> fitness,
    const rng::SeedSequence& seeds, RaceStats* stats = nullptr) {
  (void)checked_fitness_total(fitness);
  const std::size_t lanes = pool.lanes();
  parallel::AtomicArgMaxCell cell;
  parallel::SpinBarrier barrier(lanes);
  std::atomic<std::uint64_t> total_rounds{0};
  std::atomic<std::uint64_t> total_attempts{0};
  std::atomic<std::uint64_t> total_wins{0};

  pool.run_spmd([&](std::size_t lane, std::size_t nlanes) {
    rng::Xoshiro256StarStar gen(seeds.child(lane));
    const parallel::Range r = parallel::partition_range(fitness.size(), nlanes, lane);
    std::uint64_t rounds = 0;
    std::uint64_t attempts = 0;
    std::uint64_t wins = 0;
    // Each lane iterates over its items; per item, the "while s < r_i"
    // loop of the paper maps to CAS retries on the shared cell.
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (fitness[i] <= 0.0) continue;
      const double bid = rng::log_bid(gen, fitness[i]);
      // Read-check-write loop, exactly the paper's `while s < r_i do s <- r_i`.
      const auto outcome = cell.update(bid, static_cast<std::uint32_t>(i));
      attempts += outcome.attempts;
      wins += outcome.installed ? 1 : 0;
      ++rounds;
    }
    total_rounds.fetch_add(rounds, std::memory_order_relaxed);
    total_attempts.fetch_add(attempts, std::memory_order_relaxed);
    total_wins.fetch_add(wins, std::memory_order_relaxed);
    // Paper step 2: barrier_synchronization() before reading the winner.
    barrier.arrive_and_wait();
  });

  if (stats != nullptr) {
    stats->rounds = total_rounds.load();
    stats->cas_attempts = total_attempts.load();
    stats->winning_writes = total_wins.load();
  }
  return cell.load().index;
}

}  // namespace lrb::core
