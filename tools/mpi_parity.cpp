// mpi_parity — the proof, under mpirun, that the MPI backend IS the
// simulated machine.
//
// Launched as `mpirun -np P ./build/tools/mpi_parity` (P in {1,2,4,8} in
// CI).  Every process builds identical fitness vectors, shards them over the
// world, and replays the P-sweep parity suite on BOTH backends:
//
//   * winners — stream and deterministic, single and batched, cursor
//     seek/replay, and the prefix-sum pipeline — must be bit-identical
//     between MpiBackend and SimulatedBackend, and the deterministic ones
//     additionally bit-identical to serial core::DeterministicBidder;
//   * CommLedgers must be equal across backends AND equal to the analytical
//     bill: ceil(log2 P) rounds, P messages per round, 2B words per message
//     for a B-draw bidding batch;
//   * the ledger must match the wire: a PMPI wrapper around MPI_Sendrecv
//     (the only primitive the backend's collectives round on) counts this
//     process's calls and payload bytes, and a bidding draw must cost
//     exactly `rounds` calls of 16B-byte messages — the model cross-checked
//     against actual MPI traffic, not against itself.
//
// Exits nonzero (on every rank) if any check fails; rank 0 prints a one-line
// JSON summary with "backend": "mpi" so harvested results can never be
// confused with simulated numbers.
//
// Rank-failure drill (world >= 2): for every (victim rank, failure draw) in
// the drill matrix, every process wraps its MpiBackend in a
// FaultInjectingBackend with the same `kill@draw:rank=victim` schedule, so
// all processes throw RankFailedError symmetrically at the same draw —
// before any MPI dataflow, so no stray messages.  Survivors MPI_Comm_split a
// smaller world, bind a fresh MpiBackend to it, reshard the fitness onto
// P-1 ranks, and resume from the two-integer cursor: the full winner
// sequence (pre-failure prefix + post-recovery tail) must be bit-identical
// to the unfaulted serial DeterministicBidder stream.
#include <mpi.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "core/deterministic.hpp"
#include "dist/backend.hpp"
#include "dist/mpi_backend.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"
#include "fault/injecting_backend.hpp"
#include "fault/schedule.hpp"

namespace {

// ---------------------------------------------------------------------------
// PMPI instrumentation: count this process's MPI_Sendrecv calls and sent
// payload bytes.  The strong definition below shadows libmpi's and forwards
// to the PMPI_ entry point — the standard MPI profiling mechanism.
std::uint64_t g_sendrecv_calls = 0;
std::uint64_t g_sendrecv_bytes = 0;

struct WireCount {
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
};

WireCount wire_now() { return {g_sendrecv_calls, g_sendrecv_bytes}; }

WireCount wire_since(const WireCount& start) {
  return {g_sendrecv_calls - start.calls, g_sendrecv_bytes - start.bytes};
}

}  // namespace

extern "C" int MPI_Sendrecv(const void* sendbuf, int sendcount,
                            MPI_Datatype sendtype, int dest, int sendtag,
                            void* recvbuf, int recvcount,
                            MPI_Datatype recvtype, int source, int recvtag,
                            MPI_Comm comm, MPI_Status* status) {
  g_sendrecv_calls += 1;
  if (dest != MPI_PROC_NULL) {
    int type_size = 0;
    PMPI_Type_size(sendtype, &type_size);
    g_sendrecv_bytes += static_cast<std::uint64_t>(sendcount) *
                        static_cast<std::uint64_t>(type_size);
  }
  return PMPI_Sendrecv(sendbuf, sendcount, sendtype, dest, sendtag, recvbuf,
                       recvcount, recvtype, source, recvtag, comm, status);
}

namespace {

using lrb::dist::BatchDrawResult;
using lrb::dist::CommLedger;
using lrb::dist::DrawResult;
using lrb::dist::ShardedFitness;

struct Harness {
  int rank = 0;
  std::size_t world = 1;
  std::uint64_t checks = 0;
  std::vector<std::string> failures;

  void check(bool ok, const std::string& what) {
    ++checks;
    if (!ok) failures.push_back(what);
  }
};

/// The analytical bill of one B-draw bidding batch at P ranks.
CommLedger bidding_bill(std::size_t p, std::uint64_t batch) {
  CommLedger bill;
  for (std::uint64_t r = 0; r < lrb::ceil_log2(static_cast<std::uint64_t>(p));
       ++r) {
    bill.charge_round(p, 2 * batch);
  }
  return bill;
}

std::string ledger_str(const CommLedger& l) {
  return "{rounds=" + std::to_string(l.rounds) +
         ",messages=" + std::to_string(l.messages) +
         ",words=" + std::to_string(l.words) +
         ",cp=" + std::to_string(l.critical_path_words) + "}";
}

std::size_t splice_size(std::size_t world, std::size_t per_rank) {
  return world * per_rank + world / 2;  // deliberately not divisible by P
}

// The scenario sweep: shapes that exercise dense, sparse-with-zero-cells,
// single-positive, heavily skewed, and fewer-items-than-ranks shard layouts.
std::vector<double> scenario_fitness(std::size_t which, std::size_t world) {
  switch (which) {
    case 0: {  // dense, mildly varied
      std::vector<double> f(splice_size(world, 64));
      for (std::size_t i = 0; i < f.size(); ++i) {
        f[i] = 1.0 + static_cast<double>(i % 17);
      }
      return f;
    }
    case 1: {  // sparse: 9 of 10 cells are hard zeros
      std::vector<double> f(splice_size(world, 130), 0.0);
      for (std::size_t i = 0; i < f.size(); i += 10) {
        f[i] = 0.5 + static_cast<double>(i % 7);
      }
      return f;
    }
    case 2: {  // single positive cell: every draw must return it
      std::vector<double> f(splice_size(world, 41), 0.0);
      f[f.size() / 2] = 3.0;
      return f;
    }
    case 3: {  // skewed by 12 orders of magnitude
      std::vector<double> f(splice_size(world, 33));
      for (std::size_t i = 0; i < f.size(); ++i) {
        f[i] = (i % 2 == 0) ? 1e-6 : 1e6;
      }
      return f;
    }
    default: {  // fewer items than ranks: trailing shards are empty
      std::vector<double> f(3);
      f[0] = 1.0;
      f[1] = 2.0;
      f[2] = 4.0;
      return f;
    }
  }
}

void run_scenario(Harness& h, std::size_t which,
                  const std::shared_ptr<const lrb::dist::CommBackend>& mpi) {
  const std::vector<double> fitness = scenario_fitness(which, h.world);
  const std::string tag = "scenario " + std::to_string(which) + ": ";
  const ShardedFitness sim(fitness, h.world);
  const ShardedFitness real(fitness, h.world, mpi);
  const std::uint64_t seed = 0xbead5eed + 17 * which;
  constexpr std::size_t kBatch = 12;

  // --- serial deterministic reference --------------------------------------
  lrb::core::DeterministicBidder serial(seed);
  std::vector<std::size_t> expected;
  for (std::size_t t = 0; t < kBatch; ++t) {
    expected.push_back(serial.select(fitness));
  }

  // --- deterministic batch: MPI == simulated == serial, wire == ledger -----
  const WireCount det_start = wire_now();
  const BatchDrawResult det_real =
      lrb::dist::distributed_bidding_deterministic_batch(real, kBatch, seed);
  const WireCount det_wire = wire_since(det_start);
  const BatchDrawResult det_sim =
      lrb::dist::distributed_bidding_deterministic_batch(sim, kBatch, seed);
  h.check(det_real.indices == expected,
          tag + "deterministic winners != serial DeterministicBidder");
  h.check(det_real.indices == det_sim.indices,
          tag + "deterministic winners: mpi != simulated");
  h.check(det_real.comm == det_sim.comm,
          tag + "deterministic ledger: mpi " + ledger_str(det_real.comm) +
              " != simulated " + ledger_str(det_sim.comm));
  h.check(det_real.comm == bidding_bill(h.world, kBatch),
          tag + "deterministic ledger != analytical ceil(log2 P) bill: " +
              ledger_str(det_real.comm));
  h.check(det_wire.calls == det_real.comm.rounds,
          tag + "PMPI sendrecv calls (" + std::to_string(det_wire.calls) +
              ") != ledger rounds (" + std::to_string(det_real.comm.rounds) +
              ")");
  // Per process and per round the batch ships one 2B-word (16B-byte)
  // message, so this process's bytes are rounds * 16 * B — and scaled by P
  // processes that equals ledger.words * 8.
  h.check(det_wire.bytes == det_real.comm.rounds * 16 * kBatch,
          tag + "PMPI bytes (" + std::to_string(det_wire.bytes) +
              ") != rounds * 16B");
  h.check(det_wire.bytes * h.world == det_real.comm.words * 8,
          tag + "PMPI bytes * P != ledger words * 8");

  // --- stream batch: mpi == simulated, same bill ---------------------------
  const WireCount stream_start = wire_now();
  const BatchDrawResult stream_real =
      lrb::dist::distributed_bidding_batch(real, kBatch, seed);
  const WireCount stream_wire = wire_since(stream_start);
  const BatchDrawResult stream_sim =
      lrb::dist::distributed_bidding_batch(sim, kBatch, seed);
  h.check(stream_real.indices == stream_sim.indices,
          tag + "stream winners: mpi != simulated");
  h.check(stream_real.comm == stream_sim.comm,
          tag + "stream ledger: mpi != simulated");
  h.check(stream_real.comm == det_real.comm,
          tag + "stream ledger != deterministic ledger");
  h.check(stream_wire.calls == stream_real.comm.rounds,
          tag + "stream PMPI calls != ledger rounds");

  // --- single draw (the B == 1 case) ---------------------------------------
  const DrawResult one_real = lrb::dist::distributed_bidding(real, seed);
  const DrawResult one_sim = lrb::dist::distributed_bidding(sim, seed);
  h.check(one_real.index == one_sim.index,
          tag + "single-draw winner: mpi != simulated");
  h.check(one_real.comm == one_sim.comm && one_real.comm == bidding_bill(h.world, 1),
          tag + "single-draw ledger != ceil(log2 P) bill");

  // --- cursor: seek/replay across backends ---------------------------------
  lrb::dist::DeterministicDistributedBidder cur_real(seed);
  lrb::dist::DeterministicDistributedBidder cur_sim(seed);
  const DrawResult c0 = cur_real.select(real);
  const DrawResult c1 = cur_real.select(real);
  h.check(c0.index == cur_sim.select(sim).index &&
              c1.index == cur_sim.select(sim).index,
          tag + "cursor singles: mpi != simulated");
  cur_real.seek(0);
  const BatchDrawResult replay = cur_real.select_batch(real, 2);
  h.check(replay.indices[0] == c0.index && replay.indices[1] == c1.index,
          tag + "cursor seek/replay mismatch on mpi backend");
  h.check(c0.index == expected[0] && c1.index == expected[1],
          tag + "cursor winners != serial DeterministicBidder");

  // --- prefix-sum pipeline: scan + reduce + broadcast + publication --------
  const DrawResult pfx_real = lrb::dist::distributed_prefix_sum(real, seed);
  const DrawResult pfx_sim = lrb::dist::distributed_prefix_sum(sim, seed);
  h.check(pfx_real.index == pfx_sim.index,
          tag + "prefix-sum winner: mpi != simulated");
  h.check(pfx_real.comm == pfx_sim.comm,
          tag + "prefix-sum ledger: mpi " + ledger_str(pfx_real.comm) +
              " != simulated " + ledger_str(pfx_sim.comm));

  // Clean-machine pin: none of the above may have touched the retry axes.
  h.check(det_real.comm.retries == 0 && det_real.comm.retried_words == 0 &&
              pfx_real.comm.retries == 0,
          tag + "clean run charged the retry axes");
}

// ---------------------------------------------------------------------------
// The rank-failure drill.  One (victim, failure draw) cell: kill the victim
// mid-stream via an injected fault, recover onto a world-minus-victim
// communicator, and prove the stitched winner sequence bit-identical to the
// unfaulted serial reference.
void run_kill_drill(Harness& h, std::size_t victim, std::uint64_t fail_draw) {
  const std::string tag = "drill victim=" + std::to_string(victim) +
                          " fail_draw=" + std::to_string(fail_draw) + ": ";
  const std::vector<double> fitness = scenario_fitness(0, h.world);
  const std::uint64_t seed = 0xfa112fa1 + 131 * victim + fail_draw;
  constexpr std::size_t kDrillDraws = 12;

  lrb::core::DeterministicBidder serial(seed);
  std::vector<std::size_t> expected;
  for (std::size_t t = 0; t < kDrillDraws; ++t) {
    expected.push_back(serial.select(fitness));
  }

  // Every process runs the same schedule over its own MpiBackend, so the
  // kill fires on all of them at the same exchange, before any wire traffic.
  const lrb::fault::FaultSchedule schedule = lrb::fault::FaultSchedule::parse(
      "kill@" + std::to_string(fail_draw) + ":rank=" + std::to_string(victim));
  auto injector = std::make_shared<const lrb::fault::FaultInjectingBackend>(
      std::make_shared<lrb::dist::MpiBackend>(), schedule);
  ShardedFitness shards(fitness, h.world, injector);
  lrb::dist::DeterministicDistributedBidder cursor(seed);

  std::vector<std::size_t> got;
  bool rank_failed = false;
  std::size_t reported_victim = h.world;
  while (got.size() < kDrillDraws && !rank_failed) {
    try {
      got.push_back(cursor.select(shards).index);
    } catch (const lrb::RankFailedError& failure) {
      rank_failed = true;
      reported_victim = failure.rank();
    }
  }
  h.check(rank_failed, tag + "kill never fired");
  h.check(reported_victim == victim, tag + "wrong victim reported");
  h.check(got.size() == fail_draw, tag + "failure interrupted the wrong draw");
  h.check(cursor.next_draw_id() == fail_draw,
          tag + "failed draw advanced the cursor");
  h.check(std::equal(got.begin(), got.end(), expected.begin()),
          tag + "pre-failure prefix != serial reference");

  // Recovery: survivors split themselves a new world (split keys keep the
  // survivor order, so old rank r becomes r minus one if r > victim), bind a
  // fresh backend to it and reshard onto P-1 ranks.  The victim exits the
  // drill — its prefix was already checked.
  const bool is_victim = static_cast<std::size_t>(h.rank) == victim;
  MPI_Comm survivors = MPI_COMM_NULL;
  MPI_Comm_split(MPI_COMM_WORLD, is_victim ? MPI_UNDEFINED : 0, h.rank,
                 &survivors);
  if (!is_victim) {
    auto remnant = std::make_shared<lrb::dist::MpiBackend>(survivors);
    h.check(remnant->world_size() == h.world - 1,
            tag + "survivor communicator has the wrong size");
    const CommLedger motion = shards.reshard(h.world - 1, remnant);
    h.check(motion.words < fitness.size(),
            tag + "reshard moved the whole vector (not O(moved))");
    while (got.size() < kDrillDraws) {
      got.push_back(cursor.select(shards).index);
    }
    h.check(got == expected,
            tag + "post-recovery winners != unfaulted serial sequence");
    MPI_Comm_free(&survivors);
  }
  // Everyone (victim included) resynchronizes before the next drill cell.
  MPI_Barrier(MPI_COMM_WORLD);
}

}  // namespace

int main(int argc, char** argv) {
  MPI_Init(&argc, &argv);
  Harness h;
  {
    int rank = 0;
    int size = 1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    h.rank = rank;
    h.world = static_cast<std::size_t>(size);
  }

  constexpr std::size_t kScenarios = 5;
  {
    const std::shared_ptr<const lrb::dist::CommBackend> mpi =
        std::make_shared<lrb::dist::MpiBackend>();
    for (std::size_t s = 0; s < kScenarios; ++s) run_scenario(h, s, mpi);
  }

  // The rank-failure drill matrix: first / last / middle victim (deduped) at
  // an early and a late failure draw.  Needs at least one survivor.
  std::size_t drills = 0;
  if (h.world >= 2) {
    std::vector<std::size_t> victims = {0, h.world - 1, h.world / 2};
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    for (const std::size_t victim : victims) {
      for (const std::uint64_t fail_draw : {3u, 7u}) {
        run_kill_drill(h, victim, fail_draw);
        ++drills;
      }
    }
  }

  for (const std::string& f : h.failures) {
    std::fprintf(stderr, "[rank %d] FAIL: %s\n", h.rank, f.c_str());
  }

  // Every rank must agree the suite passed; a single failing rank fails the
  // whole run (and mpirun propagates any nonzero exit).
  int ok = h.failures.empty() ? 1 : 0;
  int all_ok = 0;
  MPI_Allreduce(&ok, &all_ok, 1, MPI_INT, MPI_MIN, MPI_COMM_WORLD);
  std::uint64_t total_calls = 0;
  MPI_Allreduce(&g_sendrecv_calls, &total_calls, 1, MPI_UINT64_T, MPI_SUM,
                MPI_COMM_WORLD);

  if (h.rank == 0) {
    std::printf(
        "{\"schema\":\"lrb-mpi-parity/v2\",\"backend\":\"mpi\","
        "\"world\":%zu,\"scenarios\":%zu,\"kill_drills\":%zu,"
        "\"checks_per_rank\":%llu,"
        "\"pmpi_sendrecv_calls_total\":%llu,\"ok\":%s}\n",
        h.world, kScenarios, drills,
        static_cast<unsigned long long>(h.checks),
        static_cast<unsigned long long>(total_calls),
        all_ok ? "true" : "false");
  }
  MPI_Finalize();
  return all_ok ? 0 : 1;
}
