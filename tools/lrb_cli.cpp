// lrb — command-line roulette wheel selection.
//
// Subcommands (weights come from positional arguments or stdin, one per
// line; `-` forces stdin):
//
//   lrb select   [--draws=1] [--selector=bidding] [--seed=...] w0 w1 ...
//       draw indices with the chosen algorithm; with --histogram prints
//       the empirical frequency table instead of raw indices.
//   lrb sample   --m=K [--seed=...] w0 w1 ...
//       K distinct indices, weighted without replacement.
//   lrb shuffle  [--seed=...] w0 w1 ...
//       full weighted permutation of the positive-weight indices.
//   lrb validate [--draws=100000] [--selector=bidding] [--seed=...] w0 ...
//       chi-square the selector's empirical distribution against F_i.
//   lrb race     [--trials=200] [--seed=...] w0 w1 ...
//       PRAM race round statistics for these weights (Theorem 1 view).
//   lrb dist     [--ranks=4] [--draws=10] [--batch=1] [--seed=...] w0 w1 ...
//       deterministic distributed selection on the simulated machine, with
//       optional chaos: --fault-spec=<spec> injects an explicit fault
//       schedule (e.g. "drop@3:times=2;kill@7:rank=1"), --fault-seed=<u64>
//       generates one deterministically (the canonical spec is echoed to
//       stderr so the run can be replayed via --fault-spec).  Rank failures
//       are survived by elastic resharding; winners are bit-identical to a
//       fault-free run.  The recovery summary prints to stderr; stdout
//       carries only the drawn indices.
//   lrb wheelset [--wheels=K] [--draws=1] [--seed=...] w0 w1 ...
//       multi-tenant arena demo: the weights are split contiguously into K
//       wheels (near-even partition) and every wheel draws --draws times
//       through ONE batched cross-wheel pass (core/wheel_set.hpp).  Prints
//       "wheel winner" pairs; the arena summary goes to stderr.  With
//       --stats the lrb_wheelset_* metric catalog appears in the table.
//   lrb record   --dir=D [--draws=N] [--wheels=K] [--seed=...] w0 w1 ...
//       durable wheelset session via lrb::persist: creates a journal
//       (snapshot + write-ahead draw log) in D, then runs a deterministic
//       step script — draw one winner per step round-robin across K wheels,
//       periodic scripted updates — printing "t wheel winner" per step.
//       --flush=every|batch|off picks the log fsync policy,
//       --checkpoint-every=C commits a fresh snapshot every C steps,
//       --throttle-us=U sleeps between steps (widens the crash window the
//       CI crash job SIGKILLs into).
//   lrb resume   --dir=D [--draws=N] ...
//       restores the journal in D (torn log tails are truncated away),
//       re-prints every committed winner, and continues the SAME script to
//       N steps — stdout is byte-identical to an uninterrupted `lrb
//       record`, which the CI crash job enforces by diffing the two after
//       SIGKILLs at randomized offsets.
//   lrb replay   --dir=D | --snapshot=S --log=L
//       re-executes the logged session from the snapshot and diffs every
//       logged winner against the re-derived one (persist/replay.hpp).
//       Exit 0 when the streams match, 1 on any mismatch — run it under
//       different LRB_SIMD targets to prove an incident replays everywhere.
//   lrb list
//       available selector algorithms.
//
// Global flags (any subcommand):
//   --stats         print the lrb::obs Registry snapshot (counters, gauges,
//                   histograms) as a table after the run
//   --trace=<path>  dump Chrome trace_event JSON of the run's spans to
//                   <path> (same as setting LRB_TRACE=<path>)
// Both are inert — with a warning — when built with -DLRB_OBS=OFF.
//
// Exit status: 0 on success (validate: consistent), 1 on inconsistency,
// 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "lrb.hpp"

namespace {

std::vector<double> read_weights(const lrb::CliArgs& args) {
  std::vector<double> weights;
  bool from_stdin = args.positionals().size() <= 1;
  for (std::size_t i = 1; i < args.positionals().size(); ++i) {
    const std::string& tok = args.positionals()[i];
    if (tok == "-") {
      from_stdin = true;
      continue;
    }
    weights.push_back(std::stod(tok));
  }
  if (from_stdin && weights.empty()) {
    double w;
    while (std::cin >> w) weights.push_back(w);
  }
  return weights;
}

int cmd_list() {
  lrb::Table table({"name", "exact", "parallel", "prebuilds", "description"});
  table.set_align(0, lrb::Align::kLeft);
  table.set_align(4, lrb::Align::kLeft);
  for (const auto kind : lrb::core::all_selector_kinds()) {
    const auto& info = lrb::core::selector_info(kind);
    table.add_row({std::string(info.name), info.exact ? "yes" : "NO",
                   info.parallel ? "yes" : "no", info.prebuilds ? "yes" : "no",
                   std::string(info.description)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_select(const lrb::CliArgs& args, const std::vector<double>& weights) {
  const auto kind =
      lrb::core::parse_selector_kind(args.get_string("selector", "bidding"));
  const std::uint64_t draws = args.get_u64("draws", 1);
  auto selector =
      lrb::core::make_selector(kind, weights, args.get_u64("seed", 1));
  if (args.get_bool("histogram", false)) {
    lrb::stats::SelectionHistogram hist(weights.size());
    for (std::uint64_t t = 0; t < draws; ++t) hist.record(selector->select());
    lrb::Table table({"index", "weight", "F_i", "observed"});
    const auto exact = lrb::core::exact_probabilities(weights);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      table.add_row({std::to_string(i), lrb::format_fixed(weights[i], 4),
                     lrb::format_fixed(exact[i], 6),
                     lrb::format_fixed(hist.frequency(i), 6)});
    }
    table.print(std::cout);
  } else {
    for (std::uint64_t t = 0; t < draws; ++t) {
      std::printf("%zu\n", selector->select());
    }
  }
  return 0;
}

int cmd_sample(const lrb::CliArgs& args, const std::vector<double>& weights) {
  const std::size_t m = args.get_u64("m", 1);
  const auto sample = lrb::core::sample_without_replacement(
      weights, m, args.get_u64("seed", 1));
  for (std::size_t i : sample) std::printf("%zu\n", i);
  return 0;
}

int cmd_shuffle(const lrb::CliArgs& args, const std::vector<double>& weights) {
  const auto order =
      lrb::core::weighted_shuffle(weights, args.get_u64("seed", 1));
  for (std::size_t i : order) std::printf("%zu\n", i);
  return 0;
}

int cmd_validate(const lrb::CliArgs& args, const std::vector<double>& weights) {
  const auto kind =
      lrb::core::parse_selector_kind(args.get_string("selector", "bidding"));
  const std::uint64_t draws = args.get_u64("draws", 100000);
  auto selector =
      lrb::core::make_selector(kind, weights, args.get_u64("seed", 1));
  lrb::stats::SelectionHistogram hist(weights.size());
  for (std::uint64_t t = 0; t < draws; ++t) hist.record(selector->select());
  const auto exact = lrb::core::exact_probabilities(weights);
  const auto gof = lrb::stats::chi_square_gof(hist, exact);
  const bool ok = gof.consistent_with_model(1e-4);
  std::printf("selector=%s draws=%llu chi2=%.3f dof=%.0f p=%.6f tv=%.6f -> %s\n",
              std::string(lrb::core::to_string(kind)).c_str(),
              static_cast<unsigned long long>(draws), gof.statistic, gof.dof,
              gof.p_value,
              lrb::stats::total_variation(hist.frequencies(), exact),
              ok ? "CONSISTENT" : "INCONSISTENT");
  return ok ? 0 : 1;
}

int cmd_race(const lrb::CliArgs& args, const std::vector<double>& weights) {
  const std::uint64_t trials = args.get_u64("trials", 200);
  const std::uint64_t seed = args.get_u64("seed", 1);
  lrb::stats::OnlineMoments rounds;
  lrb::stats::SelectionHistogram hist(weights.size());
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto r =
        lrb::pram::crcw_bidding_selection(weights, seed + 2 * t, seed + 2 * t + 1);
    rounds.add(static_cast<double>(r.rounds));
    hist.record(r.winner);
  }
  const std::size_t k = lrb::count_nonzero(weights);
  std::printf("n=%zu k=%zu trials=%llu\n", weights.size(), k,
              static_cast<unsigned long long>(trials));
  std::printf("race rounds: mean=%.2f sd=%.2f min=%.0f max=%.0f "
              "(Theorem 1 envelope 2*ceil(log2 k) = %.0f)\n",
              rounds.mean(), rounds.stddev(), rounds.min(), rounds.max(),
              k <= 1 ? 1.0 : 2.0 * std::ceil(std::log2(static_cast<double>(k))));
  return 0;
}

int cmd_dist(const lrb::CliArgs& args, const std::vector<double>& weights) {
  const std::size_t ranks = args.get_u64("ranks", 4);
  const std::uint64_t draws = args.get_u64("draws", 10);
  std::size_t batch = args.get_u64("batch", 1);
  if (batch == 0) batch = 1;
  const std::uint64_t seed = args.get_u64("seed", 1);

  // Chaos wiring: an explicit --fault-spec wins; --fault-seed generates a
  // schedule sized to this run's exchange count and echoes its canonical
  // spec so the exact same chaos can be replayed without the seed.
  lrb::fault::FaultSchedule schedule;
  if (args.has("fault-spec")) {
    schedule = lrb::fault::FaultSchedule::parse(args.get_string("fault-spec", ""));
  } else if (args.has("fault-seed")) {
    const std::uint64_t exchanges = (draws + batch - 1) / batch;
    schedule = lrb::fault::FaultSchedule::random(
        args.get_u64("fault-seed", 0), ranks, exchanges == 0 ? 1 : exchanges);
    std::fprintf(stderr, "lrb: fault schedule (replay with --fault-spec): %s\n",
                 schedule.str().c_str());
  }

  std::shared_ptr<const lrb::dist::CommBackend> backend;
  if (!schedule.empty()) {
    backend = lrb::fault::make_fault_injecting_backend(std::move(schedule));
  }
  lrb::dist::ShardedFitness shards(weights, ranks, std::move(backend));
  lrb::dist::DeterministicDistributedBidder cursor(seed);
  const lrb::fault::RecoveryRun run =
      lrb::fault::select_with_recovery(shards, cursor, draws, batch);

  for (std::size_t i : run.indices) std::printf("%zu\n", i);
  for (const lrb::fault::RecoveryEvent& ev : run.recoveries) {
    std::fprintf(stderr,
                 "lrb: recovered from rank %zu failure at draw %llu: "
                 "resharded %zu -> %zu ranks, moved %llu words, "
                 "first post-recovery draw after %.1f us\n",
                 ev.failed_rank, static_cast<unsigned long long>(ev.draw_id),
                 ev.ranks_before, ev.ranks_after,
                 static_cast<unsigned long long>(ev.reshard_comm.words),
                 static_cast<double>(ev.recovery_to_first_draw_ns) / 1000.0);
  }
  std::fprintf(stderr,
               "lrb: dist ranks=%zu->%zu draws=%llu batch=%zu rounds=%llu "
               "words=%llu retries=%llu retried_words=%llu recoveries=%zu\n",
               ranks, shards.ranks(), static_cast<unsigned long long>(draws),
               batch, static_cast<unsigned long long>(run.comm.rounds),
               static_cast<unsigned long long>(run.comm.words),
               static_cast<unsigned long long>(run.comm.retries),
               static_cast<unsigned long long>(run.comm.retried_words),
               run.recoveries.size());
  return 0;
}

int cmd_wheelset(const lrb::CliArgs& args, const std::vector<double>& weights) {
  const std::size_t wheels = args.get_u64("wheels", 4);
  const std::uint64_t draws = args.get_u64("draws", 1);
  if (wheels == 0 || wheels > weights.size()) {
    std::fprintf(stderr,
                 "lrb: wheelset needs 1 <= --wheels <= #weights "
                 "(got --wheels=%zu for %zu weights)\n",
                 wheels, weights.size());
    return 2;
  }
  lrb::core::WheelSet set(args.get_u64("seed", 1));
  // Contiguous near-even partition: the first (items % wheels) wheels take
  // one extra item, so tenant w owns a stable slice of the input.
  const std::size_t base = weights.size() / wheels;
  const std::size_t extra = weights.size() % wheels;
  std::span<const double> rest(weights);
  std::vector<lrb::core::WheelSet::DrawRequest> requests;
  requests.reserve(wheels);
  for (std::size_t w = 0; w < wheels; ++w) {
    const std::size_t n = base + (w < extra ? 1 : 0);
    (void)set.add_wheel(rest.first(n));
    rest = rest.subspan(n);
    requests.push_back({w, draws});
  }
  const auto winners = set.draw_batch(requests);
  std::size_t pos = 0;
  for (std::size_t w = 0; w < wheels; ++w) {
    for (std::uint64_t d = 0; d < draws; ++d) {
      std::printf("%zu %zu\n", w, winners[pos++]);
    }
  }
  std::fprintf(stderr,
               "lrb: wheelset wheels=%zu items=%zu active=%zu draws=%zu "
               "(one batched pass)\n",
               set.wheels(), set.total_items(), set.total_active(),
               winners.size());
  return 0;
}

// --- the durable session script (record / resume) --------------------------
// One deterministic step sequence, a pure function of the step index, shared
// by `record` and `resume`: step t draws one winner from wheel t % K and —
// every 7th step — rewrites one scripted value.  Because resume can re-derive
// the whole script, its continuation is byte-identical to a run that was
// never interrupted, which is exactly what the CI crash job diffs.

bool script_update_due(std::uint64_t t) { return (t + 1) % 7 == 0; }

double script_update_value(std::uint64_t t) {
  return 0.5 + 0.25 * static_cast<double>(t % 13);
}

/// Runs script steps [from, to) against the journal, printing one
/// "t wheel winner" line per step.
void run_script_steps(lrb::persist::WheelJournal& journal, std::uint64_t from,
                      std::uint64_t to, std::uint64_t checkpoint_every,
                      std::uint64_t throttle_us) {
  const std::size_t wheels = journal.wheels().wheels();
  for (std::uint64_t t = from; t < to; ++t) {
    const std::size_t wheel = static_cast<std::size_t>(t % wheels);
    const auto winners = journal.draw(wheel, 1);
    std::printf("%llu %zu %llu\n", static_cast<unsigned long long>(t), wheel,
                static_cast<unsigned long long>(winners[0]));
    std::fflush(stdout);
    if (script_update_due(t)) {
      const std::size_t item =
          static_cast<std::size_t>(t) % journal.wheels().size(wheel);
      journal.update(wheel, item, script_update_value(t));
    }
    if (checkpoint_every > 0 && (t + 1) % checkpoint_every == 0) {
      journal.checkpoint();
    }
    if (throttle_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(throttle_us));
    }
  }
}

lrb::persist::DrawLogConfig parse_flush(const lrb::CliArgs& args) {
  lrb::persist::DrawLogConfig config;
  const std::string policy = args.get_string("flush", "every");
  if (policy == "every") {
    config.policy = lrb::persist::FlushPolicy::kEveryRecord;
  } else if (policy == "batch") {
    config.policy = lrb::persist::FlushPolicy::kBatch;
    config.batch_records = args.get_u64("flush-batch", 64);
  } else if (policy == "off") {
    config.policy = lrb::persist::FlushPolicy::kNone;
  } else {
    throw lrb::InvalidArgumentError(
        "--flush must be every, batch, or off (got \"" + policy + "\")");
  }
  return config;
}

int cmd_record(const lrb::CliArgs& args, const std::vector<double>& weights) {
  const std::string dir = args.get_string("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "lrb: record needs --dir=<journal directory>\n");
    return 2;
  }
  const std::uint64_t draws = args.get_u64("draws", 100);
  const std::size_t wheels = args.get_u64("wheels", 4);
  if (wheels == 0 || wheels > weights.size()) {
    std::fprintf(stderr,
                 "lrb: record needs 1 <= --wheels <= #weights "
                 "(got --wheels=%zu for %zu weights)\n",
                 wheels, weights.size());
    return 2;
  }
  lrb::core::WheelSet set(args.get_u64("seed", 1));
  const std::size_t base = weights.size() / wheels;
  const std::size_t extra = weights.size() % wheels;
  std::span<const double> rest(weights);
  for (std::size_t w = 0; w < wheels; ++w) {
    const std::size_t n = base + (w < extra ? 1 : 0);
    (void)set.add_wheel(rest.first(n));
    rest = rest.subspan(n);
  }
  std::filesystem::create_directories(dir);
  lrb::persist::WheelJournal journal = lrb::persist::WheelJournal::create(
      dir, std::move(set), parse_flush(args));
  run_script_steps(journal, 0, draws, args.get_u64("checkpoint-every", 0),
                   args.get_u64("throttle-us", 0));
  journal.sync();
  std::fprintf(stderr, "lrb: record dir=%s steps=%llu records=%llu\n",
               dir.c_str(), static_cast<unsigned long long>(draws),
               static_cast<unsigned long long>(journal.records()));
  return 0;
}

int cmd_resume(const lrb::CliArgs& args) {
  const std::string dir = args.get_string("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "lrb: resume needs --dir=<journal directory>\n");
    return 2;
  }
  const std::uint64_t draws = args.get_u64("draws", 100);
  lrb::persist::ResumedWheelJournal resumed =
      lrb::persist::WheelJournal::resume(dir, parse_flush(args));
  lrb::persist::WheelJournal& journal = resumed.journal;
  const std::size_t wheels = journal.wheels().wheels();
  if (resumed.torn_tail) {
    std::fprintf(stderr,
                 "lrb: resume dropped a torn log tail of %llu bytes "
                 "(mid-append crash; the frame was never acknowledged)\n",
                 static_cast<unsigned long long>(resumed.dropped_bytes));
  }

  // Re-announce the committed stream: winner i belongs to script step i.
  const std::uint64_t done = resumed.winners.size();
  for (std::uint64_t t = 0; t < done; ++t) {
    std::printf("%llu %zu %llu\n", static_cast<unsigned long long>(t),
                static_cast<std::size_t>(t % wheels),
                static_cast<unsigned long long>(resumed.winners[t]));
  }
  std::fflush(stdout);

  // A crash (or an unsynced-tail loss) between a step's draw record and its
  // update record leaves the draw committed but the scripted update
  // missing.  The script is deterministic, so compare the logged update
  // count against what the script owes for `done` completed steps and
  // re-apply the one that can be missing (the log is strictly ordered, so
  // at most the last due step's update was torn off).
  std::uint64_t logged_updates = 0;
  for (const lrb::persist::Record& r : lrb::persist::read_draw_log(
           lrb::persist::WheelJournal::log_path(dir)).records) {
    logged_updates += std::holds_alternative<lrb::persist::WheelUpdateRecord>(r);
  }
  std::uint64_t owed_updates = 0;
  for (std::uint64_t t = 0; t < done; ++t) {
    owed_updates += script_update_due(t);
  }
  if (logged_updates < owed_updates) {
    std::uint64_t t = done;  // largest due step < done
    while (t > 0 && !script_update_due(--t)) {
    }
    const std::size_t wheel = static_cast<std::size_t>(t % wheels);
    const std::size_t item =
        static_cast<std::size_t>(t) % journal.wheels().size(wheel);
    journal.update(wheel, item, script_update_value(t));
    std::fprintf(stderr,
                 "lrb: resume re-applied the torn-off update of step %llu\n",
                 static_cast<unsigned long long>(t));
  }

  run_script_steps(journal, done, draws > done ? draws : done,
                   args.get_u64("checkpoint-every", 0),
                   args.get_u64("throttle-us", 0));
  journal.sync();
  std::fprintf(stderr, "lrb: resume dir=%s recovered=%llu total=%llu\n",
               dir.c_str(), static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(draws > done ? draws : done));
  return 0;
}

int cmd_replay(const lrb::CliArgs& args) {
  std::string snapshot = args.get_string("snapshot", "");
  std::string log = args.get_string("log", "");
  const std::string dir = args.get_string("dir", "");
  if (!dir.empty()) {
    if (snapshot.empty()) {
      snapshot = lrb::persist::WheelJournal::snapshot_path(dir);
    }
    if (log.empty()) log = lrb::persist::WheelJournal::log_path(dir);
  }
  if (snapshot.empty() || log.empty()) {
    std::fprintf(stderr,
                 "lrb: replay needs --dir=D or --snapshot=S --log=L\n");
    return 2;
  }
  const lrb::persist::ReplayReport report =
      lrb::persist::replay(snapshot, log);
  for (const lrb::persist::ReplayMismatch& m : report.first_mismatches) {
    std::fprintf(stderr,
                 "lrb: replay MISMATCH at draw %llu: logged %llu, "
                 "re-derived %llu\n",
                 static_cast<unsigned long long>(m.draw_ordinal),
                 static_cast<unsigned long long>(m.logged),
                 static_cast<unsigned long long>(m.replayed));
  }
  std::fprintf(stderr,
               "lrb: replay records=%llu draws=%llu updates=%llu "
               "reshards=%llu checkpoints=%llu mismatches=%llu%s -> %s\n",
               static_cast<unsigned long long>(report.records),
               static_cast<unsigned long long>(report.draws),
               static_cast<unsigned long long>(report.updates),
               static_cast<unsigned long long>(report.reshards),
               static_cast<unsigned long long>(report.checkpoints),
               static_cast<unsigned long long>(report.mismatches),
               report.torn_tail ? " (torn tail dropped)" : "",
               report.clean() ? "CLEAN" : "MISMATCH");
  return report.clean() ? 0 : 1;
}

void usage() {
  std::fprintf(stderr,
               "usage: lrb <select|sample|shuffle|validate|race|dist|wheelset|"
               "record|resume|replay|list> [options] [weights... | -]\n"
               "dist flags: --ranks --draws --batch --seed --fault-seed=<u64> "
               "--fault-spec=<spec>\n"
               "wheelset flags: --wheels=<K> --draws=<per wheel> --seed\n"
               "record flags: --dir=<D> --draws --wheels --seed "
               "--flush=every|batch|off --checkpoint-every --throttle-us\n"
               "resume flags: --dir=<D> --draws (continues the record script; "
               "output is byte-identical to an uninterrupted record)\n"
               "replay flags: --dir=<D> | --snapshot=<S> --log=<L> "
               "(exit 0 iff every logged winner re-derives)\n"
               "global flags: --stats (metrics table after the run), "
               "--trace=<path> (Chrome trace JSON)\n"
               "run `lrb list` to see the selector algorithms.\n");
}

#if defined(LRB_OBS_ENABLED)

/// Renders the global Registry snapshot through common/table.hpp: counters
/// and gauges as plain values, histograms with their exact count/mean and
/// the log2-resolution tail quantiles.
void print_stats() {
  const lrb::obs::Snapshot snap = lrb::obs::Registry::global().snapshot();
  if (snap.empty()) {
    std::fprintf(stderr, "lrb: no metrics recorded\n");
    return;
  }
  lrb::Table table({"metric", "type", "value", "mean", "p50", "p99", "p999",
                    "max"});
  table.set_align(0, lrb::Align::kLeft);
  table.set_align(1, lrb::Align::kLeft);
  for (const auto& [name, value] : snap.counters) {
    table.add_row({name, "counter", lrb::format_count(value), "", "", "", "",
                   ""});
  }
  for (const auto& [name, value] : snap.gauges) {
    table.add_row({name, "gauge", std::to_string(value), "", "", "", "", ""});
  }
  for (const auto& [name, h] : snap.histograms) {
    table.add_row({name, "histogram", lrb::format_count(h.count),
                   lrb::format_fixed(h.mean(), 1),
                   lrb::format_fixed(h.percentile(0.50), 0),
                   lrb::format_fixed(h.percentile(0.99), 0),
                   lrb::format_fixed(h.percentile(0.999), 0),
                   h.count == 0 ? "" : lrb::format_count(h.max)});
  }
  table.print(std::cout);
}

#endif  // LRB_OBS_ENABLED

/// Applies --trace before the run; returns whether --stats should print
/// after it.  Under -DLRB_OBS=OFF both flags warn instead of silently doing
/// nothing — an operator asking for metrics should learn why there are none.
bool handle_obs_flags(const lrb::CliArgs& args) {
  const bool want_stats = args.get_bool("stats", false);
#if defined(LRB_OBS_ENABLED)
  if (args.has("trace")) lrb::obs::trace_enable(args.get_string("trace", ""));
#else
  if (want_stats || args.has("trace")) {
    std::fprintf(stderr,
                 "lrb: built with -DLRB_OBS=OFF; --stats/--trace are inert\n");
  }
#endif
  return want_stats;
}

void finish_obs(bool want_stats) {
#if defined(LRB_OBS_ENABLED)
  // Flush eagerly so the trace file exists even on exception exit paths
  // (atexit still rewrites it with any later events).
  lrb::obs::trace_flush();
  if (want_stats) print_stats();
#else
  static_cast<void>(want_stats);
#endif
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const lrb::CliArgs args(argc, argv);
    if (args.positionals().empty()) {
      usage();
      return 2;
    }
    const std::string& cmd = args.positionals()[0];
    const bool want_stats = handle_obs_flags(args);
    if (cmd == "list") return cmd_list();
    // resume and replay read their state from disk, not from weights.
    if (cmd == "resume" || cmd == "replay") {
      const int rc = cmd == "resume" ? cmd_resume(args) : cmd_replay(args);
      finish_obs(want_stats);
      return rc;
    }
    const auto weights = read_weights(args);
    if (weights.empty()) {
      std::fprintf(stderr, "lrb: no weights given (args or stdin)\n");
      return 2;
    }
    int rc = 2;
    if (cmd == "select") rc = cmd_select(args, weights);
    else if (cmd == "sample") rc = cmd_sample(args, weights);
    else if (cmd == "shuffle") rc = cmd_shuffle(args, weights);
    else if (cmd == "validate") rc = cmd_validate(args, weights);
    else if (cmd == "race") rc = cmd_race(args, weights);
    else if (cmd == "dist") rc = cmd_dist(args, weights);
    else if (cmd == "wheelset") rc = cmd_wheelset(args, weights);
    else if (cmd == "record") rc = cmd_record(args, weights);
    else {
      usage();
      return 2;
    }
    finish_obs(want_stats);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lrb: %s\n", e.what());
    return 2;
  }
}
