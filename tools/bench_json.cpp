// bench_json — the repo's perf trajectory, as a machine-readable artifact.
//
// Runs the sweeps the batched hot path is accountable for and emits one JSON
// document (schema "lrb-bench-selection/v8", default BENCH_selection.json)
// that future PRs can regress against:
//
//   * serial_draw_many — n in {1e4, 1e6} x {dense, sparse} x m: ns/draw of a
//     loop of m select_bidding() calls vs one draw_many() batch vs one
//     alias-table build + m O(1) draws vs the counter-based deterministic
//     batch, with the draw_many and deterministic columns timed on BOTH the
//     best SIMD dispatch target and forced-scalar dispatch — the simd_*
//     speedup columns are the vector engine's report card, philox_cost_* the
//     price of the P-invariant replay contract;
//   * crossover — per (n, density): the measured bidding-vs-alias break-even
//     batch size m* (from the build/per-draw split of the timed totals) and
//     the implied kAliasCrossover factor n / (m* k) the heuristic in
//     core/batch.hpp is calibrated from;
//   * distributed_batch / deterministic_parity — unchanged from v3: the
//     CommLedger invariants and the end-to-end P-invariance contract;
//   * obs_overhead — ns/draw of the hot batched path at the headline shapes,
//     stamped with whether the lrb::obs flight recorder was compiled in.
//     The <= 2% instrumentation-tax contract spans TWO builds (-DLRB_OBS=ON
//     vs OFF), so a single run only records its side; CI's obs-overhead job
//     builds both, runs `bench_json --obs-overhead` in each, and diffs with
//     --compare --sections=obs_overhead --timing=enforce
//     --max-regression=0.02;
//   * fault_recovery — the price of surviving a rank failure: at each benched
//     P, a FaultInjectingBackend kills one rank mid-stream, the recovery
//     driver reshards onto P-1 and resumes, and the row records the reshard
//     wall time, the recovery-to-first-draw latency, the O(moved) word bill,
//     and whether the resumed sequence stayed bit-identical to serial (an
//     invariant, enforced in --quick too);
//   * wheelset — the multi-tenant regime (core/wheel_set.hpp): K small
//     wheels, one batched cross-wheel draw pass vs a loop of per-wheel
//     batch_select_deterministic() calls, over n in [8, 4096] x K in
//     [1e4, 1e6].  Bit-exactness of the batched pass against the per-wheel
//     serial reference is an invariant at every shape (enforced in --quick
//     too); the >= 3x speedup target lives where the arena exists to win —
//     the small-n rows (n = 8, K >= 1e4, B = 1), where the loop's per-call
//     overhead dominates — and is enforced there in full mode on vector
//     dispatch (the same simd_vector_active gate as the simd_* targets:
//     forced-scalar machines land near 2.3x because the keyed Philox tile
//     fill has no lanes to fill);
//   * persist — the durability tax (src/persist): snapshot write and
//     read+reconstruct wall time (us and MB/s) for WheelSet arenas at a few
//     state sizes, and draw-log append ns/record at each flush policy
//     (every record, batch=64, off — the fsync-bound / amortized / in-page-
//     cache price points).  Every snapshot row also restores its bytes on
//     every available dispatch target and checks the restored arena
//     continues the live winner stream bit-identically — folded into the
//     restore_bit_exact_everywhere invariant (enforced in --quick too).
//
// The full run (default) also enforces the acceptance invariants — draw_many
// >= 2x the serial loop and the SIMD engine >= 1.5x forced-scalar at
// n = 1e6, m = 1024 dense; the deterministic philox_cost reduced >= 25% by
// the SIMD kernels; the batched wheelset pass >= 3x the per-wheel loop at
// n = 8 (vector dispatch) and bit-exact everywhere; the exact ledger/parity
// facts at every P — and exits non-zero when a regression broke them.  --quick shrinks every dimension to
// smoke-test scale (seconds; used by CTest and the bench-smoke CI job) and
// skips only the timing-based assertions.
//
// Compare mode — the machine-readable regression diff CI runs instead of
// ad-hoc scripts:
//
//   bench_json --compare=old.json new.json [--max-regression=0.10]
//              [--timing=enforce|report] [--sections=invariants,serial,...]
//
// diffs the invariant blocks (any true -> false is fatal in both modes) and
// the matching *_ns_per_draw / *_us cells of the timing sections, rows keyed
// by (n, density, m) — or (n, density, p) for fault_recovery rows — (ratio
// > 1 + max-regression is fatal under --timing=enforce; --timing=report
// prints ratios without failing, for cross-machine diffs like CI-runner vs
// committed baseline).  By default every known section present in BOTH
// artifacts is compared — a missing section (e.g. no obs_overhead in a
// pre-v5 baseline, no fault_recovery in a pre-v6 one, no wheelset in a
// pre-v7 one, no persist in a pre-v8 one) is skipped with a note;
// --sections=... restricts the diff to exactly the named sections
// (invariants, serial, obs_overhead, fault_recovery, wheelset, persist) and
// then a missing one is an error.
//
// Schema history: v2 added the deterministic columns/parity, v3 the backend
// stamps; v4 adds the top-level "simd" object (best target, available
// targets), per-serial-row simd_target / draw_many_scalar_ns_per_draw /
// deterministic_scalar_ns_per_draw / simd_speedup_draw_many /
// simd_speedup_deterministic / philox_cost_scalar_dispatch, the "crossover"
// array, and the simd_* invariants; v5 adds the top-level "obs" object
// ({"compiled": bool} — deliberately NOT an invariant, so ON and OFF
// artifacts stay comparable) and the "obs_overhead" array — purely additive
// over v4; v6 adds the "fault_recovery" array (per-P reshard wall time,
// recovery-to-first-draw latency, moved-words bill, bit-exactness after a
// mid-stream kill) and the fault_recovery_bit_exact_everywhere invariant —
// purely additive over v5; v7 adds the "wheelset" array (rows keyed by
// (n, density, wheels, b): loop vs arena ns/draw, speedup, bit-exactness),
// the wheelset_* invariants, and small-n crossover rows (n in {256, 1024,
// 4096} dense — the data core/batch.hpp's two-regime alias_crossover_for()
// is fitted from) — purely additive over v6; v8 adds the "persist" array
// (snapshot write/restore us + MB/s rows keyed by op/n, log-append
// ns/record rows keyed by op/flush/n) and the restore_bit_exact_everywhere
// invariant — purely additive over v7.
//
// Usage: bench_json [--quick] [--reps=3] [--out=BENCH_selection.json]
//        bench_json --obs-overhead [--reps=9] [--out=BENCH_obs_overhead.json]
//        bench_json --compare=old.json new.json [--max-regression=0.10]
//                   [--timing=enforce|report] [--sections=serial,...]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/alias_table.hpp"
#include "core/batch.hpp"
#include "core/deterministic.hpp"
#include "core/draw_many.hpp"
#include "core/logarithmic_bidding.hpp"
#include "core/wheel_set.hpp"
#include "dist/backend.hpp"
#include "dist/selection.hpp"
#include "fault/injecting_backend.hpp"
#include "fault/recovery.hpp"
#include "fault/schedule.hpp"
#include "json_read.hpp"
#include "persist/draw_log.hpp"
#include "persist/snapshot.hpp"
#include "rng/xoshiro256.hpp"
#include "simd/dispatch.hpp"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON emitter: enough structure for nested objects/arrays, nothing
// the container doesn't already have.
class Json {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array(const std::string& key) { item(); out_ += quote(key) + ":["; fresh_ = true; }
  void end_array() { out_ += ']'; fresh_ = false; }
  void begin_object(const std::string& key) { item(); out_ += quote(key) + ":{"; fresh_ = true; }

  void field(const std::string& key, const std::string& value) {
    item();
    out_ += quote(key) + ":" + quote(value);
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    item();
    // JSON has no inf/nan literal; a non-finite cell (e.g. an unbounded
    // crossover fit) must become null or the artifact breaks every parser
    // downstream, --compare included (which skips non-number cells).
    if (!std::isfinite(value)) {
      out_ += quote(key) + ":null";
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out_ += quote(key) + ":" + buf;
  }
  void field(const std::string& key, std::uint64_t value) {
    item();
    out_ += quote(key) + ":" + std::to_string(value);
  }
  void field(const std::string& key, bool value) {
    item();
    out_ += quote(key) + ":" + (value ? "true" : "false");
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  static std::string quote(const std::string& s) { return "\"" + s + "\""; }
  void item() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }
  void open(char c) {
    item();
    out_ += c;
    fresh_ = true;
  }
  void close(char c) {
    out_ += c;
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

// ---------------------------------------------------------------------------
// Serial sweep.

std::vector<double> make_fitness(std::size_t n, bool dense) {
  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; i += dense ? 1 : 10) {
    fitness[i] = 1.0 + static_cast<double>(i % 17);
  }
  return fitness;
}

volatile std::size_t g_sink = 0;  // keeps the timed loops honest

// Every timed cell below is lrb::time_best_of (common/timer.hpp) — the
// repo's one definition of best-of-reps.  The per-rep seed bump and sink
// write land inside the timed region; both are O(1) noise next to the m
// O(n)-or-O(k) draws being measured.

/// Best-of-reps ns/draw of `m_timed` select_bidding() calls.
double time_serial_loop(const std::vector<double>& fitness, std::size_t m_timed,
                        int reps) {
  std::uint64_t rep = 0;
  const double best = lrb::time_best_of(reps, [&] {
    lrb::rng::Xoshiro256StarStar gen(1000 + rep++);
    std::size_t sink = 0;
    for (std::size_t t = 0; t < m_timed; ++t) {
      sink ^= lrb::core::select_bidding(fitness, gen);
    }
    g_sink = g_sink ^ sink;
  });
  return best * 1e9 / static_cast<double>(m_timed);
}

/// Best-of-reps ns/draw of one draw_many() batch (kernel build included) on
/// the CURRENT dispatch target.
double time_draw_many(const std::vector<double>& fitness, std::size_t m,
                      int reps) {
  std::uint64_t rep = 0;
  const double best = lrb::time_best_of(reps, [&] {
    lrb::rng::Xoshiro256StarStar gen(2000 + rep++);
    const auto batch = lrb::core::draw_many(fitness, m, gen);
    g_sink = g_sink ^ batch.back();
  });
  return best * 1e9 / static_cast<double>(m);
}

/// Best-of-reps ns/draw of one alias build + m O(1) draws.
double time_alias(const std::vector<double>& fitness, std::size_t m, int reps) {
  std::uint64_t rep = 0;
  const double best = lrb::time_best_of(reps, [&] {
    lrb::rng::Xoshiro256StarStar gen(3000 + rep++);
    const lrb::core::AliasTable table(fitness);
    std::size_t sink = 0;
    for (std::size_t t = 0; t < m; ++t) sink ^= table.select(gen);
    g_sink = g_sink ^ sink;
  });
  return best * 1e9 / static_cast<double>(m);
}

/// Best-of-reps ns/draw of the counter-based deterministic batch
/// (batch_select_deterministic) over `m_timed` draws, on the CURRENT
/// dispatch target.  Like the serial baseline it is O(k) Philox blocks per
/// draw with no per-batch speed-up from m beyond the hoisted build, so it is
/// timed over a capped draw count and reported per draw.
double time_deterministic(const std::vector<double>& fitness,
                          std::size_t m_timed, int reps) {
  std::uint64_t rep = 0;
  const double best = lrb::time_best_of(reps, [&] {
    const auto batch =
        lrb::core::batch_select_deterministic(fitness, m_timed, 4000 + rep++);
    g_sink = g_sink ^ batch.back();
  });
  return best * 1e9 / static_cast<double>(m_timed);
}

/// Runs `fn()` with the scalar dispatch table forced, restoring the previous
/// target afterwards — the A/B half of every simd_* column.
template <typename Fn>
double timed_on_scalar(Fn&& fn) {
  const lrb::simd::Target previous = lrb::simd::active_target();
  (void)lrb::simd::force_target(lrb::simd::Target::kScalar);
  const double result = fn();
  (void)lrb::simd::force_target(previous);
  return result;
}

// ---------------------------------------------------------------------------
// Obs overhead section.

/// Whether this binary carries the lrb::obs flight recorder.  Stamped into
/// the top-level "obs" object and every obs_overhead row so --compare can
/// tell an ON artifact from an OFF one.
#if defined(LRB_OBS_ENABLED)
constexpr bool kObsCompiled = true;
#else
constexpr bool kObsCompiled = false;
#endif

/// The instrumentation tax, measured: best-of-reps ns/draw of draw_many()
/// at the headline dense shapes.  The <= 2% ON-vs-OFF contract needs two
/// binaries, so one run only records its own side; CI's obs-overhead job
/// diffs the two artifacts (see the header comment).
void emit_obs_overhead(Json& json, bool quick, int reps) {
  struct Shape {
    std::size_t n;
    std::size_t m;
  };
  const std::vector<Shape> shapes = quick
                                        ? std::vector<Shape>{{10'000, 64}}
                                        : std::vector<Shape>{{100'000, 1024},
                                                             {1'000'000, 1024}};
  std::printf("obs overhead sweep (reps=%d, obs_compiled=%s)...\n", reps,
              kObsCompiled ? "true" : "false");
  json.begin_array("obs_overhead");
  for (const Shape& shape : shapes) {
    const std::vector<double> fitness = make_fitness(shape.n, true);
    const double many_ns = time_draw_many(fitness, shape.m, reps);
    json.begin_object();
    json.field("n", static_cast<std::uint64_t>(shape.n));
    json.field("density", "dense");
    json.field("m", static_cast<std::uint64_t>(shape.m));
    json.field("reps", static_cast<std::uint64_t>(reps));
    json.field("draw_many_ns_per_draw", many_ns);
    json.field("obs_compiled", kObsCompiled);
    json.end_object();
    std::printf("  n=%-8zu m=%-5zu draw_many=%9.1f ns/draw\n", shape.n,
                shape.m, many_ns);
  }
  json.end_array();
}

/// Dedicated --obs-overhead mode: the overhead sweep alone, at full scale
/// and higher default reps (the 2% tolerance needs quieter cells than the
/// headline 10%).  Emits a document with an empty invariants block so
/// --compare accepts it; default out path avoids clobbering the committed
/// full artifact.
int run_obs_overhead(const lrb::CliArgs& args) {
  const int reps = static_cast<int>(args.get_u64("reps", 9));
  const std::string out_path =
      args.get_string("out", "BENCH_obs_overhead.json", "LRB_BENCH_OUT");
  Json json;
  json.begin_object();
  json.field("schema", "lrb-bench-selection/v8");
  json.field("generated_by", "tools/bench_json --obs-overhead");
  json.field("backend", std::string(lrb::dist::simulated_backend().name()));
  json.begin_object("simd");
  json.field("target", std::string(lrb::simd::target_name()));
  json.end_object();
  json.begin_object("obs");
  json.field("compiled", kObsCompiled);
  json.end_object();
  json.begin_object("config");
  json.field("mode", "obs-overhead");
  json.field("reps", static_cast<std::uint64_t>(reps));
  json.end_object();
  emit_obs_overhead(json, /*quick=*/false, reps);
  json.begin_object("invariants");
  json.end_object();
  json.end_object();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Persist section: the durability tax (src/persist).

/// Builds a seasoned multi-wheel arena (phase-shifted dense fitness, a few
/// draws and updates so cursors, Kahan carries, and dirty flags are all
/// non-trivial) — the state every persist row snapshots.
lrb::core::WheelSet make_persist_arena(std::size_t wheels, std::size_t n) {
  lrb::core::WheelSet set(17);
  std::vector<double> f(n);
  for (std::size_t w = 0; w < wheels; ++w) {
    for (std::size_t i = 0; i < n; ++i) {
      f[i] = 1.0 + static_cast<double>((i * 13 + w * 7) % 100);
    }
    (void)set.add_wheel(f);
  }
  // Season: advance some cursors and leave a couple of pending repacks.
  std::vector<lrb::core::WheelSet::DrawRequest> warm;
  for (std::size_t w = 0; w < wheels; w += 1 + wheels / 16) {
    warm.push_back({w, 2});
  }
  (void)set.draw_batch(warm);
  set.update(0, 0, 0.0);
  set.update(wheels / 2, n / 2, 3.5);
  return set;
}

/// Snapshot write/restore wall time + MB/s at a few state sizes, draw-log
/// append ns/record at each flush policy, and the restore-side bit-exactness
/// check: the restored arena must continue the live winner stream
/// identically on EVERY available dispatch target (folded into the
/// restore_bit_exact_everywhere invariant, enforced in --quick too).
void emit_persist(Json& json, bool quick, int reps,
                  bool& restore_bit_exact_everywhere) {
  namespace fs = std::filesystem;
  namespace persist = lrb::persist;

  const fs::path dir = fs::temp_directory_path() / "lrb_bench_persist";
  fs::create_directories(dir);
  const std::string snap_path = (dir / "state.snap").string();
  const std::string log_path = (dir / "draws.log").string();

  struct ArenaShape {
    std::size_t wheels;
    std::size_t n;
  };
  const std::vector<ArenaShape> shapes =
      quick ? std::vector<ArenaShape>{{64, 32}}
            : std::vector<ArenaShape>{{1'000, 64},
                                      {10'000, 64},
                                      {100, 4'096}};
  std::printf("persist sweep (reps=%d)...\n", reps);
  json.begin_array("persist");

  for (const ArenaShape& shape : shapes) {
    lrb::core::WheelSet set = make_persist_arena(shape.wheels, shape.n);
    persist::Snapshot snap;
    snap.put_wheel_set(set);
    const std::size_t snap_bytes = snap.encode().size();
    const double mb = static_cast<double>(snap_bytes) / 1e6;

    const double write_s =
        lrb::time_best_of(reps, [&] { snap.write(snap_path); });
    std::size_t restored_items = 0;
    const double restore_s = lrb::time_best_of(reps, [&] {
      const persist::Snapshot loaded = persist::Snapshot::read(snap_path);
      restored_items = loaded.wheel_set().total_items();
    });
    g_sink = g_sink ^ restored_items;

    // Bit-exactness: the live arena continues from the snapshot point; a
    // restore of the same bytes must produce the identical continuation on
    // every dispatch target (the snapshot is taken before the live draws, so
    // both streams start at the same cursors).
    std::vector<lrb::core::WheelSet::DrawRequest> requests;
    requests.reserve(shape.wheels);
    for (std::size_t w = 0; w < shape.wheels; ++w) requests.push_back({w, 2});
    const auto live = set.draw_batch(requests);
    bool exact = true;
    const lrb::simd::Target previous = lrb::simd::active_target();
    for (lrb::simd::Target t :
         {lrb::simd::Target::kScalar, lrb::simd::Target::kAvx2,
          lrb::simd::Target::kAvx512}) {
      if (!lrb::simd::ops_for(t)) continue;
      (void)lrb::simd::force_target(t);
      lrb::core::WheelSet restored =
          persist::Snapshot::read(snap_path).wheel_set();
      if (restored.draw_batch(requests) != live) exact = false;
    }
    (void)lrb::simd::force_target(previous);
    restore_bit_exact_everywhere = restore_bit_exact_everywhere && exact;

    const double write_us = write_s * 1e6;
    const double restore_us = restore_s * 1e6;
    json.begin_object();
    json.field("op", "snapshot");
    json.field("n", static_cast<std::uint64_t>(set.total_items()));
    json.field("density", "dense");
    json.field("wheels", static_cast<std::uint64_t>(shape.wheels));
    json.field("snapshot_bytes", static_cast<std::uint64_t>(snap_bytes));
    json.field("snapshot_write_us", write_us);
    json.field("snapshot_restore_us", restore_us);
    json.field("snapshot_write_mb_per_s", mb / (write_s > 0 ? write_s : 1e-9));
    json.field("snapshot_restore_mb_per_s",
               mb / (restore_s > 0 ? restore_s : 1e-9));
    json.field("restore_bit_exact", exact);
    json.end_object();
    std::printf("  snapshot wheels=%-6zu n=%-5zu bytes=%-9zu write=%9.1f us  "
                "restore=%9.1f us  bit_exact=%s\n",
                shape.wheels, shape.n, snap_bytes, write_us, restore_us,
                exact ? "true" : "false");
  }

  // Log append at each flush policy.  kEveryRecord fsyncs per append — the
  // durability price point — so its record count is kept small; the batched
  // and unsynced policies amortize and are timed over many more records.
  struct LogCase {
    const char* flush;
    persist::FlushPolicy policy;
    std::size_t records;
  };
  const std::vector<LogCase> log_cases = {
      {"every", persist::FlushPolicy::kEveryRecord,
       quick ? std::size_t{64} : std::size_t{256}},
      {"batch64", persist::FlushPolicy::kBatch,
       quick ? std::size_t{512} : std::size_t{8'192}},
      {"off", persist::FlushPolicy::kNone,
       quick ? std::size_t{512} : std::size_t{8'192}},
  };
  for (const LogCase& c : log_cases) {
    persist::WheelDrawRecord rec;
    rec.wheel = 3;
    rec.winners = {1, 4, 1, 5};
    persist::DrawLogConfig config;
    config.policy = c.policy;
    config.batch_records = 64;
    const double total_s = lrb::time_best_of(reps, [&] {
      {
        persist::File f = persist::File::create_truncate(log_path);
      }
      persist::DrawLogWriter writer(log_path, config);
      for (std::size_t i = 0; i < c.records; ++i) writer.append(rec);
      writer.sync();  // every policy pays for durability at the end
    });
    const double append_ns =
        total_s * 1e9 / static_cast<double>(c.records);
    json.begin_object();
    json.field("op", "log_append");
    json.field("flush", c.flush);
    json.field("n", static_cast<std::uint64_t>(c.records));
    json.field("density", "dense");
    json.field("append_ns_per_record", append_ns);
    json.end_object();
    std::printf("  log_append flush=%-8s records=%-6zu %9.1f ns/record\n",
                c.flush, c.records, append_ns);
  }
  json.end_array();

  std::error_code ec;
  fs::remove_all(dir, ec);  // best-effort scratch cleanup
}

// ---------------------------------------------------------------------------
// Compare mode.

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_json: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Key identifying a timing row across artifacts: (n, density, m) for the
/// serial-shaped sections, (n, density, p) for fault_recovery rows (which
/// are keyed by rank count, not batch size), (n, density, wheels, b) for
/// wheelset rows (keyed by tenant count and per-wheel draw count),
/// (op, flush, n) for persist rows (keyed by operation and flush policy).
std::string serial_row_key(const lrb::tools::JsonValue& row) {
  char buf[96];
  if (row.has("op")) {
    std::snprintf(buf, sizeof buf, "op=%s flush=%s n=%.0f",
                  row.at("op").as_string().c_str(),
                  row.has("flush") ? row.at("flush").as_string().c_str() : "-",
                  row.at("n").as_number(-1));
  } else if (row.has("wheels")) {
    std::snprintf(buf, sizeof buf, "n=%.0f density=%s wheels=%.0f b=%.0f",
                  row.at("n").as_number(-1),
                  row.at("density").as_string().c_str(),
                  row.at("wheels").as_number(-1),
                  row.at("b").as_number(-1));
  } else if (row.has("p")) {
    std::snprintf(buf, sizeof buf, "n=%.0f density=%s p=%.0f",
                  row.at("n").as_number(-1),
                  row.at("density").as_string().c_str(),
                  row.at("p").as_number(-1));
  } else {
    std::snprintf(buf, sizeof buf, "n=%.0f density=%s m=%.0f",
                  row.at("n").as_number(-1),
                  row.at("density").as_string().c_str(),
                  row.at("m").as_number(-1));
  }
  return std::string(buf);
}

/// The sections --compare knows how to diff.  "invariants" is the boolean
/// block; the rest are row arrays whose *_ns_per_draw / *_us cells are
/// compared by row key.
const std::vector<std::pair<std::string, std::string>> kTimingSections = {
    {"serial", "serial_draw_many"},
    {"obs_overhead", "obs_overhead"},
    {"fault_recovery", "fault_recovery"},
    {"wheelset", "wheelset"},
    {"persist", "persist"},
};

/// Whether a column name is a timing cell --compare diffs: the per-draw
/// nanosecond columns of the serial-shaped sections, the absolute
/// microsecond columns of the fault_recovery / persist sections, or the
/// per-record append columns of the persist log rows.  (MB/s throughput
/// columns are deliberately NOT diffed — higher is better there, and the
/// matching _us cell already carries the regression signal.)
bool is_timing_column(const std::string& column) {
  if (column.find("_ns_per_draw") != std::string::npos) return true;
  if (column.size() >= 14 &&
      column.compare(column.size() - 14, 14, "_ns_per_record") == 0) {
    return true;
  }
  return column.size() >= 3 &&
         column.compare(column.size() - 3, 3, "_us") == 0;
}

bool known_section(const std::string& name) {
  if (name == "invariants") return true;
  for (const auto& [flag, key] : kTimingSections) {
    if (name == flag) return true;
    static_cast<void>(key);
  }
  return false;
}

/// Parses --sections=a,b,c (empty string -> empty list = default mode).
std::vector<std::string> parse_sections(const std::string& spec) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream in(spec);
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

/// The machine-readable regression diff: invariant-block equality (always
/// fatal on true -> false) + matching timing cells per section (fatal
/// beyond --max-regression under --timing=enforce).  Exit codes: 0 clean, 1
/// regression, 2 unusable input.
int run_compare(const lrb::CliArgs& args) {
  const std::string old_path = args.get_string("compare", "");
  if (old_path.empty() || args.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: bench_json --compare=old.json new.json "
                 "[--max-regression=0.10] [--timing=enforce|report] "
                 "[--sections=invariants,serial,obs_overhead,"
                 "fault_recovery,wheelset,persist]\n");
    return 2;
  }
  const std::string new_path = args.positionals().front();
  const double tolerance = args.get_double("max-regression", 0.10);
  const std::string timing_mode = args.get_string("timing", "enforce");
  if (timing_mode != "enforce" && timing_mode != "report") {
    std::fprintf(stderr, "bench_json: --timing must be enforce|report\n");
    return 2;
  }
  // Default mode (no --sections) diffs every known section present in both
  // artifacts and skips absent ones with a note — a v5 run stays comparable
  // against a pre-obs_overhead baseline.  An explicitly requested section
  // that is missing is an error: CI asking for the obs tax must not pass
  // because the artifact silently lacked the rows.
  const std::vector<std::string> selected =
      parse_sections(args.get_string("sections", ""));
  const bool explicit_sections = !selected.empty();
  for (const std::string& name : selected) {
    if (!known_section(name)) {
      std::fprintf(stderr,
                   "bench_json: unknown section %s (invariants, serial, "
                   "obs_overhead, fault_recovery, wheelset, persist)\n",
                   name.c_str());
      return 2;
    }
  }
  const auto section_selected = [&](const std::string& name) {
    if (!explicit_sections) return true;
    return std::find(selected.begin(), selected.end(), name) != selected.end();
  };

  lrb::tools::JsonValue old_doc, new_doc;
  try {
    old_doc = lrb::tools::parse_json(read_file_or_die(old_path));
    new_doc = lrb::tools::parse_json(read_file_or_die(new_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_json: %s\n", e.what());
    return 2;
  }
  std::printf("compare: old=%s (%s) new=%s (%s)\n", old_path.c_str(),
              old_doc.at("schema").as_string().c_str(), new_path.c_str(),
              new_doc.at("schema").as_string().c_str());

  // --- Invariant block: every invariant the old artifact holds as true
  // must still be true (keys the new run does not compute — e.g. the
  // timing-based ones under --quick — are not compared).
  int invariant_regressions = 0;
  if (section_selected("invariants")) {
    int invariants_held = 0;
    const lrb::tools::JsonValue& old_inv = old_doc.at("invariants");
    const lrb::tools::JsonValue& new_inv = new_doc.at("invariants");
    if (!old_inv.is_object() || !new_inv.is_object()) {
      std::fprintf(stderr, "bench_json: missing invariants block\n");
      return 2;
    }
    for (const auto& [key, old_value] : *old_inv.object) {
      if (!old_value.is_bool() || !old_value.boolean) continue;
      if (!new_inv.has(key)) continue;
      if (new_inv.at(key).as_bool(false)) {
        ++invariants_held;
      } else {
        ++invariant_regressions;
        std::printf("REGRESSED invariant %s: true -> false\n", key.c_str());
      }
    }
    std::printf("invariants: %d held, %d regressed\n", invariants_held,
                invariant_regressions);
  }

  // --- Timing cells: rows matched by key within each selected section;
  // every *_ns_per_draw / *_us column present in both rows is compared as
  // new/old.
  int timing_cells = 0;
  int timing_regressions = 0;
  double worst_ratio = 0.0;
  for (const auto& [flag, array_key] : kTimingSections) {
    if (!section_selected(flag)) continue;
    const bool in_old = old_doc.has(array_key);
    const bool in_new = new_doc.has(array_key);
    if (!in_old || !in_new) {
      if (explicit_sections) {
        std::fprintf(stderr, "bench_json: section %s missing from %s\n",
                     flag.c_str(), in_old ? new_path.c_str() : old_path.c_str());
        return 2;
      }
      std::printf("section %s absent from %s artifact; skipped\n", flag.c_str(),
                  in_old ? "new" : "old");
      continue;
    }
    for (const lrb::tools::JsonValue& old_row :
         old_doc.at(array_key).items()) {
      const std::string key = serial_row_key(old_row);
      for (const lrb::tools::JsonValue& new_row :
           new_doc.at(array_key).items()) {
        if (serial_row_key(new_row) != key) continue;
        for (const auto& [column, old_cell] : *old_row.object) {
          if (!old_cell.is_number() || old_cell.number <= 0.0) continue;
          if (!is_timing_column(column)) continue;
          if (!new_row.has(column) || !new_row.at(column).is_number()) continue;
          const double ratio = new_row.at(column).number / old_cell.number;
          ++timing_cells;
          worst_ratio = std::max(worst_ratio, ratio);
          const bool regressed = ratio > 1.0 + tolerance;
          if (regressed || ratio < 1.0 / (1.0 + tolerance)) {
            std::printf("%s %s %s %s: %.1f -> %.1f (ratio %.3f)\n",
                        regressed ? "REGRESSED" : "improved", flag.c_str(),
                        key.c_str(), column.c_str(), old_cell.number,
                        new_row.at(column).number, ratio);
          }
          if (regressed) ++timing_regressions;
        }
      }
    }
  }
  std::printf("timing: %d cells compared, %d beyond %.0f%% (worst ratio "
              "%.3f, mode=%s)\n",
              timing_cells, timing_regressions, tolerance * 100.0, worst_ratio,
              timing_mode.c_str());

  if (invariant_regressions > 0) {
    std::fprintf(stderr, "bench_json: invariant regression\n");
    return 1;
  }
  if (timing_mode == "enforce" && timing_regressions > 0) {
    std::fprintf(stderr, "bench_json: timing regression beyond %.0f%%\n",
                 tolerance * 100.0);
    return 1;
  }
  std::printf("compare ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  if (args.has("compare")) return run_compare(args);
  if (args.get_bool("obs-overhead", false)) return run_obs_overhead(args);

  const bool quick = args.get_bool("quick", false);
  const int reps = static_cast<int>(args.get_u64("reps", quick ? 1 : 3));
  const std::string out_path =
      args.get_string("out", "BENCH_selection.json", "LRB_BENCH_OUT");

  const std::vector<std::size_t> ns =
      quick ? std::vector<std::size_t>{1'000, 10'000}
            : std::vector<std::size_t>{10'000, 1'000'000};
  const std::vector<std::size_t> ms = quick ? std::vector<std::size_t>{4, 16}
                                            : std::vector<std::size_t>{16, 128, 1024};
  const std::size_t p_max = quick ? 64 : 1024;
  const std::vector<std::size_t> batches =
      quick ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 16, 256};
  const std::size_t dist_n = quick ? 2'000 : 100'000;

  bool speedup_target_met = true;
  bool simd_speedup_target_met = true;
  bool philox_cost_reduced_enough = true;
  bool batched_cheaper_everywhere = true;
  bool rounds_exact_everywhere = true;
  bool det_ledger_parity_everywhere = true;
  bool det_p_invariant_everywhere = true;
  bool fault_recovery_bit_exact_everywhere = true;
  bool wheelset_bit_exact_everywhere = true;
  bool restore_bit_exact_everywhere = true;
  bool wheelset_speedup_target_met = true;
  double wheelset_small_n_speedup =
      std::numeric_limits<double>::infinity();
  double headline_speedup = 0.0;
  double headline_simd_speedup = 0.0;
  double headline_philox_cost = 0.0;
  double headline_philox_cost_scalar = 0.0;

  // Every sweep below runs on the default backend; naming it in the
  // artifact keeps future MPI-sourced benches distinguishable.
  const std::string backend(lrb::dist::simulated_backend().name());
  // The SIMD engine's resolved target — the "best" half of every A/B column
  // below (LRB_SIMD pins it; forced-scalar is always the other half).  When
  // the resolved target IS scalar (no vector hardware, or LRB_SIMD=scalar),
  // the A/B columns are ~1.0 by construction and the simd_* acceptance
  // targets are not meaningful — they are neither emitted nor enforced.
  const std::string simd_target(lrb::simd::target_name());
  const bool simd_vector_active =
      lrb::simd::active_target() != lrb::simd::Target::kScalar;

  Json json;
  json.begin_object();
  json.field("schema", "lrb-bench-selection/v8");
  json.field("generated_by", "tools/bench_json");
  json.field("backend", backend);
  json.begin_object("simd");
  json.field("target", simd_target);
  json.begin_array("available");
  for (lrb::simd::Target t :
       {lrb::simd::Target::kScalar, lrb::simd::Target::kAvx2,
        lrb::simd::Target::kAvx512}) {
    if (const lrb::simd::Ops* ops = lrb::simd::ops_for(t)) {
      json.begin_object();
      json.field("name", ops->name);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  // Build stamp, not an invariant: an OFF artifact must stay comparable
  // against an ON one (that diff IS the overhead measurement).
  json.begin_object("obs");
  json.field("compiled", kObsCompiled);
  json.end_object();
  json.begin_object("config");
  json.field("quick", quick);
  json.field("reps", static_cast<std::uint64_t>(reps));
  json.field("dist_n", dist_n);
  json.end_object();

  // -------------------------------------------------------------- serial --
  std::printf("serial draw_many sweep (reps=%d, simd=%s)...\n", reps,
              simd_target.c_str());
  struct CrossoverRow {
    std::uint64_t n = 0;
    const char* density = "";
    std::uint64_t k = 0;
    double m_star = 0.0;
    double implied_factor = 0.0;
  };
  std::vector<CrossoverRow> crossover_rows;
  json.begin_array("serial_draw_many");
  for (std::size_t n : ns) {
    for (bool dense : {true, false}) {
      const std::vector<double> fitness = make_fitness(n, dense);
      // The serial and deterministic baselines are O(n)/O(k) per draw with
      // no per-batch amortization beyond the build, so they are timed over a
      // capped draw count and reported per draw — and since that cap, not m,
      // fixes the measurement, each distinct cap is timed once per fitness
      // shape rather than redone for every m.
      struct Baseline {
        double serial_ns;
        double det_ns;
        double det_scalar_ns;
      };
      std::vector<std::pair<std::size_t, Baseline>> baseline;
      // Totals for the crossover fit: t(m) = build + m * per_draw.
      std::vector<std::pair<std::size_t, std::pair<double, double>>> totals;
      for (std::size_t m : ms) {
        const std::size_t serial_timed = std::min<std::size_t>(m, quick ? 4 : 32);
        auto cached = std::find_if(baseline.begin(), baseline.end(),
                                   [&](const auto& e) { return e.first == serial_timed; });
        if (cached == baseline.end()) {
          cached = baseline.insert(
              baseline.end(),
              {serial_timed,
               {time_serial_loop(fitness, serial_timed, reps),
                time_deterministic(fitness, serial_timed, reps),
                timed_on_scalar([&] {
                  return time_deterministic(fitness, serial_timed, reps);
                })}});
        }
        const double serial_ns = cached->second.serial_ns;
        const double many_ns = time_draw_many(fitness, m, reps);
        const double many_scalar_ns = timed_on_scalar(
            [&] { return time_draw_many(fitness, m, reps); });
        const double alias_ns = time_alias(fitness, m, reps);
        totals.push_back({m, {many_ns * static_cast<double>(m),
                              alias_ns * static_cast<double>(m)}});
        // The deterministic column: O(k) Philox blocks per draw, capped like
        // the serial baseline.  philox_cost_vs_draw_many is the price of the
        // P-invariant replay contract relative to the stream hot path; the
        // simd_speedup columns are forced-scalar over best-target — what the
        // vector kernels bought on this machine.
        const double det_ns = cached->second.det_ns;
        const double det_scalar_ns = cached->second.det_scalar_ns;
        const double speedup = serial_ns / many_ns;
        const double philox_cost = det_ns / many_ns;
        const double philox_cost_scalar = det_scalar_ns / many_scalar_ns;
        const double simd_speedup_many = many_scalar_ns / many_ns;
        const double simd_speedup_det = det_scalar_ns / det_ns;

        json.begin_object();
        json.field("n", n);
        json.field("density", dense ? "dense" : "sparse_10pct");
        json.field("m", m);
        json.field("simd_target", simd_target);
        json.field("serial_draws_timed", serial_timed);
        json.field("serial_ns_per_draw", serial_ns);
        json.field("draw_many_ns_per_draw", many_ns);
        json.field("draw_many_scalar_ns_per_draw", many_scalar_ns);
        json.field("alias_ns_per_draw", alias_ns);
        json.field("deterministic_draws_timed", serial_timed);
        json.field("deterministic_ns_per_draw", det_ns);
        json.field("deterministic_scalar_ns_per_draw", det_scalar_ns);
        json.field("philox_cost_vs_draw_many", philox_cost);
        json.field("philox_cost_scalar_dispatch", philox_cost_scalar);
        json.field("simd_speedup_draw_many", simd_speedup_many);
        json.field("simd_speedup_deterministic", simd_speedup_det);
        json.field("draw_many_speedup_vs_serial", speedup);
        json.field("auto_strategy_picks",
                   lrb::core::resolve_batch_strategy(fitness, m) ==
                           lrb::core::BatchStrategy::kBidding
                       ? "bidding"
                       : "alias");
        json.end_object();

        std::printf("  n=%-8zu %-12s m=%-5zu serial=%9.1f ns/draw  "
                    "draw_many=%9.1f (scalar %9.1f) ns/draw  alias=%8.1f "
                    "ns/draw  deterministic=%9.1f (scalar %9.1f) ns/draw  "
                    "speedup=%.2fx  simd=%.2fx/%.2fx  philox_cost=%.2fx\n",
                    n, dense ? "dense" : "sparse", m, serial_ns, many_ns,
                    many_scalar_ns, alias_ns, det_ns, det_scalar_ns, speedup,
                    simd_speedup_many, simd_speedup_det, philox_cost);

        if (!quick && n == 1'000'000 && dense && m == 1024) {
          headline_speedup = speedup;
          headline_simd_speedup = simd_speedup_many;
          headline_philox_cost = philox_cost;
          headline_philox_cost_scalar = philox_cost_scalar;
          if (speedup < 2.0) speedup_target_met = false;
          if (simd_vector_active) {
            if (simd_speedup_many < 1.5) simd_speedup_target_met = false;
            if (philox_cost > 0.75 * philox_cost_scalar) {
              philox_cost_reduced_enough = false;
            }
          }
        }
      }
      // Crossover fit from the first/last timed m: per-draw slope and build
      // intercept for bidding and alias, solved for the equal-total m*.
      if (totals.size() >= 2) {
        const auto& [m1, t1] = totals.front();
        const auto& [m2, t2] = totals.back();
        const double dm = static_cast<double>(m2 - m1);
        const double c_bid = (t2.first - t1.first) / dm;
        const double b_bid = t1.first - static_cast<double>(m1) * c_bid;
        const double c_alias = (t2.second - t1.second) / dm;
        const double b_alias = t1.second - static_cast<double>(m1) * c_alias;
        const std::size_t k = lrb::count_nonzero(fitness);
        CrossoverRow row;
        row.n = n;
        row.density = dense ? "dense" : "sparse_10pct";
        row.k = k;
        row.m_star = (c_bid > c_alias)
                         ? std::max(0.0, (b_alias - b_bid) / (c_bid - c_alias))
                         : std::numeric_limits<double>::infinity();
        row.implied_factor =
            (std::isfinite(row.m_star) && row.m_star > 0.0 && k > 0)
                ? static_cast<double>(n) /
                      (row.m_star * static_cast<double>(k))
                : 0.0;
        crossover_rows.push_back(row);
      }
    }
  }
  json.end_array();

  // Small-n crossover rows: the regime the WheelSet exists for, and the data
  // core/batch.hpp's two-regime alias_crossover_for() is fitted from.  Only
  // the bidding/alias totals are needed for the fit, so these rows skip the
  // serial/deterministic baselines the big sweep carries.
  if (!quick) {
    for (std::size_t n : {std::size_t{256}, std::size_t{1'024},
                          std::size_t{4'096}}) {
      const std::vector<double> fitness = make_fitness(n, true);
      const std::size_t m1 = 16;
      const std::size_t m2 = 1'024;
      const double t_bid_1 =
          time_draw_many(fitness, m1, reps) * static_cast<double>(m1);
      const double t_bid_2 =
          time_draw_many(fitness, m2, reps) * static_cast<double>(m2);
      const double t_alias_1 =
          time_alias(fitness, m1, reps) * static_cast<double>(m1);
      const double t_alias_2 =
          time_alias(fitness, m2, reps) * static_cast<double>(m2);
      const double dm = static_cast<double>(m2 - m1);
      const double c_bid = (t_bid_2 - t_bid_1) / dm;
      const double b_bid = t_bid_1 - static_cast<double>(m1) * c_bid;
      const double c_alias = (t_alias_2 - t_alias_1) / dm;
      const double b_alias = t_alias_1 - static_cast<double>(m1) * c_alias;
      const std::size_t k = lrb::count_nonzero(fitness);
      CrossoverRow row;
      row.n = n;
      row.density = "dense";
      row.k = k;
      row.m_star = (c_bid > c_alias)
                       ? std::max(0.0, (b_alias - b_bid) / (c_bid - c_alias))
                       : std::numeric_limits<double>::infinity();
      row.implied_factor =
          (std::isfinite(row.m_star) && row.m_star > 0.0 && k > 0)
              ? static_cast<double>(n) / (row.m_star * static_cast<double>(k))
              : 0.0;
      crossover_rows.push_back(row);
    }
  }

  // The measured break-even the kAuto heuristic is calibrated from: bidding
  // wins while m * k < n / alias_crossover_for(n), so the implied factor
  // column is directly comparable to core/batch.hpp's two-regime table.
  json.begin_array("crossover");
  for (const CrossoverRow& row : crossover_rows) {
    json.begin_object();
    json.field("n", row.n);
    json.field("density", row.density);
    json.field("k", row.k);
    json.field("measured_break_even_m", row.m_star);
    json.field("implied_alias_crossover_factor", row.implied_factor);
    json.field("configured_alias_crossover",
               lrb::core::alias_crossover_for(row.n));
    json.end_object();
    std::printf("  crossover n=%-8llu %-12s k=%-8llu m*=%.0f implied "
                "factor=%.3f (configured %.2f)\n",
                static_cast<unsigned long long>(row.n), row.density,
                static_cast<unsigned long long>(row.k), row.m_star,
                row.implied_factor, lrb::core::alias_crossover_for(row.n));
  }
  json.end_array();

  // ------------------------------------------------------- obs overhead --
  emit_obs_overhead(json, quick, reps);

  // --------------------------------------------------------- distributed --
  std::printf("distributed batch sweep (n=%zu, P=2..%zu)...\n", dist_n, p_max);
  const std::vector<double> dist_fitness = make_fitness(dist_n, false);
  json.begin_array("distributed_batch");
  for (std::size_t p = 2; p <= p_max; p *= 2) {
    const lrb::dist::ShardedFitness shards(dist_fitness, p);
    const auto pfx = lrb::dist::distributed_prefix_sum(shards, 7);
    const std::uint64_t lg = lrb::ceil_log2(p);
    for (std::size_t b : batches) {
      const auto batch = lrb::dist::distributed_bidding_batch(shards, b, 7);
      const auto det =
          lrb::dist::distributed_bidding_deterministic_batch(shards, b, 7);
      const bool rounds_exact = batch.comm.rounds == lg;
      const bool cheaper =
          batch.comm.rounds < b * pfx.comm.rounds &&
          batch.comm.messages < b * pfx.comm.messages &&
          batch.comm.words < b * pfx.comm.words &&
          batch.comm.critical_path_words < b * pfx.comm.critical_path_words;
      // The deterministic batch rides the identical collective: its ledger
      // must EQUAL the stream batch's on every axis, at every (P, B).
      const bool det_parity = det.comm == batch.comm;
      rounds_exact_everywhere = rounds_exact_everywhere && rounds_exact;
      batched_cheaper_everywhere = batched_cheaper_everywhere && cheaper;
      det_ledger_parity_everywhere = det_ledger_parity_everywhere && det_parity;

      json.begin_object();
      json.field("p", p);
      json.field("batch", b);
      json.field("rounds", batch.comm.rounds);
      json.field("rounds_per_draw",
                 static_cast<double>(batch.comm.rounds) / static_cast<double>(b));
      json.field("messages", batch.comm.messages);
      json.field("words", batch.comm.words);
      json.field("critical_path_words", batch.comm.critical_path_words);
      json.field("prefix_rounds_times_b", b * pfx.comm.rounds);
      json.field("prefix_messages_times_b", b * pfx.comm.messages);
      json.field("prefix_words_times_b", b * pfx.comm.words);
      json.field("prefix_critical_path_words_times_b",
                 b * pfx.comm.critical_path_words);
      json.field("det_rounds", det.comm.rounds);
      json.field("det_messages", det.comm.messages);
      json.field("det_words", det.comm.words);
      json.field("det_critical_path_words", det.comm.critical_path_words);
      json.field("rounds_equal_ceil_log2_p", rounds_exact);
      json.field("cheaper_than_b_prefix_all_axes", cheaper);
      json.field("deterministic_ledger_equal_stream", det_parity);
      json.end_object();
    }
  }
  json.end_array();

  // -------------------------------------------------- deterministic parity --
  // The P-invariance contract, executed end to end: the same (seed, draw id)
  // must crown the same winner at every rank count, and that winner is the
  // serial core::DeterministicBidder's.  Exact, cheap, enforced in --quick
  // too — this is the parity suite of the bench-smoke CI job, and since the
  // kernels are SIMD-dispatched it is also a whole-pipeline proof on the
  // resolved target.
  {
    const std::size_t parity_n = quick ? 500 : 10'000;
    const std::size_t parity_draws = quick ? 8 : 64;
    constexpr std::uint64_t kParitySeed = 0xc0ffee;
    const std::vector<double> parity_fitness = make_fitness(parity_n, false);
    std::printf("deterministic parity sweep (n=%zu, %zu draws/P, simd=%s)...\n",
                parity_n, parity_draws, simd_target.c_str());

    lrb::core::DeterministicBidder serial(kParitySeed);
    std::vector<std::size_t> expected;
    for (std::size_t t = 0; t < parity_draws; ++t) {
      expected.push_back(serial.select(parity_fitness));
    }

    json.begin_array("deterministic_parity");
    for (std::size_t p : {1u, 2u, 3u, 7u, 8u, 64u, 1024u}) {
      const lrb::dist::ShardedFitness shards(parity_fitness, p);
      const auto det = lrb::dist::distributed_bidding_deterministic_batch(
          shards, parity_draws, kParitySeed);
      bool identical = det.indices.size() == expected.size();
      for (std::size_t t = 0; identical && t < parity_draws; ++t) {
        identical = det.indices[t] == expected[t];
      }
      det_p_invariant_everywhere = det_p_invariant_everywhere && identical;
      json.begin_object();
      json.field("p", static_cast<std::uint64_t>(p));
      json.field("draws", static_cast<std::uint64_t>(parity_draws));
      json.field("backend", backend);
      json.field("simd_target", simd_target);
      json.field("bit_identical_to_serial", identical);
      json.end_object();
    }
    json.end_array();
  }

  // ------------------------------------------------------ fault recovery --
  // The recovery story, timed: at each benched P a FaultInjectingBackend
  // kills one rank mid-stream, select_with_recovery reshards onto P-1 and
  // resumes from the two-integer cursor, and the row prices the event —
  // reshard wall time alone (the pure data-motion half, construction kept
  // outside the timed region), the driver's own recovery-to-first-draw
  // stamp, and the O(moved) word bill.  Bit-exactness of the resumed
  // sequence against the serial DeterministicBidder is an invariant,
  // enforced in --quick too.
  {
    const std::size_t fr_draws = quick ? 16 : 32;
    const std::size_t fail_draw = fr_draws / 2;
    constexpr std::uint64_t kFaultBenchSeed = 0xfa177;
    std::printf("fault recovery sweep (n=%zu, %zu draws, kill@%zu, reps=%d)"
                "...\n",
                dist_n, fr_draws, fail_draw, reps);

    lrb::core::DeterministicBidder serial(kFaultBenchSeed);
    std::vector<std::size_t> expected;
    for (std::size_t t = 0; t < fr_draws; ++t) {
      expected.push_back(serial.select(dist_fitness));
    }

    json.begin_array("fault_recovery");
    for (const std::size_t p : {std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
      const std::size_t victim = p / 2;
      const std::string spec = "kill@" + std::to_string(fail_draw) +
                               ":rank=" + std::to_string(victim);

      // The recovery latency is the driver's steady-clock stamp on the
      // RecoveryEvent; best-of-reps over fresh faulted runs quiets the cell.
      std::uint64_t best_recovery_ns =
          std::numeric_limits<std::uint64_t>::max();
      std::uint64_t moved_words = 0;
      bool bit_exact = true;
      for (int rep = 0; rep < reps; ++rep) {
        auto injector =
            std::make_shared<const lrb::fault::FaultInjectingBackend>(
                nullptr, lrb::fault::FaultSchedule::parse(spec));
        lrb::dist::ShardedFitness shards(dist_fitness, p, injector);
        lrb::dist::DeterministicDistributedBidder cursor(kFaultBenchSeed);
        const lrb::fault::RecoveryRun run =
            lrb::fault::select_with_recovery(shards, cursor, fr_draws);
        bit_exact = bit_exact && run.indices == expected &&
                    run.recoveries.size() == 1;
        if (!run.recoveries.empty()) {
          best_recovery_ns = std::min(
              best_recovery_ns, run.recoveries[0].recovery_to_first_draw_ns);
          moved_words = run.recoveries[0].reshard_comm.words;
        }
      }
      fault_recovery_bit_exact_everywhere =
          fault_recovery_bit_exact_everywhere && bit_exact;

      double best_reshard_s = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < reps; ++rep) {
        lrb::dist::ShardedFitness shards(dist_fitness, p);
        best_reshard_s = std::min(
            best_reshard_s,
            lrb::time_best_of(1, [&] { (void)shards.reshard(p - 1); }));
      }

      const double reshard_us = best_reshard_s * 1e6;
      const double recovery_us =
          static_cast<double>(best_recovery_ns) / 1e3;
      json.begin_object();
      json.field("p", static_cast<std::uint64_t>(p));
      json.field("n", static_cast<std::uint64_t>(dist_n));
      json.field("density", "sparse_10pct");
      json.field("draws", static_cast<std::uint64_t>(fr_draws));
      json.field("fail_draw", static_cast<std::uint64_t>(fail_draw));
      json.field("failed_rank", static_cast<std::uint64_t>(victim));
      json.field("reshard_us", reshard_us);
      json.field("recovery_to_first_draw_us", recovery_us);
      json.field("moved_words", moved_words);
      json.field("bit_exact_after_recovery", bit_exact);
      json.end_object();
      std::printf("  p=%-4zu kill rank %-4zu reshard=%9.1f us  "
                  "recovery_to_first_draw=%9.1f us  moved=%llu words  "
                  "bit_exact=%s\n",
                  p, victim, reshard_us, recovery_us,
                  static_cast<unsigned long long>(moved_words),
                  bit_exact ? "true" : "false");
    }
    json.end_array();
  }

  // ------------------------------------------------------------ wheelset --
  // The multi-tenant arena vs the per-wheel call loop: K small wheels, one
  // batched cross-wheel pass against a loop of batch_select_deterministic()
  // calls at the same seeds.  Bit-exactness of the batched pass against the
  // per-wheel serial reference is checked at every shape and enforced in
  // --quick too; the >= 3x speedup target is taken as the MINIMUM over the
  // n=8, B=1 rows (K from 1e4 to 1e6 — the regime the arena exists for) and
  // enforced in full mode on vector dispatch.
  {
    struct WheelShape {
      std::size_t n;
      std::size_t wheels;
      std::size_t b;
    };
    const std::vector<WheelShape> wheel_shapes =
        quick ? std::vector<WheelShape>{{8, 500, 1}, {64, 100, 2}}
              : std::vector<WheelShape>{{8, 10'000, 1},
                                        {8, 100'000, 1},
                                        {8, 1'000'000, 1},
                                        {8, 10'000, 8},
                                        {64, 10'000, 1},
                                        {64, 100'000, 1},
                                        {512, 10'000, 1},
                                        {4'096, 10'000, 1}};
    std::printf("wheelset sweep (reps=%d, simd=%s)...\n", reps,
                simd_target.c_str());
    json.begin_array("wheelset");
    for (const WheelShape& shape : wheel_shapes) {
      const std::size_t total = shape.wheels * shape.b;
      // Per-wheel dense fitness, phase-shifted so tenants don't alias.
      std::vector<std::vector<double>> tenants;
      tenants.reserve(shape.wheels);
      for (std::size_t w = 0; w < shape.wheels; ++w) {
        std::vector<double> f(shape.n);
        for (std::size_t i = 0; i < shape.n; ++i) {
          f[i] = 1.0 + static_cast<double>((i * 13 + w * 7) % 100);
        }
        tenants.push_back(std::move(f));
      }
      lrb::core::WheelSet set(1);
      std::vector<lrb::core::WheelSet::DrawRequest> requests;
      requests.reserve(shape.wheels);
      for (std::size_t w = 0; w < shape.wheels; ++w) {
        (void)set.add_wheel(tenants[w]);
        requests.push_back({w, shape.b});
      }

      // Bit-exactness first, while the cursors are still at zero: the
      // batched pass must reproduce the per-wheel serial reference winner
      // for winner.
      bool exact = true;
      const auto batched = set.draw_batch(requests);
      for (std::size_t w = 0; w < shape.wheels && exact; ++w) {
        const auto reference = lrb::core::batch_select_deterministic(
            tenants[w], shape.b, set.seed(w));
        for (std::size_t d = 0; d < shape.b; ++d) {
          if (batched[w * shape.b + d] != reference[d]) exact = false;
        }
      }
      wheelset_bit_exact_everywhere = wheelset_bit_exact_everywhere && exact;

      std::vector<std::size_t> sink;
      const double loop_s = lrb::time_best_of(reps, [&] {
        sink.clear();
        for (std::size_t w = 0; w < shape.wheels; ++w) {
          const auto part = lrb::core::batch_select_deterministic(
              tenants[w], shape.b, set.seed(w));
          sink.insert(sink.end(), part.begin(), part.end());
        }
      });
      std::vector<std::size_t> arena_out;
      const double arena_s = lrb::time_best_of(reps, [&] {
        arena_out.clear();
        set.draw_batch_into(requests, arena_out);
      });
      g_sink = g_sink ^ sink.back() ^ arena_out.back();
      const double loop_ns = loop_s * 1e9 / static_cast<double>(total);
      const double arena_ns = arena_s * 1e9 / static_cast<double>(total);
      const double speedup = loop_ns / arena_ns;
      if (!quick && shape.n == 8 && shape.b == 1) {
        wheelset_small_n_speedup =
            std::min(wheelset_small_n_speedup, speedup);
        if (speedup < 3.0) wheelset_speedup_target_met = false;
      }

      json.begin_object();
      json.field("n", static_cast<std::uint64_t>(shape.n));
      json.field("density", "dense");
      json.field("wheels", static_cast<std::uint64_t>(shape.wheels));
      json.field("b", static_cast<std::uint64_t>(shape.b));
      json.field("simd_target", simd_target);
      json.field("loop_ns_per_draw", loop_ns);
      json.field("arena_ns_per_draw", arena_ns);
      json.field("wheelset_speedup_vs_loop", speedup);
      json.field("bit_exact_vs_per_wheel_serial", exact);
      json.end_object();
      std::printf("  n=%-5zu wheels=%-8zu b=%-3zu loop=%9.1f ns/draw  "
                  "arena=%9.1f ns/draw  speedup=%.2fx  bit_exact=%s\n",
                  shape.n, shape.wheels, shape.b, loop_ns, arena_ns, speedup,
                  exact ? "true" : "false");
    }
    json.end_array();
  }

  // ------------------------------------------------------------- persist --
  emit_persist(json, quick, reps, restore_bit_exact_everywhere);

  // ---------------------------------------------------------- invariants --
  json.begin_object("invariants");
  if (!quick) {
    json.field("draw_many_speedup_n1e6_m1024_dense", headline_speedup);
    json.field("speedup_target_2x_met", speedup_target_met);
    json.field("philox_cost_n1e6_m1024_dense", headline_philox_cost);
    json.field("philox_cost_scalar_n1e6_m1024_dense",
               headline_philox_cost_scalar);
    // Emitted only when a vector target resolved: on a scalar-only machine
    // the A/B ratio is ~1.0 and "target met" would be noise either way —
    // absent keys are skipped by --compare, never regressions.
    if (simd_vector_active) {
      json.field("simd_speedup_draw_many_n1e6_m1024_dense",
                 headline_simd_speedup);
      json.field("simd_speedup_target_1_5x_met", simd_speedup_target_met);
      json.field("philox_cost_reduced_25pct_vs_scalar",
                 philox_cost_reduced_enough);
    }
  }
  json.field("batch_rounds_equal_ceil_log2_p_everywhere",
             rounds_exact_everywhere);
  json.field("batched_cheaper_than_b_prefix_everywhere",
             batched_cheaper_everywhere);
  json.field("deterministic_ledger_parity_everywhere",
             det_ledger_parity_everywhere);
  json.field("deterministic_p_invariant_everywhere",
             det_p_invariant_everywhere);
  json.field("fault_recovery_bit_exact_everywhere",
             fault_recovery_bit_exact_everywhere);
  json.field("wheelset_bit_exact_everywhere", wheelset_bit_exact_everywhere);
  json.field("restore_bit_exact_everywhere", restore_bit_exact_everywhere);
  if (!quick) {
    json.field("wheelset_speedup_small_n_min", wheelset_small_n_speedup);
    // Same gate as the simd_* targets: on forced-scalar dispatch the keyed
    // Philox tile fill has no lanes to fill and the arena lands near 2.3x —
    // the 3x contract is the vector engine's, so the key is absent (not
    // false) on scalar-only machines and --compare skips it.
    if (simd_vector_active) {
      json.field("wheelset_speedup_3x_small_n_met",
                 wheelset_speedup_target_met);
    }
  }
  json.end_object();
  json.end_object();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!rounds_exact_everywhere || !batched_cheaper_everywhere) {
    std::fprintf(stderr, "bench_json: batched ledger invariant VIOLATED\n");
    return 1;
  }
  if (!det_ledger_parity_everywhere) {
    std::fprintf(stderr,
                 "bench_json: deterministic ledger parity VIOLATED (the "
                 "deterministic batch must bill exactly the stream batch)\n");
    return 1;
  }
  if (!det_p_invariant_everywhere) {
    std::fprintf(stderr,
                 "bench_json: deterministic P-invariance VIOLATED (same seed "
                 "must crown the serial winners at every rank count)\n");
    return 1;
  }
  if (!fault_recovery_bit_exact_everywhere) {
    std::fprintf(stderr,
                 "bench_json: fault recovery bit-exactness VIOLATED (a "
                 "recovered run must replay the serial winners exactly)\n");
    return 1;
  }
  if (!wheelset_bit_exact_everywhere) {
    std::fprintf(stderr,
                 "bench_json: wheelset bit-exactness VIOLATED (the batched "
                 "cross-wheel pass must reproduce the per-wheel serial "
                 "reference at every shape)\n");
    return 1;
  }
  if (!restore_bit_exact_everywhere) {
    std::fprintf(stderr,
                 "bench_json: restore bit-exactness VIOLATED (a restored "
                 "snapshot must continue the live winner stream exactly on "
                 "every dispatch target)\n");
    return 1;
  }
  if (!quick && !speedup_target_met) {
    std::fprintf(stderr,
                 "bench_json: draw_many speedup target (>= 2x at n=1e6, "
                 "m=1024 dense) MISSED: %.2fx\n",
                 headline_speedup);
    return 1;
  }
  if (!quick && simd_vector_active && !simd_speedup_target_met) {
    std::fprintf(stderr,
                 "bench_json: SIMD draw_many speedup target (>= 1.5x vs "
                 "forced-scalar at n=1e6, m=1024 dense) MISSED: %.2fx\n",
                 headline_simd_speedup);
    return 1;
  }
  if (!quick && simd_vector_active && !philox_cost_reduced_enough) {
    std::fprintf(stderr,
                 "bench_json: deterministic philox_cost reduction target "
                 "(>= 25%% vs forced-scalar) MISSED: %.2fx vs %.2fx\n",
                 headline_philox_cost, headline_philox_cost_scalar);
    return 1;
  }
  if (!quick && simd_vector_active && !wheelset_speedup_target_met) {
    std::fprintf(stderr,
                 "bench_json: wheelset speedup target (>= 3x vs the "
                 "per-wheel call loop at n=8, K>=1e4, B=1) MISSED: min "
                 "%.2fx\n",
                 wheelset_small_n_speedup);
    return 1;
  }
  return 0;
}
