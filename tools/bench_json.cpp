// bench_json — the repo's perf trajectory, as a machine-readable artifact.
//
// Runs the sweeps the batched hot path is accountable for and emits one JSON
// document (schema "lrb-bench-selection/v2", default BENCH_selection.json)
// that future PRs can regress against:
//
//   * serial_draw_many — n in {1e4, 1e6} x {dense, sparse} x m: ns/draw of a
//     loop of m select_bidding() calls vs one draw_many() batch vs one
//     alias-table build + m O(1) draws vs the counter-based deterministic
//     batch (batch_select_deterministic — the `deterministic` selector
//     column, measuring the Philox premium over the xoshiro stream path),
//     plus the break-even batch size the crossover heuristic in
//     core/batch.hpp is calibrated from;
//   * distributed_batch — P in 2..1024 x B: the CommLedger of ONE
//     distributed_bidding_batch(B) against B independent prefix-sum draws —
//     rounds per draw amortize as ceil(log2 P)/B while words stay B x the
//     single-draw bill — plus the deterministic batch's ledger, which must
//     EQUAL the stream batch's (P-invariance costs compute, not words);
//   * deterministic_parity — the P-invariance contract executed end to end:
//     distributed_bidding_deterministic_batch winners at every P in the
//     sweep compared bit-for-bit against serial core::DeterministicBidder.
//
// The full run (default) also enforces the acceptance invariants — draw_many
// >= 2x the serial loop at n = 1e6, m = 1024 dense; the batch ledger exactly
// ceil(log2 P) rounds and cheaper than B x prefix-sum on every axis at every
// P — and exits non-zero when a regression broke them.  --quick shrinks every
// dimension to smoke-test scale (seconds; used by CTest and the bench-smoke
// CI job) and skips only the timing-based assertions: the ledger and
// deterministic-parity invariants are exact and enforced in BOTH modes.
//
// Schema history: v2 adds serial columns deterministic_ns_per_draw /
// deterministic_draws_timed / philox_cost_vs_draw_many, distributed columns
// det_* + deterministic_ledger_equal_stream, and the deterministic_parity
// array + invariants — purely additive over v1.  v3 adds the top-level
// "backend" field (the CommBackend the distributed sweeps ran on — always
// "simulated" here; MPI-sourced numbers come from tools/mpi_parity, which
// stamps "mpi") and repeats it per deterministic_parity row, so harvested
// JSON can never silently mix machines — additive over v2.
//
// Usage: bench_json [--quick] [--reps=3] [--out=BENCH_selection.json]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/alias_table.hpp"
#include "core/batch.hpp"
#include "core/deterministic.hpp"
#include "core/draw_many.hpp"
#include "core/logarithmic_bidding.hpp"
#include "dist/backend.hpp"
#include "dist/selection.hpp"
#include "rng/xoshiro256.hpp"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON emitter: enough structure for nested objects/arrays, nothing
// the container doesn't already have.
class Json {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array(const std::string& key) { item(); out_ += quote(key) + ":["; fresh_ = true; }
  void end_array() { out_ += ']'; fresh_ = false; }
  void begin_object(const std::string& key) { item(); out_ += quote(key) + ":{"; fresh_ = true; }

  void field(const std::string& key, const std::string& value) {
    item();
    out_ += quote(key) + ":" + quote(value);
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    item();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out_ += quote(key) + ":" + buf;
  }
  void field(const std::string& key, std::uint64_t value) {
    item();
    out_ += quote(key) + ":" + std::to_string(value);
  }
  void field(const std::string& key, bool value) {
    item();
    out_ += quote(key) + ":" + (value ? "true" : "false");
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  static std::string quote(const std::string& s) { return "\"" + s + "\""; }
  void item() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }
  void open(char c) {
    item();
    out_ += c;
    fresh_ = true;
  }
  void close(char c) {
    out_ += c;
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

// ---------------------------------------------------------------------------
// Serial sweep.

std::vector<double> make_fitness(std::size_t n, bool dense) {
  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; i += dense ? 1 : 10) {
    fitness[i] = 1.0 + static_cast<double>(i % 17);
  }
  return fitness;
}

volatile std::size_t g_sink = 0;  // keeps the timed loops honest

/// Best-of-reps ns/draw of `m_timed` select_bidding() calls.
double time_serial_loop(const std::vector<double>& fitness, std::size_t m_timed,
                        int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    lrb::rng::Xoshiro256StarStar gen(1000 + static_cast<std::uint64_t>(rep));
    const lrb::WallTimer timer;
    std::size_t sink = 0;
    for (std::size_t t = 0; t < m_timed; ++t) {
      sink ^= lrb::core::select_bidding(fitness, gen);
    }
    best = std::min(best, timer.elapsed_seconds());
    g_sink = g_sink ^ sink;
  }
  return best * 1e9 / static_cast<double>(m_timed);
}

/// Best-of-reps ns/draw of one draw_many() batch (kernel build included).
double time_draw_many(const std::vector<double>& fitness, std::size_t m,
                      int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    lrb::rng::Xoshiro256StarStar gen(2000 + static_cast<std::uint64_t>(rep));
    const lrb::WallTimer timer;
    const auto batch = lrb::core::draw_many(fitness, m, gen);
    best = std::min(best, timer.elapsed_seconds());
    g_sink = g_sink ^ batch.back();
  }
  return best * 1e9 / static_cast<double>(m);
}

/// Best-of-reps ns/draw of one alias build + m O(1) draws.
double time_alias(const std::vector<double>& fitness, std::size_t m, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    lrb::rng::Xoshiro256StarStar gen(3000 + static_cast<std::uint64_t>(rep));
    const lrb::WallTimer timer;
    const lrb::core::AliasTable table(fitness);
    std::size_t sink = 0;
    for (std::size_t t = 0; t < m; ++t) sink ^= table.select(gen);
    best = std::min(best, timer.elapsed_seconds());
    g_sink = g_sink ^ sink;
  }
  return best * 1e9 / static_cast<double>(m);
}

/// Best-of-reps ns/draw of the counter-based deterministic batch
/// (batch_select_deterministic) over `m_timed` draws.  Like the serial
/// baseline it is O(k) Philox blocks per draw with no per-batch speed-up
/// from m beyond the hoisted build, so it is timed over a capped draw count
/// and reported per draw.
double time_deterministic(const std::vector<double>& fitness,
                          std::size_t m_timed, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const lrb::WallTimer timer;
    const auto batch = lrb::core::batch_select_deterministic(
        fitness, m_timed, 4000 + static_cast<std::uint64_t>(rep));
    best = std::min(best, timer.elapsed_seconds());
    g_sink = g_sink ^ batch.back();
  }
  return best * 1e9 / static_cast<double>(m_timed);
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const int reps = static_cast<int>(args.get_u64("reps", quick ? 1 : 3));
  const std::string out_path =
      args.get_string("out", "BENCH_selection.json", "LRB_BENCH_OUT");

  const std::vector<std::size_t> ns =
      quick ? std::vector<std::size_t>{1'000, 10'000}
            : std::vector<std::size_t>{10'000, 1'000'000};
  const std::vector<std::size_t> ms = quick ? std::vector<std::size_t>{4, 16}
                                            : std::vector<std::size_t>{16, 128, 1024};
  const std::size_t p_max = quick ? 64 : 1024;
  const std::vector<std::size_t> batches =
      quick ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 16, 256};
  const std::size_t dist_n = quick ? 2'000 : 100'000;

  bool speedup_target_met = true;
  bool batched_cheaper_everywhere = true;
  bool rounds_exact_everywhere = true;
  bool det_ledger_parity_everywhere = true;
  bool det_p_invariant_everywhere = true;
  double headline_speedup = 0.0;
  double headline_philox_cost = 0.0;

  // Every sweep below runs on the default backend; naming it in the
  // artifact keeps future MPI-sourced benches distinguishable.
  const std::string backend(lrb::dist::simulated_backend().name());

  Json json;
  json.begin_object();
  json.field("schema", "lrb-bench-selection/v3");
  json.field("generated_by", "tools/bench_json");
  json.field("backend", backend);
  json.begin_object("config");
  json.field("quick", quick);
  json.field("reps", static_cast<std::uint64_t>(reps));
  json.field("dist_n", dist_n);
  json.end_object();

  // -------------------------------------------------------------- serial --
  std::printf("serial draw_many sweep (reps=%d)...\n", reps);
  json.begin_array("serial_draw_many");
  for (std::size_t n : ns) {
    for (bool dense : {true, false}) {
      const std::vector<double> fitness = make_fitness(n, dense);
      // The serial and deterministic baselines are O(n)/O(k) per draw with
      // no per-batch amortization beyond the build, so they are timed over a
      // capped draw count and reported per draw — and since that cap, not m,
      // fixes the measurement, each distinct cap is timed once per fitness
      // shape rather than redone for every m.
      std::vector<std::pair<std::size_t, std::pair<double, double>>> baseline;
      for (std::size_t m : ms) {
        const std::size_t serial_timed = std::min<std::size_t>(m, quick ? 4 : 32);
        auto cached = std::find_if(baseline.begin(), baseline.end(),
                                   [&](const auto& e) { return e.first == serial_timed; });
        if (cached == baseline.end()) {
          cached = baseline.insert(
              baseline.end(),
              {serial_timed,
               {time_serial_loop(fitness, serial_timed, reps),
                time_deterministic(fitness, serial_timed, reps)}});
        }
        const double serial_ns = cached->second.first;
        const double many_ns = time_draw_many(fitness, m, reps);
        const double alias_ns = time_alias(fitness, m, reps);
        // The deterministic column: O(k) Philox blocks per draw, capped like
        // the serial baseline.  philox_cost_vs_draw_many is the price of the
        // P-invariant replay contract relative to the stream hot path.
        const double det_ns = cached->second.second;
        const double speedup = serial_ns / many_ns;
        const double philox_cost = det_ns / many_ns;

        json.begin_object();
        json.field("n", n);
        json.field("density", dense ? "dense" : "sparse_10pct");
        json.field("m", m);
        json.field("serial_draws_timed", serial_timed);
        json.field("serial_ns_per_draw", serial_ns);
        json.field("draw_many_ns_per_draw", many_ns);
        json.field("alias_ns_per_draw", alias_ns);
        json.field("deterministic_draws_timed", serial_timed);
        json.field("deterministic_ns_per_draw", det_ns);
        json.field("philox_cost_vs_draw_many", philox_cost);
        json.field("draw_many_speedup_vs_serial", speedup);
        json.field("auto_strategy_picks",
                   lrb::core::resolve_batch_strategy(fitness, m) ==
                           lrb::core::BatchStrategy::kBidding
                       ? "bidding"
                       : "alias");
        json.end_object();

        std::printf("  n=%-8zu %-12s m=%-5zu serial=%9.1f ns/draw  "
                    "draw_many=%9.1f ns/draw  alias=%9.1f ns/draw  "
                    "deterministic=%9.1f ns/draw  speedup=%.2fx  "
                    "philox_cost=%.2fx\n",
                    n, dense ? "dense" : "sparse", m, serial_ns, many_ns,
                    alias_ns, det_ns, speedup, philox_cost);

        if (!quick && n == 1'000'000 && dense && m == 1024) {
          headline_speedup = speedup;
          headline_philox_cost = philox_cost;
          if (speedup < 2.0) speedup_target_met = false;
        }
      }
    }
  }
  json.end_array();

  // --------------------------------------------------------- distributed --
  std::printf("distributed batch sweep (n=%zu, P=2..%zu)...\n", dist_n, p_max);
  const std::vector<double> dist_fitness = make_fitness(dist_n, false);
  json.begin_array("distributed_batch");
  for (std::size_t p = 2; p <= p_max; p *= 2) {
    const lrb::dist::ShardedFitness shards(dist_fitness, p);
    const auto pfx = lrb::dist::distributed_prefix_sum(shards, 7);
    const std::uint64_t lg = lrb::ceil_log2(p);
    for (std::size_t b : batches) {
      const auto batch = lrb::dist::distributed_bidding_batch(shards, b, 7);
      const auto det =
          lrb::dist::distributed_bidding_deterministic_batch(shards, b, 7);
      const bool rounds_exact = batch.comm.rounds == lg;
      const bool cheaper =
          batch.comm.rounds < b * pfx.comm.rounds &&
          batch.comm.messages < b * pfx.comm.messages &&
          batch.comm.words < b * pfx.comm.words &&
          batch.comm.critical_path_words < b * pfx.comm.critical_path_words;
      // The deterministic batch rides the identical collective: its ledger
      // must EQUAL the stream batch's on every axis, at every (P, B).
      const bool det_parity = det.comm == batch.comm;
      rounds_exact_everywhere = rounds_exact_everywhere && rounds_exact;
      batched_cheaper_everywhere = batched_cheaper_everywhere && cheaper;
      det_ledger_parity_everywhere = det_ledger_parity_everywhere && det_parity;

      json.begin_object();
      json.field("p", p);
      json.field("batch", b);
      json.field("rounds", batch.comm.rounds);
      json.field("rounds_per_draw",
                 static_cast<double>(batch.comm.rounds) / static_cast<double>(b));
      json.field("messages", batch.comm.messages);
      json.field("words", batch.comm.words);
      json.field("critical_path_words", batch.comm.critical_path_words);
      json.field("prefix_rounds_times_b", b * pfx.comm.rounds);
      json.field("prefix_messages_times_b", b * pfx.comm.messages);
      json.field("prefix_words_times_b", b * pfx.comm.words);
      json.field("prefix_critical_path_words_times_b",
                 b * pfx.comm.critical_path_words);
      json.field("det_rounds", det.comm.rounds);
      json.field("det_messages", det.comm.messages);
      json.field("det_words", det.comm.words);
      json.field("det_critical_path_words", det.comm.critical_path_words);
      json.field("rounds_equal_ceil_log2_p", rounds_exact);
      json.field("cheaper_than_b_prefix_all_axes", cheaper);
      json.field("deterministic_ledger_equal_stream", det_parity);
      json.end_object();
    }
  }
  json.end_array();

  // -------------------------------------------------- deterministic parity --
  // The P-invariance contract, executed end to end: the same (seed, draw id)
  // must crown the same winner at every rank count, and that winner is the
  // serial core::DeterministicBidder's.  Exact, cheap, enforced in --quick
  // too — this is the parity suite of the bench-smoke CI job.
  {
    const std::size_t parity_n = quick ? 500 : 10'000;
    const std::size_t parity_draws = quick ? 8 : 64;
    constexpr std::uint64_t kParitySeed = 0xc0ffee;
    const std::vector<double> parity_fitness = make_fitness(parity_n, false);
    std::printf("deterministic parity sweep (n=%zu, %zu draws/P)...\n",
                parity_n, parity_draws);

    lrb::core::DeterministicBidder serial(kParitySeed);
    std::vector<std::size_t> expected;
    for (std::size_t t = 0; t < parity_draws; ++t) {
      expected.push_back(serial.select(parity_fitness));
    }

    json.begin_array("deterministic_parity");
    for (std::size_t p : {1u, 2u, 3u, 7u, 8u, 64u, 1024u}) {
      const lrb::dist::ShardedFitness shards(parity_fitness, p);
      const auto det = lrb::dist::distributed_bidding_deterministic_batch(
          shards, parity_draws, kParitySeed);
      bool identical = det.indices.size() == expected.size();
      for (std::size_t t = 0; identical && t < parity_draws; ++t) {
        identical = det.indices[t] == expected[t];
      }
      det_p_invariant_everywhere = det_p_invariant_everywhere && identical;
      json.begin_object();
      json.field("p", static_cast<std::uint64_t>(p));
      json.field("draws", static_cast<std::uint64_t>(parity_draws));
      json.field("backend", backend);
      json.field("bit_identical_to_serial", identical);
      json.end_object();
    }
    json.end_array();
  }

  // ---------------------------------------------------------- invariants --
  json.begin_object("invariants");
  if (!quick) {
    json.field("draw_many_speedup_n1e6_m1024_dense", headline_speedup);
    json.field("speedup_target_2x_met", speedup_target_met);
    json.field("philox_cost_n1e6_m1024_dense", headline_philox_cost);
  }
  json.field("batch_rounds_equal_ceil_log2_p_everywhere",
             rounds_exact_everywhere);
  json.field("batched_cheaper_than_b_prefix_everywhere",
             batched_cheaper_everywhere);
  json.field("deterministic_ledger_parity_everywhere",
             det_ledger_parity_everywhere);
  json.field("deterministic_p_invariant_everywhere",
             det_p_invariant_everywhere);
  json.end_object();
  json.end_object();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!rounds_exact_everywhere || !batched_cheaper_everywhere) {
    std::fprintf(stderr, "bench_json: batched ledger invariant VIOLATED\n");
    return 1;
  }
  if (!det_ledger_parity_everywhere) {
    std::fprintf(stderr,
                 "bench_json: deterministic ledger parity VIOLATED (the "
                 "deterministic batch must bill exactly the stream batch)\n");
    return 1;
  }
  if (!det_p_invariant_everywhere) {
    std::fprintf(stderr,
                 "bench_json: deterministic P-invariance VIOLATED (same seed "
                 "must crown the serial winners at every rank count)\n");
    return 1;
  }
  if (!quick && !speedup_target_met) {
    std::fprintf(stderr,
                 "bench_json: draw_many speedup target (>= 2x at n=1e6, "
                 "m=1024 dense) MISSED: %.2fx\n",
                 headline_speedup);
    return 1;
  }
  return 0;
}
