// A minimal JSON reader for tools/bench_json's --compare mode.
//
// Parses exactly the JSON the repo's benches emit (objects, arrays, strings,
// numbers, booleans, null — no \u escapes beyond pass-through, no comments)
// into an owning tree.  Deliberately tiny: the container bakes in no JSON
// library, and the alternative — regressing bench artifacts through ad-hoc
// python heredocs in CI — is what this file replaces.  Header-only; used by
// tools only, never by the library.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace lrb::tools {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

/// One parsed JSON value.  Lookup helpers return safe defaults for missing
/// keys/wrong kinds, so --compare can probe artifacts of different schema
/// versions without a cascade of presence checks.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member, or a null value when absent / not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    static const JsonValue kNullValue;
    if (!is_object()) return kNullValue;
    const auto it = object->find(key);
    return it == object->end() ? kNullValue : it->second;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && object->find(key) != object->end();
  }

  [[nodiscard]] const JsonArray& items() const {
    static const JsonArray kEmpty;
    return is_array() ? *array : kEmpty;
  }

  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return is_number() ? number : fallback;
  }
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? boolean : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return string; }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    value.object = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      (*value.object)[key.string] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    value.array = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array->push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return value;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': value.string += '"'; break;
          case '\\': value.string += '\\'; break;
          case '/': value.string += '/'; break;
          case 'n': value.string += '\n'; break;
          case 't': value.string += '\t'; break;
          case 'r': value.string += '\r'; break;
          case 'b': value.string += '\b'; break;
          case 'f': value.string += '\f'; break;
          default: fail("unsupported escape");  // \uXXXX never emitted here
        }
        continue;
      }
      value.string += c;
    }
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (consume_literal("true")) {
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value.boolean = false;
      return value;
    }
    fail("bad literal");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete JSON document; throws std::runtime_error on malformed
/// input (a truncated artifact should fail the compare loudly, not quietly
/// diff nothing).
[[nodiscard]] inline JsonValue parse_json(const std::string& text) {
  return detail::JsonParser(text).parse();
}

}  // namespace lrb::tools
