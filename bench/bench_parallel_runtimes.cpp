// Ablation A8 — the same bidding selection across every execution runtime
// the library ships, as a function of lane/thread count:
//
//   serial            : one-thread scan (reference)
//   pool-reduce       : ThreadPool sub-races + tree combine
//   pool-race         : ThreadPool atomic CRCW-style race
//   omp-reduce        : OpenMP critical-combine kernel
//   omp-race          : OpenMP atomic race kernel
//   deterministic     : counter-based (thread-count invariant), pool
//
// All six produce the exact roulette distribution; this bench isolates the
// runtime overheads (pool wakeup, OMP region entry, Philox evaluation).
//
// Usage: bench_parallel_runtimes [--n=262144] [--reps=20] [--csv]
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/deterministic.hpp"
#include "core/logarithmic_bidding.hpp"
#include "core/openmp.hpp"
#include "rng/seed.hpp"
#include "stats/online.hpp"

using lrb::bench::mean_us;

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t n = args.get_u64("n", 262144);
  const std::uint64_t reps = args.get_u64("reps", 20);
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("A8", "execution runtimes for one bidding selection", reps);
  std::printf("n = %zu dense items; OpenMP %savailable (%zu threads); "
              "hardware lanes: %zu\n\n",
              n, lrb::core::openmp_available() ? "" : "NOT ",
              lrb::core::openmp_threads(), lrb::parallel::hardware_lanes());

  std::vector<double> fitness(n);
  for (std::size_t i = 0; i < n; ++i) {
    fitness[i] = 1.0 + static_cast<double>(i % 17);
  }
  lrb::rng::SeedSequence seeds(99);

  lrb::Table table({"lanes", "serial us", "pool-reduce us", "pool-race us",
                    "omp-reduce us", "omp-race us", "deterministic us"});
  for (std::size_t lanes : {1u, 2u, 4u}) {
    lrb::parallel::ThreadPool pool(lanes);
    lrb::core::DeterministicBidder bidder(4242);

    const double t_serial = mean_us(reps, [&](std::uint64_t rep) {
      lrb::rng::Xoshiro256StarStar gen(seeds.child(rep));
      return lrb::core::select_bidding(fitness, gen);
    });
    const double t_reduce = mean_us(reps, [&](std::uint64_t rep) {
      return lrb::core::select_bidding_parallel(pool, fitness,
                                                seeds.subsequence(rep));
    });
    const double t_race = mean_us(reps, [&](std::uint64_t rep) {
      return lrb::core::select_bidding_race(pool, fitness,
                                            seeds.subsequence(rep));
    });
    const double t_omp = mean_us(reps, [&](std::uint64_t rep) {
      return lrb::core::select_bidding_omp(fitness, seeds.child(rep));
    });
    const double t_omp_race = mean_us(reps, [&](std::uint64_t rep) {
      return lrb::core::select_bidding_race_omp(fitness, seeds.child(rep));
    });
    const double t_det = mean_us(reps, [&](std::uint64_t) {
      return bidder.select(pool, fitness);
    });

    table.add_row({std::to_string(lanes), lrb::format_fixed(t_serial, 1),
                   lrb::format_fixed(t_reduce, 1), lrb::format_fixed(t_race, 1),
                   lrb::format_fixed(t_omp, 1), lrb::format_fixed(t_omp_race, 1),
                   lrb::format_fixed(t_det, 1)});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);

  std::printf("\nnote: OMP rows use OMP's own thread count (set "
              "OMP_NUM_THREADS), independent of the lanes column.  The "
              "deterministic row pays ~2x for counter-based Philox bids in "
              "exchange for thread-count-invariant replay.\n");
  return 0;
}
