// Application study A5 — end-to-end effect of the selection rule on
// ant-colony TSP (the paper's motivating workload).
//
// Same instance, same seeds, same AS parameters; only the roulette rule
// changes.  The exact rules (bidding, cdf) explore fitness-proportionately;
// the biased independent roulette over-commits to high-desirability edges
// (it behaves like a semi-greedy rule), which shows up in tour quality
// spread across seeds.
//
// Usage: bench_aco_tsp [--cities=80] [--ants=24] [--iters=60] [--seeds=5]
//        [--csv]
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "aco/ant_system.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "stats/online.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t cities = args.get_u64("cities", 80);
  const std::size_t ants = args.get_u64("ants", 24);
  const std::size_t iters = args.get_u64("iters", 60);
  const std::uint64_t num_seeds = args.get_u64("seeds", 5);
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("A5", "ACO-TSP tour quality by selection rule", 0);
  std::printf("%zu cities, %zu ants, %zu iterations, %llu seeds per rule\n\n",
              cities, ants, iters,
              static_cast<unsigned long long>(num_seeds));

  const auto instance = lrb::aco::random_euclidean_instance(cities, 12345);
  const double nn_len = instance.tour_length(instance.nearest_neighbor_tour(0));
  std::printf("nearest-neighbour baseline: %.2f\n\n", nn_len);

  lrb::Table table({"selection rule", "best", "mean best", "sd", "vs NN %",
                    "selections/s"});
  table.set_align(0, lrb::Align::kLeft);
  for (const auto rule :
       {lrb::aco::SelectionRule::kBidding, lrb::aco::SelectionRule::kCdf,
        lrb::aco::SelectionRule::kIndependent,
        lrb::aco::SelectionRule::kGreedy}) {
    lrb::aco::AntSystemParams params;
    params.num_ants = ants;
    params.iterations = iters;
    params.rule = rule;
    lrb::stats::OnlineMoments best;
    std::uint64_t selections = 0;
    lrb::WallTimer timer;
    for (std::uint64_t s = 0; s < num_seeds; ++s) {
      lrb::aco::AntSystem solver(instance, params);
      const auto result = solver.run(1000 + s);
      best.add(result.best_length);
      selections += result.selections;
    }
    const double elapsed = timer.elapsed_seconds();
    table.add_row(
        {std::string(lrb::aco::to_string(rule)), lrb::format_fixed(best.min(), 2),
         lrb::format_fixed(best.mean(), 2), lrb::format_fixed(best.stddev(), 2),
         lrb::format_fixed(100.0 * best.mean() / nn_len, 1),
         lrb::format_rate(static_cast<double>(selections) / elapsed)});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);

  std::printf("\nreading: exact rules (bidding, cdf) match each other in "
              "quality, as they must — identical selection distribution; "
              "the biased independent rule degenerates toward greedy "
              "behaviour, which usually costs tour quality vs the exact "
              "rules on multimodal instances.\n");
  return 0;
}
