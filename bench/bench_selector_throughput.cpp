// Ablation A1 — single-draw throughput of every selector vs n, for dense
// and sparse (10% non-zero) fitness.  google-benchmark suite.
//
// The trade-off this quantifies: prebuilt structures (alias, binary CDF)
// amortize to O(1)/O(log n) per draw but pay O(n) on every fitness change;
// bidding pays O(n) per draw with zero build cost, and O(k) when sparse.
//
// Usage: bench_selector_throughput [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <vector>

#include "core/alias_table.hpp"
#include "core/baselines.hpp"
#include "core/cdf_selector.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/xoshiro256.hpp"

namespace {

std::vector<double> make_fitness(std::size_t n, bool sparse) {
  std::vector<double> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sparse && i % 10 != 0) {
      f[i] = 0.0;
    } else {
      f[i] = 1.0 + static_cast<double>(i % 13);
    }
  }
  return f;
}

void BM_Bidding(benchmark::State& state) {
  const auto fitness = make_fitness(state.range(0), state.range(1) != 0);
  lrb::rng::Xoshiro256StarStar gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lrb::core::select_bidding(fitness, gen));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LinearCdf(benchmark::State& state) {
  const auto fitness = make_fitness(state.range(0), state.range(1) != 0);
  lrb::rng::Xoshiro256StarStar gen(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lrb::core::select_linear_cdf(fitness, gen));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BinaryCdfDrawOnly(benchmark::State& state) {
  const auto fitness = make_fitness(state.range(0), state.range(1) != 0);
  const lrb::core::CdfSelector sel(fitness);
  lrb::rng::Xoshiro256StarStar gen(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.select(gen));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_AliasDrawOnly(benchmark::State& state) {
  const auto fitness = make_fitness(state.range(0), state.range(1) != 0);
  const lrb::core::AliasTable table(fitness);
  lrb::rng::Xoshiro256StarStar gen(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.select(gen));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StochasticAcceptance(benchmark::State& state) {
  const auto fitness = make_fitness(state.range(0), state.range(1) != 0);
  lrb::rng::Xoshiro256StarStar gen(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lrb::core::select_stochastic_acceptance(fitness, gen, 13.0));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Independent(benchmark::State& state) {
  const auto fitness = make_fitness(state.range(0), state.range(1) != 0);
  lrb::rng::Xoshiro256StarStar gen(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lrb::core::select_independent(fitness, gen));
  }
  state.SetItemsProcessed(state.iterations());
}

// The "fitness changes every draw" workload (ACO tour construction):
// prebuilt structures must rebuild, bidding just draws.
void BM_AliasRebuildPerDraw(benchmark::State& state) {
  auto fitness = make_fitness(state.range(0), state.range(1) != 0);
  lrb::core::AliasTable table(fitness);
  lrb::rng::Xoshiro256StarStar gen(7);
  std::size_t tick = 1;
  for (auto _ : state) {
    fitness[tick % fitness.size()] += 0.001;  // any mutation invalidates
    table.rebuild(fitness);
    benchmark::DoNotOptimize(table.select(gen));
    ++tick;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BiddingMutatingFitness(benchmark::State& state) {
  auto fitness = make_fitness(state.range(0), state.range(1) != 0);
  lrb::rng::Xoshiro256StarStar gen(8);
  std::size_t tick = 1;
  for (auto _ : state) {
    fitness[tick % fitness.size()] += 0.001;
    benchmark::DoNotOptimize(lrb::core::select_bidding(fitness, gen));
    ++tick;
  }
  state.SetItemsProcessed(state.iterations());
}

void DenseSparseArgs(benchmark::internal::Benchmark* b) {
  for (int sparse : {0, 1}) {
    for (int n : {100, 1000, 10000, 100000}) {
      b->Args({n, sparse});
    }
  }
}

BENCHMARK(BM_Bidding)->Apply(DenseSparseArgs);
BENCHMARK(BM_LinearCdf)->Apply(DenseSparseArgs);
BENCHMARK(BM_BinaryCdfDrawOnly)->Apply(DenseSparseArgs);
BENCHMARK(BM_AliasDrawOnly)->Apply(DenseSparseArgs);
BENCHMARK(BM_StochasticAcceptance)->Args({1000, 0})->Args({10000, 0});
BENCHMARK(BM_Independent)->Args({1000, 0})->Args({10000, 0});
BENCHMARK(BM_AliasRebuildPerDraw)->Args({1000, 0})->Args({10000, 0});
BENCHMARK(BM_BiddingMutatingFitness)->Args({1000, 0})->Args({10000, 0});

}  // namespace

BENCHMARK_MAIN();
