// Experiment E3 — empirical validation of THEOREM 1 (the paper's only
// "figure-like" quantitative claim beyond the two tables):
//
//   The CRCW race identifies the winning bid in O(log k) expected rounds
//   with O(1) shared memory, where k = number of non-zero fitness values.
//
// We sweep k over powers of two at fixed n on the cycle-accurate PRAM
// simulator and report mean/p95/max rounds per selection against the
// paper's 2*ceil(log2 k) envelope, for three fitness shapes.  A second
// sweep holds k fixed and grows n to show rounds do NOT depend on n.
//
// Usage: theorem1_race_rounds [--n=4096] [--trials=300] [--seed=9] [--csv]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "pram/programs.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/online.hpp"

namespace {

std::vector<double> make_fitness(std::size_t n, std::size_t k,
                                 const std::string& shape) {
  std::vector<double> f(n, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t pos = j * n / k;
    if (shape == "uniform") {
      f[pos] = 1.0;
    } else if (shape == "linear") {
      f[pos] = static_cast<double>(j + 1);
    } else {  // "skewed": geometric spread
      f[pos] = std::pow(2.0, static_cast<double>(j % 30));
    }
  }
  return f;
}

struct Row {
  std::size_t k;
  double mean, p95, max;
  double envelope;
};

Row sweep_point(std::size_t n, std::size_t k, const std::string& shape,
                std::uint64_t trials, std::uint64_t seed) {
  const auto fitness = make_fitness(n, k, shape);
  std::vector<double> rounds;
  rounds.reserve(trials);
  lrb::stats::OnlineMoments m;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto r =
        lrb::pram::crcw_bidding_selection(fitness, seed + 2 * t, seed + 2 * t + 1);
    m.add(static_cast<double>(r.rounds));
    rounds.push_back(static_cast<double>(r.rounds));
  }
  std::sort(rounds.begin(), rounds.end());
  Row row;
  row.k = k;
  row.mean = m.mean();
  row.p95 = rounds[static_cast<std::size_t>(0.95 * (rounds.size() - 1))];
  row.max = m.max();
  row.envelope =
      k <= 1 ? 1.0 : 2.0 * std::ceil(std::log2(static_cast<double>(k)));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t n = args.get_u64("n", 4096);
  const std::uint64_t trials = args.get_u64("trials", 300);
  const std::uint64_t seed = args.get_u64("seed", 9);
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("E3 / Theorem 1",
                     "CRCW race rounds vs k (expected O(log k), O(1) memory)",
                     trials);

  for (const std::string shape : {"uniform", "linear", "skewed"}) {
    std::printf("fitness shape: %s (n = %zu, %llu trials per k)\n",
                shape.c_str(), n, static_cast<unsigned long long>(trials));
    lrb::Table table(
        {"k", "mean rounds", "p95", "max", "2*ceil(log2 k)", "mean/log2(k)"});
    for (std::size_t k = 1; k <= n; k *= 4) {
      const Row row = sweep_point(n, k, shape, trials, seed + k);
      table.add_row(
          {std::to_string(row.k), lrb::format_fixed(row.mean, 2),
           lrb::format_fixed(row.p95, 0), lrb::format_fixed(row.max, 0),
           lrb::format_fixed(row.envelope, 0),
           row.k > 1 ? lrb::format_fixed(
                           row.mean / std::log2(static_cast<double>(row.k)), 3)
                     : std::string("-")});
    }
    csv ? table.print_csv(std::cout) : table.print(std::cout);
    std::printf("\n");
  }

  std::printf("--- rounds vs n at fixed k = 64 (must stay flat) ---\n");
  lrb::Table flat({"n", "k", "mean rounds", "p95"});
  for (std::size_t nn = 64; nn <= 65536; nn *= 8) {
    const Row row = sweep_point(nn, 64, "uniform", trials, seed + nn);
    flat.add_row({std::to_string(nn), "64", lrb::format_fixed(row.mean, 2),
                  lrb::format_fixed(row.p95, 0)});
  }
  csv ? flat.print_csv(std::cout) : flat.print(std::cout);

  std::printf("\nreading: mean rounds grows ~log2(k)/2-ish per the random-"
              "arbiter halving argument and sits far inside the paper's "
              "2*ceil(log2 k) sufficiency envelope; independent of n.\n");
  return 0;
}
