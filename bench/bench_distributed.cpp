// Experiment A9 — distributed-memory selection: communication ledgers of
// bidding vs prefix-sum selection as the rank count grows.
//
// The paper's shared-memory contrast (O(1) cells vs O(n) cells) becomes, on
// a message-passing machine, "one 2-word allreduce" vs "scan + reduce +
// broadcast": same O(log P) round asymptotics, ~2-3x the messages and a
// longer critical path for the prefix-sum pipeline.
//
// Usage: bench_distributed [--n=1e6] [--csv]
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "dist/selection.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t n = args.get_u64("n", 1'000'000);
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("A9", "distributed selection communication vs rank count",
                     0);
  std::printf("global fitness vector: n = %zu (10%% non-zero)\n\n", n);

  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; i += 10) {
    fitness[i] = 1.0 + static_cast<double>(i % 23);
  }

  lrb::Table table({"ranks P", "ceil(log2 P)", "bidding rounds",
                    "bidding msgs", "bidding words", "bidding critpath",
                    "prefix rounds", "prefix msgs", "prefix words",
                    "prefix critpath"});
  bool bidding_always_cheaper = true;
  for (std::size_t p = 2; p <= 1024; p *= 2) {
    lrb::dist::ShardedFitness shards(fitness, p);
    const auto bid = lrb::dist::distributed_bidding(shards, 7);
    const auto pfx = lrb::dist::distributed_prefix_sum(shards, 7);
    bidding_always_cheaper = bidding_always_cheaper &&
                             bid.comm.messages < pfx.comm.messages &&
                             bid.comm.critical_path_words <
                                 pfx.comm.critical_path_words;
    table.add_row(
        {std::to_string(p),
         std::to_string(static_cast<unsigned>(std::ceil(std::log2(p)))),
         std::to_string(bid.comm.rounds), std::to_string(bid.comm.messages),
         std::to_string(bid.comm.words),
         std::to_string(bid.comm.critical_path_words),
         std::to_string(pfx.comm.rounds), std::to_string(pfx.comm.messages),
         std::to_string(pfx.comm.words),
         std::to_string(pfx.comm.critical_path_words)});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);
  std::printf("\nbidding cheaper on messages AND critical path at every P: %s\n",
              bidding_always_cheaper ? "yes" : "NO");

  std::printf("\nreading: both are O(log P) rounds, but bidding needs one "
              "allreduce of a single (bid, rank) pair — the distributed "
              "echo of the paper's O(1) shared memory — while the prefix-"
              "sum pipeline runs scan + reduce + broadcast.\n");
  return 0;
}
