// Experiment E2 — reproduces the paper's TABLE II:
//   "The selection probabilities of the first 10 processors ... in 1e9
//    iterations with f_0 = 1 and f_1 = f_2 = ... = f_99 = 2."
//
// The headline: the independent roulette's probability of selecting
// processor 0 is (1/2)^99 / 100 ~ 1.58e-32 — never, at any feasible sample
// size — while logarithmic bidding tracks F_0 = 1/199 ~ 0.005025 exactly.
//
// Usage: table2_small_fitness [--iters=2e6] [--seed=42] [--rows=10]
//        [--engine=mt19937|...] [--csv]
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/baselines.hpp"
#include "core/fitness.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/engines.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::uint64_t iters = lrb::bench::iterations(args, 2'000'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::size_t rows = args.get_u64("rows", 10);
  const auto engine =
      lrb::rng::parse_engine_kind(args.get_string("engine", "mt19937"));
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner(
      "E2 / Table II",
      "first 10 processors with f_0 = 1 and f_1..f_99 = 2 (n = 100)", iters);

  std::vector<double> fitness(100, 2.0);
  fitness[0] = 1.0;
  const auto exact = lrb::core::exact_probabilities(fitness);

  lrb::stats::SelectionHistogram independent(fitness.size());
  lrb::stats::SelectionHistogram logarithmic(fitness.size());
  lrb::rng::dispatch_engine(engine, seed, [&](auto gen) {
    for (std::uint64_t t = 0; t < iters; ++t) {
      independent.record(lrb::core::select_independent(fitness, gen));
    }
  });
  lrb::rng::dispatch_engine(engine, seed + 1, [&](auto gen) {
    for (std::uint64_t t = 0; t < iters; ++t) {
      logarithmic.record(lrb::core::select_bidding(fitness, gen));
    }
  });

  lrb::Table table({"i", "f_i", "F_i", "independent", "logarithmic"});
  for (std::size_t i = 0; i < rows && i < fitness.size(); ++i) {
    table.add_row({std::to_string(i), lrb::format_fixed(fitness[i], 0),
                   lrb::format_fixed(exact[i], 6),
                   lrb::format_fixed(independent.frequency(i), 6),
                   lrb::format_fixed(logarithmic.frequency(i), 6)});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);

  std::printf("\nanalytic independent Pr[0] = (1/2)^99 / 100 = %.5e "
              "(essentially zero)\n",
              std::pow(0.5, 99) / 100.0);
  std::printf("observed independent selections of processor 0: %llu of %llu\n",
              static_cast<unsigned long long>(independent.count(0)),
              static_cast<unsigned long long>(iters));
  std::printf("observed logarithmic Pr[0] = %.6f (exact F_0 = %.6f)\n",
              logarithmic.frequency(0), exact[0]);

  const auto gof = lrb::stats::chi_square_gof(logarithmic, exact);
  std::printf("\nlogarithmic vs F_i over all 100 processors: chi2=%.2f "
              "dof=%.0f p=%.4f -> %s\n",
              gof.statistic, gof.dof, gof.p_value,
              gof.consistent_with_model(1e-4) ? "CONSISTENT (paper confirmed)"
                                              : "INCONSISTENT");
  return 0;
}
