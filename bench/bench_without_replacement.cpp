// Extension study A6 — weighted sampling without replacement via top-m
// bidding (the Efraimidis-Spirakis equivalence).
//
// Correctness: first-pick marginals against F_i.  Performance: serial vs
// parallel top-m as n grows, and scaling in m.
//
// Usage: bench_without_replacement [--iters=40000] [--seed=6] [--csv]
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/fitness.hpp"
#include "core/without_replacement.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::uint64_t iters = lrb::bench::iterations(args, 40000);
  const std::uint64_t seed = args.get_u64("seed", 6);
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("A6", "weighted sampling without replacement (top-m bids)",
                     iters);

  // Correctness: the first element of a without-replacement sample has the
  // single-draw roulette distribution.
  {
    const std::vector<double> fitness = {1, 2, 3, 4, 0, 5};
    lrb::stats::SelectionHistogram first(fitness.size());
    for (std::uint64_t t = 0; t < iters; ++t) {
      first.record(lrb::core::sample_without_replacement(fitness, 3,
                                                          seed * 1000003 + t)[0]);
    }
    const auto exact = lrb::core::exact_probabilities(fitness);
    const auto gof = lrb::stats::chi_square_gof(first, exact);
    std::printf("first-pick marginal vs F_i (f={1,2,3,4,0,5}, m=3): "
                "chi2=%.2f p=%.4f -> %s\n\n",
                gof.statistic, gof.p_value,
                gof.consistent_with_model(1e-4) ? "CONSISTENT" : "INCONSISTENT");
  }

  // Throughput: n sweep at m=64.
  lrb::parallel::ThreadPool pool;
  lrb::Table table({"n", "m", "serial ms", "parallel ms", "samples match"});
  for (std::size_t n : {1000u, 10000u, 100000u, 1000000u}) {
    std::vector<double> fitness(n);
    for (std::size_t i = 0; i < n; ++i) {
      fitness[i] = (i % 11 == 0) ? 0.0 : 1.0 + static_cast<double>(i % 17);
    }
    constexpr std::size_t kM = 64;
    constexpr int kReps = 5;
    lrb::WallTimer t1;
    std::vector<std::size_t> s1;
    for (int rep = 0; rep < kReps; ++rep) {
      s1 = lrb::core::sample_without_replacement(fitness, kM, seed + rep);
    }
    const double serial_ms = t1.elapsed_seconds() * 1000 / kReps;
    lrb::WallTimer t2;
    std::vector<std::size_t> s2;
    for (int rep = 0; rep < kReps; ++rep) {
      s2 = lrb::core::sample_without_replacement(pool, fitness, kM,
                                                 seed + kReps - 1);
    }
    const double par_ms = t2.elapsed_seconds() * 1000 / kReps;
    table.add_row({std::to_string(n), std::to_string(kM),
                   lrb::format_fixed(serial_ms, 3), lrb::format_fixed(par_ms, 3),
                   s1 == s2 ? "yes" : "NO"});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);

  std::printf("\nreading: parallel and serial paths return *identical* "
              "samples (counter-based bids), so the parallel path is a pure "
              "latency optimization.\n");
  return 0;
}
