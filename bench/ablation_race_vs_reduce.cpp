// Experiments E5 / A4 — the practical side of Theorem 1 on real threads:
// compares the three parallel execution strategies for one bidding
// selection as the active count k varies.
//
//   reduce  : per-lane sub-races + deterministic tree combine
//   race    : CRCW-style atomic (bid,index) cell (paper Section III)
//   serial  : single-threaded scan (reference)
//
// Reports wall time per selection and the race's write statistics
// (winning installs ~ H_k ~ ln k: the shared cell sees O(log k) successful
// writes regardless of k — the paper's claim in CAS clothing).
//
// Usage: ablation_race_vs_reduce [--n=65536] [--reps=30] [--lanes=0]
//        [--seed=3] [--csv]
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/seed.hpp"
#include "stats/online.hpp"

namespace {

std::vector<double> sparse_fitness(std::size_t n, std::size_t k) {
  std::vector<double> f(n, 0.0);
  for (std::size_t j = 0; j < k; ++j) f[j * n / k] = 1.0 + (j % 7);
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t n = args.get_u64("n", 65536);
  const std::uint64_t reps = args.get_u64("reps", 30);
  const std::size_t lanes = args.get_u64("lanes", 0);
  const std::uint64_t seed = args.get_u64("seed", 3);
  const bool csv = args.get_bool("csv", false);

  lrb::parallel::ThreadPool pool(lanes);
  lrb::bench::banner("E5 / A4",
                     "thread-level race vs reduce vs serial, one selection",
                     reps);
  std::printf("n = %zu items, %zu lanes\n\n", n, pool.lanes());

  lrb::Table table({"k", "serial us", "reduce us", "race us",
                    "race installs (mean)", "ln(k)+0.58"});
  for (std::size_t k = 16; k <= n; k *= 16) {
    const auto fitness = sparse_fitness(n, k);
    lrb::rng::SeedSequence seeds(seed + k);

    lrb::stats::OnlineMoments t_serial, t_reduce, t_race, installs;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      const auto rep_seeds = seeds.subsequence(rep);
      {
        lrb::rng::Xoshiro256StarStar gen(rep_seeds.child(0));
        lrb::WallTimer timer;
        volatile std::size_t sink = lrb::core::select_bidding(fitness, gen);
        (void)sink;
        t_serial.add(timer.elapsed_seconds() * 1e6);
      }
      {
        lrb::WallTimer timer;
        volatile std::size_t sink =
            lrb::core::select_bidding_parallel(pool, fitness, rep_seeds);
        (void)sink;
        t_reduce.add(timer.elapsed_seconds() * 1e6);
      }
      {
        lrb::core::RaceStats stats;
        lrb::WallTimer timer;
        volatile std::size_t sink =
            lrb::core::select_bidding_race(pool, fitness, rep_seeds, &stats);
        (void)sink;
        t_race.add(timer.elapsed_seconds() * 1e6);
        installs.add(static_cast<double>(stats.winning_writes));
      }
    }
    table.add_row({std::to_string(k), lrb::format_fixed(t_serial.mean(), 1),
                   lrb::format_fixed(t_reduce.mean(), 1),
                   lrb::format_fixed(t_race.mean(), 1),
                   lrb::format_fixed(installs.mean(), 1),
                   lrb::format_fixed(std::log(static_cast<double>(k)) + 0.58, 1)});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);

  std::printf(
      "\nreading: successful installs on the shared cell track H_k ~ ln k "
      "(Theorem 1's O(log k) in CAS form) while all strategies scan O(n/p) "
      "candidates; the race avoids the reduce's per-lane buffers (O(1) "
      "shared state, as in the paper).\n");
  return 0;
}
