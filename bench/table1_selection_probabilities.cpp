// Experiment E1 — reproduces the paper's TABLE I:
//   "The selection probabilities of the roulette wheel selection algorithms
//    in 1e9 iterations with f_i = i (0 <= i <= 9)."
//
// Also prints the Section I counter-example (E4): n=2, f={2,1}, where the
// independent roulette selects index 0 with probability 3/4 instead of 2/3.
//
// Usage: table1_selection_probabilities [--iters=2e6] [--seed=20240228]
//        [--engine=mt19937|xoshiro|splitmix64|philox] [--csv]
//
// The paper used the Mersenne Twister; that is the default engine here.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/baselines.hpp"
#include "core/fitness.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/engines.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"

namespace {

struct Columns {
  lrb::stats::SelectionHistogram independent;
  lrb::stats::SelectionHistogram logarithmic;
};

Columns run(const std::vector<double>& fitness, std::uint64_t iters,
            lrb::rng::EngineKind engine, std::uint64_t seed) {
  Columns cols{lrb::stats::SelectionHistogram(fitness.size()),
               lrb::stats::SelectionHistogram(fitness.size())};
  lrb::rng::dispatch_engine(engine, seed, [&](auto gen_ind) {
    for (std::uint64_t t = 0; t < iters; ++t) {
      cols.independent.record(lrb::core::select_independent(fitness, gen_ind));
    }
  });
  lrb::rng::dispatch_engine(engine, seed + 1, [&](auto gen_log) {
    for (std::uint64_t t = 0; t < iters; ++t) {
      cols.logarithmic.record(lrb::core::select_bidding(fitness, gen_log));
    }
  });
  return cols;
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::uint64_t iters = lrb::bench::iterations(args, 2'000'000);
  const std::uint64_t seed = args.get_u64("seed", 20240228);
  const auto engine =
      lrb::rng::parse_engine_kind(args.get_string("engine", "mt19937"));
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("E1 / Table I",
                     "selection probabilities with f_i = i, 0 <= i <= 9",
                     iters);

  std::vector<double> fitness(10);
  for (std::size_t i = 0; i < 10; ++i) fitness[i] = static_cast<double>(i);
  const auto exact = lrb::core::exact_probabilities(fitness);
  const auto cols = run(fitness, iters, engine, seed);

  lrb::Table table({"i", "f_i", "F_i", "independent", "logarithmic"});
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    table.add_row({std::to_string(i), std::to_string(i),
                   lrb::format_fixed(exact[i], 6),
                   lrb::format_fixed(cols.independent.frequency(i), 6),
                   lrb::format_fixed(cols.logarithmic.frequency(i), 6)});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);

  // Acceptance: the logarithmic column must be chi-square-consistent with
  // F_i; the independent column must *fail* the same test (it is biased).
  const auto gof_log = lrb::stats::chi_square_gof(cols.logarithmic, exact);
  const auto gof_ind = lrb::stats::chi_square_gof(cols.independent, exact);
  std::printf("\nlogarithmic vs F_i: chi2=%.2f p=%.4f -> %s\n",
              gof_log.statistic, gof_log.p_value,
              gof_log.consistent_with_model(1e-4) ? "CONSISTENT (paper confirmed)"
                                                  : "INCONSISTENT");
  std::printf("independent vs F_i: p=%.3g -> %s\n", gof_ind.p_value,
              gof_ind.p_value < 1e-4 ? "REJECTED (bias confirmed, as in paper)"
                                     : "unexpectedly consistent");

  // E4: the Section I counter-example.
  std::printf("\n--- E4: Section I counter-example, n=2, f={2,1} ---\n");
  const std::vector<double> f21 = {2.0, 1.0};
  const auto small = run(f21, iters, engine, seed + 100);
  std::printf("exact F_0 = 2/3 = 0.666667\n");
  std::printf("logarithmic Pr[0] = %.6f (expect ~0.666667)\n",
              small.logarithmic.frequency(0));
  std::printf("independent Pr[0] = %.6f (paper derives exactly 3/4)\n",
              small.independent.frequency(0));
  return 0;
}
