// Ablation A7 — dynamic-fitness workloads: the regime the paper's intro
// motivates (ACO tour construction zeroes one weight per step).
//
// Workload: alternating update/draw ops over n items.  Sweep the
// updates-per-draw ratio and compare:
//
//   bidding  : O(k) draw, O(1) update (fitness array is the state)
//   fenwick  : O(log n) draw, O(log n) update
//   binary   : O(log n) draw, O(n) rebuild on update
//   alias    : O(1) draw, O(n) rebuild on update
//
// Also runs the pure ACO construction pattern (deactivate winner each draw)
// end to end.
//
// Usage: bench_dynamic_updates [--n=4096] [--ops=20000] [--seed=8] [--csv]
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/alias_table.hpp"
#include "core/active_set.hpp"
#include "core/cdf_selector.hpp"
#include "core/fenwick_selector.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/xoshiro256.hpp"

namespace {

std::vector<double> base_fitness(std::size_t n) {
  std::vector<double> f(n);
  for (std::size_t i = 0; i < n; ++i) f[i] = 1.0 + static_cast<double>(i % 13);
  return f;
}

/// Runs `ops` operations where every (ratio+1)-th op is a draw and the rest
/// are point updates; returns microseconds total.
template <typename DrawFn, typename UpdateFn>
double run_mixed(std::size_t ops, std::size_t ratio, DrawFn&& draw,
                 UpdateFn&& update) {
  lrb::WallTimer timer;
  for (std::size_t op = 0; op < ops; ++op) {
    if (op % (ratio + 1) == ratio) {
      volatile std::size_t sink = draw();
      (void)sink;
    } else {
      update(op);
    }
  }
  return timer.elapsed_seconds() * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t n = args.get_u64("n", 4096);
  const std::size_t ops = args.get_u64("ops", 20000);
  const std::uint64_t seed = args.get_u64("seed", 8);
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("A7", "update/draw workloads (the ACO regime)", ops);
  std::printf("n = %zu items, %zu ops per cell\n\n", n, ops);

  lrb::Table table({"updates per draw", "bidding us", "fenwick us",
                    "binary_cdf us", "alias us"});
  for (std::size_t ratio : {0u, 1u, 4u, 16u, 64u}) {
    auto fitness = base_fitness(n);
    lrb::rng::Xoshiro256StarStar gen(seed);
    auto mutate = [&](std::size_t op) {
      fitness[(op * 2654435761u) % n] =
          1.0 + static_cast<double>((op * 40503u) % 13);
    };

    // bidding: updates touch the array only.
    const double t_bid = run_mixed(
        ops, ratio, [&] { return lrb::core::select_bidding(fitness, gen); },
        mutate);

    // fenwick: incremental updates.
    fitness = base_fitness(n);
    lrb::core::FenwickSelector fenwick(fitness);
    const double t_fen = run_mixed(
        ops, ratio, [&] { return fenwick.select(gen); },
        [&](std::size_t op) {
          const std::size_t i = (op * 2654435761u) % n;
          const double v = 1.0 + static_cast<double>((op * 40503u) % 13);
          fitness[i] = v;
          fenwick.update(i, v);
        });

    // binary cdf: full rebuild per draw if dirty.
    fitness = base_fitness(n);
    lrb::core::CdfSelector cdf(fitness);
    bool dirty = false;
    const double t_cdf = run_mixed(
        ops, ratio,
        [&] {
          if (dirty) {
            cdf.rebuild(fitness);
            dirty = false;
          }
          return cdf.select(gen);
        },
        [&](std::size_t op) {
          mutate(op);
          dirty = true;
        });

    // alias: full rebuild per draw if dirty.
    fitness = base_fitness(n);
    lrb::core::AliasTable alias(fitness);
    bool alias_dirty = false;
    const double t_alias = run_mixed(
        ops, ratio,
        [&] {
          if (alias_dirty) {
            alias.rebuild(fitness);
            alias_dirty = false;
          }
          return alias.select(gen);
        },
        [&](std::size_t op) {
          mutate(op);
          alias_dirty = true;
        });

    table.add_row({std::to_string(ratio), lrb::format_fixed(t_bid, 0),
                   lrb::format_fixed(t_fen, 0), lrb::format_fixed(t_cdf, 0),
                   lrb::format_fixed(t_alias, 0)});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);

  // End-to-end ACO construction pattern: n draws, deactivating each winner.
  std::printf("\nACO construction pattern (draw + deactivate winner, full "
              "sweep of n = %zu):\n",
              n);
  {
    auto fitness = base_fitness(n);
    lrb::rng::Xoshiro256StarStar gen(seed + 1);
    lrb::WallTimer timer;
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t w = lrb::core::select_bidding(fitness, gen);
      fitness[w] = 0.0;
    }
    std::printf("  bidding : %s\n",
                lrb::format_duration(timer.elapsed_seconds()).c_str());
  }
  {
    lrb::core::FenwickSelector fenwick(base_fitness(n));
    lrb::rng::Xoshiro256StarStar gen(seed + 1);
    lrb::WallTimer timer;
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t w = fenwick.select(gen);
      fenwick.deactivate(w);
    }
    std::printf("  fenwick : %s\n",
                lrb::format_duration(timer.elapsed_seconds()).c_str());
  }
  {
    // O(k) bidding over an explicit active set: the serial analog of the
    // paper's "only active processors participate".
    lrb::core::ActiveSetBidder active(base_fitness(n));
    lrb::rng::Xoshiro256StarStar gen(seed + 1);
    lrb::WallTimer timer;
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t w = active.select(gen);
      active.deactivate(w);
    }
    std::printf("  active-set bidding : %s (O(k_t) per draw)\n",
                lrb::format_duration(timer.elapsed_seconds()).c_str());
  }

  std::printf("\nreading: with updates in the mix, the O(n)-rebuild "
              "structures lose their draw-time advantage; fenwick wins the "
              "dense dynamic regime and bidding wins once k shrinks or "
              "updates dominate — the paper's sparse-fitness argument in "
              "cost-model form.\n");
  return 0;
}
