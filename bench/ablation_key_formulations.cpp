// Ablation A2 — why the *logarithmic* formulation matters numerically.
//
// Three mathematically equivalent keys realize the exponential race:
//   bidding  : r = log(u)/f          (the paper's; log-domain, robust)
//   gumbel   : g = log(f) + Gumbel   (log-domain, one extra log)
//   es_key   : k = u^(1/f)           (Efraimidis-Spirakis; linear-domain)
//
// In exact arithmetic all three select i with probability F_i.  In doubles,
// u^(1/f) underflows to 0 once f is small (f < ~709/log(1/u)), collapsing
// distinct weights into ties.  This bench quantifies the damage: total
// variation distance from F_i as the fitness scale shrinks, plus raw key
// throughput.
//
// Usage: ablation_key_formulations [--iters=200000] [--seed=5] [--csv]
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/baselines.hpp"
#include "core/fitness.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"

namespace {

template <typename SelectFn>
double tv_from_exact(const std::vector<double>& fitness, std::uint64_t iters,
                     SelectFn&& select) {
  lrb::stats::SelectionHistogram hist(fitness.size());
  for (std::uint64_t t = 0; t < iters; ++t) hist.record(select());
  const auto freqs = hist.frequencies();
  const auto exact = lrb::core::exact_probabilities(fitness);
  return lrb::stats::total_variation(freqs, exact);
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::uint64_t iters = lrb::bench::iterations(args, 200000);
  const std::uint64_t seed = args.get_u64("seed", 5);
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("A2", "key formulation accuracy vs fitness scale", iters);

  // Fitness {1,2,3,4} scaled by 10^-e: same F_i at every scale.
  lrb::Table table({"scale", "TV bidding", "TV gumbel", "TV es_key (u^(1/f))",
                    "es_key verdict"});
  for (int e = 0; e <= 8; e += 2) {
    const double scale = std::pow(10.0, -e);
    std::vector<double> fitness = {1 * scale, 2 * scale, 3 * scale, 4 * scale};
    lrb::rng::Xoshiro256StarStar g1(seed), g2(seed + 1), g3(seed + 2);
    const double tv_bid = tv_from_exact(
        fitness, iters, [&] { return lrb::core::select_bidding(fitness, g1); });
    const double tv_gum = tv_from_exact(fitness, iters, [&] {
      return lrb::core::select_gumbel_max(fitness, g2);
    });
    const double tv_es = tv_from_exact(
        fitness, iters, [&] { return lrb::core::select_es_key(fitness, g3); });
    table.add_row({"1e-" + std::to_string(e), lrb::format_fixed(tv_bid, 5),
                   lrb::format_fixed(tv_gum, 5), lrb::format_fixed(tv_es, 5),
                   tv_es > 0.01 ? "BROKEN (underflow)" : "ok"});
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);

  // Key-generation throughput (pure formulation cost).
  std::printf("\nkey throughput (1e7 keys, f = 2.5):\n");
  constexpr std::uint64_t kKeys = 10'000'000;
  {
    lrb::rng::Xoshiro256StarStar gen(seed);
    lrb::WallTimer t;
    double sink = 0;
    for (std::uint64_t i = 0; i < kKeys; ++i) sink += lrb::rng::log_bid(gen, 2.5);
    std::printf("  bidding log(u)/f : %s (checksum %.3g)\n",
                lrb::format_rate(kKeys / t.elapsed_seconds()).c_str(), sink);
  }
  {
    lrb::rng::Xoshiro256StarStar gen(seed);
    lrb::WallTimer t;
    double sink = 0;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      sink += std::log(2.5) + lrb::rng::gumbel(gen);
    }
    std::printf("  gumbel log f + G : %s (checksum %.3g)\n",
                lrb::format_rate(kKeys / t.elapsed_seconds()).c_str(), sink);
  }
  {
    lrb::rng::Xoshiro256StarStar gen(seed);
    lrb::WallTimer t;
    double sink = 0;
    for (std::uint64_t i = 0; i < kKeys; ++i) sink += lrb::rng::es_key(gen, 2.5);
    std::printf("  es_key u^(1/f)   : %s (checksum %.3g)\n",
                lrb::format_rate(kKeys / t.elapsed_seconds()).c_str(), sink);
  }

  std::printf("\nreading: all formulations agree at scale 1; u^(1/f) "
              "diverges to TV ~ 0.3+ once f drops below ~1e-4 while the "
              "paper's log-domain bid stays exact to sampling noise.\n");
  return 0;
}
