// Shared plumbing for the table-reproduction binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "stats/online.hpp"

namespace lrb::bench {

/// Mean-of-reps microseconds of `fn(rep)` (a callable returning an index,
/// sunk through a volatile so the work survives optimization).  The
/// mean-over-reps companion to lrb::time_best_of (common/timer.hpp) — the
/// bench binaries route repeated measurements through these two instead of
/// hand-rolling steady_clock blocks.
template <typename Fn>
double mean_us(std::uint64_t reps, Fn&& fn) {
  stats::OnlineMoments m;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    volatile std::size_t sink = fn(rep);
    (void)sink;
    m.add(timer.elapsed_seconds() * 1e6);
  }
  return m.mean();
}

/// Standard experiment banner: what is being reproduced and at what scale.
inline void banner(const char* experiment_id, const char* description,
                   std::uint64_t iterations) {
  std::printf("=== %s: %s ===\n", experiment_id, description);
  std::printf("paper: Nakano, \"The Logarithmic Random Bidding for the "
              "Parallel Roulette Wheel Selection with Precise "
              "Probabilities\" (IPPS 2024, arXiv:2402.18110)\n");
  if (iterations > 0) {
    std::printf("iterations: %llu (paper used 1e9; scale with --iters or "
                "LRB_ITERS)\n",
                static_cast<unsigned long long>(iterations));
  }
  std::printf("\n");
}

/// Common --iters handling: default per-bench, env override LRB_ITERS.
inline std::uint64_t iterations(const CliArgs& args, std::uint64_t def) {
  return args.get_u64("iters", def, "LRB_ITERS");
}

}  // namespace lrb::bench
