// Shared plumbing for the table-reproduction binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/cli.hpp"

namespace lrb::bench {

/// Standard experiment banner: what is being reproduced and at what scale.
inline void banner(const char* experiment_id, const char* description,
                   std::uint64_t iterations) {
  std::printf("=== %s: %s ===\n", experiment_id, description);
  std::printf("paper: Nakano, \"The Logarithmic Random Bidding for the "
              "Parallel Roulette Wheel Selection with Precise "
              "Probabilities\" (IPPS 2024, arXiv:2402.18110)\n");
  if (iterations > 0) {
    std::printf("iterations: %llu (paper used 1e9; scale with --iters or "
                "LRB_ITERS)\n",
                static_cast<unsigned long long>(iterations));
  }
  std::printf("\n");
}

/// Common --iters handling: default per-bench, env override LRB_ITERS.
inline std::uint64_t iterations(const CliArgs& args, std::uint64_t def) {
  return args.get_u64("iters", def, "LRB_ITERS");
}

}  // namespace lrb::bench
