// Application study A5b — vertex coloring (paper reference [4]) under the
// different roulette rules, on graphs with known chromatic numbers plus
// random G(n,p).
//
// Usage: bench_vertex_coloring [--ants=12] [--iters=12] [--seeds=3] [--csv]
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "aco/graph.hpp"
#include "aco/vertex_coloring.hpp"
#include "common/table.hpp"
#include "stats/online.hpp"

namespace {

struct NamedGraph {
  std::string name;
  lrb::aco::Graph graph;
  int chromatic;  // 0 = unknown
};

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t ants = args.get_u64("ants", 8);
  const std::size_t iters = args.get_u64("iters", 10);
  const std::uint64_t num_seeds = args.get_u64("seeds", 2);
  const bool csv = args.get_bool("csv", false);

  lrb::bench::banner("A5b", "vertex coloring quality by selection rule", 0);

  std::vector<NamedGraph> graphs;
  graphs.push_back({"K_12 (chi=12)", lrb::aco::complete_graph(12), 12});
  graphs.push_back({"C_50 even (chi=2)", lrb::aco::cycle_graph(50), 2});
  graphs.push_back(
      {"K_4x8 multipartite (chi=4)", lrb::aco::complete_multipartite(4, 8), 4});
  graphs.push_back({"G(60,0.3)", lrb::aco::random_gnp(60, 0.3, 77), 0});
  graphs.push_back({"G(60,0.7)", lrb::aco::random_gnp(60, 0.7, 78), 0});

  for (const auto& ng : graphs) {
    std::printf("%s: %zu vertices, %zu edges, max degree %zu\n",
                ng.name.c_str(), ng.graph.num_vertices(), ng.graph.num_edges(),
                ng.graph.max_degree());
    lrb::Table table({"rule", "best colors", "mean colors", "chi (known)"});
    table.set_align(0, lrb::Align::kLeft);
    for (const auto rule :
         {lrb::aco::SelectionRule::kBidding, lrb::aco::SelectionRule::kCdf,
          lrb::aco::SelectionRule::kIndependent,
          lrb::aco::SelectionRule::kGreedy}) {
      lrb::aco::ColoringParams params;
      params.num_ants = ants;
      params.iterations = iters;
      params.rule = rule;
      lrb::stats::OnlineMoments colors;
      for (std::uint64_t s = 0; s < num_seeds; ++s) {
        const auto r = lrb::aco::color_graph(ng.graph, params, 500 + s);
        colors.add(static_cast<double>(r.num_colors));
      }
      table.add_row({std::string(lrb::aco::to_string(rule)),
                     lrb::format_fixed(colors.min(), 0),
                     lrb::format_fixed(colors.mean(), 2),
                     ng.chromatic ? std::to_string(ng.chromatic) : "?"});
    }
    csv ? table.print_csv(std::cout) : table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
