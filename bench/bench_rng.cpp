// Ablation A3 — engine throughput: raw 64-bit generation, canonical
// uniforms, and full bid generation per engine (the paper used the Mersenne
// Twister; xoshiro256** is the library default).
#include <benchmark/benchmark.h>

#include "rng/engines.hpp"

namespace {

template <typename Engine>
void BM_RawU64(benchmark::State& state) {
  Engine gen(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen());
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Engine>
void BM_CanonicalDouble(benchmark::State& state) {
  Engine gen(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lrb::rng::u01_closed_open(gen));
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Engine>
void BM_LogBid(benchmark::State& state) {
  Engine gen(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lrb::rng::log_bid(gen, 3.0));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PhiloxStateless(benchmark::State& state) {
  std::uint64_t counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lrb::rng::philox_u64_at(42, counter++, 7));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_RawU64<lrb::rng::Xoshiro256StarStar>)->Name("RawU64/xoshiro256**");
BENCHMARK(BM_RawU64<lrb::rng::Mt19937_64>)->Name("RawU64/mt19937_64");
BENCHMARK(BM_RawU64<lrb::rng::SplitMix64>)->Name("RawU64/splitmix64");
BENCHMARK(BM_RawU64<lrb::rng::PhiloxRng>)->Name("RawU64/philox4x32-10");
BENCHMARK(BM_PhiloxStateless)->Name("RawU64/philox-stateless");

BENCHMARK(BM_CanonicalDouble<lrb::rng::Xoshiro256StarStar>)
    ->Name("U01/xoshiro256**");
BENCHMARK(BM_CanonicalDouble<lrb::rng::Mt19937_64>)->Name("U01/mt19937_64");

BENCHMARK(BM_LogBid<lrb::rng::Xoshiro256StarStar>)->Name("LogBid/xoshiro256**");
BENCHMARK(BM_LogBid<lrb::rng::Mt19937_64>)->Name("LogBid/mt19937_64");
BENCHMARK(BM_LogBid<lrb::rng::SplitMix64>)->Name("LogBid/splitmix64");
BENCHMARK(BM_LogBid<lrb::rng::PhiloxRng>)->Name("LogBid/philox4x32-10");

}  // namespace

BENCHMARK_MAIN();
