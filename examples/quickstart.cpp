// Quickstart: the 60-second tour of lrb.
//
//   $ ./quickstart
//
// Draws from a small fitness vector with the paper's logarithmic random
// bidding, verifies the empirical frequencies against the exact F_i, and
// shows the biased baseline for contrast.
#include <cstdio>
#include <iostream>
#include <vector>

#include "lrb.hpp"

int main() {
  // Four candidates; index 0 has fitness zero and must never be selected.
  const std::vector<double> fitness = {0.0, 1.0, 2.0, 3.0};
  const auto exact = lrb::core::exact_probabilities(fitness);

  // 1. One selection: the paper's algorithm in one call.
  lrb::rng::Xoshiro256StarStar gen(/*seed=*/42);
  const std::size_t winner = lrb::core::select_bidding(fitness, gen);
  std::printf("single draw selected index %zu (fitness %.1f)\n\n", winner,
              fitness[winner]);

  // 2. Many selections: empirical frequencies vs exact probabilities.
  constexpr std::uint64_t kDraws = 1'000'000;
  lrb::stats::SelectionHistogram bidding(fitness.size());
  lrb::stats::SelectionHistogram independent(fitness.size());
  lrb::rng::Xoshiro256StarStar gen_ind(/*seed=*/43);
  for (std::uint64_t t = 0; t < kDraws; ++t) {
    bidding.record(lrb::core::select_bidding(fitness, gen));
    independent.record(lrb::core::select_independent(fitness, gen_ind));
  }

  lrb::Table table({"i", "f_i", "F_i (exact)", "bidding", "independent (biased)"});
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    table.add_row({std::to_string(i), lrb::format_fixed(fitness[i], 1),
                   lrb::format_fixed(exact[i], 6),
                   lrb::format_fixed(bidding.frequency(i), 6),
                   lrb::format_fixed(independent.frequency(i), 6)});
  }
  table.print(std::cout);

  // 3. The acceptance test the library applies to itself.
  const auto gof = lrb::stats::chi_square_gof(bidding, exact);
  std::printf("\nchi-square vs exact: stat=%.3f dof=%.0f p=%.4f -> %s\n",
              gof.statistic, gof.dof, gof.p_value,
              gof.consistent_with_model() ? "consistent" : "REJECTED");

  // 4. Weighted sampling without replacement (top-k bidding).
  const auto team = lrb::core::sample_without_replacement(fitness, 2, /*seed=*/7);
  std::printf("sample of 2 without replacement: {%zu, %zu}\n", team[0], team[1]);
  return 0;
}
