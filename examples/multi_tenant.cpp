// multi_tenant — per-user recommendation wheels through one WheelSet arena.
//
// Models the workload the arena exists for: every user owns a small wheel
// of item weights; each serving round draws one recommendation per user in
// ONE batched cross-wheel pass, then applies per-user feedback as O(1)
// point updates (clicked item decays, a cold item warms up).  At the end
// the run is replayed from a fresh arena with the same seed to demonstrate
// the determinism contract: same seeds + same update schedule = the same
// recommendations, bit for bit.
//
//   --users=U   wheels in the arena      (default 1000)
//   --items=N   items per user wheel     (default 16)
//   --rounds=R  serving rounds           (default 50)
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/wheel_set.hpp"

namespace {

// Zipf-flavored starting weights, shifted per user.
std::vector<double> user_wheel(std::size_t items, std::size_t user) {
  std::vector<double> f(items);
  for (std::size_t i = 0; i < items; ++i) {
    f[i] = 100.0 / static_cast<double>(1 + (i + user) % items);
  }
  return f;
}

// One full serving run; returns every recommendation made.
std::vector<std::size_t> serve(std::size_t users, std::size_t items,
                               std::size_t rounds) {
  lrb::core::WheelSet arena(2024);
  std::vector<lrb::core::WheelSet::DrawRequest> everyone;
  for (std::size_t u = 0; u < users; ++u) {
    (void)arena.add_wheel(user_wheel(items, u));
    everyone.push_back({u, 1});
  }
  std::vector<std::size_t> history;
  history.reserve(users * rounds);
  std::vector<std::size_t> winners;
  for (std::size_t round = 0; round < rounds; ++round) {
    winners.clear();
    arena.draw_batch_into(everyone, winners);
    for (std::size_t u = 0; u < users; ++u) {
      const std::size_t picked = winners[u];
      // Feedback: the served item decays 20%, a rotating cold item warms.
      arena.update(u, picked, arena.value(u, picked) * 0.8);
      const std::size_t cold = (round + u) % items;
      arena.update(u, cold, arena.value(u, cold) + 1.5);
    }
    history.insert(history.end(), winners.begin(), winners.end());
  }
  std::printf("served %zu users x %zu rounds: %zu draws, %zu active items\n",
              users, rounds, history.size(), arena.total_active());
  return history;
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t users = args.get_u64("users", 1000);
  const std::size_t items = args.get_u64("items", 16);
  const std::size_t rounds = args.get_u64("rounds", 50);

  const auto first = serve(users, items, rounds);
  const auto replay = serve(users, items, rounds);
  if (first != replay) {
    std::fprintf(stderr, "multi_tenant: replay diverged!\n");
    return 1;
  }
  std::printf("replay: %zu recommendations reproduced bit-exactly\n",
              first.size());
  return 0;
}
