// Roulette-driven vertex coloring (paper reference [4]'s problem).
//
//   $ ./vertex_coloring [--vertices=80] [--density=0.4] [--ants=16]
//                       [--iters=25] [--seed=3]
//                       [--rule=bidding|cdf|independent|greedy]
//
// Colors a random G(n,p) graph with the saturation-roulette heuristic and
// compares the selection rules head-to-head on the same graph.
#include <cstdio>
#include <iostream>

#include "lrb.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t n = args.get_u64("vertices", 80);
  const double density = args.get_double("density", 0.4);
  const std::uint64_t seed = args.get_u64("seed", 3);

  lrb::aco::ColoringParams params;
  params.num_ants = args.get_u64("ants", 16);
  params.iterations = args.get_u64("iters", 25);

  const auto graph = lrb::aco::random_gnp(n, density, seed);
  std::printf("G(%zu, %.2f): %zu edges, max degree %zu\n\n", n, density,
              graph.num_edges(), graph.max_degree());

  if (args.has("rule")) {
    params.rule = lrb::aco::parse_selection_rule(args.get_string("rule", "bidding"));
    const auto r = lrb::aco::color_graph(graph, params, seed + 1);
    std::printf("rule=%s -> %d colors (proper: %s)\n",
                std::string(lrb::aco::to_string(params.rule)).c_str(),
                r.num_colors,
                graph.is_proper_coloring(r.colors) ? "yes" : "NO");
    return 0;
  }

  // Head-to-head on the same graph.
  lrb::Table table({"selection rule", "colors used", "selections", "time"});
  table.set_align(0, lrb::Align::kLeft);
  for (const auto rule :
       {lrb::aco::SelectionRule::kBidding, lrb::aco::SelectionRule::kCdf,
        lrb::aco::SelectionRule::kIndependent, lrb::aco::SelectionRule::kGreedy}) {
    params.rule = rule;
    lrb::WallTimer timer;
    const auto r = lrb::aco::color_graph(graph, params, seed + 1);
    table.add_row({std::string(lrb::aco::to_string(rule)),
                   std::to_string(r.num_colors),
                   lrb::format_count(r.selections),
                   lrb::format_duration(timer.elapsed_seconds())});
  }
  table.print(std::cout);
  std::printf("\ngreedy upper bound (max degree + 1): %zu\n",
              graph.max_degree() + 1);
  return 0;
}
