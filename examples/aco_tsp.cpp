// Ant-colony TSP with pluggable roulette selection — the paper's motivating
// application.
//
//   $ ./aco_tsp [--cities=100] [--ants=32] [--iters=100] [--seed=1]
//               [--rule=bidding|cdf|independent|greedy] [--mmas]
//
// Runs the ant system on a random Euclidean instance and reports the
// convergence curve.  Try --rule=independent to watch the biased selection
// rule hurt tour quality.
#include <cstdio>
#include <iostream>

#include "lrb.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t cities = args.get_u64("cities", 100);
  const std::uint64_t seed = args.get_u64("seed", 1);

  lrb::aco::AntSystemParams params;
  params.num_ants = args.get_u64("ants", 32);
  params.iterations = args.get_u64("iters", 100);
  params.rule = lrb::aco::parse_selection_rule(args.get_string("rule", "bidding"));
  if (args.get_bool("mmas", false)) {
    params.variant = lrb::aco::AcoVariant::kMaxMin;
  }

  std::printf("ACO-TSP: %zu cities, %zu ants, %zu iterations, rule=%s%s\n",
              cities, params.num_ants, params.iterations,
              std::string(lrb::aco::to_string(params.rule)).c_str(),
              params.variant == lrb::aco::AcoVariant::kMaxMin ? " (MMAS)" : "");

  const auto instance = lrb::aco::random_euclidean_instance(cities, seed);
  const auto nn_len =
      instance.tour_length(instance.nearest_neighbor_tour(0));
  std::printf("nearest-neighbour baseline: %.2f\n\n", nn_len);

  lrb::WallTimer timer;
  lrb::aco::AntSystem solver(instance, params);
  const auto result = solver.run(seed + 1);
  const double elapsed = timer.elapsed_seconds();

  lrb::Table table({"iteration", "iteration-best tour length"});
  const std::size_t stride = std::max<std::size_t>(1, result.history.size() / 10);
  for (std::size_t i = 0; i < result.history.size(); i += stride) {
    table.add_row({std::to_string(i), lrb::format_fixed(result.history[i], 2)});
  }
  table.print(std::cout);

  std::printf(
      "\nbest tour: %.2f (%.1f%% of NN baseline) | %s roulette selections in "
      "%s (%s)\n",
      result.best_length, 100.0 * result.best_length / nn_len,
      lrb::format_count(result.selections).c_str(),
      lrb::format_duration(elapsed).c_str(),
      lrb::format_rate(static_cast<double>(result.selections) / elapsed).c_str());
  return 0;
}
