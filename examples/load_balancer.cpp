// Weighted task dispatch: a load balancer whose routing weights change on
// every request — the workload where bidding beats prebuilt structures.
//
//   $ ./load_balancer [--servers=16] [--requests=200000] [--seed=5]
//
// Each server advertises remaining capacity; requests route
// capacity-proportionately (so no server starves, unlike
// pick-most-capacity).  Because the weights change after *every* dispatch,
// CDF/alias tables would rebuild per request (O(n) or worse); bidding just
// draws over the live weights.
#include <cstdio>
#include <iostream>
#include <vector>

#include "lrb.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t servers = args.get_u64("servers", 16);
  const std::uint64_t requests = args.get_u64("requests", 200000);
  const std::uint64_t seed = args.get_u64("seed", 5);

  // Heterogeneous capacities: server j refills at rate 1 + j/4 units/tick.
  std::vector<double> capacity(servers);
  std::vector<double> refill(servers);
  for (std::size_t j = 0; j < servers; ++j) {
    refill[j] = 1.0 + static_cast<double>(j) / 4.0;
    capacity[j] = 100.0 * refill[j];
  }

  lrb::rng::Xoshiro256StarStar gen(seed);
  std::vector<std::uint64_t> dispatched(servers, 0);
  std::uint64_t rejected = 0;
  lrb::WallTimer timer;

  for (std::uint64_t r = 0; r < requests; ++r) {
    // Weights = live capacities; saturated servers (0) are never picked.
    double total = 0.0;
    for (double c : capacity) total += c;
    if (total <= 0.0) {
      ++rejected;
    } else {
      const std::size_t target = lrb::core::select_bidding(capacity, gen);
      capacity[target] -= 1.0;
      if (capacity[target] < 0.0) capacity[target] = 0.0;
      ++dispatched[target];
    }
    // Refill tick every 64 requests.
    if (r % 64 == 0) {
      for (std::size_t j = 0; j < servers; ++j) {
        capacity[j] = std::min(capacity[j] + refill[j], 100.0 * refill[j]);
      }
    }
  }
  const double elapsed = timer.elapsed_seconds();

  // Fair proportional routing should track refill-rate shares.
  double refill_total = 0.0;
  for (double f : refill) refill_total += f;
  lrb::Table table({"server", "refill share", "dispatch share", "requests"});
  for (std::size_t j = 0; j < servers; ++j) {
    table.add_row({std::to_string(j),
                   lrb::format_fixed(refill[j] / refill_total, 4),
                   lrb::format_fixed(static_cast<double>(dispatched[j]) /
                                         static_cast<double>(requests),
                                     4),
                   lrb::format_count(dispatched[j])});
  }
  table.print(std::cout);
  std::printf("\n%s requests dispatched, %s rejected, %s (%s)\n",
              lrb::format_count(requests - rejected).c_str(),
              lrb::format_count(rejected).c_str(),
              lrb::format_duration(elapsed).c_str(),
              lrb::format_rate(static_cast<double>(requests) / elapsed).c_str());
  return 0;
}
