// Genetic algorithm with fitness-proportionate parent selection — the
// textbook home of roulette wheel selection.
//
//   $ ./genetic_algorithm [--pop=128] [--genes=64] [--gens=200] [--seed=11]
//                         [--rule=bidding|independent]
//
// Maximizes the OneMax-with-plateaus objective.  Parent pairs are drawn
// without replacement via top-2 bidding (core::sample_without_replacement),
// demonstrating the library on the GA workload and showing how the biased
// independent rule collapses population diversity.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "lrb.hpp"

namespace {

using Genome = std::vector<std::uint8_t>;

/// OneMax with a deceptive plateau: score = ones, +bonus for all-ones
/// blocks of 8.
double evaluate(const Genome& g) {
  double score = 0.0;
  for (std::size_t b = 0; b < g.size(); b += 8) {
    int ones = 0;
    const std::size_t end = std::min(g.size(), b + 8);
    for (std::size_t i = b; i < end; ++i) ones += g[i];
    score += ones;
    if (ones == static_cast<int>(end - b)) score += 4.0;  // block bonus
  }
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t pop_size = args.get_u64("pop", 128);
  const std::size_t genes = args.get_u64("genes", 64);
  const std::size_t generations = args.get_u64("gens", 200);
  const std::uint64_t seed = args.get_u64("seed", 11);
  const std::string rule = args.get_string("rule", "bidding");
  const bool use_bidding = rule == "bidding";

  const double max_score =
      static_cast<double>(genes) + 4.0 * (static_cast<double>(genes) / 8.0);
  std::printf("GA: population %zu, %zu genes, %zu generations, parent "
              "selection = %s (optimum score %.0f)\n\n",
              pop_size, genes, generations, rule.c_str(), max_score);

  lrb::rng::SeedSequence seeds(seed);
  lrb::rng::Xoshiro256StarStar gen(seeds.child("init"));

  std::vector<Genome> population(pop_size, Genome(genes));
  for (auto& g : population) {
    for (auto& bit : g) bit = lrb::rng::u01_closed_open(gen) < 0.5 ? 1 : 0;
  }

  std::vector<double> fitness(pop_size);
  double best = 0.0;
  std::size_t solved_at = 0;

  for (std::size_t generation = 0; generation < generations; ++generation) {
    for (std::size_t i = 0; i < pop_size; ++i) {
      fitness[i] = evaluate(population[i]);
      if (fitness[i] > best) best = fitness[i];
    }
    if (best >= max_score && solved_at == 0) solved_at = generation;

    std::vector<Genome> next;
    next.reserve(pop_size);
    // Elitism: keep the single best genome.
    std::size_t elite = 0;
    for (std::size_t i = 1; i < pop_size; ++i) {
      if (fitness[i] > fitness[elite]) elite = i;
    }
    next.push_back(population[elite]);

    lrb::rng::Xoshiro256StarStar breed(seeds.child("breed", generation));
    while (next.size() < pop_size) {
      std::size_t pa, pb;
      if (use_bidding) {
        // Two distinct parents, fitness-proportionately without replacement.
        const auto parents = lrb::core::sample_without_replacement(
            fitness, 2, seeds.child("parents", generation * pop_size + next.size()));
        pa = parents[0];
        pb = parents[1];
      } else {
        pa = lrb::core::select_independent(fitness, breed);
        pb = lrb::core::select_independent(fitness, breed);
      }
      // Uniform crossover + mutation.
      Genome child(genes);
      for (std::size_t i = 0; i < genes; ++i) {
        child[i] = (lrb::rng::u01_closed_open(breed) < 0.5 ? population[pa]
                                                           : population[pb])[i];
        if (lrb::rng::u01_closed_open(breed) < 1.0 / static_cast<double>(genes)) {
          child[i] ^= 1;
        }
      }
      next.push_back(std::move(child));
    }
    population = std::move(next);

    if (generation % (generations / 10 == 0 ? 1 : generations / 10) == 0) {
      double mean = 0.0;
      for (double f : fitness) mean += f;
      std::printf("gen %4zu: best %.0f / %.0f, mean %.1f\n", generation, best,
                  max_score, mean / static_cast<double>(pop_size));
    }
  }

  if (solved_at > 0 || best >= max_score) {
    std::printf("\nreached the optimum (%.0f) at generation %zu\n", max_score,
                solved_at);
  } else {
    std::printf("\nbest after %zu generations: %.0f / %.0f\n", generations,
                best, max_score);
  }
  return 0;
}
