// PRAM-model walkthrough of the paper's Section III algorithm.
//
//   $ ./pram_demo [--n=64] [--k=8] [--trials=200] [--seed=7]
//
// Simulates the CRCW write race on the cycle-accurate machine, prints the
// round-by-round behaviour for one selection, then the round statistics
// over many trials against the Theorem 1 envelope 2*ceil(log2 k).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "lrb.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::size_t n = args.get_u64("n", 64);
  const std::size_t k = std::min<std::size_t>(args.get_u64("k", 8), n);
  const std::uint64_t trials = args.get_u64("trials", 200);
  const std::uint64_t seed = args.get_u64("seed", 7);

  // n processors, k of them with positive fitness.
  std::vector<double> fitness(n, 0.0);
  for (std::size_t j = 0; j < k; ++j) fitness[j * n / k] = 1.0 + (j % 3);

  std::printf("CRCW-PRAM race: n=%zu processors, k=%zu active\n\n", n, k);

  // One instrumented run.
  const auto first = lrb::pram::crcw_bidding_selection(fitness, seed, seed + 1);
  std::printf("selected processor %zu after %llu rounds "
              "(%llu write attempts, shared memory: 2 cells)\n\n",
              first.winner,
              static_cast<unsigned long long>(first.rounds),
              static_cast<unsigned long long>(first.write_attempts));

  // Round statistics over trials.
  lrb::stats::OnlineMoments rounds;
  lrb::stats::SelectionHistogram hist(n);
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto r =
        lrb::pram::crcw_bidding_selection(fitness, seed + 2 * t, seed + 2 * t + 1);
    rounds.add(static_cast<double>(r.rounds));
    hist.record(r.winner);
  }
  const double envelope = 2.0 * std::ceil(std::log2(static_cast<double>(k)));
  std::printf("rounds over %llu trials: mean=%.2f sd=%.2f max=%.0f | "
              "Theorem 1 envelope 2*ceil(log2 k) = %.0f\n",
              static_cast<unsigned long long>(trials), rounds.mean(),
              rounds.stddev(), rounds.max(), envelope);

  // Contrast with the EREW baselines.
  const auto erew = lrb::pram::erew_prefix_sum_selection(fitness, seed + 99);
  std::printf("\nEREW prefix-sum baseline: %llu rounds, %zu shared cells "
              "(O(log n) time, O(n) memory)\n",
              static_cast<unsigned long long>(erew.rounds), erew.memory_cells);

  // Selection exactness on this fitness vector.
  const auto gof =
      lrb::stats::chi_square_gof(hist, lrb::core::exact_probabilities(fitness));
  std::printf("\nselection frequencies vs F_i: chi2=%.2f p=%.3f -> %s\n",
              gof.statistic, gof.p_value,
              gof.consistent_with_model(1e-4) ? "consistent" : "REJECTED");
  return 0;
}
