// Streaming weighted selection over an unbounded event stream.
//
//   $ ./streaming_topk [--events=1000000] [--k=10] [--seed=21]
//
// Scenario: a telemetry pipeline sees a stream of events with importance
// weights and must keep (a) one fitness-proportionately sampled event and
// (b) a weighted sample of k distinct events — single pass, O(k) memory,
// no knowledge of the stream length.  Exactly the regime where the bid
// formulation shines: prefix-sum methods need the total weight up front.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "lrb.hpp"

int main(int argc, char** argv) {
  const lrb::CliArgs args(argc, argv);
  const std::uint64_t events = args.get_u64("events", 1'000'000);
  const std::size_t k = args.get_u64("k", 10);
  const std::uint64_t seed = args.get_u64("seed", 21);

  std::printf("streaming %llu weighted events, keeping 1 sampled event + "
              "top-%zu weighted sample\n\n",
              static_cast<unsigned long long>(events), k);

  // Synthetic event stream: importance is heavy-tailed (Pareto-ish), with
  // 90%% of events at weight ~1 and rare spikes.
  lrb::rng::Xoshiro256StarStar workload(seed);
  lrb::core::StreamingSelector one(seed + 1);
  lrb::core::StreamingSampler sample(k, seed + 2);

  double total_weight = 0.0;
  double max_weight = 0.0;
  std::uint64_t max_index = 0;
  lrb::WallTimer timer;
  for (std::uint64_t t = 0; t < events; ++t) {
    const double u = lrb::rng::u01_open_open(workload);
    const double weight = std::pow(u, -0.6);  // Pareto tail, alpha ~ 1.67
    total_weight += weight;
    if (weight > max_weight) {
      max_weight = weight;
      max_index = t;
    }
    (void)one.offer(weight);
    (void)sample.offer(weight);
  }
  const double elapsed = timer.elapsed_seconds();

  std::printf("stream total weight: %.3e (max single weight %.3e at event "
              "%llu)\n",
              total_weight, max_weight,
              static_cast<unsigned long long>(max_index));
  std::printf("single sampled event: #%llu\n",
              static_cast<unsigned long long>(one.winner()));

  const auto picks = sample.sample();
  std::printf("weighted sample (selection order): ");
  for (std::size_t i = 0; i < picks.size(); ++i) {
    std::printf("%s#%llu", i ? ", " : "",
                static_cast<unsigned long long>(picks[i]));
  }
  std::printf("\n\nprocessed %s (%s) with O(k) memory and one pass\n",
              lrb::format_count(events).c_str(),
              lrb::format_rate(static_cast<double>(events) / elapsed).c_str());
  return 0;
}
