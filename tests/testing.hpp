// Shared helpers for the lrb test suite.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/fitness.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"

namespace lrb::testing {

/// Draws `draws` selections from `select(i)` (a callable returning an index)
/// and returns the histogram.
template <typename SelectFn>
stats::SelectionHistogram collect(std::size_t arity, std::uint64_t draws,
                                  SelectFn&& select) {
  stats::SelectionHistogram hist(arity);
  for (std::uint64_t t = 0; t < draws; ++t) hist.record(select());
  return hist;
}

/// Asserts that `hist` is chi-square-consistent with the exact roulette
/// probabilities of `fitness` at significance `alpha`.
///
/// alpha = 1e-6 keeps the suite's aggregate false-failure rate negligible
/// (hundreds of seeded-deterministic tests) while still catching any real
/// bias: a wrong algorithm fails with p ~ 0 at these sample sizes.
inline void expect_matches_roulette(const stats::SelectionHistogram& hist,
                                    std::span<const double> fitness,
                                    double alpha = 1e-6) {
  // Zero-fitness indices must have exactly zero selections.
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (fitness[i] == 0.0) {
      EXPECT_EQ(hist.count(i), 0u) << "zero-fitness index " << i << " selected";
    }
  }
  // With a single positive entry the chi-square is degenerate: every draw
  // must land there, which the zero checks above already enforce.
  if (lrb::count_nonzero(fitness) < 2) return;
  const auto expected = core::exact_probabilities(fitness);
  const auto gof = stats::chi_square_gof(hist, expected);
  EXPECT_GE(gof.p_value, alpha)
      << "chi2=" << gof.statistic << " dof=" << gof.dof
      << " p=" << gof.p_value;
}

/// Canonical fitness shapes used across property tests.
struct NamedFitness {
  const char* name;
  std::vector<double> fitness;
};

inline std::vector<NamedFitness> canonical_fitness_cases() {
  return {
      {"paper_table1", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
      {"uniform4", {1, 1, 1, 1}},
      {"single", {0, 0, 5, 0}},
      {"two_to_one", {2, 1}},
      {"skewed", {1e-6, 1e-3, 1, 1e3}},
      {"mostly_zero", {0, 0, 0, 3, 0, 0, 1, 0, 0, 0, 0, 2, 0}},
      {"tiny_values", {1e-300, 2e-300, 3e-300}},
      {"huge_values", {1e300, 2e300}},
      {"many_equal", std::vector<double>(64, 0.5)},
  };
}

}  // namespace lrb::testing
