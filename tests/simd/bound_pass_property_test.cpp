// Property tests for the vectorized bound pass at the filter's edge — the
// same proof obligations core/bid_filter.hpp documents, executed against
// every dispatch target: the (u - 1) * (1/f) bound must ALWAYS sit at or
// above the true bid log(u)/f (with the clamped reciprocal), the gate slack
// must absorb its rounding, and therefore the filtered kernels must never
// discard a true winner — not for subnormal fitness (where 1/f clamps to
// DBL_MAX), not for 1e308 fitness (where 1/f is itself subnormal), not for
// active counts straddling the lane width, not for all-ties blocks where
// every bound collides.
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/bid_filter.hpp"
#include "core/deterministic.hpp"
#include "core/draw_many.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/splitmix64.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"
#include "simd/dispatch.hpp"
#include "simd_testing.hpp"

namespace lrb::simd {
namespace {

/// Active counts around every lane width the engine ships (4, 8, 16) plus
/// multi-block sizes with every remainder class.
const std::vector<std::size_t> kEdgeCounts = {1,  2,  3,  4,  5,  7,  8,  9,
                                              15, 16, 17, 31, 33, 255, 257,
                                              300};

/// Fitness shapes at the numerical edge of the filter.  Totals must stay
/// finite — several 1e308 entries overflow checked_fitness_total, which the
/// library rejects by design — so the huge shapes carry ONE 1e308 item.
struct EdgeShape {
  const char* name;
  double fill;     // fill value
  double first;    // fitness[0] (the 1e308 spike lives here)
  bool alternate_tiny;  // interleave odd indices with the min subnormal
};

const EdgeShape kEdgeShapes[] = {
    {"subnormal", 5e-324, 5e-324, false},
    {"deep_subnormal_mix", 1e-320, 1e-320, true},
    {"huge_1e308_spike", 1.0, 1e308, false},
    {"huge_spike_over_tiny", 1.0, 1e308, true},
    {"all_ties_ones", 1.0, 1.0, false},
    {"all_ties_large", 3.5e10, 3.5e10, false},
};

std::vector<double> make_edge_fitness(const EdgeShape& shape, std::size_t k) {
  std::vector<double> fitness(k, shape.fill);
  fitness[0] = shape.first;
  if (shape.alternate_tiny) {
    for (std::size_t i = 1; i < k; i += 2) fitness[i] = 5e-324;
  }
  return fitness;
}

TEST(BoundPassProperty, BoundNeverSitsBelowTrueBid) {
  // The inequality the whole filter rests on, checked directly on the
  // kernel output: for every lane, ub >= log(u) / f even through the
  // DBL_MAX clamp and subnormal reciprocals.  (u - 1) <= 0, so clamping
  // 1/f DOWN moves the bound UP — the kernel must preserve exactly that.
  rng::SplitMix64 mix(2024);
  for (Target t : testing::available_targets()) {
    const Ops* table = ops_for(t);
    for (std::size_t k : kEdgeCounts) {
      std::vector<double> f(k), inv_f(k), u(k), ub(k);
      for (std::size_t i = 0; i < k; ++i) {
        switch (i % 4) {
          case 0: f[i] = 5e-324; break;      // 1/f overflows -> clamp
          case 1: f[i] = 1e308; break;       // 1/f subnormal
          case 2: f[i] = 1.0; break;
          default: f[i] = 0.25 + static_cast<double>(i % 13);
        }
        inv_f[i] = core::bid_filter::bound_reciprocal(f[i]);
        u[i] = rng::u01_open_closed_from_bits(mix());
      }
      // Include the exact-1.0 uniform edge (bid is exactly 0, the maximum).
      u[k / 2] = 1.0;
      const double block_max =
          table->bound_pass(u.data(), inv_f.data(), ub.data(), k);
      double expect_max = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < k; ++i) {
        const double bid = std::log(u[i]) / f[i];
        EXPECT_GE(ub[i], bid)
            << table->name << " k=" << k << " i=" << i << " f=" << f[i];
        if (ub[i] > expect_max) expect_max = ub[i];
      }
      EXPECT_EQ(block_max, expect_max) << table->name << " k=" << k;
    }
  }
}

TEST(BoundPassProperty, GateSlackAbsorbsBoundRounding) {
  // A winner's own bound, gated below itself, must survive the filter: for
  // any bid b, ub >= b > gate_below(b) whenever b is finite.  This is what
  // "the filter can skip work, never change a winner" means lane-locally.
  rng::SplitMix64 mix(5);
  for (Target t : testing::available_targets()) {
    const Ops* table = ops_for(t);
    for (double f : {5e-324, 1e-320, 1e-12, 1.0, 42.0, 1e12, 1e308}) {
      const std::size_t k = 64;
      std::vector<double> u(k), inv_f(k, core::bid_filter::bound_reciprocal(f)),
          ub(k);
      for (std::size_t i = 0; i < k; ++i) {
        u[i] = rng::u01_open_closed_from_bits(mix());
      }
      (void)table->bound_pass(u.data(), inv_f.data(), ub.data(), k);
      for (std::size_t i = 0; i < k; ++i) {
        const double bid = std::log(u[i]) / f;
        if (!std::isfinite(bid)) continue;  // -inf bids never gate anything
        EXPECT_GT(ub[i], core::bid_filter::gate_below(bid))
            << table->name << " f=" << f << " i=" << i;
      }
    }
  }
}

TEST(BoundPassProperty, StreamKernelNeverDiscardsTrueWinnerAtTheEdge) {
  // End to end on DrawManyKernel: at every edge shape and lane-straddling
  // active count, on every target, the filtered batch must equal a loop of
  // unfiltered select_bidding() calls — indices and engine state.
  for (Target t : testing::available_targets()) {
    testing::ScopedTarget scope(t);
    ASSERT_TRUE(scope.forced());
    for (const EdgeShape& shape : kEdgeShapes) {
      for (std::size_t k : kEdgeCounts) {
        const std::vector<double> fitness = make_edge_fitness(shape, k);
        rng::Xoshiro256StarStar batched_gen(0xbeef + k);
        rng::Xoshiro256StarStar serial_gen(0xbeef + k);
        const auto batch = core::draw_many(fitness, 40, batched_gen);
        for (std::size_t d = 0; d < batch.size(); ++d) {
          ASSERT_EQ(batch[d], core::select_bidding(fitness, serial_gen))
              << ops_for(t)->name << " " << shape.name << " k=" << k
              << " draw " << d;
        }
        EXPECT_EQ(batched_gen, serial_gen)
            << ops_for(t)->name << " " << shape.name << " k=" << k;
      }
    }
  }
}

TEST(BoundPassProperty, DeterministicKernelNeverDiscardsTrueWinnerAtTheEdge) {
  // Same obligation for the counter-based kernel, against the unfiltered
  // DeterministicBidder scan — and bit-identical across targets.
  constexpr std::uint64_t kSeed = 0x5eed;
  for (const EdgeShape& shape : kEdgeShapes) {
    for (std::size_t k : kEdgeCounts) {
      const std::vector<double> fitness = make_edge_fitness(shape, k);
      core::DeterministicBidder reference(kSeed);
      std::vector<std::size_t> expected;
      for (std::uint64_t d = 0; d < 25; ++d) {
        expected.push_back(reference.select(fitness));
      }
      for (Target t : testing::available_targets()) {
        testing::ScopedTarget scope(t);
        ASSERT_TRUE(scope.forced());
        const core::DeterministicDrawKernel kernel(fitness);
        for (std::uint64_t d = 0; d < expected.size(); ++d) {
          ASSERT_EQ(kernel.draw_one(kSeed, d), expected[d])
              << ops_for(t)->name << " " << shape.name << " k=" << k
              << " draw " << d;
        }
      }
    }
  }
}

TEST(BoundPassProperty, ShardedStreamsKeepGlobalIndexBids) {
  // index_base pushes item streams through arbitrary offsets; the SIMD
  // streams kernel must honor them bit-for-bit (a shard straddling a lane
  // boundary bids with the same global Philox stream as the whole vector).
  constexpr std::uint64_t kSeed = 99;
  const std::size_t n = 47;  // not a multiple of any lane width
  std::vector<double> fitness(n);
  for (std::size_t i = 0; i < n; ++i) {
    fitness[i] = 0.5 + static_cast<double>((i * 7) % 11);
  }
  core::DeterministicBidder reference(kSeed);
  for (Target t : testing::available_targets()) {
    testing::ScopedTarget scope(t);
    ASSERT_TRUE(scope.forced());
    reference.seek(0);
    for (std::uint64_t d = 0; d < 10; ++d) {
      const std::size_t serial = reference.select(fitness);
      // Recompose the draw from 5 shards of ragged sizes.
      double best = -std::numeric_limits<double>::infinity();
      std::uint64_t best_index = 0;
      bool found = false;
      const std::size_t cuts[] = {0, 5, 13, 14, 33, n};
      for (int s = 0; s < 5; ++s) {
        const std::span<const double> shard(fitness.data() + cuts[s],
                                            cuts[s + 1] - cuts[s]);
        const core::DeterministicDrawKernel kernel(shard, cuts[s]);
        const auto won = kernel.draw_scored(kSeed, d);
        if (!found || won.bid > best ||
            (won.bid == best && won.index < best_index)) {
          best = won.bid;
          best_index = won.index;
          found = true;
        }
      }
      ASSERT_TRUE(found);
      EXPECT_EQ(best_index, serial)
          << ops_for(t)->name << " draw " << d;
    }
  }
}

}  // namespace
}  // namespace lrb::simd
