// Shared helpers for the SIMD engine tests: enumerate the dispatch targets
// this machine can actually run, and force one for the duration of a scope.
#pragma once

#include <vector>

#include "simd/dispatch.hpp"

namespace lrb::simd::testing {

/// Every target available here (compiled in AND executable by this CPU).
/// Always contains kScalar.
inline std::vector<Target> available_targets() {
  std::vector<Target> targets;
  for (Target t : {Target::kScalar, Target::kAvx2, Target::kAvx512}) {
    if (ops_for(t) != nullptr) targets.push_back(t);
  }
  return targets;
}

/// Forces a dispatch target for one scope, restoring the previous one on
/// exit — so a test can sweep targets without leaking state into the rest
/// of the suite.
class ScopedTarget {
 public:
  explicit ScopedTarget(Target target) : previous_(active_target()) {
    forced_ = force_target(target);
  }
  ~ScopedTarget() { (void)force_target(previous_); }
  ScopedTarget(const ScopedTarget&) = delete;
  ScopedTarget& operator=(const ScopedTarget&) = delete;

  /// False when the target is unavailable (the active table is unchanged).
  [[nodiscard]] bool forced() const noexcept { return forced_; }

 private:
  Target previous_;
  bool forced_ = false;
};

}  // namespace lrb::simd::testing
