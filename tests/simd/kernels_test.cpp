// The SIMD engine's headline contract, enforced kernel by kernel: every
// dispatch target produces BIT-IDENTICAL output to the scalar reference —
// which itself routes through the same rng/ primitives the rest of the
// library uses — for every length (lane remainders included), carry edge,
// and bit pattern.  A vector lane that rounded, reordered, or wrapped
// differently anywhere would change a selection winner somewhere; these
// tests pin the arithmetic so the winner-level tests can't pass by luck.
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "rng/uniform.hpp"
#include "simd/dispatch.hpp"
#include "simd_testing.hpp"

namespace lrb::simd {
namespace {

/// Lengths covering empty, sub-lane, every remainder around the 4/8/16-lane
/// widths, and a few full blocks.
const std::vector<std::size_t> kLengths = {0,  1,  2,  3,  4,  5,  7,  8,
                                           9,  15, 16, 17, 31, 32, 33, 63,
                                           64, 65, 100, 255, 256, 257};

/// Bitwise equality for doubles (0.0 == -0.0 and NaN != NaN are exactly the
/// traps value comparison would hide).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

TEST(SimdKernels, PhiloxCounterRangeMatchesEngineWords) {
  // The counter-range kernel IS the PhiloxRng word sequence: check the
  // scalar table against the engine, then every other target against scalar.
  const Ops* scalar = ops_for(Target::kScalar);
  ASSERT_NE(scalar, nullptr);
  const std::uint64_t seed = 0x853c49e6748fea9bULL;
  const std::uint64_t stream = 0xda3e39cb94b95bdbULL;
  for (std::uint64_t counter0 : {std::uint64_t{0}, std::uint64_t{12345},
                                 (std::uint64_t{1} << 32) - 3,
                                 ~std::uint64_t{0} - 500}) {
    for (std::size_t n : kLengths) {
      std::vector<std::uint64_t> reference(2 * n + 1, 0xAAu);
      scalar->philox_words_counter_range(seed, stream, counter0,
                                         reference.data(), n);
      EXPECT_EQ(reference.back(), 0xAAu) << "scalar wrote past 2n";
      for (std::size_t i = 0; i < n; ++i) {
        const rng::PhiloxBlock block =
            rng::philox_block_at(seed, counter0 + i, stream);
        ASSERT_EQ(reference[2 * i], block.u64_lo()) << "counter0=" << counter0
                                                    << " block " << i;
        ASSERT_EQ(reference[2 * i + 1], block.u64_hi());
      }
      for (Target t : testing::available_targets()) {
        std::vector<std::uint64_t> out(2 * n + 1, 0xBBu);
        ops_for(t)->philox_words_counter_range(seed, stream, counter0,
                                               out.data(), n);
        EXPECT_EQ(out.back(), 0xBBu) << ops_for(t)->name << " wrote past 2n";
        out.pop_back();
        reference.pop_back();
        EXPECT_EQ(out, reference)
            << ops_for(t)->name << " n=" << n << " counter0=" << counter0;
        reference.push_back(0xAAu);
      }
    }
  }
}

TEST(SimdKernels, PhiloxStreamsMatchesDeterministicBits) {
  const std::uint64_t seed = 0xc0ffee;
  rng::SplitMix64 mix(99);
  for (std::size_t n : kLengths) {
    // Streams spanning both dword halves: small indices, 2^32 straddlers,
    // and full-width values — the shapes shard offsets actually produce.
    std::vector<std::uint64_t> streams(n);
    for (std::size_t i = 0; i < n; ++i) {
      streams[i] = (i % 3 == 0)   ? i
                   : (i % 3 == 1) ? (std::uint64_t{1} << 32) + i
                                  : mix();
    }
    for (std::uint64_t counter : {std::uint64_t{0}, std::uint64_t{7},
                                  ~std::uint64_t{0}}) {
      std::vector<std::uint64_t> reference(n);
      ops_for(Target::kScalar)
          ->philox_bits_streams(seed, counter, streams.data(),
                                reference.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(reference[i], rng::philox_u64_at(seed, counter, streams[i]));
      }
      for (Target t : testing::available_targets()) {
        std::vector<std::uint64_t> out(n, 0xCCu);
        ops_for(t)->philox_bits_streams(seed, counter, streams.data(),
                                        out.data(), n);
        EXPECT_EQ(out, reference) << ops_for(t)->name << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, PhiloxKeyedMatchesPerElementReference) {
  // The multi-tenant tile fill: every element carries its own (seed,
  // counter, stream) triple.  The scalar table must equal philox_u64_at
  // per element, and every vector target must equal scalar — per-lane round
  // keys are the only difference from the fixed-seed kernel, so a wrong
  // key-schedule lane would show up here immediately.
  rng::SplitMix64 mix(2024);
  for (std::size_t n : kLengths) {
    std::vector<std::uint64_t> seeds(n), counters(n), streams(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Cover both dword halves of all three key words: small values,
      // 2^32 straddlers, and full-width randoms, phase-shifted so no two
      // arrays correlate.
      seeds[i] = (i % 3 == 0) ? i : (i % 3 == 1) ? ~std::uint64_t{0} - i
                                                 : mix();
      counters[i] = (i % 3 == 1) ? i : (i % 3 == 2)
                        ? (std::uint64_t{1} << 32) + i
                        : mix();
      streams[i] = (i % 3 == 2) ? i : mix();
    }
    std::vector<std::uint64_t> reference(n);
    ops_for(Target::kScalar)
        ->philox_bits_keyed(seeds.data(), counters.data(), streams.data(),
                            reference.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(reference[i],
                rng::philox_u64_at(seeds[i], counters[i], streams[i]));
    }
    for (Target t : testing::available_targets()) {
      std::vector<std::uint64_t> out(n, 0xDDu);
      ops_for(t)->philox_bits_keyed(seeds.data(), counters.data(),
                                    streams.data(), out.data(), n);
      EXPECT_EQ(out, reference) << ops_for(t)->name << " n=" << n;
    }
  }
}

TEST(SimdKernels, FillU01MatchesSharedConversionBitForBit) {
  rng::SplitMix64 mix(7);
  for (std::size_t n : kLengths) {
    std::vector<std::uint64_t> bits(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Pin the conversion edges first, then random patterns.
      bits[i] = (i == 0)   ? 0
                : (i == 1) ? ~std::uint64_t{0}
                : (i == 2) ? (std::uint64_t{1} << 11) - 1
                : (i == 3) ? (std::uint64_t{1} << 11)
                           : mix();
    }
    std::vector<double> reference(n);
    ops_for(Target::kScalar)->fill_u01_from_bits(bits.data(), reference.data(),
                                                 n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(
          same_bits(reference[i], rng::u01_open_closed_from_bits(bits[i])));
    }
    for (Target t : testing::available_targets()) {
      std::vector<double> out(n, -1.0);
      ops_for(t)->fill_u01_from_bits(bits.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(same_bits(out[i], reference[i]))
            << ops_for(t)->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, BoundPassMatchesScalarBitForBit) {
  rng::SplitMix64 mix(13);
  for (std::size_t n : kLengths) {
    std::vector<double> u(n), inv_f(n);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = rng::u01_open_closed_from_bits(mix());
      // Reciprocals across the whole legal range, including the DBL_MAX
      // clamp for subnormal fitness and subnormal 1/f for huge fitness.
      inv_f[i] = (i % 7 == 0)   ? std::numeric_limits<double>::max()
                 : (i % 7 == 1) ? 1e-308
                                : 1.0 / (0.25 + static_cast<double>(i % 13));
    }
    std::vector<double> reference(n);
    const double ref_max = ops_for(Target::kScalar)
                               ->bound_pass(u.data(), inv_f.data(),
                                            reference.data(), n);
    if (n == 0) {
      EXPECT_EQ(ref_max, -std::numeric_limits<double>::infinity());
    }
    for (Target t : testing::available_targets()) {
      std::vector<double> ub(n, -7.0);
      const double got_max =
          ops_for(t)->bound_pass(u.data(), inv_f.data(), ub.data(), n);
      EXPECT_TRUE(same_bits(got_max, ref_max)) << ops_for(t)->name << " n=" << n;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(same_bits(ub[i], reference[i]))
            << ops_for(t)->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, PhiloxEngineBulkFillMatchesSerialLoopAndState) {
  // fill_bits(PhiloxRng&) must yield the word-for-word engine sequence AND
  // leave the engine in the state a serial loop would — from every starting
  // phase, at every length, on every target.
  for (Target t : testing::available_targets()) {
    testing::ScopedTarget scope(t);
    ASSERT_TRUE(scope.forced());
    for (std::size_t warmup : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
      for (std::size_t n : kLengths) {
        rng::PhiloxRng bulk(42, 7);
        rng::PhiloxRng serial(42, 7);
        for (std::size_t w = 0; w < warmup; ++w) {
          (void)bulk();
          (void)serial();
        }
        std::vector<std::uint64_t> out(n);
        rng::fill_bits(bulk, std::span<std::uint64_t>(out));
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[i], serial()) << "target " << ops_for(t)->name
                                      << " warmup " << warmup << " word " << i;
        }
        EXPECT_EQ(bulk, serial) << "engine state diverged";
        // And the (0,1] bulk fill: same doubles, same final state.
        rng::PhiloxRng bulk_u(42, 7);
        rng::PhiloxRng serial_u(42, 7);
        for (std::size_t w = 0; w < warmup; ++w) {
          (void)bulk_u();
          (void)serial_u();
        }
        std::vector<double> us(n);
        rng::fill_u01_open_closed(bulk_u, std::span<double>(us));
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(same_bits(us[i], rng::u01_open_closed(serial_u)));
        }
        EXPECT_EQ(bulk_u, serial_u);
      }
    }
  }
}

}  // namespace
}  // namespace lrb::simd
