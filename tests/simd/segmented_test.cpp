// simd/segmented.hpp: the tile-wide sweep over ragged segments must be
// bit-identical to invoking the kernels once per segment — on every
// dispatch target, at every segmentation, including segments that straddle
// any lane width.
#include "simd/segmented.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "rng/splitmix64.hpp"
#include "simd_testing.hpp"

namespace lrb::simd {
namespace {

// Deterministic raw bits / reciprocal buffers (the shapes the WheelSet
// pipeline feeds: bits arbitrary, inv_f finite positive).
void make_inputs(std::size_t n, std::vector<std::uint64_t>& bits,
                 std::vector<double>& inv_f) {
  rng::SplitMix64 gen(n * 2654435761u + 17);
  bits.resize(n);
  inv_f.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    bits[i] = gen();
    inv_f[i] = 1e-3 + static_cast<double>(gen() >> 40);
  }
}

// Ragged segmentations of [0, n): tiny wheels, lane-straddling sizes, and
// one segment covering the whole tile.
std::vector<std::vector<Segment>> segmentations(std::size_t n) {
  std::vector<std::vector<Segment>> out;
  for (std::size_t width : {1u, 3u, 7u, 8u, 9u, 64u}) {
    std::vector<Segment> segs;
    for (std::size_t begin = 0; begin < n; begin += width) {
      segs.push_back({begin, std::min(width, n - begin)});
    }
    out.push_back(std::move(segs));
  }
  out.push_back({Segment{0, n}});
  // Mixed ragged sizes 1, 2, 3, ... wrapping.
  std::vector<Segment> ragged;
  std::size_t begin = 0, len = 1;
  while (begin < n) {
    const std::size_t take = std::min(len, n - begin);
    ragged.push_back({begin, take});
    begin += take;
    len = len % 13 + 1;
  }
  out.push_back(std::move(ragged));
  return out;
}

TEST(SegmentedBoundPass, BitEqualToPerSegmentKernelCalls) {
  for (const std::size_t n : {1u, 5u, 63u, 64u, 257u, 1000u}) {
    std::vector<std::uint64_t> bits;
    std::vector<double> inv_f;
    make_inputs(n, bits, inv_f);
    for (Target target : testing::available_targets()) {
      testing::ScopedTarget force(target);
      ASSERT_TRUE(force.forced());
      const Ops& ops = lrb::simd::ops();
      for (const auto& segs : segmentations(n)) {
        std::vector<double> u(n), ub(n), seg_max(segs.size());
        segmented_bound_pass(ops, bits.data(), inv_f.data(), u.data(),
                             ub.data(), n, segs.data(), segs.size(),
                             seg_max.data());
        // Reference: one kernel invocation per segment into fresh buffers.
        std::vector<double> ru(n), rub(n);
        for (std::size_t s = 0; s < segs.size(); ++s) {
          const Segment sg = segs[s];
          ops.fill_u01_from_bits(bits.data() + sg.begin, ru.data() + sg.begin,
                                 sg.len);
          const double ref_max =
              ops.bound_pass(ru.data() + sg.begin, inv_f.data() + sg.begin,
                             rub.data() + sg.begin, sg.len);
          ASSERT_EQ(seg_max[s], ref_max)
              << "n=" << n << " target=" << ops.name << " seg=" << s;
        }
        ASSERT_EQ(std::memcmp(u.data(), ru.data(), n * sizeof(double)), 0);
        ASSERT_EQ(std::memcmp(ub.data(), rub.data(), n * sizeof(double)), 0);
      }
    }
  }
}

TEST(SegmentedBoundPass, EmptySegmentYieldsMinusInfinity) {
  std::vector<std::uint64_t> bits;
  std::vector<double> inv_f;
  make_inputs(16, bits, inv_f);
  const std::vector<Segment> segs = {{0, 8}, {8, 0}, {8, 8}};
  std::vector<double> u(16), ub(16), seg_max(3);
  segmented_bound_pass(lrb::simd::ops(), bits.data(), inv_f.data(), u.data(),
                       ub.data(), 16, segs.data(), segs.size(),
                       seg_max.data());
  EXPECT_EQ(seg_max[1], -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(seg_max[0] >= ub[0]);
}

}  // namespace
}  // namespace lrb::simd
