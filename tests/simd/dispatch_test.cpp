// Dispatch contract: the table is resolved once, every published pointer is
// callable, LRB_SIMD pins the target, and force_target round-trips.  The CI
// dispatch matrix leg (LRB_SIMD=scalar / LRB_SIMD=avx2) leans on the
// env-honored test here to prove the whole suite really ran on the target
// it claims.
#include "simd/dispatch.hpp"

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "simd_testing.hpp"

namespace lrb::simd {
namespace {

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  const Ops* scalar = ops_for(Target::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_STREQ(scalar->name, "scalar");
  EXPECT_EQ(scalar->target, Target::kScalar);
}

TEST(SimdDispatch, PublishedTablesAreComplete) {
  for (Target t : testing::available_targets()) {
    const Ops* table = ops_for(t);
    ASSERT_NE(table, nullptr);
    EXPECT_NE(table->name, nullptr);
    EXPECT_NE(table->philox_words_counter_range, nullptr);
    EXPECT_NE(table->philox_bits_streams, nullptr);
    EXPECT_NE(table->philox_bits_keyed, nullptr);
    EXPECT_NE(table->fill_u01_from_bits, nullptr);
    EXPECT_NE(table->bound_pass, nullptr);
    EXPECT_EQ(table->target, t);
  }
}

TEST(SimdDispatch, ActiveTargetIsAvailable) {
  EXPECT_NE(ops_for(active_target()), nullptr);
  EXPECT_STREQ(target_name(), ops().name);
}

TEST(SimdDispatch, UnavailableTargetIsNull) {
  // A target the CPU can't execute must never be handed out, regardless of
  // what was compiled in.
  for (Target t : {Target::kAvx2, Target::kAvx512}) {
    if (!cpu_supports(t)) {
      EXPECT_EQ(ops_for(t), nullptr);
    }
  }
}

TEST(SimdDispatch, EnvOverrideHonored) {
  // When LRB_SIMD names an available target, the process-wide dispatch MUST
  // have landed on it — this is the assertion the CI matrix leg exists for.
  const char* env = std::getenv("LRB_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    GTEST_SKIP() << "LRB_SIMD not pinned";
  }
  Target requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Target::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Target::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = Target::kAvx512;
  } else {
    GTEST_SKIP() << "unrecognized LRB_SIMD value: " << env;
  }
  if (ops_for(requested) == nullptr) {
    GTEST_SKIP() << "LRB_SIMD=" << env << " unavailable on this machine";
  }
  // force_target may have moved the active table inside this very binary;
  // what we can assert unconditionally is that forcing the requested target
  // succeeds and lands exactly where the env asked.
  testing::ScopedTarget scope(requested);
  ASSERT_TRUE(scope.forced());
  EXPECT_EQ(active_target(), requested);
  EXPECT_STREQ(target_name(), env);
}

TEST(SimdDispatch, ForceTargetRoundTrips) {
  const Target original = active_target();
  for (Target t : testing::available_targets()) {
    {
      testing::ScopedTarget scope(t);
      ASSERT_TRUE(scope.forced());
      EXPECT_EQ(active_target(), t);
      EXPECT_STREQ(target_name(), ops_for(t)->name);
    }
    EXPECT_EQ(active_target(), original) << "ScopedTarget must restore";
  }
}

TEST(SimdDispatch, ForceUnavailableTargetFailsAndKeepsActive) {
  const Target original = active_target();
  for (Target t : {Target::kAvx2, Target::kAvx512}) {
    if (ops_for(t) != nullptr) continue;
    EXPECT_FALSE(force_target(t));
    EXPECT_EQ(active_target(), original);
  }
}

}  // namespace
}  // namespace lrb::simd
