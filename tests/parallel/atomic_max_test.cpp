#include "parallel/atomic_max.hpp"

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::parallel {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(OrderPreservingBits, MonotoneOverRepresentativeDoubles) {
  const std::vector<double> vals = {-kInf, -1e300, -2.5, -1.0, -1e-300, 0.0,
                                    1e-300, 0.5, 1.0, 2.5, 1e300, kInf};
  for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
    EXPECT_LT(detail::order_preserving_bits(vals[i]),
              detail::order_preserving_bits(vals[i + 1]))
        << vals[i] << " vs " << vals[i + 1];
  }
}

TEST(OrderPreservingBits, RoundTrips) {
  for (double d : {-kInf, -3.25, -0.0, 0.0, 7.5, kInf}) {
    EXPECT_EQ(detail::double_from_order_bits(detail::order_preserving_bits(d)), d);
  }
}

TEST(AtomicMaxCell, SerialUpdatesKeepMaximum) {
  AtomicMaxCell cell;
  EXPECT_EQ(cell.load(), -kInf);
  cell.update(-3.0);
  EXPECT_DOUBLE_EQ(cell.load(), -3.0);
  cell.update(-5.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(cell.load(), -3.0);
  cell.update(-1.0);
  EXPECT_DOUBLE_EQ(cell.load(), -1.0);
}

TEST(AtomicMaxCell, UpdateReturnsZeroAttemptsWhenDominated) {
  AtomicMaxCell cell(10.0);
  EXPECT_EQ(cell.update(5.0), 0u);
  EXPECT_GE(cell.update(20.0), 1u);
}

TEST(AtomicMaxCell, ConcurrentRaceFindsGlobalMax) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  AtomicMaxCell cell;
  std::vector<std::vector<double>> values(kThreads);
  double expected = -kInf;
  rng::Xoshiro256StarStar gen(77);
  for (auto& vs : values) {
    vs.resize(kPerThread);
    for (auto& v : vs) {
      v = rng::u01_closed_open(gen) * 2000.0 - 1000.0;
      expected = std::max(expected, v);
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (double v : values[t]) cell.update(v);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(cell.load(), expected);
}

TEST(AtomicArgMaxCell, SerialKeepsValueAndIndex) {
  AtomicArgMaxCell cell;
  cell.update(-4.0, 3);
  EXPECT_DOUBLE_EQ(cell.load().bid, -4.0);
  EXPECT_EQ(cell.load().index, 3u);
  cell.update(-2.0, 9);
  EXPECT_DOUBLE_EQ(cell.load().bid, -2.0);
  EXPECT_EQ(cell.load().index, 9u);
  cell.update(-3.0, 1);  // lower bid: ignored
  EXPECT_EQ(cell.load().index, 9u);
}

TEST(AtomicArgMaxCell, TieBreaksToSmallerIndex) {
  AtomicArgMaxCell cell;
  cell.update(-1.5, 7);
  cell.update(-1.5, 3);  // equal bid, smaller index: wins
  EXPECT_EQ(cell.load().index, 3u);
  cell.update(-1.5, 12);  // equal bid, larger index: loses
  EXPECT_EQ(cell.load().index, 3u);
}

TEST(AtomicArgMaxCell, InstalledFlagTracksOutcome) {
  AtomicArgMaxCell cell;
  auto r1 = cell.update(-2.0, 1);
  EXPECT_TRUE(r1.installed);
  auto r2 = cell.update(-5.0, 2);
  EXPECT_FALSE(r2.installed);
  EXPECT_EQ(r2.attempts, 0u);
}

TEST(AtomicArgMaxCell, ConcurrentRaceFindsArgMax) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  AtomicArgMaxCell cell;
  // Unique values so the argmax is unambiguous.
  std::vector<double> all(kThreads * kPerThread);
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = -static_cast<double>(i) - 0.5;
  }
  // Shuffle deterministically.
  rng::Xoshiro256StarStar gen(123);
  for (std::size_t i = all.size(); i > 1; --i) {
    std::swap(all[i - 1], all[rng::uniform_below(gen, i)]);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kPerThread; ++j) {
        const std::size_t idx = t * kPerThread + j;
        cell.update(all[idx], static_cast<std::uint32_t>(idx));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Global max is -0.5 wherever it landed after the shuffle.
  const auto winner = cell.load();
  EXPECT_DOUBLE_EQ(winner.bid, -0.5);
  EXPECT_DOUBLE_EQ(all[winner.index], -0.5);
}

TEST(AtomicArgMaxCell, NegativeZeroAndZeroOrder) {
  AtomicArgMaxCell cell;
  cell.update(-0.0, 1);
  // +0.0 must not lose to -0.0 (they compare equal as doubles; the packed
  // encoding maps them to adjacent keys with +0.0 >= -0.0).
  cell.update(0.0, 2);
  EXPECT_DOUBLE_EQ(cell.load().bid, 0.0);
}

}  // namespace
}  // namespace lrb::parallel
