#include "parallel/barrier.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lrb::parallel {
namespace {

TEST(SpinBarrier, SinglePartyPassesImmediately) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  EXPECT_EQ(barrier.phase(), 100u);
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 200;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < kPhases; ++phase) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread of this phase has incremented.
        if (counter.load() < static_cast<int>(kThreads) * (phase + 1)) {
          failed.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), static_cast<int>(kThreads) * kPhases);
  EXPECT_EQ(barrier.phase(), 2u * kPhases);
}

TEST(SpinBarrier, PartiesAccessor) {
  SpinBarrier barrier(3);
  EXPECT_EQ(barrier.parties(), 3u);
  EXPECT_EQ(barrier.phase(), 0u);
}

TEST(SpinBarrier, ManyPhasesNoDeadlock) {
  constexpr std::size_t kThreads = 2;
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) barrier.arrive_and_wait();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(barrier.phase(), 10000u);
}

}  // namespace
}  // namespace lrb::parallel
