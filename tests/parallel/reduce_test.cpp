#include "parallel/reduce.hpp"

#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::parallel {
namespace {

TEST(ParallelSum, MatchesSerialForSmall) {
  ThreadPool pool(4);
  const std::vector<double> xs = {1.0, 2.0, 3.5};
  EXPECT_DOUBLE_EQ(parallel_sum(pool, xs), 6.5);
}

TEST(ParallelSum, MatchesAccurateSumForLarge) {
  ThreadPool pool(4);
  rng::Xoshiro256StarStar gen(5);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng::u01_closed_open(gen);
  const double serial = lrb::accurate_sum(xs);
  EXPECT_NEAR(parallel_sum(pool, xs), serial, 1e-9);
}

TEST(ArgmaxSerial, BasicAndTies) {
  const std::vector<double> xs = {1.0, 5.0, 3.0, 5.0, 2.0};
  const auto r = argmax_serial(xs);
  EXPECT_EQ(r.index, 1u);  // first of the tied maxima
  EXPECT_DOUBLE_EQ(r.value, 5.0);
}

TEST(ArgmaxSerial, AllNegativeInfinity) {
  const std::vector<double> xs(4, -std::numeric_limits<double>::infinity());
  const auto r = argmax_serial(xs);
  EXPECT_EQ(r.index, 0u);
}

TEST(ArgmaxSerial, SingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_EQ(argmax_serial(xs).index, 0u);
  EXPECT_DOUBLE_EQ(argmax_serial(xs).value, 42.0);
}

TEST(ParallelArgmax, MatchesSerialAcrossLaneCounts) {
  rng::Xoshiro256StarStar gen(17);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng::u01_closed_open(gen) * 100.0;
  const auto serial = argmax_serial(xs);
  for (std::size_t lanes : {1u, 2u, 3u, 4u, 8u}) {
    ThreadPool pool(lanes);
    const auto par = parallel_argmax(pool, xs);
    EXPECT_EQ(par.index, serial.index) << "lanes=" << lanes;
    EXPECT_DOUBLE_EQ(par.value, serial.value);
  }
}

TEST(ParallelArgmax, TieBreaksToSmallestIndexAcrossLanes) {
  // Maximum value appears in several lanes' chunks.
  std::vector<double> xs(20000, 0.0);
  xs[1500] = 7.0;
  xs[9999] = 7.0;
  xs[17777] = 7.0;
  for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(lanes);
    EXPECT_EQ(parallel_argmax(pool, xs).index, 1500u) << "lanes=" << lanes;
  }
}

TEST(ParallelArgmax, EmptyInput) {
  ThreadPool pool(2);
  const std::vector<double> xs;
  const auto r = parallel_argmax(pool, xs);
  EXPECT_EQ(r.index, 0u);
}

}  // namespace
}  // namespace lrb::parallel
