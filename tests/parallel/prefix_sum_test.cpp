#include "parallel/prefix_sum.hpp"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::parallel {
namespace {

TEST(InclusiveScanSerial, Basic) {
  const std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> out(4);
  inclusive_scan_serial(xs, out);
  EXPECT_EQ(out, (std::vector<double>{1, 3, 6, 10}));
}

TEST(InclusiveScanSerial, InPlace) {
  std::vector<double> xs = {2, 2, 2};
  inclusive_scan_serial(xs, xs);
  EXPECT_EQ(xs, (std::vector<double>{2, 4, 6}));
}

TEST(InclusiveScanSerial, SizeMismatchThrows) {
  const std::vector<double> xs = {1, 2};
  std::vector<double> out(3);
  EXPECT_THROW(inclusive_scan_serial(xs, out), lrb::InvalidArgumentError);
}

TEST(InclusiveScan, MatchesSerialAcrossLaneCounts) {
  rng::Xoshiro256StarStar gen(23);
  std::vector<double> xs(30000);
  for (auto& x : xs) x = rng::u01_closed_open(gen);
  std::vector<double> ref(xs.size());
  inclusive_scan_serial(xs, ref);
  for (std::size_t lanes : {1u, 2u, 3u, 5u, 8u}) {
    ThreadPool pool(lanes);
    std::vector<double> out(xs.size());
    inclusive_scan(pool, xs, out);
    for (std::size_t i = 0; i < xs.size(); i += 997) {
      EXPECT_NEAR(out[i], ref[i], 1e-9 * (1.0 + ref[i])) << "lanes=" << lanes;
    }
    EXPECT_NEAR(out.back(), ref.back(), 1e-9 * ref.back());
  }
}

TEST(InclusiveScan, SmallInputUsesSerialPath) {
  ThreadPool pool(4);
  const std::vector<double> xs = {5, 1, 2};
  std::vector<double> out(3);
  inclusive_scan(pool, xs, out);
  EXPECT_EQ(out, (std::vector<double>{5, 6, 8}));
}

TEST(InclusiveScan, MonotoneForNonNegativeInput) {
  ThreadPool pool(3);
  rng::Xoshiro256StarStar gen(31);
  std::vector<double> xs(10000);
  for (auto& x : xs) x = rng::u01_closed_open(gen);
  std::vector<double> out(xs.size());
  inclusive_scan(pool, xs, out);
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_GE(out[i], out[i - 1]);
  }
}

TEST(InclusiveScan, ZeroRunsStayFlat) {
  ThreadPool pool(2);
  std::vector<double> xs(8192, 0.0);
  xs[100] = 1.0;
  xs[5000] = 2.0;
  std::vector<double> out(xs.size());
  inclusive_scan(pool, xs, out);
  EXPECT_DOUBLE_EQ(out[99], 0.0);
  EXPECT_DOUBLE_EQ(out[100], 1.0);
  EXPECT_DOUBLE_EQ(out[4999], 1.0);
  EXPECT_DOUBLE_EQ(out[5000], 3.0);
  EXPECT_DOUBLE_EQ(out.back(), 3.0);
}

}  // namespace
}  // namespace lrb::parallel
