#include "parallel/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace lrb::parallel {
namespace {

TEST(ThreadPool, SingleLaneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1u);
  std::size_t calls = 0;
  pool.run_spmd([&](std::size_t lane, std::size_t lanes) {
    EXPECT_EQ(lane, 0u);
    EXPECT_EQ(lanes, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, SpmdRunsEveryLaneExactlyOnce) {
  for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(lanes);
    std::vector<std::atomic<int>> hits(lanes);
    pool.run_spmd([&](std::size_t lane, std::size_t nlanes) {
      EXPECT_EQ(nlanes, lanes);
      hits[lane].fetch_add(1);
    });
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(hits[l].load(), 1) << "lane " << l;
    }
  }
}

TEST(ThreadPool, SpmdIsReusable) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run_spmd([&](std::size_t, std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10001;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](Range r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](Range, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSumMatchesSerial) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 100000;
  std::vector<double> xs(kN);
  std::iota(xs.begin(), xs.end(), 1.0);
  std::vector<double> partial(pool.lanes(), 0.0);
  pool.parallel_for(kN, [&](Range r, std::size_t lane) {
    for (std::size_t i = r.begin; i < r.end; ++i) partial[lane] += xs[i];
  });
  const double total = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, kN * (kN + 1.0) / 2.0);
}

TEST(ThreadPool, NestedSequentialJobsDoNotDeadlock) {
  ThreadPool pool(2);
  for (int i = 0; i < 100; ++i) {
    pool.parallel_for(16, [&](Range, std::size_t) {});
  }
  SUCCEED();
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.lanes(), 1u);
}

TEST(HardwareLanes, AtLeastOne) { EXPECT_GE(hardware_lanes(), 1u); }

}  // namespace
}  // namespace lrb::parallel
