#include "parallel/partition.hpp"

#include <gtest/gtest.h>

namespace lrb::parallel {
namespace {

TEST(PartitionRange, CoversWithoutOverlap) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 101u, 1024u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u, 200u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        const Range r = partition_range(n, parts, p);
        EXPECT_EQ(r.begin, prev_end) << "n=" << n << " parts=" << parts;
        EXPECT_LE(r.end, n);
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(PartitionRange, BalancedWithinOne) {
  for (std::size_t n : {10u, 97u, 1000u}) {
    for (std::size_t parts : {3u, 7u, 8u}) {
      std::size_t min_size = n, max_size = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        const Range r = partition_range(n, parts, p);
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(PartitionRange, ExtrasGoToLowLanes) {
  // n=10, parts=4: sizes 3,3,2,2.
  EXPECT_EQ(partition_range(10, 4, 0).size(), 3u);
  EXPECT_EQ(partition_range(10, 4, 1).size(), 3u);
  EXPECT_EQ(partition_range(10, 4, 2).size(), 2u);
  EXPECT_EQ(partition_range(10, 4, 3).size(), 2u);
}

TEST(PartitionRange, MorePartsThanItems) {
  for (std::size_t p = 0; p < 8; ++p) {
    const Range r = partition_range(3, 8, p);
    EXPECT_EQ(r.size(), p < 3 ? 1u : 0u);
  }
}

TEST(PartitionRange, ZeroPartsFallsBackToWhole) {
  const Range r = partition_range(5, 0, 0);
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 5u);
}

TEST(ChunkCount, RoundsUp) {
  EXPECT_EQ(chunk_count(0, 4), 0u);
  EXPECT_EQ(chunk_count(1, 4), 1u);
  EXPECT_EQ(chunk_count(4, 4), 1u);
  EXPECT_EQ(chunk_count(5, 4), 2u);
  EXPECT_EQ(chunk_count(8, 0), 1u);
}

}  // namespace
}  // namespace lrb::parallel
