#include "aco/tsp.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb::aco {
namespace {

TEST(TspInstance, DistanceMatrixIsSymmetricWithZeroDiagonal) {
  const auto inst = random_euclidean_instance(20, 1);
  for (std::size_t a = 0; a < inst.size(); ++a) {
    EXPECT_DOUBLE_EQ(inst.distance(a, a), 0.0);
    for (std::size_t b = 0; b < inst.size(); ++b) {
      EXPECT_DOUBLE_EQ(inst.distance(a, b), inst.distance(b, a));
    }
  }
}

TEST(TspInstance, TriangleInequalityHolds) {
  const auto inst = random_euclidean_instance(15, 2);
  for (std::size_t a = 0; a < inst.size(); ++a) {
    for (std::size_t b = 0; b < inst.size(); ++b) {
      for (std::size_t c = 0; c < inst.size(); ++c) {
        EXPECT_LE(inst.distance(a, c),
                  inst.distance(a, b) + inst.distance(b, c) + 1e-9);
      }
    }
  }
}

TEST(TspInstance, TourLengthValidation) {
  const auto inst = random_euclidean_instance(5, 3);
  std::vector<std::size_t> tour = {0, 1, 2, 3, 4};
  EXPECT_GT(inst.tour_length(tour), 0.0);
  tour[4] = 0;  // repeated city
  EXPECT_THROW((void)inst.tour_length(tour), InvalidArgumentError);
  EXPECT_THROW((void)inst.tour_length(std::vector<std::size_t>{0, 1}),
               InvalidArgumentError);
  EXPECT_THROW((void)inst.tour_length(std::vector<std::size_t>{0, 1, 2, 3, 9}),
               InvalidArgumentError);
}

TEST(TspInstance, TourLengthIsRotationInvariant) {
  const auto inst = random_euclidean_instance(8, 4);
  std::vector<std::size_t> tour(8);
  std::iota(tour.begin(), tour.end(), 0u);
  const double len = inst.tour_length(tour);
  std::rotate(tour.begin(), tour.begin() + 3, tour.end());
  EXPECT_NEAR(inst.tour_length(tour), len, 1e-9);
}

TEST(TspInstance, NearestNeighborIsValidTour) {
  const auto inst = random_euclidean_instance(30, 5);
  const auto tour = inst.nearest_neighbor_tour(7);
  EXPECT_EQ(tour.size(), 30u);
  EXPECT_EQ(tour[0], 7u);
  EXPECT_NO_THROW((void)inst.tour_length(tour));
}

TEST(CircleInstance, OptimalTourIsCircleOrder) {
  const auto inst = circle_instance(12);
  std::vector<std::size_t> tour(12);
  std::iota(tour.begin(), tour.end(), 0u);
  EXPECT_NEAR(inst.tour_length(tour), circle_optimal_length(12), 1e-9);
  // Any transposition is strictly worse.
  std::swap(tour[2], tour[7]);
  EXPECT_GT(inst.tour_length(tour), circle_optimal_length(12) + 1e-9);
}

TEST(CircleInstance, NearestNeighborFindsNearOptimal) {
  const auto inst = circle_instance(16);
  const auto tour = inst.nearest_neighbor_tour(0);
  // NN on a circle walks around it (possibly closing long), within 2x.
  EXPECT_LT(inst.tour_length(tour), 2.0 * circle_optimal_length(16));
}

TEST(GridInstance, SizeAndSpacing) {
  const auto inst = grid_instance(4, 3, 2.0);
  EXPECT_EQ(inst.size(), 12u);
  EXPECT_DOUBLE_EQ(inst.distance(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(inst.distance(0, 4), 2.0);  // next row
}

TEST(Generators, RejectDegenerateArguments) {
  EXPECT_THROW((void)random_euclidean_instance(1, 1), InvalidArgumentError);
  EXPECT_THROW((void)random_euclidean_instance(5, 1, -1.0), InvalidArgumentError);
  EXPECT_THROW((void)circle_instance(2), InvalidArgumentError);
  EXPECT_THROW((void)grid_instance(1, 1), InvalidArgumentError);
}

TEST(RandomEuclidean, DeterministicInSeed) {
  const auto a = random_euclidean_instance(10, 7);
  const auto b = random_euclidean_instance(10, 7);
  const auto c = random_euclidean_instance(10, 8);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.cities()[i].x, b.cities()[i].x);
    EXPECT_DOUBLE_EQ(a.cities()[i].y, b.cities()[i].y);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < 10; ++i) {
    any_diff |= a.cities()[i].x != c.cities()[i].x;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace lrb::aco
