#include "aco/two_opt.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb::aco {
namespace {

TEST(TwoOpt, NeverWorsensATour) {
  const auto inst = random_euclidean_instance(30, 1);
  std::vector<std::size_t> tour(30);
  std::iota(tour.begin(), tour.end(), 0u);
  const double before = inst.tour_length(tour);
  const auto r = two_opt(inst, tour);
  EXPECT_LE(r.length, before + 1e-9);
  EXPECT_NO_THROW((void)inst.tour_length(r.tour));
}

TEST(TwoOpt, SolvesCircleExactly) {
  // 2-opt from a scrambled circle tour must untangle all crossings; on a
  // circle the 2-opt local optimum IS the global optimum.
  const auto inst = circle_instance(16);
  std::vector<std::size_t> tour = {0, 8, 1, 9,  2, 10, 3, 11,
                                   4, 12, 5, 13, 6, 14, 7, 15};
  const auto r = two_opt(inst, tour);
  EXPECT_NEAR(r.length, circle_optimal_length(16), 1e-6);
  EXPECT_GT(r.improvements, 0u);
}

TEST(TwoOpt, LocalOptimumIsFixedPoint) {
  const auto inst = random_euclidean_instance(25, 2);
  const auto first = two_opt(inst, inst.nearest_neighbor_tour(0));
  auto tour = first.tour;
  EXPECT_EQ(two_opt_pass(inst, tour), 0u);  // no further improvements
  EXPECT_EQ(tour, first.tour);
}

TEST(TwoOpt, MaxPassesBoundsWork) {
  const auto inst = random_euclidean_instance(40, 3);
  std::vector<std::size_t> tour(40);
  std::iota(tour.begin(), tour.end(), 0u);
  const auto r = two_opt(inst, tour, /*max_passes=*/1);
  EXPECT_EQ(r.passes, 1u);
}

TEST(TwoOpt, ImprovesNearestNeighbor) {
  const auto inst = random_euclidean_instance(60, 4);
  const auto nn = inst.nearest_neighbor_tour(0);
  const double nn_len = inst.tour_length(nn);
  const auto r = two_opt(inst, nn);
  // 2-opt reliably trims several percent off NN tours on uniform points.
  EXPECT_LT(r.length, nn_len);
}

TEST(TwoOpt, RejectsMalformedTour) {
  const auto inst = random_euclidean_instance(10, 5);
  std::vector<std::size_t> bad(10, 0);
  EXPECT_THROW((void)two_opt(inst, bad), InvalidArgumentError);
}

}  // namespace
}  // namespace lrb::aco
