#include "aco/tsplib.hpp"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb::aco {
namespace {

TEST(Tsplib, RoundTripsThroughStream) {
  const auto original = random_euclidean_instance(25, 1);
  std::stringstream buffer;
  write_tsplib(buffer, original, "roundtrip", "test");
  const auto parsed = read_tsplib(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_NEAR(parsed.cities()[i].x, original.cities()[i].x, 1e-9);
    EXPECT_NEAR(parsed.cities()[i].y, original.cities()[i].y, 1e-9);
  }
  // Tour lengths agree, so the distance matrices match.
  const auto tour = original.nearest_neighbor_tour(0);
  EXPECT_NEAR(parsed.tour_length(tour), original.tour_length(tour), 1e-6);
}

TEST(Tsplib, ParsesHandWrittenInstance) {
  std::stringstream in(
      "NAME : tiny\n"
      "COMMENT : three points\n"
      "TYPE : TSP\n"
      "DIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EUC_2D\n"
      "NODE_COORD_SECTION\n"
      "1 0.0 0.0\n"
      "2 3.0 0.0\n"
      "3 0.0 4.0\n"
      "EOF\n");
  const auto inst = read_tsplib(in);
  ASSERT_EQ(inst.size(), 3u);
  EXPECT_DOUBLE_EQ(inst.distance(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(inst.distance(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(inst.distance(1, 2), 5.0);
}

TEST(Tsplib, AcceptsShuffledNodeIds) {
  std::stringstream in(
      "DIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EUC_2D\n"
      "NODE_COORD_SECTION\n"
      "3 0.0 4.0\n"
      "1 0.0 0.0\n"
      "2 3.0 0.0\n");
  const auto inst = read_tsplib(in);
  EXPECT_DOUBLE_EQ(inst.distance(0, 1), 3.0);
}

TEST(Tsplib, RejectsUnsupportedFeatures) {
  {
    std::stringstream in("EDGE_WEIGHT_TYPE : GEO\nDIMENSION : 3\n");
    EXPECT_THROW((void)read_tsplib(in), InvalidArgumentError);
  }
  {
    std::stringstream in("TYPE : ATSP\n");
    EXPECT_THROW((void)read_tsplib(in), InvalidArgumentError);
  }
  {
    std::stringstream in("GIBBERISH LINE WITHOUT COLON\n");
    EXPECT_THROW((void)read_tsplib(in), InvalidArgumentError);
  }
}

TEST(Tsplib, RejectsMalformedCoordSection) {
  {
    // Truncated.
    std::stringstream in(
        "DIMENSION : 3\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n"
        "1 0 0\n2 1 1\n");
    EXPECT_THROW((void)read_tsplib(in), InvalidArgumentError);
  }
  {
    // Duplicate id.
    std::stringstream in(
        "DIMENSION : 2\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n"
        "1 0 0\n1 1 1\n");
    EXPECT_THROW((void)read_tsplib(in), InvalidArgumentError);
  }
  {
    // Id out of range.
    std::stringstream in(
        "DIMENSION : 2\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n"
        "1 0 0\n5 1 1\n");
    EXPECT_THROW((void)read_tsplib(in), InvalidArgumentError);
  }
  {
    // Missing dimension entirely.
    std::stringstream in(
        "EDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n1 0 0\n");
    EXPECT_THROW((void)read_tsplib(in), InvalidArgumentError);
  }
}

TEST(Tsplib, FileRoundTrip) {
  const auto original = circle_instance(8);
  const std::string path = ::testing::TempDir() + "/lrb_tsplib_test.tsp";
  write_tsplib_file(path, original, "circle8");
  const auto parsed = read_tsplib_file(path);
  EXPECT_EQ(parsed.size(), 8u);
  std::vector<std::size_t> tour = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_NEAR(parsed.tour_length(tour), circle_optimal_length(8), 1e-6);
  std::remove(path.c_str());
}

TEST(Tsplib, MissingFileThrows) {
  EXPECT_THROW((void)read_tsplib_file("/nonexistent/nope.tsp"),
               InvalidArgumentError);
}

}  // namespace
}  // namespace lrb::aco
