#include "aco/ant_system.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb::aco {
namespace {

AntSystemParams fast_params() {
  AntSystemParams p;
  p.num_ants = 8;
  p.iterations = 10;
  return p;
}

TEST(AntSystem, ConstructTourIsPermutation) {
  const auto inst = random_euclidean_instance(25, 1);
  AntSystem aco(inst, fast_params());
  const auto tour = aco.construct_tour(3, 42);
  EXPECT_EQ(tour.size(), 25u);
  EXPECT_EQ(tour[0], 3u);
  const std::set<std::size_t> unique(tour.begin(), tour.end());
  EXPECT_EQ(unique.size(), 25u);
}

TEST(AntSystem, RunIsDeterministicInSeed) {
  const auto inst = random_euclidean_instance(15, 2);
  AntSystem a(inst, fast_params()), b(inst, fast_params());
  const auto ra = a.run(7);
  const auto rb = b.run(7);
  EXPECT_DOUBLE_EQ(ra.best_length, rb.best_length);
  EXPECT_EQ(ra.best_tour, rb.best_tour);
  EXPECT_EQ(ra.history, rb.history);
}

TEST(AntSystem, BestTourIsValidAndTracked) {
  const auto inst = random_euclidean_instance(20, 3);
  AntSystem aco(inst, fast_params());
  const auto r = aco.run(1);
  EXPECT_EQ(r.best_tour.size(), 20u);
  EXPECT_NEAR(inst.tour_length(r.best_tour), r.best_length, 1e-9);
  EXPECT_EQ(r.history.size(), fast_params().iterations);
  // Best length equals the minimum of the history.
  EXPECT_DOUBLE_EQ(r.best_length,
                   *std::min_element(r.history.begin(), r.history.end()));
  EXPECT_EQ(r.selections, fast_params().num_ants * fast_params().iterations *
                              (inst.size() - 1));
}

TEST(AntSystem, SolvesCircleNearOptimally) {
  // A 12-city circle: AS with bidding selection should land within 15% of
  // optimal quickly (usually exactly optimal).
  const auto inst = circle_instance(12);
  AntSystemParams p;
  p.num_ants = 16;
  p.iterations = 30;
  p.rule = SelectionRule::kBidding;
  AntSystem aco(inst, p);
  const auto r = aco.run(5);
  EXPECT_LT(r.best_length, 1.15 * circle_optimal_length(12));
}

TEST(AntSystem, MmasVariantRunsAndClampsPheromone) {
  const auto inst = random_euclidean_instance(15, 4);
  AntSystemParams p = fast_params();
  p.variant = AcoVariant::kMaxMin;
  AntSystem aco(inst, p);
  const auto r = aco.run(2);
  EXPECT_EQ(r.best_tour.size(), 15u);
  // All pheromone within the clamp bounds (tau_min > 0).
  double lo = 1e18, hi = 0;
  for (double tau : aco.pheromone()) {
    lo = std::min(lo, tau);
    hi = std::max(hi, tau);
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_GE(hi, lo);
}

TEST(AntSystem, AllSelectionRulesProduceValidTours) {
  const auto inst = random_euclidean_instance(18, 5);
  for (SelectionRule rule :
       {SelectionRule::kBidding, SelectionRule::kCdf,
        SelectionRule::kIndependent, SelectionRule::kGreedy}) {
    AntSystemParams p = fast_params();
    p.rule = rule;
    AntSystem aco(inst, p);
    const auto r = aco.run(3);
    EXPECT_NO_THROW((void)inst.tour_length(r.best_tour))
        << to_string(rule);
  }
}

TEST(AntSystem, ImprovesOverIterationsOnAverage) {
  const auto inst = random_euclidean_instance(30, 6);
  AntSystemParams p;
  p.num_ants = 16;
  p.iterations = 40;
  AntSystem aco(inst, p);
  const auto r = aco.run(9);
  // Later iterations should beat the first iteration's best.
  const double first = r.history.front();
  const double last_min =
      *std::min_element(r.history.end() - 10, r.history.end());
  EXPECT_LE(last_min, first);
}

TEST(AntSystem, RejectsBadParams) {
  const auto inst = random_euclidean_instance(5, 7);
  AntSystemParams p = fast_params();
  p.num_ants = 0;
  EXPECT_THROW(AntSystem(inst, p), InvalidArgumentError);
  p = fast_params();
  p.rho = 0.0;
  EXPECT_THROW(AntSystem(inst, p), InvalidArgumentError);
  p = fast_params();
  p.rho = 1.5;
  EXPECT_THROW(AntSystem(inst, p), InvalidArgumentError);
  p = fast_params();
  p.alpha = -1;
  EXPECT_THROW(AntSystem(inst, p), InvalidArgumentError);
}

TEST(SelectionRuleNames, RoundTrip) {
  for (SelectionRule rule :
       {SelectionRule::kBidding, SelectionRule::kCdf,
        SelectionRule::kIndependent, SelectionRule::kGreedy}) {
    EXPECT_EQ(parse_selection_rule(to_string(rule)), rule);
  }
  EXPECT_THROW((void)parse_selection_rule("bogus"), InvalidArgumentError);
}

}  // namespace
}  // namespace lrb::aco
