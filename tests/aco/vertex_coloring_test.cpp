#include "aco/vertex_coloring.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb::aco {
namespace {

ColoringParams fast_params() {
  ColoringParams p;
  p.num_ants = 4;
  p.iterations = 5;
  return p;
}

TEST(GreedyColorInOrder, ColorsPathWithTwo) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  std::vector<std::size_t> order = {0, 1, 2, 3};
  const auto colors = greedy_color_in_order(g, order);
  EXPECT_TRUE(g.is_proper_coloring(colors));
  EXPECT_EQ(1 + *std::max_element(colors.begin(), colors.end()), 2);
}

TEST(GreedyColorInOrder, RejectsNonPermutation) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW((void)greedy_color_in_order(g, {0, 0, 1}), InvalidArgumentError);
  EXPECT_THROW((void)greedy_color_in_order(g, {0, 1}), InvalidArgumentError);
}

TEST(ColorGraph, ProperOnRandomGraph) {
  const auto g = random_gnp(40, 0.25, 3);
  const auto r = color_graph(g, fast_params(), 1);
  EXPECT_TRUE(g.is_proper_coloring(r.colors));
  EXPECT_GE(r.num_colors, 1);
  EXPECT_LE(r.num_colors, static_cast<int>(g.max_degree()) + 1);
  EXPECT_GT(r.selections, 0u);
}

TEST(ColorGraph, CompleteGraphNeedsExactlyN) {
  const auto g = complete_graph(7);
  const auto r = color_graph(g, fast_params(), 2);
  EXPECT_EQ(r.num_colors, 7);
}

TEST(ColorGraph, EvenCycleGetsTwoColors) {
  const auto g = cycle_graph(12);
  ColoringParams p = fast_params();
  p.num_ants = 8;
  p.iterations = 10;
  const auto r = color_graph(g, p, 3);
  EXPECT_TRUE(g.is_proper_coloring(r.colors));
  EXPECT_LE(r.num_colors, 3);  // Brooks bound; usually hits 2
}

TEST(ColorGraph, MultipartiteReachesChromaticNumber) {
  const auto g = complete_multipartite(3, 4);
  ColoringParams p = fast_params();
  p.num_ants = 8;
  p.iterations = 10;
  const auto r = color_graph(g, p, 4);
  EXPECT_TRUE(g.is_proper_coloring(r.colors));
  EXPECT_EQ(r.num_colors, 3);  // saturation-driven orders find it reliably
}

TEST(ColorGraph, DeterministicInSeed) {
  const auto g = random_gnp(25, 0.3, 7);
  const auto a = color_graph(g, fast_params(), 11);
  const auto b = color_graph(g, fast_params(), 11);
  EXPECT_EQ(a.num_colors, b.num_colors);
  EXPECT_EQ(a.colors, b.colors);
}

TEST(ColorGraph, HistoryIsMonotoneNonIncreasing) {
  const auto g = random_gnp(30, 0.35, 9);
  ColoringParams p = fast_params();
  p.iterations = 8;
  const auto r = color_graph(g, p, 13);
  ASSERT_EQ(r.history.size(), 8u);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i], r.history[i - 1]);
  }
}

TEST(ColorGraph, AllRulesProduceProperColorings) {
  const auto g = random_gnp(25, 0.3, 15);
  for (SelectionRule rule :
       {SelectionRule::kBidding, SelectionRule::kCdf,
        SelectionRule::kIndependent, SelectionRule::kGreedy}) {
    ColoringParams p = fast_params();
    p.rule = rule;
    const auto r = color_graph(g, p, 17);
    EXPECT_TRUE(g.is_proper_coloring(r.colors)) << to_string(rule);
  }
}

}  // namespace
}  // namespace lrb::aco
