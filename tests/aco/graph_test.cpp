#include "aco/graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb::aco {
namespace {

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, DuplicateEdgesIgnored) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RejectsSelfLoopAndOutOfRange) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), InvalidArgumentError);
  EXPECT_THROW(g.add_edge(0, 3), InvalidArgumentError);
  EXPECT_THROW((void)g.has_edge(5, 0), InvalidArgumentError);
  EXPECT_THROW((void)Graph(0), InvalidArgumentError);
}

TEST(Graph, ProperColoringCheck) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_proper_coloring(std::vector<int>{0, 1, 0}));
  EXPECT_FALSE(g.is_proper_coloring(std::vector<int>{0, 0, 1}));
  EXPECT_FALSE(g.is_proper_coloring(std::vector<int>{0, 1}));      // wrong size
  EXPECT_FALSE(g.is_proper_coloring(std::vector<int>{0, -1, 0}));  // uncolored
}

TEST(CompleteGraph, EdgeCountAndDegree) {
  const auto g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(CycleGraph, Structure) {
  const auto g = cycle_graph(5);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_THROW((void)cycle_graph(2), InvalidArgumentError);
}

TEST(CompleteMultipartite, Structure) {
  const auto g = complete_multipartite(3, 2);  // 6 vertices, chromatic 3
  EXPECT_EQ(g.num_vertices(), 6u);
  // Edges: C(6,2) - 3 within-group = 15 - 3 = 12.
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_FALSE(g.has_edge(0, 1));  // same group
  EXPECT_TRUE(g.has_edge(0, 2));
  // The canonical 3-coloring by group is proper.
  EXPECT_TRUE(g.is_proper_coloring(std::vector<int>{0, 0, 1, 1, 2, 2}));
}

TEST(RandomGnp, EdgeDensityNearP) {
  const auto g = random_gnp(60, 0.3, 5);
  const double max_edges = 60.0 * 59.0 / 2.0;
  const double density = static_cast<double>(g.num_edges()) / max_edges;
  EXPECT_NEAR(density, 0.3, 0.05);
  EXPECT_THROW((void)random_gnp(5, 1.5, 1), InvalidArgumentError);
}

TEST(RandomGnp, DeterministicInSeed) {
  const auto a = random_gnp(20, 0.4, 9);
  const auto b = random_gnp(20, 0.4, 9);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t u = 0; u < 20; ++u) {
    for (std::size_t v = u + 1; v < 20; ++v) {
      EXPECT_EQ(a.has_edge(u, v), b.has_edge(u, v));
    }
  }
}

}  // namespace
}  // namespace lrb::aco
