// Integration reproduction of the paper's Tables I and II at test-scale
// sample sizes (the full 1e9-draw versions live in bench/).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "../testing.hpp"
#include "core/baselines.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/mt19937_64.hpp"

namespace lrb {
namespace {

// Table I workload: f_i = i, 0 <= i <= 9, Mersenne Twister (as the paper).
class PaperTable1 : public ::testing::Test {
 protected:
  std::vector<double> fitness_ = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  static constexpr std::uint64_t kDraws = 200000;
};

TEST_F(PaperTable1, LogarithmicColumnMatchesExactProbabilities) {
  rng::Mt19937_64 gen(20240228);
  const auto hist = testing::collect(
      fitness_.size(), kDraws, [&] { return core::select_bidding(fitness_, gen); });
  testing::expect_matches_roulette(hist, fitness_);
  // Row-level check mirroring the table: F_1 = 1/45 ~ 0.0222.
  EXPECT_NEAR(hist.frequency(1), 1.0 / 45.0, 0.002);
  EXPECT_NEAR(hist.frequency(9), 9.0 / 45.0, 0.004);
  EXPECT_EQ(hist.count(0), 0u);
}

TEST_F(PaperTable1, IndependentColumnReproducesPaperBias) {
  // The paper's independent column: 0.000000, 0.000000, 0.000088, 0.001708,
  // 0.010993, 0.038787, 0.094267, 0.178238, 0.282382, 0.393536.
  rng::Mt19937_64 gen(20240228);
  const auto hist = testing::collect(fitness_.size(), kDraws, [&] {
    return core::select_independent(fitness_, gen);
  });
  const std::vector<double> paper = {0.0,      0.0,      0.000088, 0.001708,
                                     0.010993, 0.038787, 0.094267, 0.178238,
                                     0.282382, 0.393536};
  for (std::size_t i = 0; i < paper.size(); ++i) {
    // 3-sigma-ish binomial tolerance at 2e5 draws, floored for tiny p.
    const double tol = 3.0 * std::sqrt(paper[i] * (1 - paper[i]) / kDraws) + 3e-4;
    EXPECT_NEAR(hist.frequency(i), paper[i], tol) << "row i=" << i;
  }
  // The qualitative claim: small-fitness rows are starved...
  EXPECT_LT(hist.frequency(2), 0.001);
  // ...and the largest fitness is wildly over-selected (0.394 vs F_9 = 0.2).
  EXPECT_GT(hist.frequency(9), 0.35);
}

// Table II workload: f_0 = 1, f_1..f_99 = 2.
class PaperTable2 : public ::testing::Test {
 protected:
  PaperTable2() : fitness_(100, 2.0) { fitness_[0] = 1.0; }
  std::vector<double> fitness_;
  static constexpr std::uint64_t kDraws = 400000;
};

TEST_F(PaperTable2, LogarithmicSelectsProcessor0AtRate1Over199) {
  rng::Mt19937_64 gen(42);
  const auto hist = testing::collect(
      fitness_.size(), kDraws, [&] { return core::select_bidding(fitness_, gen); });
  // F_0 = 1/199 ~ 0.005025; expect ~2010 hits of 4e5.
  const auto ci = stats::wilson_interval(hist.count(0), kDraws, 0.9999);
  EXPECT_TRUE(ci.contains(1.0 / 199.0))
      << "observed " << hist.frequency(0) << " in [" << ci.low << ", "
      << ci.high << "]";
  testing::expect_matches_roulette(hist, fitness_);
}

TEST_F(PaperTable2, IndependentNeverSelectsProcessor0) {
  // The paper: Pr ~ 1.58e-32 — zero selections in any feasible run.
  rng::Mt19937_64 gen(43);
  const auto hist = testing::collect(fitness_.size(), kDraws, [&] {
    return core::select_independent(fitness_, gen);
  });
  EXPECT_EQ(hist.count(0), 0u);
  // Meanwhile the other 99 processors are roughly uniform at ~1/99 each
  // (paper shows ~0.0101 per row).
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_NEAR(hist.frequency(i), 1.0 / 99.0, 0.0015) << "row " << i;
  }
}

TEST_F(PaperTable2, Section1ClosedFormForIndependentBias) {
  // The paper's closed form: with f_0=1 and 99 processors at f=2, the
  // independent rule picks 0 only if all 99 opponents draw below 1 AND 0
  // wins the sub-race: (1/2)^99 / 100.  Verify the formula's magnitude.
  const double p = std::pow(0.5, 99) / 100.0;
  EXPECT_NEAR(p, 1.57772e-32, 1e-36);
}

}  // namespace
}  // namespace lrb
