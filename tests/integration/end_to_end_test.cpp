// Cross-module integration: the public API exercised the way a downstream
// application would, combining registry selectors, ACO, PRAM validation and
// statistics in single flows.
#include <gtest/gtest.h>

#include "../testing.hpp"
#include "lrb.hpp"

namespace lrb {
namespace {

TEST(EndToEnd, UmbrellaHeaderQuickstartFlow) {
  // The README quickstart, verbatim in spirit.
  std::vector<double> fitness = {0, 1, 2, 3};
  rng::Xoshiro256StarStar gen(42);
  const std::size_t i = core::select_bidding(fitness, gen);
  EXPECT_GE(i, 1u);
  EXPECT_LT(i, 4u);
}

TEST(EndToEnd, AcoTourConstructionSparsityMatchesPaperMotivation) {
  // During tour construction k (unvisited cities) shrinks n-1 -> 1; verify
  // the selection workload the ACO layer generates really is sparse by
  // instrumenting one construction step by hand.
  const auto inst = aco::random_euclidean_instance(50, 3);
  aco::AntSystemParams params;
  aco::AntSystem ant(inst, params);
  const auto tour = ant.construct_tour(0, 7);
  EXPECT_EQ(tour.size(), 50u);
  // k at step t is n - t; the PRAM race on such a workload takes O(log k):
  std::vector<double> fitness(50, 0.0);
  for (std::size_t c = 10; c < 50; ++c) fitness[c] = 1.0;  // 40 unvisited
  const auto race = pram::crcw_bidding_selection(fitness, 1, 2);
  EXPECT_EQ(race.initially_active, 40u);
  EXPECT_LE(race.rounds, 2 * 6 + 2u);  // 2 ceil(log2 40) + slack
}

TEST(EndToEnd, RegistrySelectorsDriveAcoFitnessRows) {
  // Use a registry selector to sample from an ACO desirability row and
  // validate against the exact probabilities — the library's pieces
  // composing.
  const auto inst = aco::random_euclidean_instance(20, 5);
  aco::AntSystemParams params;
  aco::AntSystem ant(inst, params);
  // Desirability row out of the pheromone state for city 0 with cities
  // 1..4 visited.
  std::vector<double> row(20, 0.0);
  for (std::size_t c = 5; c < 20; ++c) {
    row[c] = ant.pheromone()[0 * 20 + c] / std::max(inst.distance(0, c), 1e-9);
  }
  auto sel = core::make_selector(core::SelectorKind::kBidding, row, 11);
  stats::SelectionHistogram hist(row.size());
  for (int t = 0; t < 30000; ++t) hist.record(sel->select());
  testing::expect_matches_roulette(hist, row);
}

TEST(EndToEnd, WithoutReplacementMatchesIteratedBiddingWithRemoval) {
  // Drawing m=3 without replacement must equal (in distribution) three
  // successive single draws with winner removal.  Compare first-draw
  // marginals of both procedures.
  const std::vector<double> fitness = {1, 2, 3, 4};
  stats::SelectionHistogram wr(4), iter(4);
  rng::Xoshiro256StarStar gen(13);
  for (std::uint64_t t = 0; t < 30000; ++t) {
    wr.record(core::sample_without_replacement(fitness, 3, t)[0]);
    std::vector<double> f = fitness;
    const std::size_t first = core::select_bidding(f, gen);
    iter.record(first);
  }
  const auto expected = core::exact_probabilities(fitness);
  EXPECT_GT(stats::chi_square_gof(wr, expected).p_value, 1e-6);
  EXPECT_GT(stats::chi_square_gof(iter, expected).p_value, 1e-6);
}

TEST(EndToEnd, PramAndThreadRaceAgreeOnDistribution) {
  // The model-level simulator and the practical atomic race must induce the
  // same selection distribution (they implement the same algorithm).
  const std::vector<double> fitness = {1, 0, 3, 2};
  stats::SelectionHistogram pram_hist(4), race_hist(4);
  parallel::ThreadPool pool(2);
  rng::SeedSequence seeds(17);
  for (std::uint64_t t = 0; t < 8000; ++t) {
    pram_hist.record(pram::crcw_bidding_selection(fitness, 3000 + t, t).winner);
    race_hist.record(core::select_bidding_race(pool, fitness,
                                               seeds.subsequence(t)));
  }
  const auto expected = core::exact_probabilities(fitness);
  EXPECT_GT(stats::chi_square_gof(pram_hist, expected).p_value, 1e-6);
  EXPECT_GT(stats::chi_square_gof(race_hist, expected).p_value, 1e-6);
}

TEST(EndToEnd, VertexColoringUsesLibrarySelectionEndToEnd) {
  const auto g = aco::random_gnp(30, 0.3, 21);
  aco::ColoringParams params;
  params.num_ants = 4;
  params.iterations = 4;
  const auto r = aco::color_graph(g, params, 5);
  EXPECT_TRUE(g.is_proper_coloring(r.colors));
  // DSATUR-style roulette coloring stays within Brooks-like bounds.
  EXPECT_LE(r.num_colors, static_cast<int>(g.max_degree()) + 1);
}

TEST(EndToEnd, DeterministicReplayAcrossComponents) {
  // A full mini-experiment replays bit-identically from one master seed.
  const rng::SeedSequence master(20240612);
  auto run_once = [&] {
    const auto inst =
        aco::random_euclidean_instance(15, master.child("instance"));
    aco::AntSystemParams params;
    params.num_ants = 6;
    params.iterations = 6;
    aco::AntSystem ant(inst, params);
    return ant.run(master.child("aco")).best_length;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lrb
