// Meta-tests of the acceptance methodology itself: if the chi-square
// machinery were mis-calibrated, every distribution test in this suite
// would be meaningless.  These tests check that p-values are uniform under
// the null (exact sampler) and collapse under the alternative (biased
// sampler), and that empirical error shrinks at the Monte-Carlo rate.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/fitness.hpp"
#include "core/logarithmic_bidding.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"

namespace lrb {
namespace {

TEST(StatisticalMeta, PValuesUniformUnderNull) {
  // 300 independent experiments with an exact sampler: the chi-square
  // p-values must look uniform(0,1).
  const std::vector<double> fitness = {1, 2, 3, 4};
  const auto expected = core::exact_probabilities(fitness);
  std::vector<double> p_values;
  for (std::uint64_t e = 0; e < 300; ++e) {
    rng::Xoshiro256StarStar gen(1000 + e);
    stats::SelectionHistogram hist(fitness.size());
    for (int t = 0; t < 4000; ++t) {
      hist.record(core::select_bidding(fitness, gen));
    }
    p_values.push_back(stats::chi_square_gof(hist, expected).p_value);
  }
  const auto ks = stats::ks_uniform01(std::move(p_values));
  EXPECT_GT(ks.p_value, 1e-4) << "KS stat " << ks.statistic
                              << " — chi-square p-values are not uniform "
                                 "under the null: methodology is broken";
}

TEST(StatisticalMeta, PValuesCollapseUnderAlternative) {
  // The same harness must reject the biased sampler essentially always.
  const std::vector<double> fitness = {1, 2, 3, 4};
  const auto expected = core::exact_probabilities(fitness);
  int rejections = 0;
  for (std::uint64_t e = 0; e < 50; ++e) {
    rng::Xoshiro256StarStar gen(5000 + e);
    stats::SelectionHistogram hist(fitness.size());
    for (int t = 0; t < 4000; ++t) {
      hist.record(core::select_independent(fitness, gen));
    }
    rejections += stats::chi_square_gof(hist, expected).p_value < 1e-6;
  }
  EXPECT_EQ(rejections, 50);
}

TEST(StatisticalMeta, EmpiricalErrorShrinksAtMonteCarloRate) {
  // TV distance from the target should scale ~ 1/sqrt(N): growing N by
  // 100x shrinks TV by ~10x (allow 3x slack either way).
  const std::vector<double> fitness = {3, 1, 2, 4};
  const auto expected = core::exact_probabilities(fitness);
  auto tv_at = [&](std::uint64_t draws, std::uint64_t seed) {
    rng::Xoshiro256StarStar gen(seed);
    stats::SelectionHistogram hist(fitness.size());
    for (std::uint64_t t = 0; t < draws; ++t) {
      hist.record(core::select_bidding(fitness, gen));
    }
    return stats::total_variation(hist.frequencies(), expected);
  };
  // Average a few repetitions to stabilize the ratio.
  double tv_small = 0, tv_large = 0;
  for (std::uint64_t r = 0; r < 5; ++r) {
    tv_small += tv_at(2000, 10 + r);
    tv_large += tv_at(200000, 20 + r);
  }
  const double ratio = tv_small / tv_large;
  EXPECT_GT(ratio, 10.0 / 3.0) << "small=" << tv_small << " large=" << tv_large;
  EXPECT_LT(ratio, 10.0 * 3.0);
}

TEST(StatisticalMeta, WilsonIntervalWidthMatchesTheory) {
  // Width of the 95% Wilson interval at p-hat=0.5, n=10000 is ~2*1.96*
  // sqrt(0.25/10000) ~ 0.0196.
  const auto ci = stats::wilson_interval(5000, 10000, 0.95);
  EXPECT_NEAR(ci.high - ci.low, 0.0196, 0.001);
}

}  // namespace
}  // namespace lrb
