// Empirical validation of Theorem 1: the CRCW race identifies the maximum
// bid in O(log k) expected rounds with O(1) shared memory, where k is the
// number of non-zero fitness values — independent of n.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/logarithmic_bidding.hpp"
#include "pram/programs.hpp"
#include "rng/seed.hpp"
#include "stats/online.hpp"

namespace lrb {
namespace {

/// Fitness vector of size n with k positive entries spread evenly.
std::vector<double> sparse_fitness(std::size_t n, std::size_t k) {
  std::vector<double> f(n, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    f[j * n / k] = 1.0 + static_cast<double>(j % 5);
  }
  return f;
}

TEST(Theorem1, MeanRoundsGrowsLogarithmicallyInK) {
  constexpr std::size_t kN = 4096;
  std::vector<double> means;
  for (std::size_t k : {2u, 16u, 128u, 1024u}) {
    const auto fitness = sparse_fitness(kN, k);
    stats::OnlineMoments rounds;
    for (int trial = 0; trial < 150; ++trial) {
      const auto r = pram::crcw_bidding_selection(fitness, 100 + trial,
                                                  9000 + trial);
      EXPECT_EQ(r.initially_active, k);
      rounds.add(static_cast<double>(r.rounds));
    }
    means.push_back(rounds.mean());
    // Theorem 1 envelope: 2*ceil(log2 k) rounds suffice in expectation; the
    // paper's accounting has slack, so assert a generous constant.
    EXPECT_LT(rounds.mean(),
              2.0 * std::ceil(std::log2(static_cast<double>(k))) + 4.0)
        << "k=" << k;
  }
  // Monotone growth in k, and clearly sublinear: k grows 512x between the
  // first and last point; rounds must grow by far less than 32x.
  EXPECT_LT(means.front(), means.back());
  EXPECT_LT(means.back(), means.front() * 16.0);
}

TEST(Theorem1, RoundsIndependentOfNForFixedK) {
  constexpr std::size_t kK = 64;
  std::vector<double> means;
  for (std::size_t n : {64u, 1024u, 16384u}) {
    const auto fitness = sparse_fitness(n, kK);
    stats::OnlineMoments rounds;
    for (int trial = 0; trial < 120; ++trial) {
      rounds.add(static_cast<double>(
          pram::crcw_bidding_selection(fitness, 10 + trial, 20 + trial).rounds));
    }
    means.push_back(rounds.mean());
  }
  // n grows 256x; mean rounds should stay flat (within noise).
  const double lo = *std::min_element(means.begin(), means.end());
  const double hi = *std::max_element(means.begin(), means.end());
  EXPECT_LT(hi - lo, 2.0) << "means: " << means[0] << ", " << means[1] << ", "
                          << means[2];
}

TEST(Theorem1, ConstantSharedMemoryVersusLinearForBaseline) {
  const auto fitness = sparse_fitness(1024, 32);
  // The race uses exactly 2 cells (s and output) by construction; the EREW
  // prefix-sum baseline needs O(n).
  const auto erew = pram::erew_prefix_sum_selection(fitness, 7);
  EXPECT_GE(erew.memory_cells, fitness.size());
  // And the EREW baseline's rounds scale with log n, not log k.
  EXPECT_GE(erew.rounds, 2 * std::log2(1024.0) - 1);
}

TEST(Theorem1, ThreadRaceWinningWritesTrackLogK) {
  // The practical analog (E5): on the atomic cell, successful installs per
  // selection behave like the record count of a random permutation,
  // i.e. H_k ~ ln k, matching the PRAM round bound's flavor.
  parallel::ThreadPool pool(1);  // serial: install count == record count
  for (std::size_t k : {4u, 64u, 1024u}) {
    std::vector<double> fitness(k, 1.0);
    rng::SeedSequence seeds(99);
    stats::OnlineMoments installs;
    core::RaceStats rs;
    for (int trial = 0; trial < 200; ++trial) {
      (void)core::select_bidding_race(pool, fitness, seeds.subsequence(trial),
                                      &rs);
      installs.add(static_cast<double>(rs.winning_writes));
    }
    const double harmonic = std::log(static_cast<double>(k)) + 0.5772;
    EXPECT_NEAR(installs.mean(), harmonic, 0.35 * harmonic + 0.5) << "k=" << k;
  }
}

}  // namespace
}  // namespace lrb
