#include "common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), InvalidArgumentError);
}

TEST(Table, RejectsWrongArityRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgumentError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgumentError);
}

TEST(Table, PrintsAlignedConsoleTable) {
  Table t({"i", "value"});
  t.set_align(0, Align::kLeft);
  t.add_row({"0", "1.5"});
  t.add_row({"10", "200.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| i  |  value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| 10 | 200.25 |"), std::string::npos) << out;
  // Three horizontal rule lines: top, under header, bottom.
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("\n+", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  // The top rule starts the output without a preceding newline.
  EXPECT_EQ(rules + 1, 3u);
}

TEST(Table, PrintsCsvWithEscaping) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  t.add_row({"plain", "multi\nline"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(out.find("\"multi\nline\""), std::string::npos);
  EXPECT_NE(out.find("plain"), std::string::npos);
}

TEST(Table, PrintsMarkdown) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("| x | y |", 0), 0u) << out;
  EXPECT_NE(out.find("--:|"), std::string::npos);  // right-aligned marker
}

TEST(Table, AddRowValuesFormatsDoubles) {
  Table t({"a", "b"});
  t.add_row_values({0.123456789, 2.0}, 4);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("0.1235,2.0000"), std::string::npos) << os.str();
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(0.0, 6), "0.000000");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(FormatSci, Notation) {
  EXPECT_EQ(format_sci(1234.5, 2), "1.23e+03");
  EXPECT_EQ(format_sci(1.57772e-32, 3), "1.578e-32");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1000000000ull), "1,000,000,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

}  // namespace
}  // namespace lrb
