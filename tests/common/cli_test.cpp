#include "common/cli.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, ParsesEqualsForm) {
  const auto args = make({"prog", "--iters=1000", "--name=table1"});
  EXPECT_EQ(args.get_u64("iters", 0), 1000u);
  EXPECT_EQ(args.get_string("name", ""), "table1");
}

TEST(CliArgs, ParsesSpaceForm) {
  const auto args = make({"prog", "--iters", "42"});
  EXPECT_EQ(args.get_u64("iters", 0), 42u);
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(CliArgs, ExplicitBooleans) {
  const auto args = make({"prog", "--a=true", "--b=0", "--c=no", "--d=on"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
  EXPECT_TRUE(args.get_bool("d", false));
  EXPECT_THROW((void)make({"p", "--x=maybe"}).get_bool("x", false),
               InvalidArgumentError);
}

TEST(CliArgs, Defaults) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get_u64("iters", 7), 7u);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 1.5), 1.5);
  EXPECT_EQ(args.get_string("name", "x"), "x");
}

TEST(CliArgs, Positionals) {
  const auto args = make({"prog", "file1", "--k=2", "file2"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "file1");
  EXPECT_EQ(args.positionals()[1], "file2");
}

TEST(CliArgs, EnvFallback) {
  ::setenv("LRB_TEST_ITERS", "123", 1);
  const auto args = make({"prog"});
  EXPECT_EQ(args.get_u64("iters", 0, "LRB_TEST_ITERS"), 123u);
  // Explicit option beats env.
  const auto args2 = make({"prog", "--iters=5"});
  EXPECT_EQ(args2.get_u64("iters", 0, "LRB_TEST_ITERS"), 5u);
  ::unsetenv("LRB_TEST_ITERS");
}

TEST(CliArgs, ParseU64ScientificShorthand) {
  EXPECT_EQ(CliArgs::parse_u64("1e9"), 1000000000u);
  EXPECT_EQ(CliArgs::parse_u64("2.5e6"), 2500000u);
  EXPECT_EQ(CliArgs::parse_u64("1_000_000"), 1000000u);
  EXPECT_EQ(CliArgs::parse_u64("1,000"), 1000u);
  EXPECT_EQ(CliArgs::parse_u64("0"), 0u);
}

TEST(CliArgs, ParseU64RejectsGarbage) {
  EXPECT_THROW(CliArgs::parse_u64("abc"), InvalidArgumentError);
  EXPECT_THROW(CliArgs::parse_u64(""), InvalidArgumentError);
  EXPECT_THROW(CliArgs::parse_u64("1.5"), InvalidArgumentError);  // not integral
  EXPECT_THROW(CliArgs::parse_u64("12x"), InvalidArgumentError);
}

TEST(CliArgs, GetDoubleParses) {
  const auto args = make({"prog", "--rho=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("rho", 0.0), 0.25);
  EXPECT_THROW((void)make({"p", "--x=nanx!"}).get_double("x", 0), InvalidArgumentError);
}

}  // namespace
}  // namespace lrb
