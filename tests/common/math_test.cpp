#include "common/math.hpp"

#include <cmath>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lrb {
namespace {

TEST(KahanSum, MatchesExactForSmallInputs) {
  KahanSum s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.value(), 6.0);
}

TEST(KahanSum, RecoversCancellationError) {
  // 1 + 1e-16 repeated: naive summation loses every increment.
  KahanSum s;
  s.add(1.0);
  for (int i = 0; i < 10'000; ++i) {
    for (int j = 0; j < 1000; ++j) s.add(1e-16);
  }
  // 1e7 increments of 1e-16 = 1e-9; naive summation would lose all of it.
  const double expected = 1.0 + 1e-9;
  EXPECT_NEAR(s.value(), expected, 1e-15);
}

TEST(KahanSum, AccurateSumMatchesLongDouble) {
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> xs(100000);
  long double ref = 0.0L;
  for (auto& x : xs) {
    x = dist(gen);
    ref += x;
  }
  EXPECT_NEAR(accurate_sum(xs), static_cast<double>(ref), 1e-9);
}

TEST(CeilLog2, SmallValues) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(FloorLog2, SmallValues) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
}

TEST(NextPow2, RoundsUp) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(IsPow2, Classification) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(IsClose, RelativeAndAbsolute) {
  EXPECT_TRUE(is_close(1.0, 1.0));
  EXPECT_TRUE(is_close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(is_close(1.0, 1.001));
  EXPECT_TRUE(is_close(0.0, 1e-12, 1e-9, 1e-9));
  EXPECT_FALSE(is_close(0.0, 1e-12));  // no absolute tolerance by default
  EXPECT_FALSE(is_close(1.0, std::numeric_limits<double>::quiet_NaN()));
  // inf == inf short-circuits to true before the finiteness check.
  EXPECT_TRUE(is_close(std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()));
}

TEST(CheckedFitnessTotal, AcceptsValidVectors) {
  const std::vector<double> f = {0.0, 1.0, 2.5};
  EXPECT_DOUBLE_EQ(checked_fitness_total(f), 3.5);
}

TEST(CheckedFitnessTotal, RejectsEmpty) {
  EXPECT_THROW((void)checked_fitness_total({}), InvalidFitnessError);
}

TEST(CheckedFitnessTotal, RejectsNegative) {
  const std::vector<double> f = {1.0, -0.5};
  EXPECT_THROW((void)checked_fitness_total(f), InvalidFitnessError);
}

TEST(CheckedFitnessTotal, RejectsNaN) {
  const std::vector<double> f = {1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW((void)checked_fitness_total(f), InvalidFitnessError);
}

TEST(CheckedFitnessTotal, RejectsInfinity) {
  const std::vector<double> f = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)checked_fitness_total(f), InvalidFitnessError);
}

TEST(CheckedFitnessTotal, ErrorsNameOffendingIndexAndValue) {
  // Validation runs once per batch everywhere, so the error can afford full
  // context: which index, what value.  Uniform across every selector (they
  // all funnel through checked_fitness_total) and ShardedFitness::update.
  const auto what_of = [](std::span<const double> f) -> std::string {
    try {
      (void)checked_fitness_total(f);
    } catch (const InvalidFitnessError& e) {
      return e.what();
    }
    return "<no throw>";
  };
  const auto expect_contains = [](const std::string& msg,
                                  const std::string& piece) {
    EXPECT_NE(msg.find(piece), std::string::npos)
        << "\"" << msg << "\" should contain \"" << piece << "\"";
  };
  const std::vector<double> negative = {1.0, -0.5};
  expect_contains(what_of(negative), "index 1");
  expect_contains(what_of(negative), "value -0.5");
  const std::vector<double> nan = {1.0, 2.0,
                                   std::numeric_limits<double>::quiet_NaN()};
  expect_contains(what_of(nan), "index 2");
  expect_contains(what_of(nan), "value nan");
  const std::vector<double> inf = {std::numeric_limits<double>::infinity()};
  expect_contains(what_of(inf), "index 0");
  expect_contains(what_of(inf), "value inf");
}

TEST(CheckedFitnessTotal, RejectsAllZeroWhenPositiveRequired) {
  const std::vector<double> f = {0.0, 0.0};
  EXPECT_THROW((void)checked_fitness_total(f), InvalidFitnessError);
  EXPECT_DOUBLE_EQ(checked_fitness_total(f, false), 0.0);
}

TEST(CountNonzero, CountsStrictlyPositive) {
  const std::vector<double> f = {0.0, 1.0, 0.0, 2.0, 3.0};
  EXPECT_EQ(count_nonzero(f), 3u);
}

TEST(NormalizeFitness, ProducesProbabilities) {
  const std::vector<double> f = {1.0, 3.0};
  std::vector<double> p(2);
  const double total = normalize_fitness(f, p);
  EXPECT_DOUBLE_EQ(total, 4.0);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(NormalizeFitness, RejectsSizeMismatch) {
  const std::vector<double> f = {1.0, 3.0};
  std::vector<double> p(3);
  EXPECT_THROW(normalize_fitness(f, p), InvalidArgumentError);
}

}  // namespace
}  // namespace lrb
