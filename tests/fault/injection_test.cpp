// FaultInjectingBackend + the collective retry loop: injected transients are
// retried into invisibility (same winners, same useful bill, retried axes
// charged), kills surface as RankFailedError, escalation is bounded by the
// RetryPolicy, and the whole machinery is deterministic in the schedule.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dist/backend.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"
#include "fault/injecting_backend.hpp"
#include "fault/schedule.hpp"

namespace {

using lrb::CommTimeoutError;
using lrb::RankFailedError;
using lrb::dist::BatchDrawResult;
using lrb::dist::CommLedger;
using lrb::dist::DeterministicDistributedBidder;
using lrb::dist::DrawResult;
using lrb::dist::RetryPolicy;
using lrb::dist::ShardedFitness;
using lrb::fault::FaultInjectingBackend;
using lrb::fault::FaultSchedule;

std::vector<double> test_fitness(std::size_t n = 61) {
  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 5 == 2) continue;
    fitness[i] = 1.0 + static_cast<double>((i * 13) % 17);
  }
  return fitness;
}

constexpr std::uint64_t kSeed = 0x5eed5eed5eed5eedULL;
constexpr std::size_t kRanks = 6;
constexpr std::size_t kDraws = 12;

/// The unfaulted reference: winners and per-draw ledgers on the plain
/// simulated machine.
std::vector<DrawResult> clean_draws(const std::vector<double>& fitness) {
  ShardedFitness shards(fitness, kRanks);
  DeterministicDistributedBidder cursor(kSeed);
  std::vector<DrawResult> draws;
  for (std::size_t t = 0; t < kDraws; ++t) draws.push_back(cursor.select(shards));
  return draws;
}

TEST(FaultInjection, EmptyScheduleIsTransparent) {
  const std::vector<double> fitness = test_fitness();
  const std::vector<DrawResult> clean = clean_draws(fitness);

  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule());
  ShardedFitness shards(fitness, kRanks, injector);
  DeterministicDistributedBidder cursor(kSeed);
  for (std::size_t t = 0; t < kDraws; ++t) {
    const DrawResult draw = cursor.select(shards);
    EXPECT_EQ(draw.index, clean[t].index) << "draw " << t;
    EXPECT_EQ(draw.comm, clean[t].comm) << "draw " << t;  // retried axes == 0 too
  }
  EXPECT_EQ(injector->exchanges_completed(), kDraws);
  EXPECT_FALSE(injector->dead_rank().has_value());
}

TEST(FaultInjection, NameTagsTheInnerBackend) {
  const FaultInjectingBackend injector(nullptr, FaultSchedule());
  EXPECT_EQ(injector.name(), "fault+simulated");
}

// The heart of satellite (a): a dropped message is retried; the winner and
// the USEFUL bill are bit-identical to the unfaulted draw, and the wasted
// attempts land on the retried axes instead.
TEST(FaultInjection, DropIsRetriedIntoTransparency) {
  const std::vector<double> fitness = test_fitness();
  const std::vector<DrawResult> clean = clean_draws(fitness);

  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("drop@3:times=2,rounds=1"));
  ShardedFitness shards(fitness, kRanks, injector);
  DeterministicDistributedBidder cursor(kSeed);
  for (std::size_t t = 0; t < kDraws; ++t) {
    const DrawResult draw = cursor.select(shards);
    EXPECT_EQ(draw.index, clean[t].index) << "draw " << t;
    EXPECT_EQ(draw.comm.rounds, clean[t].comm.rounds) << "draw " << t;
    EXPECT_EQ(draw.comm.messages, clean[t].comm.messages) << "draw " << t;
    EXPECT_EQ(draw.comm.words, clean[t].comm.words) << "draw " << t;
    EXPECT_EQ(draw.comm.critical_path_words, clean[t].comm.critical_path_words)
        << "draw " << t;
    if (t == 3) {
      // Two failed attempts, each wasting one partial round of P messages
      // (2 words each: one (bid, index) pair per message at batch 1).
      EXPECT_EQ(draw.comm.retries, 2u);
      EXPECT_EQ(draw.comm.retried_rounds, 2u);
      EXPECT_EQ(draw.comm.retried_messages, 2u * kRanks);
      EXPECT_EQ(draw.comm.retried_words, 2u * kRanks * 2u);
    } else {
      EXPECT_EQ(draw.comm.retries, 0u) << "draw " << t;
      EXPECT_EQ(draw.comm.retried_words, 0u) << "draw " << t;
    }
  }
}

// A zero-rounds drop (the message vanished before anything flew) still
// counts a retry but charges no retried traffic.
TEST(FaultInjection, ZeroRoundDropChargesRetryOnly) {
  const std::vector<double> fitness = test_fitness();
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("drop@0"));
  ShardedFitness shards(fitness, kRanks, injector);
  DeterministicDistributedBidder cursor(kSeed);
  const DrawResult draw = cursor.select(shards);
  EXPECT_EQ(draw.comm.retries, 1u);
  EXPECT_EQ(draw.comm.retried_rounds, 0u);
  EXPECT_EQ(draw.comm.retried_words, 0u);
  EXPECT_EQ(draw.index, clean_draws(fitness)[0].index);
}

TEST(FaultInjection, DelayBeyondRetryBudgetEscalates) {
  const std::vector<double> fitness = test_fitness();
  // Default policy allows 4 attempts; 10 consecutive failures exhaust it.
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("delay@2:times=10"));
  ShardedFitness shards(fitness, kRanks, injector);
  DeterministicDistributedBidder cursor(kSeed);
  EXPECT_EQ(cursor.select(shards).index, clean_draws(fitness)[0].index);
  (void)cursor.select(shards);
  EXPECT_THROW((void)cursor.select(shards), CommTimeoutError);
  // The failed draw never advanced the cursor: recovery can re-draw it.
  EXPECT_EQ(cursor.next_draw_id(), 2u);
}

TEST(FaultInjection, WiderRetryPolicyAbsorbsTheSameBurst) {
  const std::vector<double> fitness = test_fitness();
  RetryPolicy patient;
  patient.max_attempts = 16;
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("delay@2:times=10"), patient);
  EXPECT_EQ(injector->retry_policy().max_attempts, 16u);
  ShardedFitness shards(fitness, kRanks, injector);
  DeterministicDistributedBidder cursor(kSeed);
  std::vector<DrawResult> clean = clean_draws(fitness);
  for (std::size_t t = 0; t < kDraws; ++t) {
    const DrawResult draw = cursor.select(shards);
    EXPECT_EQ(draw.index, clean[t].index) << "draw " << t;
    EXPECT_EQ(draw.comm.retries, t == 2 ? 10u : 0u) << "draw " << t;
  }
}

TEST(FaultInjection, KillSurfacesRankFailedAndStaysDead) {
  const std::vector<double> fitness = test_fitness();
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("kill@2:rank=4"));
  ShardedFitness shards(fitness, kRanks, injector);
  DeterministicDistributedBidder cursor(kSeed);
  (void)cursor.select(shards);
  (void)cursor.select(shards);
  try {
    (void)cursor.select(shards);
    FAIL() << "expected RankFailedError";
  } catch (const RankFailedError& failure) {
    EXPECT_EQ(failure.rank(), 4u);
  }
  ASSERT_TRUE(injector->dead_rank().has_value());
  EXPECT_EQ(*injector->dead_rank(), 4u);
  // Still dead: every further exchange fails until recovery acknowledges.
  EXPECT_THROW((void)cursor.select(shards), RankFailedError);
  EXPECT_EQ(cursor.next_draw_id(), 2u);

  // Acknowledged recovery reopens the machine (the recovery driver reshards
  // first; here the topology is unchanged, which is legal in simulation).
  injector->mark_recovered();
  EXPECT_FALSE(injector->dead_rank().has_value());
  EXPECT_EQ(cursor.select(shards).index, clean_draws(fitness)[2].index);
}

TEST(FaultInjection, KillRankIsTakenModuloTopologySize) {
  const std::vector<double> fitness = test_fitness();
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("kill@0:rank=13"));  // 13 % 6 == 1
  ShardedFitness shards(fitness, kRanks, injector);
  DeterministicDistributedBidder cursor(kSeed);
  try {
    (void)cursor.select(shards);
    FAIL() << "expected RankFailedError";
  } catch (const RankFailedError& failure) {
    EXPECT_EQ(failure.rank(), 13u % kRanks);
  }
}

// Positions are anchored on COMPLETED exchanges, so an event's position is
// unaffected by retries forced by an earlier event.
TEST(FaultInjection, PositionsCountCompletedExchangesNotAttempts) {
  const std::vector<double> fitness = test_fitness();
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("drop@1:times=3;kill@4:rank=0"));
  ShardedFitness shards(fitness, kRanks, injector);
  DeterministicDistributedBidder cursor(kSeed);
  const std::vector<DrawResult> clean = clean_draws(fitness);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(cursor.select(shards).index, clean[t].index) << "draw " << t;
  }
  // Draw 4 is the 5th exchange: the kill fires exactly there, not shifted
  // by the three extra attempts draw 1 needed.
  EXPECT_THROW((void)cursor.select(shards), RankFailedError);
}

TEST(FaultInjection, DefaultRetryPolicyIsFourAttemptsNoSleep) {
  const RetryPolicy policy;
  EXPECT_EQ(policy.max_attempts, 4u);
  EXPECT_EQ(policy.base_delay_ns, 0u);
  EXPECT_EQ(policy.delay_ns(5), 0u);
  RetryPolicy backoff;
  backoff.base_delay_ns = 100;
  backoff.multiplier = 2;
  EXPECT_EQ(backoff.delay_ns(0), 100u);
  EXPECT_EQ(backoff.delay_ns(1), 200u);
  EXPECT_EQ(backoff.delay_ns(3), 800u);
}

}  // namespace
