// FaultSchedule: the spec grammar, the seeded chaos generator, and the
// reproducibility guarantees both share — same input, same schedule, with a
// canonical string form that round-trips exactly (what the CLI prints so a
// --fault-seed run can be rerun as --fault-spec).
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dist/backend.hpp"
#include "fault/schedule.hpp"

namespace {

using lrb::InvalidArgumentError;
using lrb::fault::FaultEvent;
using lrb::fault::FaultKind;
using lrb::fault::FaultSchedule;

TEST(FaultSchedule, EmptySpecIsEmptySchedule) {
  EXPECT_TRUE(FaultSchedule::parse("").empty());
  EXPECT_TRUE(FaultSchedule().empty());
  EXPECT_EQ(FaultSchedule::parse("").str(), "");
}

TEST(FaultSchedule, ParsesKillEvent) {
  const FaultSchedule schedule = FaultSchedule::parse("kill@7:rank=2");
  ASSERT_EQ(schedule.size(), 1u);
  const FaultEvent& event = schedule.events()[0];
  EXPECT_EQ(event.kind, FaultKind::kKillRank);
  EXPECT_EQ(event.at, 7u);
  EXPECT_EQ(event.rank, 2u);
}

TEST(FaultSchedule, ParsesTransientArguments) {
  const FaultSchedule schedule =
      FaultSchedule::parse("drop@3:times=2,rounds=1;delay@9");
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule.events()[0].kind, FaultKind::kDropMessage);
  EXPECT_EQ(schedule.events()[0].at, 3u);
  EXPECT_EQ(schedule.events()[0].times, 2u);
  EXPECT_EQ(schedule.events()[0].rounds_wasted, 1u);
  EXPECT_EQ(schedule.events()[1].kind, FaultKind::kDelayExchange);
  EXPECT_EQ(schedule.events()[1].times, 1u);   // default
  EXPECT_EQ(schedule.events()[1].rounds_wasted, 0u);  // default
}

TEST(FaultSchedule, EventsAreSortedByPosition) {
  const FaultSchedule schedule =
      FaultSchedule::parse("delay@9;kill@2:rank=0;drop@5");
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule.events()[0].at, 2u);
  EXPECT_EQ(schedule.events()[1].at, 5u);
  EXPECT_EQ(schedule.events()[2].at, 9u);
}

TEST(FaultSchedule, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultSchedule::parse("kill7:rank=1"),
               InvalidArgumentError);  // missing '@'
  EXPECT_THROW((void)FaultSchedule::parse("explode@3"), InvalidArgumentError);
  EXPECT_THROW((void)FaultSchedule::parse("kill@3"),
               InvalidArgumentError);  // kill needs rank=
  EXPECT_THROW((void)FaultSchedule::parse("drop@x"), InvalidArgumentError);
  EXPECT_THROW((void)FaultSchedule::parse("drop@3:times=0"),
               InvalidArgumentError);
  EXPECT_THROW((void)FaultSchedule::parse("drop@3:bogus=1"),
               InvalidArgumentError);
  EXPECT_THROW((void)FaultSchedule::parse("drop@3:times"),
               InvalidArgumentError);  // missing '='
}

/// Catches the typed error and returns its isolated token.
std::string offending_token(const std::string& spec) {
  try {
    (void)FaultSchedule::parse(spec);
  } catch (const lrb::FaultSpecError& e) {
    return e.token();
  }
  ADD_FAILURE() << "spec \"" << spec << "\" did not throw FaultSpecError";
  return {};
}

TEST(FaultSchedule, ParseErrorsAreTypedFaultSpecErrors) {
  // FaultSpecError refines InvalidArgumentError (callers catching the base
  // keep working) and isolates the offending token for chaos-sweep logs.
  EXPECT_THROW((void)FaultSchedule::parse("explode@3"),
               lrb::FaultSpecError);
  EXPECT_THROW((void)FaultSchedule::parse("explode@3"), InvalidArgumentError);
}

TEST(FaultSchedule, ParseErrorsNameTheOffendingToken) {
  EXPECT_EQ(offending_token("explode@3"), "explode");  // unknown verb
  EXPECT_EQ(offending_token("kill7:rank=1"), "kill7:rank=1");  // missing '@'
  EXPECT_EQ(offending_token("drop@"), "drop@");        // missing @position
  EXPECT_EQ(offending_token("kill@:rank=1"), "kill@:rank=1");
  EXPECT_EQ(offending_token("drop@x"), "x");           // non-numeric position
  EXPECT_EQ(offending_token("drop@3:times=many"), "many");  // non-numeric kv
  EXPECT_EQ(offending_token("drop@3:times"), "times"); // missing '='
  EXPECT_EQ(offending_token("drop@3:bogus=1"), "bogus");  // unknown argument
  EXPECT_EQ(offending_token("kill@3"), "kill@3");      // kill without rank=
  EXPECT_EQ(offending_token("drop@3:times=0"), "drop@3:times=0");
  // Only the bad event of a multi-event spec is named.
  EXPECT_EQ(offending_token("drop@3;explode@5;delay@9"), "explode");
}

TEST(FaultSchedule, ParseErrorMessageQuotesSpecAndToken) {
  try {
    (void)FaultSchedule::parse("drop@3;explode@5");
    FAIL() << "expected FaultSpecError";
  } catch (const lrb::FaultSpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("drop@3;explode@5"), std::string::npos)
        << "message must quote the whole spec: " << what;
    EXPECT_NE(what.find("explode"), std::string::npos)
        << "message must quote the offending token: " << what;
    EXPECT_EQ(e.token(), "explode");
  }
}

TEST(FaultSchedule, CanonicalStringRoundTrips) {
  const char* specs[] = {
      "kill@7:rank=2",
      "drop@3:times=2,rounds=1",
      "delay@0:times=1",
      "kill@2:rank=0;drop@5:times=1;delay@9:times=2",
  };
  for (const char* spec : specs) {
    const FaultSchedule schedule = FaultSchedule::parse(spec);
    EXPECT_EQ(FaultSchedule::parse(schedule.str()), schedule) << spec;
  }
}

TEST(FaultSchedule, RandomIsDeterministicInTheSeed) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const FaultSchedule a = FaultSchedule::random(seed, 8, 100);
    const FaultSchedule b = FaultSchedule::random(seed, 8, 100);
    EXPECT_EQ(a, b) << "seed " << seed;
    // And round-trips through its own canonical spec, so any seeded chaos
    // run can be replayed from --fault-spec.
    EXPECT_EQ(FaultSchedule::parse(a.str()), a) << "seed " << seed;
  }
}

TEST(FaultSchedule, RandomSeedsDiffer) {
  // Not a tautology (two seeds could collide), but across 8 seeds at least
  // two distinct schedules must appear or the generator is broken.
  bool any_difference = false;
  const FaultSchedule first = FaultSchedule::random(0, 8, 100);
  for (std::uint64_t seed = 1; seed < 8; ++seed) {
    if (FaultSchedule::random(seed, 8, 100) != first) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultSchedule, RandomRespectsHorizonAndRanks) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FaultSchedule schedule = FaultSchedule::random(seed, 4, 50);
    EXPECT_GE(schedule.size(), 1u);
    for (const FaultEvent& event : schedule.events()) {
      EXPECT_LT(event.at, 50u);
      if (event.kind == FaultKind::kKillRank) {
        EXPECT_LT(event.rank, 4u);
      } else {
        EXPECT_GE(event.times, 1u);
        EXPECT_LE(event.times, 2u);
      }
    }
  }
}

TEST(FaultSchedule, RandomIsSurvivableUnderTheDefaultRetryBudget) {
  // Transients sharing one exchange position stack their failed attempts;
  // the generator must keep each position's total below the default
  // RetryPolicy's max_attempts, or a chaos sweep's exit-0 contract breaks
  // on an unlucky seed (which would make seeded CI sweeps flaky-by-seed).
  const std::uint32_t budget = lrb::dist::RetryPolicy{}.max_attempts - 1;
  for (std::uint64_t seed = 0; seed < 256; ++seed) {
    const FaultSchedule schedule = FaultSchedule::random(seed, 8, 20);
    std::map<std::uint64_t, std::uint32_t> attempts;
    for (const FaultEvent& event : schedule.events()) {
      if (event.kind == FaultKind::kKillRank) continue;
      attempts[event.at] += event.times;
    }
    for (const auto& [at, times] : attempts) {
      EXPECT_LE(times, budget) << "seed " << seed << " at " << at;
    }
  }
}

TEST(FaultSchedule, RandomNeverKillsTheOnlyRank) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    for (const FaultEvent& event : FaultSchedule::random(seed, 1, 50).events()) {
      EXPECT_NE(event.kind, FaultKind::kKillRank) << "seed " << seed;
    }
  }
}

}  // namespace
