// select_with_recovery: the end-to-end fault story.  Kill a rank mid-stream,
// reshard onto the survivors, resume from the two-integer cursor — and the
// full winner sequence is bit-identical to an unfaulted run (which is itself
// bit-identical to serial core::DeterministicBidder).  Plus the determinism
// acceptance criterion: the same fault seed produces the same recovery path
// and the same lrb_fault_* counter values, twice.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/deterministic.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"
#include "fault/injecting_backend.hpp"
#include "fault/recovery.hpp"
#include "fault/schedule.hpp"

#if defined(LRB_OBS_ENABLED)
#include "obs/metrics.hpp"
#endif

namespace {

using lrb::CommTimeoutError;
using lrb::RankFailedError;
using lrb::core::DeterministicBidder;
using lrb::dist::DeterministicDistributedBidder;
using lrb::dist::ShardedFitness;
using lrb::fault::FaultInjectingBackend;
using lrb::fault::FaultSchedule;
using lrb::fault::RecoveryRun;
using lrb::fault::select_with_recovery;

std::vector<double> test_fitness(std::size_t n = 97) {
  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 4 == 1) continue;
    fitness[i] = 0.25 + static_cast<double>((i * 7) % 23);
  }
  return fitness;
}

constexpr std::uint64_t kSeed = 0xabcdef0123456789ULL;

std::vector<std::size_t> serial_winners(const std::vector<double>& fitness,
                                        std::size_t draws) {
  DeterministicBidder bidder(kSeed);
  std::vector<std::size_t> winners;
  for (std::size_t t = 0; t < draws; ++t) winners.push_back(bidder.select(fitness));
  return winners;
}

TEST(Recovery, CleanRunHasNoRecoveriesAndMatchesSerial) {
  const std::vector<double> fitness = test_fitness();
  ShardedFitness shards(fitness, 8);
  DeterministicDistributedBidder cursor(kSeed);
  const RecoveryRun run = select_with_recovery(shards, cursor, 40, 4);
  EXPECT_EQ(run.indices, serial_winners(fitness, 40));
  EXPECT_TRUE(run.recoveries.empty());
  EXPECT_EQ(run.comm.retries, 0u);
  EXPECT_EQ(run.comm.retried_words, 0u);
  EXPECT_EQ(cursor.next_draw_id(), 40u);
}

// The tentpole acceptance test, simulated flavor: every (failure position,
// failed rank) over P=8 recovers onto 7 ranks with the remaining draws
// bit-identical to the unfaulted serial sequence.
TEST(Recovery, KillMatrixBitExactAcrossFailurePointsAndRanks) {
  const std::vector<double> fitness = test_fitness();
  constexpr std::size_t kDraws = 24;
  const std::vector<std::size_t> expected = serial_winners(fitness, kDraws);
  for (const std::size_t failure_at : {0u, 3u, 11u}) {
    for (const std::size_t failed_rank : {0u, 4u, 7u}) {
      const std::string spec = "kill@" + std::to_string(failure_at) +
                               ":rank=" + std::to_string(failed_rank);
      auto injector = std::make_shared<const FaultInjectingBackend>(
          nullptr, FaultSchedule::parse(spec));
      ShardedFitness shards(fitness, 8, injector);
      DeterministicDistributedBidder cursor(kSeed);
      const RecoveryRun run = select_with_recovery(shards, cursor, kDraws);
      EXPECT_EQ(run.indices, expected) << spec;
      ASSERT_EQ(run.recoveries.size(), 1u) << spec;
      EXPECT_EQ(run.recoveries[0].failed_rank, failed_rank) << spec;
      EXPECT_EQ(run.recoveries[0].draw_id, failure_at) << spec;
      EXPECT_EQ(run.recoveries[0].ranks_before, 8u) << spec;
      EXPECT_EQ(run.recoveries[0].ranks_after, 7u) << spec;
      EXPECT_EQ(shards.ranks(), 7u) << spec;
      // O(moved): the P=8 -> P=7 repartition must not touch every cell.
      EXPECT_GT(run.recoveries[0].reshard_comm.words, 0u) << spec;
      EXPECT_LT(run.recoveries[0].reshard_comm.words, fitness.size()) << spec;
    }
  }
}

TEST(Recovery, BatchedDrawsRecoverBitExactToo) {
  const std::vector<double> fitness = test_fitness();
  constexpr std::size_t kDraws = 30;
  const std::vector<std::size_t> expected = serial_winners(fitness, kDraws);
  // With batch=5, exchange 2 carries draws 10..14: the whole batch fails,
  // recovery reshards, and the SAME batch replays — no draw skipped.
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("kill@2:rank=3"));
  ShardedFitness shards(fitness, 8, injector);
  DeterministicDistributedBidder cursor(kSeed);
  const RecoveryRun run = select_with_recovery(shards, cursor, kDraws, 5);
  EXPECT_EQ(run.indices, expected);
  ASSERT_EQ(run.recoveries.size(), 1u);
  EXPECT_EQ(run.recoveries[0].draw_id, 10u);
}

TEST(Recovery, SurvivesCascadingKillsDownToOneRank) {
  const std::vector<double> fitness = test_fitness();
  constexpr std::size_t kDraws = 20;
  const std::vector<std::size_t> expected = serial_winners(fitness, kDraws);
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("kill@3:rank=2;kill@7:rank=1;kill@11:rank=0"));
  ShardedFitness shards(fitness, 4, injector);
  DeterministicDistributedBidder cursor(kSeed);
  const RecoveryRun run = select_with_recovery(shards, cursor, kDraws);
  EXPECT_EQ(run.indices, expected);
  ASSERT_EQ(run.recoveries.size(), 3u);
  EXPECT_EQ(run.recoveries[0].ranks_after, 3u);
  EXPECT_EQ(run.recoveries[1].ranks_after, 2u);
  EXPECT_EQ(run.recoveries[2].ranks_after, 1u);
  EXPECT_EQ(shards.ranks(), 1u);
}

TEST(Recovery, SingleRankFailureIsUnsurvivable) {
  const std::vector<double> fitness = test_fitness();
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("kill@2:rank=0"));
  ShardedFitness shards(fitness, 1, injector);
  DeterministicDistributedBidder cursor(kSeed);
  EXPECT_THROW((void)select_with_recovery(shards, cursor, 10),
               RankFailedError);
}

TEST(Recovery, ExhaustedTimeoutEscalatesOut) {
  const std::vector<double> fitness = test_fitness();
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("drop@4:times=50"));
  ShardedFitness shards(fitness, 8, injector);
  DeterministicDistributedBidder cursor(kSeed);
  EXPECT_THROW((void)select_with_recovery(shards, cursor, 10),
               CommTimeoutError);
}

TEST(Recovery, TransientsAreAbsorbedWithExactUsefulBill) {
  const std::vector<double> fitness = test_fitness();
  constexpr std::size_t kDraws = 16;

  ShardedFitness clean_shards(fitness, 8);
  DeterministicDistributedBidder clean_cursor(kSeed);
  const RecoveryRun clean =
      select_with_recovery(clean_shards, clean_cursor, kDraws, 2);

  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule::parse("drop@1:times=2,rounds=1;delay@5:times=1"));
  ShardedFitness shards(fitness, 8, injector);
  DeterministicDistributedBidder cursor(kSeed);
  const RecoveryRun faulted = select_with_recovery(shards, cursor, kDraws, 2);

  EXPECT_EQ(faulted.indices, clean.indices);
  EXPECT_TRUE(faulted.recoveries.empty());  // transients never reshard
  EXPECT_EQ(faulted.comm.rounds, clean.comm.rounds);
  EXPECT_EQ(faulted.comm.messages, clean.comm.messages);
  EXPECT_EQ(faulted.comm.words, clean.comm.words);
  EXPECT_EQ(faulted.comm.critical_path_words, clean.comm.critical_path_words);
  EXPECT_EQ(faulted.comm.retries, 3u);
  EXPECT_EQ(clean.comm.retries, 0u);
}

// A chaos run mixing transients and a kill, driven purely by a seed.
TEST(Recovery, SeededChaosRemainsBitExact) {
  const std::vector<double> fitness = test_fitness();
  constexpr std::size_t kDraws = 64;
  const std::vector<std::size_t> expected = serial_winners(fitness, kDraws);
  for (std::uint64_t fault_seed = 1; fault_seed <= 10; ++fault_seed) {
    auto injector = std::make_shared<const FaultInjectingBackend>(
        nullptr, FaultSchedule::random(fault_seed, 8, kDraws));
    ShardedFitness shards(fitness, 8, injector);
    DeterministicDistributedBidder cursor(kSeed);
    const RecoveryRun run = select_with_recovery(shards, cursor, kDraws);
    EXPECT_EQ(run.indices, expected) << "fault seed " << fault_seed;
  }
}

#if defined(LRB_OBS_ENABLED)
// Acceptance criterion: same fault seed => same injected faults, same
// recovery path, same lrb_fault_* counter values — proven by running the
// identical chaos scenario twice and diffing the counter deltas.
TEST(Recovery, RepeatRunsProduceIdenticalFaultCounters) {
  const std::vector<double> fitness = test_fitness();
  constexpr std::size_t kDraws = 48;
  const char* kCounters[] = {
      "lrb_fault_injected_total",       "lrb_fault_injected_kills_total",
      "lrb_fault_injected_drops_total", "lrb_fault_injected_delays_total",
      "lrb_fault_detected_total",       "lrb_fault_timeouts_total",
      "lrb_fault_rank_failures_total",  "lrb_fault_retries_total",
      "lrb_fault_retry_exhausted_total", "lrb_fault_recoveries_total",
      "lrb_fault_reshards_total",       "lrb_fault_moved_words_total",
      "lrb_fault_retried_rounds_total", "lrb_fault_retried_words_total",
  };
  auto run_once = [&](std::uint64_t fault_seed) {
    std::vector<std::uint64_t> before;
    for (const char* name : kCounters) {
      before.push_back(lrb::obs::Registry::global().counter(name).value());
    }
    auto injector = std::make_shared<const FaultInjectingBackend>(
        nullptr, FaultSchedule::random(fault_seed, 8, kDraws));
    ShardedFitness shards(fitness, 8, injector);
    DeterministicDistributedBidder cursor(kSeed);
    const RecoveryRun run = select_with_recovery(shards, cursor, kDraws);
    std::vector<std::uint64_t> delta;
    for (std::size_t i = 0; i < std::size(kCounters); ++i) {
      delta.push_back(lrb::obs::Registry::global().counter(kCounters[i]).value() -
                      before[i]);
    }
    return std::pair(run, delta);
  };
  for (std::uint64_t fault_seed = 1; fault_seed <= 4; ++fault_seed) {
    const auto [run_a, delta_a] = run_once(fault_seed);
    const auto [run_b, delta_b] = run_once(fault_seed);
    EXPECT_EQ(run_a.indices, run_b.indices) << "fault seed " << fault_seed;
    EXPECT_EQ(run_a.comm, run_b.comm) << "fault seed " << fault_seed;
    EXPECT_EQ(run_a.recoveries.size(), run_b.recoveries.size());
    EXPECT_EQ(delta_a, delta_b) << "fault seed " << fault_seed;
  }
}
#endif  // LRB_OBS_ENABLED

}  // namespace
