// Elastic resharding edge cases (satellite of the fault-tolerance PR): every
// repartition must be indistinguishable from a freshly constructed
// ShardedFitness at the new rank count — same boundaries, bit-identical
// cached shard sums — and the returned ledger must charge exactly the cells
// that changed owner, nothing more.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"
#include "core/deterministic.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"
#include "fault/injecting_backend.hpp"
#include "fault/schedule.hpp"

namespace {

using lrb::InvalidArgumentError;
using lrb::InvalidFitnessError;
using lrb::core::DeterministicBidder;
using lrb::dist::CommLedger;
using lrb::dist::DeterministicDistributedBidder;
using lrb::dist::ShardedFitness;
using lrb::fault::FaultInjectingBackend;
using lrb::fault::FaultSchedule;

std::vector<double> test_fitness(std::size_t n = 83) {
  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 6 == 4) continue;
    fitness[i] = 0.5 + static_cast<double>((i * 11) % 19);
  }
  return fitness;
}

/// Bit-level double equality: the reshard contract is "bit-identical to a
/// fresh construction", stronger than operator== (which conflates +-0.0).
bool bit_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_same_partition(const ShardedFitness& resharded,
                           const ShardedFitness& fresh) {
  ASSERT_EQ(resharded.ranks(), fresh.ranks());
  ASSERT_EQ(resharded.size(), fresh.size());
  for (std::size_t r = 0; r < fresh.ranks(); ++r) {
    EXPECT_EQ(resharded.shard_range(r).begin, fresh.shard_range(r).begin)
        << "rank " << r;
    EXPECT_EQ(resharded.shard_range(r).end, fresh.shard_range(r).end)
        << "rank " << r;
    EXPECT_TRUE(bit_equal(resharded.shard_sum(r), fresh.shard_sum(r)))
        << "rank " << r << ": " << resharded.shard_sum(r) << " vs "
        << fresh.shard_sum(r);
  }
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(resharded.owner(i), fresh.owner(i)) << "index " << i;
    EXPECT_TRUE(bit_equal(resharded.value(i), fresh.value(i))) << "index " << i;
  }
}

/// Brute-force data-motion reference: count cells whose owner changed and
/// the per-new-rank inbound volumes.
struct Motion {
  std::uint64_t moved = 0;
  std::uint64_t heaviest_inbound = 0;
};
Motion brute_force_motion(const ShardedFitness& before,
                          const ShardedFitness& after) {
  Motion m;
  std::vector<std::uint64_t> inbound(after.ranks(), 0);
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before.owner(i) != after.owner(i)) {
      ++m.moved;
      ++inbound[after.owner(i)];
    }
  }
  for (std::uint64_t v : inbound) m.heaviest_inbound = std::max(m.heaviest_inbound, v);
  return m;
}

TEST(Reshard, UniformReshardMatchesFreshConstruction) {
  const std::vector<double> fitness = test_fitness();
  for (const std::size_t from : {1u, 3u, 8u}) {
    for (const std::size_t to : {1u, 2u, 5u, 7u, 8u, 16u}) {
      ShardedFitness shards(fitness, from);
      (void)shards.reshard(to);
      const ShardedFitness fresh(fitness, to);
      SCOPED_TRACE(::testing::Message() << "P " << from << " -> " << to);
      expect_same_partition(shards, fresh);
    }
  }
}

TEST(Reshard, CollapseToOneMovesExactlyTheForeignCells) {
  const std::vector<double> fitness = test_fitness(20);
  ShardedFitness shards(fitness, 4);  // shards of 5: [0,5) [5,10) [10,15) [15,20)
  const CommLedger bill = shards.reshard(1);
  EXPECT_EQ(shards.ranks(), 1u);
  // Rank 0's 5 cells stay put; the other 15 move in 3 transfers, all inbound
  // to the single survivor.
  EXPECT_EQ(bill.words, 15u);
  EXPECT_EQ(bill.messages, 3u);
  EXPECT_EQ(bill.rounds, 1u);
  EXPECT_EQ(bill.critical_path_words, 15u);
  EXPECT_EQ(bill.retries, 0u);
  expect_same_partition(shards, ShardedFitness(fitness, 1));
}

TEST(Reshard, GrowPastVectorLengthLeavesTrailingEmptyShards) {
  const std::vector<double> fitness = test_fitness(5);
  ShardedFitness shards(fitness, 2);
  (void)shards.reshard(9);
  EXPECT_EQ(shards.ranks(), 9u);
  for (std::size_t r = 5; r < 9; ++r) {
    EXPECT_EQ(shards.shard_range(r).size(), 0u) << "rank " << r;
    EXPECT_TRUE(bit_equal(shards.shard_sum(r), 0.0)) << "rank " << r;
  }
  expect_same_partition(shards, ShardedFitness(fitness, 9));
  // owner() must still resolve through the empty-shard boundary runs.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(shards.owner(i), i);
}

TEST(Reshard, ShrinkByOneIsOMovedNotON) {
  const std::vector<double> fitness = test_fitness();
  ShardedFitness before(fitness, 8);
  ShardedFitness shards(fitness, 8);
  const CommLedger bill = shards.reshard(7);
  const Motion expected = brute_force_motion(before, shards);
  EXPECT_EQ(bill.words, expected.moved);
  EXPECT_EQ(bill.critical_path_words, expected.heaviest_inbound);
  EXPECT_GT(bill.words, 0u);
  EXPECT_LT(bill.words, fitness.size());  // strictly cheaper than reshipping all
}

TEST(Reshard, SamePartitionChargesNothing) {
  const std::vector<double> fitness = test_fitness();
  ShardedFitness shards(fitness, 6);
  const CommLedger bill = shards.reshard(6);
  EXPECT_EQ(bill, CommLedger{});
  expect_same_partition(shards, ShardedFitness(fitness, 6));
}

// Satellite (c): reshard while a cached shard sum is exactly zero.  update()
// snaps an emptied shard to 0.0; the repartition must fold those cells back
// in bit-identically to a fresh construction over the updated values.
TEST(Reshard, ReshardWhileAShardSumIsExactlyZero) {
  std::vector<double> fitness = test_fitness(24);
  ShardedFitness shards(fitness, 4);
  const auto range = shards.shard_range(2);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    shards.update(i, 0.0);
    fitness[i] = 0.0;
  }
  ASSERT_TRUE(bit_equal(shards.shard_sum(2), 0.0));
  (void)shards.reshard(3);
  expect_same_partition(shards, ShardedFitness(fitness, 3));
}

// Satellite (c): reshard immediately after InvalidFitnessError.  Selection
// throws once updates drive the global total to zero; resharding must still
// be legal (no validation pass) and the machine must resume bit-exactly when
// fitness returns.
TEST(Reshard, ReshardAfterInvalidFitnessErrorThenRecover) {
  std::vector<double> fitness = test_fitness(12);
  ShardedFitness shards(fitness, 4);
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    shards.update(i, 0.0);
    fitness[i] = 0.0;
  }
  DeterministicDistributedBidder cursor(0x1234u);
  EXPECT_THROW((void)cursor.select(shards), InvalidFitnessError);
  EXPECT_EQ(cursor.next_draw_id(), 0u);  // failed draw did not consume RNG

  (void)shards.reshard(2);  // legal mid-outage; fresh construction would throw
  EXPECT_EQ(shards.ranks(), 2u);
  EXPECT_TRUE(bit_equal(shards.total(), 0.0));

  shards.update(7, 3.5);
  fitness[7] = 3.5;
  DeterministicBidder serial(0x1234u);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(cursor.select(shards).index, serial.select(fitness)) << "draw " << t;
  }
}

// The determinism contract across a mid-stream repartition: bids are keyed
// by global index, so draws before and after a reshard stitch into the one
// serial sequence.
TEST(Reshard, MidStreamReshardPreservesTheDrawSequence) {
  const std::vector<double> fitness = test_fitness();
  ShardedFitness shards(fitness, 8);
  DeterministicDistributedBidder cursor(0x9999u);
  DeterministicBidder serial(0x9999u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(cursor.select(shards).index, serial.select(fitness));
  }
  (void)shards.reshard(3);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(cursor.select(shards).index, serial.select(fitness));
  }
  (void)shards.reshard_weighted(std::vector<double>{1.0, 2.0, 4.0, 1.0});
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(cursor.select(shards).index, serial.select(fitness));
  }
}

TEST(Reshard, WeightedSplitFollowsCapacities) {
  const std::vector<double> fitness = test_fitness(8);
  ShardedFitness shards(fitness, 2);
  (void)shards.reshard_weighted(std::vector<double>{3.0, 1.0});
  // floor(8 * 3/4) = 6: rank 0 gets [0,6), rank 1 gets [6,8).
  EXPECT_EQ(shards.shard_range(0).end, 6u);
  EXPECT_EQ(shards.shard_range(1).begin, 6u);
  // A zero-capacity survivor owns an empty shard.
  (void)shards.reshard_weighted(std::vector<double>{1.0, 0.0, 1.0});
  EXPECT_EQ(shards.ranks(), 3u);
  EXPECT_EQ(shards.shard_range(1).size(), 0u);
  EXPECT_TRUE(bit_equal(shards.shard_sum(1), 0.0));
  // Cached sums match a manual Kahan pass over each shard.
  for (std::size_t r = 0; r < shards.ranks(); ++r) {
    lrb::KahanSum sum;
    for (double f : shards.shard(r)) sum.add(f);
    EXPECT_TRUE(bit_equal(shards.shard_sum(r), sum.value())) << "rank " << r;
  }
}

TEST(Reshard, WeightedSplitWithEqualCapacitiesIsBalanced) {
  const std::vector<double> fitness = test_fitness(10);
  ShardedFitness shards(fitness, 2);
  (void)shards.reshard_weighted(std::vector<double>{1.0, 1.0, 1.0, 1.0});
  std::size_t smallest = fitness.size();
  std::size_t largest = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    smallest = std::min(smallest, shards.shard_range(r).size());
    largest = std::max(largest, shards.shard_range(r).size());
  }
  EXPECT_LE(largest - smallest, 1u);
}

TEST(Reshard, WeightedRejectsBadCapacities) {
  const std::vector<double> fitness = test_fitness(10);
  ShardedFitness shards(fitness, 2);
  EXPECT_THROW((void)shards.reshard_weighted(std::vector<double>{}),
               InvalidArgumentError);
  EXPECT_THROW((void)shards.reshard_weighted(std::vector<double>{1.0, -1.0}),
               InvalidArgumentError);
  EXPECT_THROW(
      (void)shards.reshard_weighted(std::vector<double>{
          1.0, std::numeric_limits<double>::quiet_NaN()}),
      InvalidArgumentError);
  EXPECT_THROW((void)shards.reshard_weighted(std::vector<double>{0.0, 0.0}),
               InvalidArgumentError);
  EXPECT_THROW((void)shards.reshard(0), InvalidArgumentError);
  // A rejected reshard leaves the partition untouched.
  expect_same_partition(shards, ShardedFitness(fitness, 2));
}

TEST(Reshard, BackendRebindAndRetention) {
  const std::vector<double> fitness = test_fitness(30);
  auto injector = std::make_shared<const FaultInjectingBackend>(
      nullptr, FaultSchedule());
  ShardedFitness shards(fitness, 4, injector);
  EXPECT_EQ(shards.topology().backend().name(), "fault+simulated");
  // One-arg reshard keeps the bound backend (the common elastic path).
  (void)shards.reshard(3);
  EXPECT_EQ(shards.topology().backend().name(), "fault+simulated");
  // Two-arg reshard rebinds — null restores the default simulated machine
  // (the recovery path hands in the survivors' new communicator here).
  (void)shards.reshard(2, nullptr);
  EXPECT_EQ(shards.topology().backend().name(), "simulated");
}

}  // namespace
