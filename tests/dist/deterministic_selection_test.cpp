// distributed_bidding_deterministic(_batch): the P-invariant replay contract.
//
// Four contracts under test: (1) bit-equality — the winner of draw t is the
// SAME index at every rank count P in 1..1024 and every (block) partition,
// and equals serial core::DeterministicBidder draw for draw; (2) the
// seek/replay cursor — any interleaving of single and batched selects that
// covers the same draw ids returns the same winners, and seek() repositions
// exactly; (3) distribution — the deterministic race is still exactly
// F_i-distributed (chi-square); (4) ledger parity — the deterministic batch
// charges the identical CommLedger as the stream-based batch at every (P, B):
// the P-invariance costs Philox compute, not one extra word on the wire.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../testing.hpp"
#include "common/math.hpp"
#include "core/deterministic.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"

namespace {

using lrb::core::DeterministicBidder;
using lrb::dist::BatchDrawResult;
using lrb::dist::DeterministicDistributedBidder;
using lrb::dist::DrawResult;
using lrb::dist::ShardedFitness;

/// A fitness vector with zeros sprinkled in and a length (97) coprime to
/// every tested rank count, so block partitions are uneven everywhere and
/// shard boundaries fall on both zero and positive cells.
std::vector<double> uneven_fitness(std::size_t n = 97) {
  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 4 == 1) continue;  // zero cells
    fitness[i] = 0.25 + static_cast<double>((i * 7) % 23);
  }
  return fitness;
}

const std::vector<std::size_t> kRankSweep = {1, 2, 3, 7, 8, 64, 1024};

// (1) The tentpole: same seed, same winners at every rank count — and the
// winners are exactly the serial DeterministicBidder stream.
TEST(DeterministicDistributed, PSweepBitIdenticalToSerialBidder) {
  const std::vector<double> fitness = uneven_fitness();
  constexpr std::uint64_t kSeed = 0xfeedface12345678ULL;
  constexpr std::uint64_t kDraws = 32;

  DeterministicBidder serial(kSeed);
  std::vector<std::size_t> expected;
  for (std::uint64_t t = 0; t < kDraws; ++t) {
    expected.push_back(serial.select(fitness));
  }

  for (std::size_t p : kRankSweep) {
    const ShardedFitness shards(fitness, p);
    for (std::uint64_t t = 0; t < kDraws; ++t) {
      const DrawResult draw =
          lrb::dist::distributed_bidding_deterministic(shards, kSeed, t);
      ASSERT_EQ(draw.index, expected[t]) << "p=" << p << " draw=" << t;
    }
  }
}

TEST(DeterministicDistributed, BatchMatchesSinglesAndSerialAtEveryP) {
  const std::vector<double> fitness = uneven_fitness();
  constexpr std::uint64_t kSeed = 42;
  constexpr std::uint64_t kFirst = 5;
  constexpr std::size_t kBatch = 16;

  DeterministicBidder serial(kSeed);
  serial.seek(kFirst);
  std::vector<std::size_t> expected;
  for (std::size_t t = 0; t < kBatch; ++t) expected.push_back(serial.select(fitness));

  for (std::size_t p : kRankSweep) {
    const ShardedFitness shards(fitness, p);
    const BatchDrawResult batch =
        lrb::dist::distributed_bidding_deterministic_batch(shards, kBatch,
                                                           kSeed, kFirst);
    SCOPED_TRACE("p=" + std::to_string(p));
    EXPECT_EQ(batch.indices, expected);
  }
}

// Partition invariance beyond block splits: growing the vector with trailing
// zeros moves every shard boundary, yet the winners among the original items
// are unchanged — the bid of global item i does not care who owns it.
TEST(DeterministicDistributed, TrailingZeroPaddingNeverChangesWinners) {
  const std::vector<double> fitness = uneven_fitness(60);
  std::vector<double> padded = fitness;
  padded.resize(97, 0.0);  // same positive items, different partitions
  for (std::size_t p : {3u, 7u, 8u}) {
    const ShardedFitness a(fitness, p);
    const ShardedFitness b(padded, p);
    for (std::uint64_t t = 0; t < 16; ++t) {
      EXPECT_EQ(lrb::dist::distributed_bidding_deterministic(a, 9, t).index,
                lrb::dist::distributed_bidding_deterministic(b, 9, t).index)
          << "p=" << p << " draw=" << t;
    }
  }
}

// (2) Cursor: sequential selects consume draw ids 0,1,2,..., a batched
// select covers the same ids as single selects, and seek() replays.
TEST(DeterministicDistributed, CursorSeekReplayRoundTrip) {
  const std::vector<double> fitness = uneven_fitness();
  const ShardedFitness shards(fitness, 7);

  DeterministicDistributedBidder cursor(1234);
  EXPECT_EQ(cursor.next_draw_id(), 0u);
  std::vector<std::size_t> first;
  for (int t = 0; t < 20; ++t) first.push_back(cursor.select(shards).index);
  EXPECT_EQ(cursor.next_draw_id(), 20u);

  // Full replay.
  cursor.seek(0);
  for (int t = 0; t < 20; ++t) {
    EXPECT_EQ(cursor.select(shards).index, first[t]) << "draw=" << t;
  }

  // Batched replay covers the same draw ids as the singles did.
  cursor.seek(4);
  const BatchDrawResult mid = cursor.select_batch(shards, 12);
  EXPECT_EQ(cursor.next_draw_id(), 16u);
  for (std::size_t t = 0; t < 12; ++t) {
    EXPECT_EQ(mid.indices[t], first[4 + t]) << "draw=" << (4 + t);
  }

  // Random-access seek.
  cursor.seek(17);
  EXPECT_EQ(cursor.select(shards).index, first[17]);
}

TEST(DeterministicDistributed, CursorMatchesSerialBidderAcrossClusterResize) {
  // The checkpoint-restart story: run 10 draws on a 3-rank "cluster",
  // checkpoint (seed, next_draw_id), resume on 64 ranks — the stream
  // continues exactly where the serial bidder is.
  const std::vector<double> fitness = uneven_fitness();
  DeterministicBidder serial(777);
  std::vector<std::size_t> expected;
  for (int t = 0; t < 24; ++t) expected.push_back(serial.select(fitness));

  DeterministicDistributedBidder cursor(777);
  const ShardedFitness small(fitness, 3);
  for (int t = 0; t < 10; ++t) {
    EXPECT_EQ(cursor.select(small).index, expected[t]) << "draw=" << t;
  }
  DeterministicDistributedBidder resumed(cursor.seed());
  resumed.seek(cursor.next_draw_id());
  const ShardedFitness big(fitness, 64);
  const BatchDrawResult rest = resumed.select_batch(big, 14);
  for (std::size_t t = 0; t < 14; ++t) {
    EXPECT_EQ(rest.indices[t], expected[10 + t]) << "draw=" << (10 + t);
  }
}

// (3) Chi-square exactness: the counter-based race is still exactly
// F_i-distributed at every rank count.
TEST(DeterministicDistributed, ChiSquareMatchesExactProbabilities) {
  constexpr std::uint64_t kDraws = 30000;
  const std::vector<double> fitness = {0, 1, 2, 3, 4};
  for (std::size_t p : {2u, 5u, 8u}) {
    const ShardedFitness shards(fitness, p);
    DeterministicDistributedBidder cursor(0x5eedULL + p);
    const auto hist = lrb::testing::collect(fitness.size(), kDraws, [&] {
      return cursor.select(shards).index;
    });
    SCOPED_TRACE("p=" + std::to_string(p));
    lrb::testing::expect_matches_roulette(hist, fitness);
  }
}

TEST(DeterministicDistributed, CanonicalShapesMatchRouletteBatched) {
  constexpr std::size_t kBatch = 8;
  constexpr std::uint64_t kBatches = 2500;
  for (const auto& shape : lrb::testing::canonical_fitness_cases()) {
    const ShardedFitness shards(shape.fitness, 5);
    DeterministicDistributedBidder cursor(lrb::rng::fnv1a64(shape.name));
    lrb::stats::SelectionHistogram hist(shape.fitness.size());
    for (std::uint64_t rep = 0; rep < kBatches; ++rep) {
      for (std::size_t i : cursor.select_batch(shards, kBatch).indices) {
        hist.record(i);
      }
    }
    SCOPED_TRACE(shape.name);
    lrb::testing::expect_matches_roulette(hist, shape.fitness);
  }
}

// (4) Ledger parity: the deterministic batch rides the identical collective,
// so its CommLedger equals the stream-based batch's bill at every (P, B) —
// and therefore inherits every amortization bound already proven for it.
TEST(DeterministicDistributed, LedgerParityWithStreamBatchAtEveryPB) {
  const std::vector<double> fitness = uneven_fitness(4096);
  for (std::size_t p : kRankSweep) {
    const ShardedFitness shards(fitness, p);
    for (std::size_t b : {1u, 4u, 16u, 64u}) {
      const BatchDrawResult stream =
          lrb::dist::distributed_bidding_batch(shards, b, 7);
      const BatchDrawResult det =
          lrb::dist::distributed_bidding_deterministic_batch(shards, b, 7);
      SCOPED_TRACE("p=" + std::to_string(p) + " b=" + std::to_string(b));
      EXPECT_EQ(det.comm, stream.comm);
      EXPECT_EQ(det.comm.rounds, lrb::ceil_log2(p));
      EXPECT_EQ(det.comm.messages, lrb::ceil_log2(p) * p);
      EXPECT_EQ(det.comm.words, 2 * b * lrb::ceil_log2(p) * p);
      EXPECT_EQ(det.comm.critical_path_words, 2 * b * lrb::ceil_log2(p));
      // Zero-fault pin: clean draws never charge the retry axes.
      EXPECT_EQ(det.comm.retries, 0u);
      EXPECT_EQ(det.comm.retried_words, 0u);
    }
  }
}

TEST(DeterministicDistributed, AllSubnormalFitnessStillMatchesSerial) {
  // log(u)/f overflows to -inf for subnormal f, so every REAL bid can equal
  // the no-bid sentinel value; the winner extraction must judge "did anyone
  // bid" by index, not bid value, and still reproduce the serial stream
  // (serial first-install picks the first positive item when all bids tie).
  const std::vector<double> fitness = {0.0, 5e-324, 0.0, 5e-324, 1e-320};
  DeterministicBidder serial(3);
  for (std::size_t p : {1u, 2u, 3u, 5u}) {
    const ShardedFitness shards(fitness, p);
    for (std::uint64_t t = 0; t < 10; ++t) {
      serial.seek(t);
      EXPECT_EQ(lrb::dist::distributed_bidding_deterministic(shards, 3, t).index,
                serial.select(fitness))
          << "p=" << p << " draw=" << t;
    }
    // The stream path rides the same scaffold: it must not trip the no-bid
    // assert either, and must land on a positive cell.
    const BatchDrawResult stream =
        lrb::dist::distributed_bidding_batch(shards, 4, 3);
    for (std::size_t i : stream.indices) {
      EXPECT_GT(fitness[i], 0.0) << "p=" << p;
    }
  }
}

TEST(DeterministicDistributed, EmptyAndZeroShardsNeverBid) {
  // More ranks than entries: trailing shards empty, zero cells inert; the
  // single positive index wins every draw at every draw id.
  const std::vector<double> fitness = {0, 0, 5, 0};
  const ShardedFitness shards(fitness, 8);
  for (std::uint64_t t = 0; t < 50; ++t) {
    EXPECT_EQ(lrb::dist::distributed_bidding_deterministic(shards, 3, t).index,
              2u);
  }
}

TEST(DeterministicDistributed, RejectsBadArguments) {
  const ShardedFitness shards(std::vector<double>{1.0, 2.0}, 2);
  EXPECT_THROW(
      (void)lrb::dist::distributed_bidding_deterministic_batch(shards, 0, 1),
      lrb::InvalidArgumentError);
  ShardedFitness zeroed(std::vector<double>{1.0, 2.0}, 2);
  zeroed.update(0, 0.0);
  zeroed.update(1, 0.0);
  EXPECT_THROW((void)lrb::dist::distributed_bidding_deterministic(zeroed, 1),
               lrb::InvalidFitnessError);
  EXPECT_THROW((void)DeterministicDistributedBidder(5).select(zeroed),
               lrb::InvalidFitnessError);
}

}  // namespace
