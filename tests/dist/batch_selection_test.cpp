// distributed_bidding_batch: the amortized-round batched hot path.
//
// Three contracts under test: (1) B == 1 reproduces distributed_bidding bit
// for bit (winner and ledger); (2) the batched ledger — exactly ceil(log2 P)
// rounds for the WHOLE batch (rounds/draw ~ 1/B), words exactly B x the
// single-draw bill, and strictly cheaper than B independent prefix-sum draws
// on every axis, for every rank count; (3) the joint distribution — every
// batch position is exactly F_i-distributed, chi-square-checked per position
// and pooled, across shapes and rank counts.
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "../testing.hpp"
#include "common/math.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"
#include "rng/seed.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using lrb::dist::ArgMax;
using lrb::dist::BatchDrawResult;
using lrb::dist::DrawResult;
using lrb::dist::ShardedFitness;

std::vector<double> sparse_fitness(std::size_t n) {
  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; i += 3) {
    fitness[i] = 1.0 + static_cast<double>(i % 17);
  }
  return fitness;
}

/// Independent reference: the un-batched, un-filtered algorithm — per rank,
/// B back-to-back serial sub-races from engine seeds.child(r); per draw, an
/// argmax combine over ranks in rank order.  No DrawManyKernel, no batched
/// collective, so the production path is checked against straight-line code.
std::vector<std::size_t> reference_batch(const ShardedFitness& shards,
                                         std::size_t batch,
                                         const lrb::rng::SeedSequence& seeds) {
  constexpr double kNoBid = -std::numeric_limits<double>::infinity();
  constexpr std::uint64_t kNoIndex = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::vector<ArgMax>> local(
      shards.ranks(), std::vector<ArgMax>(batch, ArgMax{kNoBid, kNoIndex}));
  for (std::size_t r = 0; r < shards.ranks(); ++r) {
    lrb::rng::Xoshiro256StarStar gen(seeds.child(r));
    const auto range = shards.shard_range(r);
    const auto shard = shards.shard(r);
    for (std::size_t t = 0; t < batch; ++t) {
      bool found = false;
      for (std::size_t j = 0; j < shard.size(); ++j) {
        if (shard[j] <= 0.0) continue;
        const double bid = lrb::rng::log_bid(gen, shard[j]);
        if (!found || bid > local[r][t].value) {
          local[r][t] = ArgMax{bid, static_cast<std::uint64_t>(range.begin + j)};
          found = true;
        }
      }
    }
  }
  std::vector<std::size_t> winners(batch);
  for (std::size_t t = 0; t < batch; ++t) {
    ArgMax best = local[0][t];
    for (std::size_t r = 1; r < shards.ranks(); ++r) {
      best = lrb::dist::argmax_combine(best, local[r][t]);
    }
    EXPECT_GT(best.value, kNoBid);
    winners[t] = static_cast<std::size_t>(best.index);
  }
  return winners;
}

TEST(DistributedBiddingBatch, MatchesUnbatchedSerialReference) {
  const std::vector<double> fitness = sparse_fitness(200);
  for (std::size_t p : {1u, 2u, 5u, 16u, 300u}) {
    const ShardedFitness shards(fitness, p);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const lrb::rng::SeedSequence seeds(seed);
      const BatchDrawResult batch =
          lrb::dist::distributed_bidding_batch(shards, 7, seeds);
      SCOPED_TRACE("p=" + std::to_string(p) + " seed=" + std::to_string(seed));
      EXPECT_EQ(batch.indices, reference_batch(shards, 7, seeds));
    }
  }
}

TEST(DistributedBiddingBatch, BatchOfOneMatchesSingleDraw) {
  // distributed_bidding delegates to the B == 1 batch, so this pins the
  // wrapper's contract (index and ledger pass through unchanged); the
  // algorithmic content is covered by MatchesUnbatchedSerialReference.
  const std::vector<double> fitness = sparse_fitness(200);
  for (std::size_t p : {1u, 2u, 5u, 16u, 300u}) {
    const ShardedFitness shards(fitness, p);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const DrawResult single = lrb::dist::distributed_bidding(shards, seed);
      const BatchDrawResult batch =
          lrb::dist::distributed_bidding_batch(shards, 1, seed);
      SCOPED_TRACE("p=" + std::to_string(p) + " seed=" + std::to_string(seed));
      ASSERT_EQ(batch.indices.size(), 1u);
      EXPECT_EQ(batch.indices[0], single.index);
      EXPECT_EQ(batch.comm, single.comm);
    }
  }
}

TEST(DistributedBiddingBatch, IsDeterministicPerSeed) {
  const ShardedFitness shards(sparse_fitness(64), 5);
  const BatchDrawResult a = lrb::dist::distributed_bidding_batch(shards, 9, 99);
  const BatchDrawResult b = lrb::dist::distributed_bidding_batch(shards, 9, 99);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.comm, b.comm);
}

// The amortization claim, as exact arithmetic: one batch costs ceil(log2 P)
// rounds and ceil(log2 P) * P messages NO MATTER the batch size — only the
// payload grows (words exactly B x the single-draw bill) — so the per-draw
// round latency shrinks proportionally to 1/B.
TEST(DistributedBiddingBatch, LedgerAmortizesRoundsAcrossTheBatch) {
  const std::vector<double> fitness = sparse_fitness(4096);
  for (std::size_t p : {2u, 3u, 8u, 11u, 64u, 100u, 1024u}) {
    const ShardedFitness shards(fitness, p);
    const std::uint64_t lg = lrb::ceil_log2(p);
    for (std::size_t b : {1u, 4u, 16u, 64u}) {
      const BatchDrawResult batch =
          lrb::dist::distributed_bidding_batch(shards, b, 7);
      SCOPED_TRACE("p=" + std::to_string(p) + " b=" + std::to_string(b));
      ASSERT_EQ(batch.indices.size(), b);
      EXPECT_EQ(batch.comm.rounds, lg);
      EXPECT_EQ(batch.comm.messages, lg * p);
      EXPECT_EQ(batch.comm.words, 2 * b * lg * p);
      EXPECT_EQ(batch.comm.critical_path_words, 2 * b * lg);
      // Zero-fault pin: a clean machine never touches the retry axes.
      EXPECT_EQ(batch.comm.retries, 0u);
      EXPECT_EQ(batch.comm.retried_rounds, 0u);
      EXPECT_EQ(batch.comm.retried_words, 0u);
    }
  }
}

// The batched-ledger invariant: one bidding batch of B draws is strictly
// cheaper than B independent prefix-sum draws on EVERY axis, at every rank
// count in the 2..1024 sweep.
TEST(DistributedBiddingBatch, BeatsBTimesPrefixSumOnEveryAxis) {
  const std::vector<double> fitness = sparse_fitness(4096);
  for (std::size_t p = 2; p <= 1024; p *= 2) {
    const ShardedFitness shards(fitness, p);
    const DrawResult pfx = lrb::dist::distributed_prefix_sum(shards, 7);
    for (std::size_t b : {1u, 16u, 256u}) {
      const BatchDrawResult batch =
          lrb::dist::distributed_bidding_batch(shards, b, 7);
      SCOPED_TRACE("p=" + std::to_string(p) + " b=" + std::to_string(b));
      EXPECT_LT(batch.comm.rounds, b * pfx.comm.rounds);
      EXPECT_LT(batch.comm.messages, b * pfx.comm.messages);
      EXPECT_LT(batch.comm.words, b * pfx.comm.words);
      EXPECT_LT(batch.comm.critical_path_words,
                b * pfx.comm.critical_path_words);
    }
  }
}

// Joint marginals: within one batch the B draws are independent and each
// position t is exactly F_i-distributed.  Checked per position (histogram
// over many batches at fixed t) and pooled, across shapes and rank counts.
TEST(DistributedBiddingBatch, JointMarginalsAreExactPerPosition) {
  constexpr std::size_t kBatch = 4;
  constexpr std::uint64_t kBatches = 6000;
  for (const auto& shape : lrb::testing::canonical_fitness_cases()) {
    for (std::size_t p : {2u, 5u, 8u}) {
      const ShardedFitness shards(shape.fitness, p);
      const lrb::rng::SeedSequence seeds(0xb5297a4d1ac9e5b3ULL ^ p);
      std::vector<lrb::stats::SelectionHistogram> position_hist(
          kBatch, lrb::stats::SelectionHistogram(shape.fitness.size()));
      lrb::stats::SelectionHistogram pooled(shape.fitness.size());
      for (std::uint64_t rep = 0; rep < kBatches; ++rep) {
        const BatchDrawResult batch = lrb::dist::distributed_bidding_batch(
            shards, kBatch, seeds.subsequence(rep));
        for (std::size_t t = 0; t < kBatch; ++t) {
          position_hist[t].record(batch.indices[t]);
          pooled.record(batch.indices[t]);
        }
      }
      SCOPED_TRACE(std::string(shape.name) + " p=" + std::to_string(p));
      for (std::size_t t = 0; t < kBatch; ++t) {
        SCOPED_TRACE("position=" + std::to_string(t));
        lrb::testing::expect_matches_roulette(position_hist[t], shape.fitness);
      }
      lrb::testing::expect_matches_roulette(pooled, shape.fitness);
    }
  }
}

TEST(DistributedBiddingBatch, EmptyAndZeroShardsNeverBid) {
  // More ranks than entries: trailing shards are empty, zero cells inert.
  const std::vector<double> fitness = {0, 0, 5, 0};
  const ShardedFitness shards(fitness, 8);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const BatchDrawResult batch =
        lrb::dist::distributed_bidding_batch(shards, 6, seed);
    for (std::size_t index : batch.indices) EXPECT_EQ(index, 2u);
  }
}

TEST(DistributedBiddingBatch, RejectsBadArguments) {
  const ShardedFitness shards(std::vector<double>{1.0, 2.0}, 2);
  EXPECT_THROW((void)lrb::dist::distributed_bidding_batch(shards, 0, 1),
               lrb::InvalidArgumentError);
  ShardedFitness zeroed(std::vector<double>{1.0, 2.0}, 2);
  zeroed.update(0, 0.0);
  zeroed.update(1, 0.0);
  EXPECT_THROW((void)lrb::dist::distributed_bidding_batch(zeroed, 4, 1),
               lrb::InvalidFitnessError);
}

}  // namespace
