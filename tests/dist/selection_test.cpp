// Distributed selection: sharding invariants, exactness of both algorithms
// (chi-square against F_i), and the communication claim of experiment A9 —
// bidding's ledger is strictly cheaper than the prefix-sum pipeline's.
#include "dist/selection.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "../testing.hpp"
#include "common/math.hpp"
#include "dist/sharding.hpp"
#include "rng/seed.hpp"

namespace {

using lrb::dist::CommLedger;
using lrb::dist::DrawResult;
using lrb::dist::prefix_sum_locate;
using lrb::dist::ShardedFitness;

TEST(ShardedFitness, PartitionCoversVectorAndCachesSums) {
  const std::vector<double> fitness = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (std::size_t p : {1u, 2u, 3u, 7u, 10u, 16u}) {
    const ShardedFitness shards(fitness, p);
    EXPECT_EQ(shards.ranks(), p);
    EXPECT_EQ(shards.size(), fitness.size());
    std::size_t covered = 0;
    double total = 0.0;
    for (std::size_t r = 0; r < p; ++r) {
      const auto range = shards.shard_range(r);
      EXPECT_EQ(range.begin, covered) << "p=" << p << " rank=" << r;
      covered = range.end;
      for (std::size_t i = range.begin; i < range.end; ++i) {
        EXPECT_EQ(shards.owner(i), r) << "p=" << p << " index=" << i;
      }
      double sum = 0.0;
      for (double f : shards.shard(r)) sum += f;
      EXPECT_TRUE(lrb::is_close(shards.shard_sum(r), sum, 1e-12, 1e-12));
      total += sum;
    }
    EXPECT_EQ(covered, fitness.size());
    EXPECT_TRUE(lrb::is_close(shards.total(), total, 1e-12, 1e-12));
  }
}

TEST(ShardedFitness, PointUpdateIsAppliedAndSumsTrack) {
  const std::vector<double> fitness = {1, 2, 3, 4, 5, 6, 7, 8};
  ShardedFitness shards(fitness, 3);
  shards.update(0, 10.0);
  shards.update(7, 0.0);
  EXPECT_EQ(shards.value(0), 10.0);
  EXPECT_EQ(shards.value(7), 0.0);
  for (std::size_t r = 0; r < shards.ranks(); ++r) {
    double sum = 0.0;
    for (double f : shards.shard(r)) sum += f;
    EXPECT_TRUE(lrb::is_close(shards.shard_sum(r), sum, 1e-9, 1e-12));
  }
  EXPECT_THROW(shards.update(8, 1.0), lrb::InvalidArgumentError);
  EXPECT_THROW(shards.update(0, -1.0), lrb::InvalidFitnessError);
  // The error surface matches checked_fitness_total's: offending index and
  // value, so million-entry update streams are debuggable from the message.
  try {
    shards.update(5, -2.25);
    FAIL() << "negative update must throw";
  } catch (const lrb::InvalidFitnessError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("index 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("value -2.25"), std::string::npos) << msg;
  }
}

TEST(ShardedFitness, EmptiedShardSnapsToExactZero) {
  // Large/small cancellation leaves rounding residue under naive delta
  // maintenance; an emptied shard must report exactly 0.0 so the prefix
  // pipeline's ownership test can never pick a shard with nothing in it.
  const std::vector<double> fitness = {1e16, 3.0, 1.0, 1.0};
  ShardedFitness shards(fitness, 2);  // shard 0 = {1e16, 3}, shard 1 = {1, 1}
  shards.update(0, 0.0);
  shards.update(1, 0.0);
  EXPECT_EQ(shards.shard_sum(0), 0.0);
  // Draws stay valid (shard 1 is still positive) and never pick shard 0.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    EXPECT_GE(lrb::dist::distributed_prefix_sum(shards, seed).index, 2u);
    EXPECT_GE(lrb::dist::distributed_bidding(shards, seed).index, 2u);
  }
}

TEST(Selection, AllZeroFitnessAfterUpdatesThrowsTypedError) {
  // update() may legally drive the whole vector to zero; the next draw must
  // throw the same typed error the serial selectors do, not abort.
  const std::vector<double> fitness = {1.0, 2.0, 3.0};
  ShardedFitness shards(fitness, 2);
  for (std::size_t i = 0; i < fitness.size(); ++i) shards.update(i, 0.0);
  EXPECT_EQ(shards.total(), 0.0);
  EXPECT_THROW((void)lrb::dist::distributed_bidding(shards, 1),
               lrb::InvalidFitnessError);
  EXPECT_THROW((void)lrb::dist::distributed_prefix_sum(shards, 1),
               lrb::InvalidFitnessError);
}

TEST(ShardedFitness, RejectsInvalidFitness) {
  EXPECT_THROW(ShardedFitness(std::vector<double>{}, 4),
               lrb::InvalidFitnessError);
  EXPECT_THROW(ShardedFitness(std::vector<double>{0.0, 0.0}, 2),
               lrb::InvalidFitnessError);
  EXPECT_THROW(ShardedFitness(std::vector<double>{1.0, -1.0}, 2),
               lrb::InvalidFitnessError);
}

TEST(DistributedBidding, IsDeterministicPerSeed) {
  const std::vector<double> fitness = {0, 1, 2, 3, 4, 5};
  const ShardedFitness shards(fitness, 4);
  const DrawResult a = lrb::dist::distributed_bidding(shards, 99);
  const DrawResult b = lrb::dist::distributed_bidding(shards, 99);
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.comm, b.comm);
}

TEST(DistributedBidding, NeverSelectsZeroFitnessEvenWithEmptyShards) {
  // More ranks than entries: trailing shards are empty; zero cells never win.
  const std::vector<double> fitness = {0, 0, 5, 0};
  const ShardedFitness shards(fitness, 8);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    EXPECT_EQ(lrb::dist::distributed_bidding(shards, seed).index, 2u);
    EXPECT_EQ(lrb::dist::distributed_prefix_sum(shards, seed).index, 2u);
  }
}

// The tentpole guarantee: distributed bidding selects index i with exactly
// probability F_i for every rank count — same distribution as the serial
// selector, chi-square-checked over the canonical fitness shapes.
TEST(DistributedBidding, ChiSquareMatchesExactProbabilities) {
  constexpr std::uint64_t kDraws = 30000;
  for (const auto& shape : lrb::testing::canonical_fitness_cases()) {
    for (std::size_t p : {2u, 5u, 8u}) {
      const ShardedFitness shards(shape.fitness, p);
      const lrb::rng::SeedSequence seeds(0x9e3779b97f4a7c15ULL ^ p);
      std::uint64_t draw = 0;
      const auto hist =
          lrb::testing::collect(shape.fitness.size(), kDraws, [&] {
            return lrb::dist::distributed_bidding(shards,
                                                  seeds.subsequence(draw++))
                .index;
          });
      SCOPED_TRACE(std::string(shape.name) + " p=" + std::to_string(p));
      lrb::testing::expect_matches_roulette(hist, shape.fitness);
    }
  }
}

TEST(DistributedPrefixSum, ChiSquareMatchesExactProbabilities) {
  constexpr std::uint64_t kDraws = 30000;
  for (const auto& shape : lrb::testing::canonical_fitness_cases()) {
    for (std::size_t p : {2u, 5u, 8u}) {
      const ShardedFitness shards(shape.fitness, p);
      const lrb::rng::SeedSequence seeds(0x853c49e6748fea9bULL ^ p);
      std::uint64_t draw = 0;
      const auto hist =
          lrb::testing::collect(shape.fitness.size(), kDraws, [&] {
            return lrb::dist::distributed_prefix_sum(shards,
                                                     seeds.subsequence(draw++))
                .index;
          });
      SCOPED_TRACE(std::string(shape.name) + " p=" + std::to_string(p));
      lrb::testing::expect_matches_roulette(hist, shape.fitness);
    }
  }
}

TEST(DistributedBidding, ManyRanksStillExact) {
  const std::vector<double> fitness = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const ShardedFitness shards(fitness, 64);
  const lrb::rng::SeedSequence seeds(20240228);
  std::uint64_t draw = 0;
  const auto hist = lrb::testing::collect(fitness.size(), 20000, [&] {
    return lrb::dist::distributed_bidding(shards, seeds.subsequence(draw++))
        .index;
  });
  lrb::testing::expect_matches_roulette(hist, fitness);
}

TEST(SelectionAfterUpdates, BiddingTracksTheNewDistribution) {
  std::vector<double> fitness(32, 1.0);
  ShardedFitness shards(fitness, 6);
  // Reshape the vector through O(1) point updates, then re-validate.
  shards.update(3, 25.0);
  shards.update(17, 0.0);
  shards.update(31, 8.0);
  fitness[3] = 25.0;
  fitness[17] = 0.0;
  fitness[31] = 8.0;
  const lrb::rng::SeedSequence seeds(424242);
  std::uint64_t draw = 0;
  const auto hist = lrb::testing::collect(fitness.size(), 30000, [&] {
    return lrb::dist::distributed_bidding(shards, seeds.subsequence(draw++))
        .index;
  });
  lrb::testing::expect_matches_roulette(hist, fitness);
}

// Experiment A9's claim, as a hard invariant: for every rank count, the
// prefix-sum pipeline pays strictly more than bidding on every ledger axis.
TEST(CommunicationLedgers, BiddingIsCheaperThanPrefixSumForAllRankCounts) {
  std::vector<double> fitness(4096);
  for (std::size_t i = 0; i < fitness.size(); i += 3) {
    fitness[i] = 1.0 + static_cast<double>(i % 17);
  }
  for (std::size_t p = 2; p <= 1024; p *= 2) {
    const ShardedFitness shards(fitness, p);
    const DrawResult bid = lrb::dist::distributed_bidding(shards, 7);
    const DrawResult pfx = lrb::dist::distributed_prefix_sum(shards, 7);
    SCOPED_TRACE("p=" + std::to_string(p));
    // Bidding: exactly one dissemination allreduce of 2-word pairs.
    EXPECT_EQ(bid.comm.rounds, lrb::ceil_log2(p));
    EXPECT_EQ(bid.comm.messages, lrb::ceil_log2(p) * p);
    EXPECT_EQ(bid.comm.critical_path_words, 2 * lrb::ceil_log2(p));
    // The pipeline pays at least scan + reduce + broadcast on top.
    EXPECT_LT(bid.comm.messages, pfx.comm.messages);
    EXPECT_LT(bid.comm.rounds, pfx.comm.rounds);
    EXPECT_LT(bid.comm.words, pfx.comm.words);
    EXPECT_LT(bid.comm.critical_path_words, pfx.comm.critical_path_words);
  }
}

// ---------------------------------------------------------------------------
// prefix_sum_locate edge pinning: the RNG cannot be steered onto the exact
// threshold edges through the public draw entry points, so the extracted
// ownership + inverse-CDF step is driven directly.  The rule under test:
// owner = LAST non-empty rank with offset <= threshold, and the walk only
// ever lands on positive-fitness cells.

/// Exclusive prefix of the shard sums — what exclusive_scan_sum delivers.
std::vector<double> shard_offsets(const ShardedFitness& shards) {
  std::vector<double> offsets(shards.ranks(), 0.0);
  double running = 0.0;
  for (std::size_t r = 0; r < shards.ranks(); ++r) {
    offsets[r] = running;
    running += shards.shard_sum(r);
  }
  return offsets;
}

TEST(PrefixSumLocate, ThresholdZeroWithLeadingZeroCellsPicksFirstPositive) {
  // u = 0 => threshold exactly 0.  Ranks 0 ({0,0}) and the zero cells at the
  // head of rank 1 must be skipped: the first POSITIVE cell owns [0, 2).
  const std::vector<double> fitness = {0, 0, 0, 2, 0, 3};
  const ShardedFitness shards(fitness, 3);  // {0,0} {0,2} {0,3}
  ASSERT_EQ(shards.shard_sum(0), 0.0);
  const auto located = prefix_sum_locate(shards, shard_offsets(shards), 0.0);
  EXPECT_EQ(located.index, 3u);
  EXPECT_EQ(located.owner, 1u);  // the all-zero rank 0 can never own
}

TEST(PrefixSumLocate, ThresholdZeroOnAllPositiveWheelPicksFirstCell) {
  const std::vector<double> fitness = {1, 2, 3, 4};
  for (std::size_t p : {1u, 2u, 4u}) {
    const ShardedFitness shards(fitness, p);
    EXPECT_EQ(prefix_sum_locate(shards, shard_offsets(shards), 0.0).index, 0u)
        << "p=" << p;
  }
}

TEST(PrefixSumLocate, ThresholdExactlyOnShardBoundaryBelongsToNextShard) {
  // Shards {1,1} and {2,4}: the boundary t = 2.0 is the START of rank 1's
  // half-open interval [2, 8), so rank 1 owns it and its first cell wins;
  // one ulp below the boundary still belongs to rank 0's last cell.
  const std::vector<double> fitness = {1, 1, 2, 4};
  const ShardedFitness shards(fitness, 2);
  const std::vector<double> offsets = shard_offsets(shards);
  ASSERT_EQ(offsets[1], 2.0);
  const auto at = prefix_sum_locate(shards, offsets, 2.0);
  EXPECT_EQ(at.index, 2u);
  EXPECT_EQ(at.owner, 1u);
  const auto below = prefix_sum_locate(shards, offsets, std::nextafter(2.0, 0.0));
  EXPECT_EQ(below.index, 1u);
  EXPECT_EQ(below.owner, 0u);
}

TEST(PrefixSumLocate, BoundaryThresholdSkipsNextShardsLeadingZeros) {
  // The boundary-owning shard starts with a zero cell: the walk must land on
  // its first POSITIVE cell, never on the zero at the boundary itself.
  const std::vector<double> fitness = {1, 1, 0, 4};
  const ShardedFitness shards(fitness, 2);  // {1,1} {0,4}
  const std::vector<double> offsets = shard_offsets(shards);
  ASSERT_EQ(offsets[1], 2.0);
  EXPECT_EQ(prefix_sum_locate(shards, offsets, 2.0).index, 3u);
}

TEST(PrefixSumLocate, BoundaryIntoEmptyAndZeroShardsFallsThrough) {
  // Threshold exactly at the offset shared by a zero shard and the positive
  // shard after it: the zero shard can never own ("last NON-EMPTY rank"),
  // so ownership falls through to the later rank with the same offset.
  const std::vector<double> fitness = {2, 0, 0, 5, 0, 0};
  const ShardedFitness shards(fitness, 3);  // {2,0} {0,5} {0,0}
  const std::vector<double> offsets = shard_offsets(shards);
  ASSERT_EQ(offsets[1], 2.0);
  ASSERT_EQ(offsets[2], 7.0);
  EXPECT_EQ(prefix_sum_locate(shards, offsets, 2.0).index, 3u);
  // Rounding overshoot: a threshold at/past the last positive mass (possible
  // when u*total rounds up) saturates at the last positive cell, never a
  // zero-fitness index and never out of range.
  EXPECT_EQ(prefix_sum_locate(shards, offsets, std::nextafter(7.0, 0.0)).index, 3u);
  EXPECT_EQ(prefix_sum_locate(shards, offsets, 7.0).index, 3u);
}

TEST(PrefixSumLocate, SinglePositiveEntryWheelAlwaysPicksIt) {
  const std::vector<double> fitness = {0, 0, 7, 0, 0};
  for (std::size_t p : {1u, 2u, 3u, 5u, 8u}) {
    const ShardedFitness shards(fitness, p);
    const std::vector<double> offsets = shard_offsets(shards);
    for (double t : {0.0, 1e-12, 3.5, std::nextafter(7.0, 0.0)}) {
      EXPECT_EQ(prefix_sum_locate(shards, offsets, t).index, 2u)
          << "p=" << p << " threshold=" << t;
    }
  }
}

TEST(PrefixSumLocate, EveryThresholdInEveryCellIntervalIsOwnedByThatCell) {
  // Sweep thresholds through the interior and both edges of every positive
  // cell's interval: the located index must be exactly that cell.
  const std::vector<double> fitness = {0.5, 0, 1.5, 2, 0, 0.25, 3};
  for (std::size_t p : {1u, 2u, 3u, 7u}) {
    const ShardedFitness shards(fitness, p);
    const std::vector<double> offsets = shard_offsets(shards);
    double lo = 0.0;
    for (std::size_t i = 0; i < fitness.size(); ++i) {
      if (fitness[i] <= 0.0) continue;
      const double hi = lo + fitness[i];
      for (double t : {lo, (lo + hi) / 2, std::nextafter(hi, lo)}) {
        const auto located = prefix_sum_locate(shards, offsets, t);
        EXPECT_EQ(located.index, i) << "p=" << p << " threshold=" << t;
        EXPECT_EQ(located.owner, shards.owner(i))
            << "p=" << p << " threshold=" << t;
      }
      lo = hi;
    }
  }
}

TEST(PrefixSumLocate, RejectsBadArguments) {
  const ShardedFitness shards(std::vector<double>{1.0, 2.0}, 2);
  const std::vector<double> offsets = shard_offsets(shards);
  EXPECT_THROW((void)prefix_sum_locate(shards, offsets, -0.5),
               lrb::InvalidArgumentError);
  EXPECT_THROW(
      (void)prefix_sum_locate(shards, std::vector<double>{0.0}, 0.5),
      lrb::InvalidArgumentError);
}

// Odd (non-power-of-two) rank counts keep both the exactness and the
// cheaper-bidding ordering.
TEST(CommunicationLedgers, OddRankCountsPreserveTheOrdering) {
  std::vector<double> fitness(999, 0.5);
  for (std::size_t p : {3u, 5u, 11u, 63u, 100u, 999u}) {
    const ShardedFitness shards(fitness, p);
    const DrawResult bid = lrb::dist::distributed_bidding(shards, 13);
    const DrawResult pfx = lrb::dist::distributed_prefix_sum(shards, 13);
    SCOPED_TRACE("p=" + std::to_string(p));
    EXPECT_EQ(bid.comm.rounds, lrb::ceil_log2(p));
    EXPECT_LT(bid.comm.messages, pfx.comm.messages);
    EXPECT_LT(bid.comm.words, pfx.comm.words);
  }
}

}  // namespace
