// Collectives over the simulated message-passing machine: results must equal
// serial references, and the ledgers must match the ceil(log2 P) round
// bounds the machine model promises.
#include "dist/collectives.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "dist/topology.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using lrb::ceil_log2;
using lrb::dist::ArgMax;
using lrb::dist::CommLedger;
using lrb::dist::Topology;

// Rank counts covering 1, powers of two, and awkward in-between values.
const std::vector<std::size_t> kRankCounts = {1, 2, 3, 4, 5, 7, 8,
                                              13, 16, 31, 32, 100, 128};

std::vector<double> random_values(std::size_t p, std::uint64_t seed) {
  lrb::rng::Xoshiro256StarStar gen(seed);
  std::vector<double> vals(p);
  for (double& v : vals) v = lrb::rng::u01_closed_open(gen) * 10.0 - 2.0;
  return vals;
}

TEST(Topology, RequiresAtLeastOneRank) {
  EXPECT_THROW(Topology(0), lrb::InvalidArgumentError);
  EXPECT_EQ(Topology(1).log_rounds(), 0u);
  EXPECT_EQ(Topology(2).log_rounds(), 1u);
  EXPECT_EQ(Topology(1024).log_rounds(), 10u);
  EXPECT_EQ(Topology(1000).log_rounds(), 10u);
}

TEST(CommLedger, ChargeAndMerge) {
  CommLedger a;
  a.charge_round(8, 2);
  EXPECT_EQ(a.rounds, 1u);
  EXPECT_EQ(a.messages, 8u);
  EXPECT_EQ(a.words, 16u);
  EXPECT_EQ(a.critical_path_words, 2u);
  CommLedger b;
  b.charge_round(0, 5);  // empty round: no message on the critical path
  EXPECT_EQ(b.critical_path_words, 0u);
  a += b;
  EXPECT_EQ(a.rounds, 2u);
  EXPECT_EQ(a.messages, 8u);
}

// The fault-accounting axes: demote_to_retried rolls a failed attempt's
// traffic back to a checkpoint and rebooks it as retried, so the useful
// axes stay bit-identical to a run that never failed.
TEST(CommLedger, DemoteToRetriedRebooksTheFailedAttempt) {
  CommLedger ledger;
  ledger.charge_round(4, 3);  // useful work before the attempt
  const CommLedger checkpoint = ledger;
  ledger.charge_round(4, 3);  // the attempt that will fail
  ledger.charge_round(4, 3);
  ledger.demote_to_retried(checkpoint);
  EXPECT_EQ(ledger.rounds, checkpoint.rounds);
  EXPECT_EQ(ledger.messages, checkpoint.messages);
  EXPECT_EQ(ledger.words, checkpoint.words);
  EXPECT_EQ(ledger.critical_path_words, checkpoint.critical_path_words);
  EXPECT_EQ(ledger.retries, 1u);
  EXPECT_EQ(ledger.retried_rounds, 2u);
  EXPECT_EQ(ledger.retried_messages, 8u);
  EXPECT_EQ(ledger.retried_words, 24u);
  // operator+= carries the retry axes too.
  CommLedger merged;
  merged += ledger;
  merged += ledger;
  EXPECT_EQ(merged.retries, 2u);
  EXPECT_EQ(merged.retried_words, 48u);
}

TEST(AllreduceMax, MatchesSerialReferenceOnAllRanks) {
  for (std::size_t p : kRankCounts) {
    const Topology topo(p);
    const auto local = random_values(p, 7 * p + 1);
    CommLedger ledger;
    const auto result = lrb::dist::allreduce_max(topo, local, ledger);
    const double expected = *std::max_element(local.begin(), local.end());
    ASSERT_EQ(result.size(), p);
    for (std::size_t r = 0; r < p; ++r) {
      EXPECT_EQ(result[r], expected) << "p=" << p << " rank=" << r;
    }
  }
}

TEST(AllreduceMax, LedgerMatchesDisseminationBounds) {
  for (std::size_t p : kRankCounts) {
    const Topology topo(p);
    const auto local = random_values(p, p);
    CommLedger ledger;
    (void)lrb::dist::allreduce_max(topo, local, ledger);
    const std::uint64_t rounds = ceil_log2(p);
    EXPECT_EQ(ledger.rounds, rounds) << "p=" << p;
    EXPECT_EQ(ledger.messages, rounds * p) << "p=" << p;
    EXPECT_EQ(ledger.words, rounds * p) << "p=" << p;
    EXPECT_EQ(ledger.critical_path_words, rounds) << "p=" << p;
  }
}

TEST(AllreduceArgmax, MatchesSerialReferenceAndBreaksTiesLow) {
  for (std::size_t p : kRankCounts) {
    const Topology topo(p);
    const auto values = random_values(p, 31 * p + 5);
    std::vector<ArgMax> local(p);
    for (std::size_t r = 0; r < p; ++r) {
      local[r] = ArgMax{values[r], static_cast<std::uint64_t>(r * 10)};
    }
    ArgMax expected = local[0];
    for (const ArgMax& candidate : local) {
      expected = lrb::dist::argmax_combine(expected, candidate);
    }
    CommLedger ledger;
    const auto result = lrb::dist::allreduce_argmax(topo, local, ledger);
    for (std::size_t r = 0; r < p; ++r) {
      EXPECT_EQ(result[r], expected) << "p=" << p << " rank=" << r;
    }
    // 2-word pairs double the words but not the messages.
    EXPECT_EQ(ledger.rounds, ceil_log2(p));
    EXPECT_EQ(ledger.words, 2 * ledger.messages);
    EXPECT_EQ(ledger.critical_path_words, 2 * ceil_log2(p));
  }
}

TEST(AllreduceArgmax, EqualValuesKeepLowestIndex) {
  const Topology topo(8);
  std::vector<ArgMax> local(8, ArgMax{1.0, 0});
  for (std::size_t r = 0; r < 8; ++r) local[r].index = 70 - r;
  CommLedger ledger;
  const auto result = lrb::dist::allreduce_argmax(topo, local, ledger);
  for (const ArgMax& w : result) EXPECT_EQ(w.index, 63u);
}

TEST(AllreduceSum, MatchesSerialReferenceOnAllRanks) {
  for (std::size_t p : kRankCounts) {
    const Topology topo(p);
    const auto local = random_values(p, 101 * p + 3);
    const double expected = lrb::accurate_sum(local);
    CommLedger ledger;
    const auto result = lrb::dist::allreduce_sum(topo, local, ledger);
    for (std::size_t r = 0; r < p; ++r) {
      EXPECT_TRUE(lrb::is_close(result[r], expected, 1e-12, 1e-12))
          << "p=" << p << " rank=" << r << " got " << result[r] << " want "
          << expected;
    }
  }
}

TEST(AllreduceSum, LedgerMatchesHypercubeBounds) {
  for (std::size_t p : kRankCounts) {
    const Topology topo(p);
    const auto local = random_values(p, p + 9);
    CommLedger ledger;
    (void)lrb::dist::allreduce_sum(topo, local, ledger);
    if (topo.is_hypercube()) {
      // Pure recursive doubling: exactly ceil(log2 P) rounds of P messages.
      EXPECT_EQ(ledger.rounds, ceil_log2(p)) << "p=" << p;
      EXPECT_EQ(ledger.messages, ceil_log2(p) * p) << "p=" << p;
    } else {
      // Fold + hypercube + unfold: floor(log2 P) + 2 == ceil(log2 P) + 1.
      EXPECT_EQ(ledger.rounds, ceil_log2(p) + 1) << "p=" << p;
      EXPECT_LE(ledger.messages, (ceil_log2(p) + 1) * p) << "p=" << p;
    }
  }
}

TEST(ExclusiveScanSum, MatchesSerialLeftFold) {
  for (std::size_t p : kRankCounts) {
    const Topology topo(p);
    const auto local = random_values(p, 13 * p + 2);
    CommLedger ledger;
    const auto result = lrb::dist::exclusive_scan_sum(topo, local, ledger);
    double running = 0.0;
    for (std::size_t r = 0; r < p; ++r) {
      EXPECT_TRUE(lrb::is_close(result[r], running, 1e-12, 1e-12))
          << "p=" << p << " rank=" << r;
      running += local[r];
    }
    EXPECT_EQ(result[0], 0.0);
    EXPECT_EQ(ledger.rounds, ceil_log2(p)) << "p=" << p;
    // Round at shift d carries P-d messages.
    std::uint64_t expected_messages = 0;
    for (std::size_t shift = 1; shift < p; shift <<= 1) {
      expected_messages += p - shift;
    }
    EXPECT_EQ(ledger.messages, expected_messages) << "p=" << p;
  }
}

TEST(ReduceSum, MatchesSerialReferenceForEveryRoot) {
  for (std::size_t p : kRankCounts) {
    const Topology topo(p);
    const auto local = random_values(p, 3 * p + 11);
    const double expected = lrb::accurate_sum(local);
    for (std::size_t root = 0; root < p; root += (p > 4 ? p / 3 : 1)) {
      CommLedger ledger;
      const double total = lrb::dist::reduce_sum(topo, local, root, ledger);
      EXPECT_TRUE(lrb::is_close(total, expected, 1e-12, 1e-12))
          << "p=" << p << " root=" << root;
      // Binomial tree: ceil(log2 P) rounds, P-1 messages in total.
      EXPECT_EQ(ledger.rounds, ceil_log2(p));
      EXPECT_EQ(ledger.messages, p - 1);
      EXPECT_EQ(ledger.critical_path_words, ceil_log2(p));
    }
  }
}

TEST(Broadcast, DeliversToEveryRankFromEveryRoot) {
  for (std::size_t p : kRankCounts) {
    const Topology topo(p);
    for (std::size_t root = 0; root < p; root += (p > 4 ? p / 3 : 1)) {
      CommLedger ledger;
      const auto result = lrb::dist::broadcast(topo, 42.5, root, ledger);
      for (std::size_t r = 0; r < p; ++r) {
        EXPECT_EQ(result[r], 42.5) << "p=" << p << " root=" << root;
      }
      EXPECT_EQ(ledger.rounds, ceil_log2(p));
      EXPECT_EQ(ledger.messages, p - 1);
    }
  }
}

TEST(Collectives, RejectWrongArityInput) {
  const Topology topo(4);
  CommLedger ledger;
  const std::vector<double> wrong(3, 1.0);
  EXPECT_THROW((void)lrb::dist::allreduce_sum(topo, wrong, ledger),
               lrb::InvalidArgumentError);
  EXPECT_THROW((void)lrb::dist::allreduce_max(topo, wrong, ledger),
               lrb::InvalidArgumentError);
  EXPECT_THROW((void)lrb::dist::exclusive_scan_sum(topo, wrong, ledger),
               lrb::InvalidArgumentError);
  EXPECT_THROW((void)lrb::dist::reduce_sum(topo, wrong, 0, ledger),
               lrb::InvalidArgumentError);
  EXPECT_THROW((void)lrb::dist::broadcast(topo, 1.0, 9, ledger),
               lrb::InvalidArgumentError);
}

}  // namespace
