// Backend dispatch: a Topology with an explicitly injected SimulatedBackend
// must be indistinguishable — results AND ledgers, bit for bit — from the
// legacy default-constructed path, for every collective and for whole
// selection draws.  This is the contract that lets MpiBackend slot in behind
// the same interface: anything the dispatch layer perturbed here would shear
// the two real backends apart too (tools/mpi_parity proves the MPI side).
#include "dist/backend.hpp"

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dist/collectives.hpp"
#include "dist/selection.hpp"
#include "dist/sharding.hpp"
#include "dist/topology.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using lrb::dist::ArgMax;
using lrb::dist::CommBackend;
using lrb::dist::CommLedger;
using lrb::dist::ShardedFitness;
using lrb::dist::Topology;

// Equality of doubles as bit patterns: the two paths must run the very same
// instructions, so even NaNs and signed zeros have to coincide exactly.
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "entry " << i;
  }
}

std::vector<double> random_values(std::size_t p, std::uint64_t seed) {
  lrb::rng::Xoshiro256StarStar gen(seed);
  std::vector<double> vals(p);
  for (double& v : vals) v = lrb::rng::u01_closed_open(gen) * 10.0 - 2.0;
  return vals;
}

/// Every collective, run once over the legacy default Topology and once over
/// a Topology with the simulated backend injected explicitly.
class BackendDispatchTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::size_t p() const { return GetParam(); }
  Topology legacy() const { return Topology(p()); }
  Topology explicit_simulated() const {
    return Topology(p(), lrb::dist::make_simulated_backend());
  }
};

TEST_P(BackendDispatchTest, AllreduceMaxBitEqual) {
  const std::vector<double> local = random_values(p(), 11);
  CommLedger a, b;
  expect_bits_equal(allreduce_max(legacy(), local, a),
                    allreduce_max(explicit_simulated(), local, b));
  EXPECT_EQ(a, b);
}

TEST_P(BackendDispatchTest, AllreduceArgmaxBitEqual) {
  std::vector<ArgMax> local(p());
  const std::vector<double> vals = random_values(p(), 12);
  for (std::size_t i = 0; i < p(); ++i) {
    local[i] = ArgMax{vals[i], static_cast<std::uint64_t>(100 + i)};
  }
  CommLedger a, b;
  const auto lhs = allreduce_argmax(legacy(), local, a);
  const auto rhs = allreduce_argmax(explicit_simulated(), local, b);
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(lhs[i].value),
              std::bit_cast<std::uint64_t>(rhs[i].value));
    EXPECT_EQ(lhs[i].index, rhs[i].index);
  }
  EXPECT_EQ(a, b);
}

TEST_P(BackendDispatchTest, AllreduceArgmaxBatchBitEqualIncludingSingleElement) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}}) {
    std::vector<std::vector<ArgMax>> local(p(), std::vector<ArgMax>(batch));
    lrb::rng::Xoshiro256StarStar gen(13);
    for (std::size_t i = 0; i < p(); ++i) {
      for (std::size_t t = 0; t < batch; ++t) {
        local[i][t] =
            ArgMax{lrb::rng::u01_closed_open(gen), 10 * i + t};
      }
    }
    CommLedger a, b;
    const auto lhs = allreduce_argmax_batch(legacy(), local, a);
    const auto rhs = allreduce_argmax_batch(explicit_simulated(), local, b);
    ASSERT_EQ(lhs, rhs);
    EXPECT_EQ(a, b);
  }
}

TEST_P(BackendDispatchTest, BatchZeroRejectedIdenticallyByBothPaths) {
  const std::vector<std::vector<ArgMax>> empty_batch(p());
  CommLedger ledger;
  EXPECT_THROW((void)allreduce_argmax_batch(legacy(), empty_batch, ledger),
               lrb::InvalidArgumentError);
  EXPECT_THROW(
      (void)allreduce_argmax_batch(explicit_simulated(), empty_batch, ledger),
      lrb::InvalidArgumentError);
  // Rejected before dispatch: no backend charged anything.
  EXPECT_EQ(ledger, CommLedger{});
}

TEST_P(BackendDispatchTest, AllreduceSumBitEqual) {
  const std::vector<double> local = random_values(p(), 14);
  CommLedger a, b;
  expect_bits_equal(allreduce_sum(legacy(), local, a),
                    allreduce_sum(explicit_simulated(), local, b));
  EXPECT_EQ(a, b);
}

TEST_P(BackendDispatchTest, ExclusiveScanSumBitEqual) {
  const std::vector<double> local = random_values(p(), 15);
  CommLedger a, b;
  expect_bits_equal(exclusive_scan_sum(legacy(), local, a),
                    exclusive_scan_sum(explicit_simulated(), local, b));
  EXPECT_EQ(a, b);
}

TEST_P(BackendDispatchTest, ReduceSumBitEqualForEveryRoot) {
  const std::vector<double> local = random_values(p(), 16);
  for (std::size_t root = 0; root < p(); ++root) {
    CommLedger a, b;
    const double lhs = reduce_sum(legacy(), local, root, a);
    const double rhs = reduce_sum(explicit_simulated(), local, root, b);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(lhs),
              std::bit_cast<std::uint64_t>(rhs));
    EXPECT_EQ(a, b);
  }
}

TEST_P(BackendDispatchTest, BroadcastBitEqualForEveryRoot) {
  for (std::size_t root = 0; root < p(); ++root) {
    CommLedger a, b;
    expect_bits_equal(broadcast(legacy(), 3.25, root, a),
                      broadcast(explicit_simulated(), 3.25, root, b));
    EXPECT_EQ(a, b);
  }
}

// P = 1 (zero rounds) plus awkward and power-of-two rank counts; the
// collectives above also each cover the single-element (P = 1) edge.
INSTANTIATE_TEST_SUITE_P(RankCounts, BackendDispatchTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 31, 64));

TEST(BackendDispatch, DefaultTopologyUsesTheSimulatedSingleton) {
  EXPECT_EQ(&Topology(4).backend(), &lrb::dist::simulated_backend());
  EXPECT_EQ(Topology(4).backend().name(), "simulated");
  EXPECT_TRUE(Topology(4).backend().owns_rank(0));
  EXPECT_TRUE(Topology(4).backend().owns_rank(3));
}

TEST(BackendDispatch, InjectedBackendIsTheOneDispatchedTo) {
  const std::shared_ptr<const CommBackend> backend =
      lrb::dist::make_simulated_backend();
  const Topology topo(4, backend);
  EXPECT_EQ(&topo.backend(), backend.get());
  // Copies of the Topology stay on the same machine (shared handle).
  const Topology copy = topo;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(&copy.backend(), backend.get());
}

TEST(BackendDispatch, WholeSelectionDrawsBitEqualAcrossDispatchPaths) {
  std::vector<double> fitness(257);
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    fitness[i] = (i % 3 == 0) ? 0.0 : 1.0 + static_cast<double>(i % 17);
  }
  for (std::size_t p : {std::size_t{1}, std::size_t{6}, std::size_t{32}}) {
    const ShardedFitness legacy(fitness, p);
    const ShardedFitness injected(fitness, p,
                                  lrb::dist::make_simulated_backend());

    const auto stream_a = lrb::dist::distributed_bidding_batch(legacy, 9, 77);
    const auto stream_b = lrb::dist::distributed_bidding_batch(injected, 9, 77);
    EXPECT_EQ(stream_a.indices, stream_b.indices);
    EXPECT_EQ(stream_a.comm, stream_b.comm);

    const auto det_a =
        lrb::dist::distributed_bidding_deterministic_batch(legacy, 9, 77, 5);
    const auto det_b =
        lrb::dist::distributed_bidding_deterministic_batch(injected, 9, 77, 5);
    EXPECT_EQ(det_a.indices, det_b.indices);
    EXPECT_EQ(det_a.comm, det_b.comm);

    const auto pfx_a = lrb::dist::distributed_prefix_sum(legacy, 123);
    const auto pfx_b = lrb::dist::distributed_prefix_sum(injected, 123);
    EXPECT_EQ(pfx_a.index, pfx_b.index);
    EXPECT_EQ(pfx_a.comm, pfx_b.comm);
  }
}

}  // namespace
