#include "stats/online.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::stats {
namespace {

TEST(OnlineMoments, KnownSmallSample) {
  OnlineMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(OnlineMoments, EmptyAndSingle) {
  OnlineMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.sem(), 0.0);
}

TEST(OnlineMoments, MergeMatchesSequential) {
  rng::Xoshiro256StarStar gen(3);
  OnlineMoments full, a, b;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng::u01_closed_open(gen) * 10.0 - 5.0;
    full.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), full.count());
  EXPECT_NEAR(a.mean(), full.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), full.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), full.min());
  EXPECT_DOUBLE_EQ(a.max(), full.max());
}

TEST(OnlineMoments, MergeWithEmpty) {
  OnlineMoments a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  OnlineMoments b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(OnlineMoments, SemShrinksWithSamples) {
  rng::Xoshiro256StarStar gen(4);
  OnlineMoments small, large;
  for (int i = 0; i < 100; ++i) small.add(rng::u01_closed_open(gen));
  for (int i = 0; i < 100000; ++i) large.add(rng::u01_closed_open(gen));
  EXPECT_GT(small.sem(), large.sem());
  // SEM of uniform(0,1) with n=1e5: sqrt(1/12)/sqrt(1e5) ~ 9.1e-4.
  EXPECT_NEAR(large.sem(), std::sqrt(1.0 / 12.0) / std::sqrt(1e5), 2e-4);
}

}  // namespace
}  // namespace lrb::stats
