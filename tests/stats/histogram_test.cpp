#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb::stats {
namespace {

TEST(SelectionHistogram, RecordsAndCounts) {
  SelectionHistogram h(3);
  h.record(0);
  h.record(2);
  h.record(2);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.count(2), 2u);
}

TEST(SelectionHistogram, FrequenciesNormalize) {
  SelectionHistogram h(2);
  for (int i = 0; i < 3; ++i) h.record(0);
  h.record(1);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.75);
  EXPECT_DOUBLE_EQ(h.frequency(1), 0.25);
  const auto fs = h.frequencies();
  EXPECT_DOUBLE_EQ(fs[0] + fs[1], 1.0);
}

TEST(SelectionHistogram, EmptyFrequenciesAreZero) {
  SelectionHistogram h(2);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.0);
  EXPECT_EQ(h.frequencies(), (std::vector<double>{0.0, 0.0}));
}

TEST(SelectionHistogram, OutOfRangeThrows) {
  SelectionHistogram h(2);
  EXPECT_THROW(h.record(2), lrb::InvalidArgumentError);
  EXPECT_THROW((void)h.count(5), lrb::InvalidArgumentError);
  EXPECT_THROW((void)h.frequency(2), lrb::InvalidArgumentError);
}

TEST(SelectionHistogram, MergeAccumulates) {
  SelectionHistogram a(3), b(3);
  a.record(0);
  b.record(1);
  b.record(1);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(1), 2u);
  SelectionHistogram c(4);
  EXPECT_THROW(a.merge(c), lrb::InvalidArgumentError);
}

}  // namespace
}  // namespace lrb::stats
