#include "stats/gof.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256.hpp"

namespace lrb::stats {
namespace {

TEST(ChiSquareGof, AcceptsFairDie) {
  rng::Xoshiro256StarStar gen(1);
  std::vector<std::uint64_t> counts(6, 0);
  for (int i = 0; i < 60000; ++i) ++counts[rng::uniform_below(gen, 6)];
  const std::vector<double> expected(6, 1.0 / 6.0);
  const auto r = chi_square_gof(counts, expected);
  EXPECT_GT(r.p_value, 1e-4);
  EXPECT_EQ(r.cells_used, 6u);
  EXPECT_DOUBLE_EQ(r.dof, 5.0);
  EXPECT_TRUE(r.consistent_with_model());
}

TEST(ChiSquareGof, RejectsLoadedDie) {
  // A die that never shows 6 against a fair model.
  std::vector<std::uint64_t> counts = {12000, 12000, 12000, 12000, 12000, 0};
  const std::vector<double> expected(6, 1.0 / 6.0);
  const auto r = chi_square_gof(counts, expected);
  EXPECT_LT(r.p_value, 1e-10);
  EXPECT_FALSE(r.consistent_with_model());
}

TEST(ChiSquareGof, ZeroProbabilityCellWithObservationsRejects) {
  std::vector<std::uint64_t> counts = {10, 90, 1};
  const std::vector<double> expected = {0.1, 0.9, 0.0};
  const auto r = chi_square_gof(counts, expected);
  EXPECT_EQ(r.p_value, 0.0);
}

TEST(ChiSquareGof, ZeroProbabilityCellWithoutObservationsDropped) {
  std::vector<std::uint64_t> counts = {5000, 5000, 0};
  const std::vector<double> expected = {0.5, 0.5, 0.0};
  const auto r = chi_square_gof(counts, expected);
  EXPECT_GT(r.p_value, 1e-4);
  EXPECT_EQ(r.cells_dropped, 1u);
  EXPECT_EQ(r.cells_used, 2u);
}

TEST(ChiSquareGof, PoolsSparseCells) {
  // 100 tiny-probability cells pooled into one.
  std::vector<std::uint64_t> counts(102, 0);
  std::vector<double> expected(102, 0.0);
  counts[0] = 500;
  counts[1] = 480;
  expected[0] = 0.5;
  expected[1] = 0.48;
  for (int i = 2; i < 102; ++i) {
    expected[i] = 0.02 / 100.0;
  }
  counts[50] = 20;  // all pooled mass lands in a few cells
  const auto r = chi_square_gof(counts, expected, 5.0);
  EXPECT_EQ(r.cells_used, 3u);  // two big cells + pooled remainder
  EXPECT_GT(r.p_value, 1e-6);
}

TEST(ChiSquareGof, ThrowsOnDegenerateInput) {
  EXPECT_THROW(
      (void)chi_square_gof(std::vector<std::uint64_t>{},
                           std::vector<double>{}),
      lrb::InvalidArgumentError);
  EXPECT_THROW((void)chi_square_gof(std::vector<std::uint64_t>{1, 2},
                                    std::vector<double>{1.0}),
               lrb::InvalidArgumentError);
  EXPECT_THROW((void)chi_square_gof(std::vector<std::uint64_t>{0, 0},
                                    std::vector<double>{0.5, 0.5}),
               lrb::InvalidArgumentError);
}

TEST(TotalVariation, BasicProperties) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(total_variation(p, p), 0.0);
  EXPECT_DOUBLE_EQ(total_variation(p, q), 0.5);
  EXPECT_DOUBLE_EQ(total_variation(q, p), 0.5);  // symmetric
}

TEST(KlDivergence, BasicProperties) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {0.9, 0.1};
  EXPECT_DOUBLE_EQ(kl_divergence(p, p), 0.0);
  EXPECT_GT(kl_divergence(p, q), 0.0);
  // p_i = 0 contributes nothing even if q_i = 0.
  const std::vector<double> p0 = {1.0, 0.0};
  const std::vector<double> q0 = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(kl_divergence(p0, q0), 0.0);
  // q_i = 0 where p_i > 0 is an error.
  EXPECT_THROW((void)kl_divergence(q, p0), lrb::InvalidArgumentError);
}

TEST(WilsonInterval, CoversTrueProportion) {
  // Empirical coverage check: 500 binomial experiments at p=0.3.
  rng::Xoshiro256StarStar gen(5);
  constexpr double kP = 0.3;
  constexpr int kTrials = 2000;
  int covered = 0, experiments = 500;
  for (int e = 0; e < experiments; ++e) {
    std::uint64_t successes = 0;
    for (int t = 0; t < kTrials; ++t) {
      successes += rng::u01_closed_open(gen) < kP;
    }
    if (wilson_interval(successes, kTrials, 0.99).contains(kP)) ++covered;
  }
  // 99% nominal coverage; allow generous slack.
  EXPECT_GE(covered, static_cast<int>(0.97 * experiments));
}

TEST(WilsonInterval, EdgeCounts) {
  const auto zero = wilson_interval(0, 100, 0.95);
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  const auto all = wilson_interval(100, 100, 0.95);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
  EXPECT_THROW((void)wilson_interval(5, 0), lrb::InvalidArgumentError);
  EXPECT_THROW((void)wilson_interval(5, 4), lrb::InvalidArgumentError);
}

TEST(KsUniform01, AcceptsUniform) {
  rng::Xoshiro256StarStar gen(6);
  std::vector<double> samples(10000);
  for (auto& s : samples) s = rng::u01_closed_open(gen);
  EXPECT_GT(ks_uniform01(std::move(samples)).p_value, 1e-5);
}

TEST(KsUniform01, RejectsSquaredUniform) {
  rng::Xoshiro256StarStar gen(7);
  std::vector<double> samples(10000);
  for (auto& s : samples) {
    const double u = rng::u01_closed_open(gen);
    s = u * u;  // Beta(1/2)-ish, clearly not uniform
  }
  EXPECT_LT(ks_uniform01(std::move(samples)).p_value, 1e-10);
}

TEST(KsUniform01, RejectsEmpty) {
  EXPECT_THROW((void)ks_uniform01({}), lrb::InvalidArgumentError);
}

}  // namespace
}  // namespace lrb::stats
