#include "stats/special.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lrb::stats {
namespace {

TEST(GammaP, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << "x=" << x;
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12) << "x=" << x;
  }
}

TEST(GammaPQ, Complementary) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaP, BoundaryValues) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  EXPECT_NEAR(gamma_p(2.0, 1000.0), 1.0, 1e-12);
}

TEST(GammaP, RejectsBadDomain) {
  EXPECT_THROW((void)gamma_p(0.0, 1.0), lrb::InvalidArgumentError);
  EXPECT_THROW((void)gamma_p(-1.0, 1.0), lrb::InvalidArgumentError);
  EXPECT_THROW((void)gamma_p(1.0, -0.5), lrb::InvalidArgumentError);
}

TEST(ChiSquareSf, MatchesKnownQuantiles) {
  // Chi-square with 1 dof: Pr[X >= 3.841] ~ 0.05.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 1e-3);
  // 10 dof: Pr[X >= 18.307] ~ 0.05.
  EXPECT_NEAR(chi_square_sf(18.307, 10), 0.05, 1e-3);
  // 2 dof: SF(x) = exp(-x/2).
  for (double x : {1.0, 4.0, 9.0}) {
    EXPECT_NEAR(chi_square_sf(x, 2), std::exp(-x / 2), 1e-12);
  }
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(chi_square_sf(-1.0, 5), 1.0);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-8);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232306, 1e-8);
  EXPECT_NEAR(normal_quantile(0.8413447461), 1.0, 1e-7);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.2, 0.5, 0.7, 0.99, 0.9999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, RejectsBoundary) {
  EXPECT_THROW((void)normal_quantile(0.0), lrb::InvalidArgumentError);
  EXPECT_THROW((void)normal_quantile(1.0), lrb::InvalidArgumentError);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447461, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.0), 0.1586552539, 1e-9);
}

TEST(KolmogorovSf, KnownValues) {
  // Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(kolmogorov_sf(1.36), 0.0491, 2e-3);
  EXPECT_DOUBLE_EQ(kolmogorov_sf(0.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_sf(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_sf(10.0), 0.0);
  // Monotone decreasing.
  double prev = 1.0;
  for (double x = 0.1; x < 3.0; x += 0.1) {
    const double q = kolmogorov_sf(x);
    EXPECT_LE(q, prev + 1e-15);
    prev = q;
  }
}

}  // namespace
}  // namespace lrb::stats
